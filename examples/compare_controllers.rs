//! Compare all four controllers (fixed 23 °C, TESLA, Lazic MPC, TSRL)
//! on the same high-load afternoon — a miniature Table 5.
//!
//! ```bash
//! cargo run --release --example compare_controllers
//! ```

use tesla_core::dataset::{generate_sweep_trace, DatasetConfig};
use tesla_core::lazic::LazicConfig;
use tesla_core::{
    run_episode, Controller, EpisodeConfig, FixedController, LazicController, TeslaConfig,
    TeslaController, TsrlConfig, TsrlController,
};
use tesla_units::Celsius;
use tesla_workload::LoadSetting;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("generating 1.5 days of training telemetry …");
    let dataset = DatasetConfig {
        days: 1.5,
        seed: 99,
        ..DatasetConfig::default()
    };
    let train = generate_sweep_trace(&dataset)?;

    println!("training the three data-driven controllers …");
    let mut controllers: Vec<Box<dyn Controller>> = vec![
        Box::new(FixedController::new(Celsius::new(23.0))),
        Box::new(TeslaController::new(&train, TeslaConfig::default())?),
        Box::new(LazicController::new(&train, LazicConfig::default())?),
        Box::new(TsrlController::new(&train, TsrlConfig::default())?),
    ];

    let episode = EpisodeConfig {
        setting: LoadSetting::High,
        minutes: 240,
        warmup_minutes: 60,
        seed: 11,
        ..EpisodeConfig::default()
    };

    println!(
        "\n{:<10} {:>9} {:>9} {:>7} {:>7}",
        "controller", "CE (kWh)", "save (%)", "TSV (%)", "CI (%)"
    );
    let mut baseline = None;
    for c in controllers.iter_mut() {
        let r = run_episode(c.as_mut(), &episode)?;
        let save = baseline.as_ref().map(|b| r.saving_vs(b)).unwrap_or(0.0);
        println!(
            "{:<10} {:>9.2} {:>9.2} {:>7.1} {:>7.1}",
            r.controller, r.cooling_energy_kwh, save, r.tsv_percent, r.ci_percent
        );
        if baseline.is_none() {
            baseline = Some(r);
        }
    }
    println!(
        "\nexpected shape (paper Table 5): TESLA saves energy with zero TSV;\n\
         Lazic and TSRL save more but violate the 22 C cold-aisle limit."
    );
    Ok(())
}
