//! Characterize the simulated testbed: sweep the set-point and report
//! steady-state ACU power, cold-aisle temperature, and interruption state
//! at two load levels — the physics behind every controller comparison.
//!
//! ```bash
//! cargo run --release --example setpoint_sweep
//! ```

use tesla_sim::{SimConfig, Testbed};
use tesla_units::Celsius;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sim = SimConfig::default();
    for (label, util) in [("idle (2.5% CPU)", 0.025), ("busy (50% CPU)", 0.50)] {
        println!("\n== {label} ==");
        println!(
            "{:>8} {:>10} {:>12} {:>12} {:>12}",
            "sp (C)", "P_acu(kW)", "inlet (C)", "coldmax (C)", "interrupted"
        );
        for sp10 in (21..=33).step_by(2) {
            let sp = sp10 as f64;
            let mut tb = Testbed::new(sim.clone(), 5)?;
            tb.write_setpoint(Celsius::new(sp));
            let utils = vec![util; sim.n_servers];
            tb.warm_up(&utils, 600)?; // 10 h to steady state
            let obs = tb.step_sample(&utils)?;
            let inlet = obs.acu_inlet_temps.iter().sum::<f64>() / obs.acu_inlet_temps.len() as f64;
            println!(
                "{:>8.1} {:>10.2} {:>12.2} {:>12.2} {:>11.0}%",
                sp,
                obs.acu_power_kw,
                inlet,
                obs.cold_aisle_max,
                obs.interrupted_frac * 100.0
            );
        }
    }
    println!(
        "\nreading the table: raising the set-point saves power (better COP) until\n\
         the cold aisle hits the 22 C limit; past the achievable return temperature\n\
         the compressor interrupts entirely (fan-only ~0.1 kW). The thermal headroom\n\
         grows with load — which is why TESLA's savings do too."
    );
    Ok(())
}
