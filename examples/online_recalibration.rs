//! Online recalibration under plant drift.
//!
//! §3.3 says that after an `S_min` fallback TESLA "will re-calibrate
//! itself later", and §8 notes the modeling stage is decoupled from the
//! optimizer, so the model can be refreshed in place. This example drifts
//! the plant mid-episode — a blanking panel is removed (containment
//! leakage doubles) and the ACU coils foul (COP −20 %) — and compares a
//! statically trained TESLA against one that refits its DC time-series
//! model from the trailing history every 30 minutes.
//!
//! ```bash
//! cargo run --release --example online_recalibration
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use tesla_core::dataset::{generate_sweep_trace, push_observation, DatasetConfig};
use tesla_core::{Controller, TeslaConfig, TeslaController};
use tesla_forecast::Trace;
use tesla_sim::{SimConfig, Testbed};
use tesla_units::Celsius;
use tesla_workload::{DiurnalProfile, LoadSetting, Orchestrator};

struct DriftOutcome {
    energy_after_drift: f64,
    tsv_after_drift: f64,
    retrains: u64,
}

fn run(retrain_every: Option<u64>) -> DriftOutcome {
    let dataset = DatasetConfig {
        days: 1.0,
        seed: 31,
        ..DatasetConfig::default()
    };
    let train = generate_sweep_trace(&dataset).expect("sweep");
    let config = TeslaConfig {
        retrain_every,
        seed: 5,
        ..TeslaConfig::default()
    };
    let mut tesla = TeslaController::new(&train, config).expect("TESLA");

    let sim = SimConfig::default();
    let minutes = 360;
    let drift_at = 150;
    let mut tb = Testbed::new(sim.clone(), 9).expect("testbed");
    let mut orch = Orchestrator::new(sim.n_servers);
    let mut profile = DiurnalProfile::new(LoadSetting::Medium, minutes as f64 * 60.0);
    let mut rng = StdRng::seed_from_u64(9 ^ 0xEE);
    let mut trace = Trace::with_sensors(sim.n_acu_sensors, sim.n_dc_sensors);
    tb.write_setpoint(Celsius::new(23.0));
    for _ in 0..60 {
        let t = profile.sample(0.0, &mut rng);
        let utils = orch.tick(60.0, t, &mut rng);
        let obs = tb.step_sample(&utils).expect("step");
        push_observation(&mut trace, &obs);
    }

    let mut energy_after_drift = 0.0;
    let mut violations_after = 0usize;
    for m in 0..minutes {
        if m == drift_at {
            // Plant drift: panel removed + coils fouled.
            tb.set_containment_leakage(0.13);
            tb.degrade_acu_cop(0.8);
        }
        let sp = tesla.decide(&trace);
        tb.write_setpoint(Celsius::new(sp));
        let t = profile.sample(m as f64 * 60.0, &mut rng);
        let utils = orch.tick(60.0, t, &mut rng);
        let obs = tb.step_sample(&utils).expect("step");
        if m >= drift_at {
            energy_after_drift += obs.acu_energy_kwh;
            if obs.cold_aisle_max > 22.0 {
                violations_after += 1;
            }
        }
        push_observation(&mut trace, &obs);
    }
    DriftOutcome {
        energy_after_drift,
        tsv_after_drift: 100.0 * violations_after as f64 / (minutes - drift_at) as f64,
        retrains: tesla.retrain_count(),
    }
}

fn main() {
    println!("running static TESLA through the drift episode …");
    let static_run = run(None);
    println!("running recalibrating TESLA (refit every 30 min) …");
    let adaptive = run(Some(30));

    println!("\npost-drift metrics (panel removed + coils fouled at t = 150 min):");
    println!(
        "{:<22} {:>14} {:>10} {:>10}",
        "variant", "CE after (kWh)", "TSV (%)", "retrains"
    );
    println!(
        "{:<22} {:>14.2} {:>10.1} {:>10}",
        "static", static_run.energy_after_drift, static_run.tsv_after_drift, static_run.retrains
    );
    println!(
        "{:<22} {:>14.2} {:>10.1} {:>10}",
        "recalibrating", adaptive.energy_after_drift, adaptive.tsv_after_drift, adaptive.retrains
    );
    println!(
        "\nthe recalibrating variant folds the drifted plant back into its model and\n\
         restores a clean safety record; the static one keeps optimizing against a\n\
         stale model and leans on its error monitor's widened uncertainty, drifting\n\
         closer to the limit."
    );
}
