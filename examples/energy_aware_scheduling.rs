//! The paper's future-work direction (§8): "optimize DC's total energy
//! consumption by integrating TESLA with server-side optimizations such
//! as energy-aware workload scheduling."
//!
//! This example runs TESLA twice under the same medium-load demand —
//! once with spread (Kubernetes-default) placement, once with
//! energy-aware consolidation — and compares total (IT + cooling) energy.
//!
//! ```bash
//! cargo run --release --example energy_aware_scheduling
//! ```

use tesla_core::dataset::{generate_sweep_trace, DatasetConfig};
use tesla_core::{run_episode, Controller, EpisodeConfig, TeslaConfig, TeslaController};
use tesla_workload::{LoadSetting, Placement};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("training TESLA on one day of sweep telemetry …");
    let dataset = DatasetConfig {
        days: 1.0,
        seed: 17,
        ..DatasetConfig::default()
    };
    let train = generate_sweep_trace(&dataset)?;

    println!(
        "\n{:<14} {:>12} {:>12} {:>12} {:>8}",
        "placement", "IT (kWh)", "cooling (kWh)", "total (kWh)", "TSV (%)"
    );
    let mut totals = Vec::new();
    for placement in [Placement::Spread, Placement::Consolidate] {
        let tesla = TeslaController::new(&train, TeslaConfig::default())?;
        let mut ctrl: Box<dyn Controller> = Box::new(tesla);
        // Sleep-capable servers: the provisioning lever that makes
        // consolidation pay (Chen et al. [6], cited as complementary).
        let mut episode = EpisodeConfig {
            setting: LoadSetting::Medium,
            minutes: 240,
            warmup_minutes: 60,
            placement,
            seed: 4,
            ..EpisodeConfig::default()
        };
        episode.sim.server.sleep_enabled = true;
        let r = run_episode(ctrl.as_mut(), &episode)?;
        let total = r.server_energy_kwh + r.cooling_energy_kwh;
        println!(
            "{:<14} {:>12.2} {:>12.2} {:>12.2} {:>8.1}",
            format!("{placement:?}"),
            r.server_energy_kwh,
            r.cooling_energy_kwh,
            total,
            r.tsv_percent
        );
        totals.push(total);
    }
    println!(
        "\nconsolidation changed total energy by {:+.1}% — server-side scheduling and\n\
         cooling control compose, as §8 anticipates: parking idle machines removes\n\
         their idle heat, and TESLA converts the lower heat into a higher set-point\n\
         and cheaper cooling on top of the IT saving.",
        100.0 * (totals[1] / totals[0] - 1.0)
    );
    Ok(())
}
