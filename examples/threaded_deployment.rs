//! The §4-faithful deployment: telemetry producer and TESLA consumer as
//! separate threads over a message queue, with every sample collected
//! into the in-memory time-series store (the InfluxDB stand-in).
//!
//! ```bash
//! cargo run --release --example threaded_deployment
//! ```

use std::sync::Arc;
use tesla_core::dataset::{generate_sweep_trace, DatasetConfig};
use tesla_core::runtime::run_episode_threaded;
use tesla_core::{EpisodeConfig, TeslaConfig, TeslaController};
use tesla_telemetry::{metric, MetricStore, TsdbStore};
use tesla_workload::LoadSetting;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("training TESLA on one day of sweep telemetry …");
    let dataset = DatasetConfig {
        days: 1.0,
        seed: 3,
        ..DatasetConfig::default()
    };
    let train = generate_sweep_trace(&dataset)?;
    let tesla = TeslaController::new(&train, TeslaConfig::default())?;

    let store = Arc::new(TsdbStore::new());
    let episode = EpisodeConfig {
        setting: LoadSetting::Medium,
        minutes: 90,
        warmup_minutes: 30,
        seed: 21,
        ..EpisodeConfig::default()
    };
    println!("running 90 minutes with producer/consumer threads …");
    let dyn_store: Arc<dyn MetricStore> = Arc::clone(&store) as _;
    let result = run_episode_threaded(Box::new(tesla), &episode, dyn_store)?;

    println!("\nepisode metrics:");
    println!("  cooling energy: {:.2} kWh", result.cooling_energy_kwh);
    println!(
        "  TSV: {:.1}%   CI: {:.1}%",
        result.tsv_percent, result.ci_percent
    );

    println!(
        "\nthe store collected {} metrics; examples:",
        store.metric_names().len()
    );
    for m in [metric::ACU_POWER, metric::SETPOINT, metric::COLD_AISLE_MAX] {
        let last = store.last_n(m, 3);
        println!("  {m}: last 3 samples {last:?}");
    }
    Ok(())
}
