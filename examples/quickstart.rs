//! Quickstart: train TESLA on sweep data and control the simulated
//! testbed for two hours.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use tesla_core::dataset::{generate_sweep_trace, DatasetConfig};
use tesla_core::{run_episode, Controller, EpisodeConfig, TeslaConfig, TeslaController};
use tesla_workload::LoadSetting;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Collect training data: the paper's §5.1 protocol — random load
    //    settings per 12-hour segment, set-point swept 20→35 °C at
    //    0.5 °C per 5 minutes. (One day here; more days = better models.)
    println!("generating one day of sweep telemetry …");
    let dataset = DatasetConfig {
        days: 1.0,
        seed: 7,
        ..DatasetConfig::default()
    };
    let trace = generate_sweep_trace(&dataset)?;
    println!(
        "  {} samples, {} rack sensors",
        trace.len(),
        trace.n_dc_sensors()
    );

    // 2. Train the TESLA controller: the four-sub-module DC time-series
    //    model plus the modeling-error-aware Bayesian optimizer.
    println!("training the DC time-series model (L = 20) …");
    let tesla = TeslaController::new(&trace, TeslaConfig::default())?;
    println!(
        "  trained; thermal limit {}, kappa {}, smoothing N = {}",
        tesla.config().d_allowed,
        tesla.config().kappa,
        tesla.config().smoothing
    );

    // 3. Close the loop on the simulated testbed under a medium diurnal
    //    load for two hours.
    println!("running a 2-hour medium-load episode …");
    let mut controller: Box<dyn Controller> = Box::new(tesla);
    let episode = EpisodeConfig {
        setting: LoadSetting::Medium,
        minutes: 120,
        warmup_minutes: 60,
        seed: 42,
        ..EpisodeConfig::default()
    };
    let result = run_episode(controller.as_mut(), &episode)?;

    println!("\nresults over {} minutes:", result.setpoints.len());
    println!("  cooling energy: {:.2} kWh", result.cooling_energy_kwh);
    println!(
        "  thermal-safety violations: {:.1}% of samples",
        result.tsv_percent
    );
    println!("  cooling interruption: {:.1}% of time", result.ci_percent);
    println!(
        "  set-point range: {:.1} – {:.1} C",
        result
            .setpoints
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min),
        result
            .setpoints
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max),
    );
    println!(
        "  max cold-aisle temperature: {:.2} C (limit 22.0 C)",
        result
            .cold_aisle_max
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max),
    );
    Ok(())
}
