//! Multi-zone control: two coupled ACU/rack zones, one TESLA controller
//! per zone.
//!
//! The paper's testbed has a single ACU; its §2 figure shows rooms served
//! by several. This example runs a busy zone next to an idle one with
//! inter-zone air exchange, each zone closed-loop under its own TESLA
//! instance, and shows that the idle zone's controller reacts to the heat
//! leaking over from its neighbour.
//!
//! ```bash
//! cargo run --release --example multizone_control
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use tesla_core::dataset::{generate_sweep_trace, push_observation, DatasetConfig};
use tesla_core::{Controller, TeslaConfig, TeslaController};
use tesla_forecast::Trace;
use tesla_sim::{MultiZoneConfig, MultiZoneTestbed, SimConfig};
use tesla_units::Celsius;
use tesla_workload::{DiurnalProfile, LoadSetting, Orchestrator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("training one TESLA instance per zone (shared sweep protocol) …");
    let train = generate_sweep_trace(&DatasetConfig {
        days: 1.0,
        seed: 23,
        ..DatasetConfig::default()
    })?;
    let mut controllers = [
        TeslaController::new(
            &train,
            TeslaConfig {
                seed: 1,
                ..TeslaConfig::default()
            },
        )?,
        TeslaController::new(
            &train,
            TeslaConfig {
                seed: 2,
                ..TeslaConfig::default()
            },
        )?,
    ];

    let n_servers = SimConfig::default().n_servers;
    let mut room = MultiZoneTestbed::new(MultiZoneConfig::uniform(2, 0.25), 11)?;
    let mut orchs = [Orchestrator::new(n_servers), Orchestrator::new(n_servers)];
    let minutes = 240;
    let mut profiles = [
        DiurnalProfile::new(LoadSetting::Idle, minutes as f64 * 60.0),
        DiurnalProfile::new(LoadSetting::High, minutes as f64 * 60.0),
    ];
    let mut rng = StdRng::seed_from_u64(3);
    let mut traces = [Trace::with_sensors(2, 35), Trace::with_sensors(2, 35)];

    // Warm-up at 23 °C.
    for _ in 0..60 {
        let utils: Vec<Vec<f64>> = (0..2)
            .map(|z| orchs[z].tick(60.0, profiles[z].sample(0.0, &mut rng), &mut rng))
            .collect();
        for (z, obs) in room.step_sample(&utils)?.into_iter().enumerate() {
            push_observation(&mut traces[z], &obs);
        }
    }

    let mut energy = [0.0f64; 2];
    let mut violations = [0usize; 2];
    let mut sp_sum = [0.0f64; 2];
    for m in 0..minutes {
        for z in 0..2 {
            let sp = controllers[z].decide(&traces[z]);
            room.write_setpoint(z, Celsius::new(sp))?;
            sp_sum[z] += room.setpoint(z).unwrap().value();
        }
        let utils: Vec<Vec<f64>> = (0..2)
            .map(|z| {
                orchs[z].tick(
                    60.0,
                    profiles[z].sample(m as f64 * 60.0, &mut rng),
                    &mut rng,
                )
            })
            .collect();
        for (z, obs) in room.step_sample(&utils)?.into_iter().enumerate() {
            energy[z] += obs.acu_energy_kwh;
            if obs.cold_aisle_max > 22.0 {
                violations[z] += 1;
            }
            push_observation(&mut traces[z], &obs);
        }
    }

    println!("\nper-zone results over {minutes} minutes (coupling 0.25 kW/K):");
    println!(
        "{:<18} {:>10} {:>12} {:>10}",
        "zone", "CE (kWh)", "mean sp (C)", "TSV (%)"
    );
    for (z, label) in ["zone 0 (idle)", "zone 1 (high)"].iter().enumerate() {
        println!(
            "{:<18} {:>10.2} {:>12.2} {:>10.1}",
            label,
            energy[z],
            sp_sum[z] / minutes as f64,
            100.0 * violations[z] as f64 / minutes as f64
        );
    }
    println!(
        "\nthe idle zone's ACU still works (its neighbour leaks heat through the shared\n\
         plenum) and its TESLA instance holds a lower set-point than the busy zone's,\n\
         keeping both cold aisles under the 22 C limit independently."
    );
    Ok(())
}
