//! Property-based tests for the checkpoint codec: encode/decode
//! bit-identity over arbitrary control-plane states, NaN rejection,
//! future-version refusal, and torn-write/bit-flip detection at every
//! offset. The chaos harness drills the end-to-end resume path; these
//! properties pin the codec layer it stands on.

use proptest::prelude::*;
use tesla::core::supervisor::{Rung, StressReason, Supervisor, SupervisorConfig, SupervisorEvent};
use tesla::core::{Checkpoint, CheckpointError, CHECKPOINT_VERSION};

const CONTROLLER_NAMES: [&str; 4] = ["tesla", "fixed", "lazic-mpc", "tsrl"];

/// Builds a checkpoint whose every serialized field is driven by the
/// proptest inputs, starting from a real supervisor's state snapshot.
#[allow(clippy::too_many_arguments)]
fn build_checkpoint(
    seed: u64,
    warmup: u64,
    extra_minutes: u64,
    name_idx: usize,
    setpoint_bits: Vec<u64>,
    rung_idx: u8,
    counters: [u64; 4],
    n_events: usize,
    with_blob: bool,
) -> Checkpoint {
    let setpoints: Vec<f64> = setpoint_bits
        .iter()
        .map(|&b| {
            let v = f64::from_bits(b);
            if v.is_finite() {
                v
            } else {
                22.5
            }
        })
        .collect();
    let mut sup = Supervisor::new(SupervisorConfig::default()).state();
    sup.rung = Rung::from_index(rung_idx % 3).expect("index in range");
    sup.stress_streak = counters[0] as u32;
    sup.clean_streak = counters[1] as u32;
    sup.pending_reason = counters[2]
        .is_multiple_of(2)
        .then_some(StressReason::Watchdog);
    sup.elevated_reason = counters[3]
        .is_multiple_of(2)
        .then_some(StressReason::DecisionTimeout);
    sup.safe_mode_minutes = counters[0];
    sup.hold_minutes = counters[1];
    sup.watchdog_trips = counters[2];
    sup.decision_timeouts = counters[3];
    sup.events = (0..n_events)
        .map(|i| SupervisorEvent {
            minute: i,
            from: Rung::from_index((i % 3) as u8).expect("in range"),
            to: Rung::from_index(((i + 1) % 3) as u8).expect("in range"),
            reason: StressReason::Telemetry,
        })
        .collect();
    let cursor = setpoints.len() as u64;
    Checkpoint {
        seed,
        minutes: cursor + extra_minutes,
        warmup_minutes: warmup,
        controller: CONTROLLER_NAMES[name_idx % CONTROLLER_NAMES.len()].to_string(),
        cursor,
        setpoints,
        supervisor: sup,
        controller_state: with_blob.then(|| seed.to_le_bytes().to_vec()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever state goes in comes back bit-identical: every counter,
    /// every event, every set-point bit pattern, the optional blob.
    #[test]
    fn roundtrip_is_bit_identical(
        seed in 0u64..=u64::MAX,
        warmup in 0u64..10_000,
        extra in 0u64..10_000,
        name_idx in 0usize..8,
        bits in proptest::collection::vec(0u64..=u64::MAX, 0..64),
        rung_idx in 0u8..3,
        c0 in 0u64..1_000_000,
        c1 in 0u64..1_000_000,
        c2 in 0u64..1_000_000,
        c3 in 0u64..1_000_000,
        n_events in 0usize..20,
        with_blob in proptest::bool::ANY,
    ) {
        let ckpt = build_checkpoint(
            seed, warmup, extra, name_idx, bits, rung_idx,
            [c0, c1, c2, c3], n_events, with_blob,
        );
        let bytes = ckpt.encode();
        let back = Checkpoint::decode(&bytes).expect("decode own encoding");
        prop_assert_eq!(&back, &ckpt);
        // Set-point bit patterns survive exactly (not just approximately).
        for (a, b) in back.setpoints.iter().zip(&ckpt.setpoints) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        // And re-encoding is deterministic.
        prop_assert_eq!(back.encode(), bytes);
    }

    /// A NaN smuggled into the set-point sequence never survives decode:
    /// the CRC is fine, but the payload is rejected as corrupt.
    #[test]
    fn nan_setpoints_are_rejected(
        seed in 0u64..=u64::MAX,
        n in 1usize..32,
        nan_at in 0usize..32,
    ) {
        let mut ckpt = build_checkpoint(
            seed, 20, 5, 0, vec![0x4036_8000_0000_0000; n], 0,
            [0, 0, 1, 1], 0, false,
        );
        ckpt.setpoints[nan_at % n] = f64::NAN;
        let bytes = ckpt.encode();
        prop_assert!(matches!(
            Checkpoint::decode(&bytes),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    /// A checkpoint from a future code version is refused outright —
    /// never half-parsed with the current layout.
    #[test]
    fn future_versions_are_refused(
        seed in 0u64..=u64::MAX,
        bump in 1u16..1000,
    ) {
        let ckpt = build_checkpoint(seed, 20, 5, 0, vec![0; 8], 1, [1, 2, 3, 4], 2, true);
        let mut bytes = ckpt.encode();
        let v = CHECKPOINT_VERSION + bump;
        bytes[8..10].copy_from_slice(&v.to_le_bytes());
        prop_assert!(matches!(
            Checkpoint::decode(&bytes),
            Err(CheckpointError::FutureVersion(got)) if got == v
        ));
    }

    /// A torn write (truncation at any offset) decodes to a clean error,
    /// never to Ok and never to a panic.
    #[test]
    fn truncation_at_any_offset_errors_cleanly(
        seed in 0u64..=u64::MAX,
        n in 0usize..16,
        cut_frac in 0.0f64..1.0,
    ) {
        let ckpt = build_checkpoint(seed, 20, 5, 2, vec![0x4036_0000_0000_0000; n], 2,
            [9, 8, 7, 6], 3, true);
        let bytes = ckpt.encode();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        prop_assert!(cut < bytes.len());
        prop_assert!(Checkpoint::decode(&bytes[..cut]).is_err());
    }

    /// Any single bit flip in the payload is caught by the CRC.
    #[test]
    fn payload_bit_flips_are_torn(
        seed in 0u64..=u64::MAX,
        n in 1usize..16,
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let ckpt = build_checkpoint(seed, 20, 5, 3, vec![0x4035_0000_0000_0000; n], 0,
            [1, 1, 1, 1], 1, false);
        let mut bytes = ckpt.encode();
        // Flip strictly inside the payload (the CRC's coverage); header
        // integrity is the magic/version/length checks' job.
        const HEADER_LEN: usize = 18;
        let span = bytes.len() - HEADER_LEN;
        let at = HEADER_LEN + ((span as f64) * byte_frac) as usize;
        let at = at.min(bytes.len() - 1);
        bytes[at] ^= 1 << bit;
        prop_assert!(matches!(
            Checkpoint::decode(&bytes),
            Err(CheckpointError::Torn)
        ));
    }
}
