//! Workspace-level property-based tests on cross-crate invariants.

use proptest::prelude::*;
use tesla::core::SmoothingBuffer;
use tesla::sim::{SimConfig, Testbed};
use tesla::telemetry::MinMaxNormalizer;
use tesla_units::Celsius;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The smoothing buffer's output always lies inside the convex hull
    /// of its inputs (it is an average), for any input stream.
    #[test]
    fn smoothing_output_in_input_hull(
        n in 1usize..8,
        inputs in proptest::collection::vec(20.0f64..35.0, 1..40),
    ) {
        let mut buf = SmoothingBuffer::new(n);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for v in inputs {
            lo = lo.min(v);
            hi = hi.max(v);
            let out = buf.push(v);
            prop_assert!(out >= lo - 1e-12 && out <= hi + 1e-12);
        }
    }

    /// Min-max normalization round-trips for arbitrary data.
    #[test]
    fn normalizer_roundtrip(data in proptest::collection::vec(-1e5f64..1e5, 2..50)) {
        let n = MinMaxNormalizer::fit(&data);
        for &v in &data {
            let t = n.transform(v);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&t));
            prop_assert!((n.inverse(t) - v).abs() < 1e-6);
        }
    }

    /// The testbed never produces non-finite telemetry, for any valid
    /// utilization vector and set-point.
    #[test]
    fn testbed_outputs_are_finite(
        seed in 0u64..50,
        sp in 20.0f64..35.0,
        util in 0.0f64..1.0,
    ) {
        let sim = SimConfig::default();
        let mut tb = Testbed::new(sim.clone(), seed).unwrap();
        tb.write_setpoint(Celsius::new(sp));
        let utils = vec![util; sim.n_servers];
        for _ in 0..5 {
            let obs = tb.step_sample(&utils).unwrap();
            prop_assert!(obs.acu_power_kw.is_finite() && obs.acu_power_kw >= 0.0);
            prop_assert!(obs.cold_aisle_max.is_finite());
            prop_assert!(obs.acu_energy_kwh >= 0.0);
            for v in obs.dc_temps.iter().chain(&obs.acu_inlet_temps) {
                prop_assert!(v.is_finite());
            }
        }
    }

    /// Energy conservation-ish sanity: over a sampling period, energy in
    /// kWh is bounded by the max instantaneous power times the period.
    #[test]
    fn energy_bounded_by_power_envelope(seed in 0u64..30, util in 0.0f64..1.0) {
        let sim = SimConfig::default();
        let mut tb = Testbed::new(sim.clone(), seed).unwrap();
        tb.write_setpoint(Celsius::new(22.0));
        let utils = vec![util; sim.n_servers];
        for _ in 0..5 {
            let obs = tb.step_sample(&utils).unwrap();
            // Max ACU power is bounded by fan + base + Qmax/COPfloor ≈ 6 kW.
            prop_assert!(obs.acu_energy_kwh <= 6.0 / 60.0 + 1e-9);
        }
    }
}
