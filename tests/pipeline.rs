//! Cross-crate integration tests: dataset → models → optimizer →
//! closed-loop control, exercised through the public APIs.

use tesla::core::dataset::{generate_sweep_trace, DatasetConfig};
use tesla::core::{
    run_episode, Controller, EpisodeConfig, FixedController, TeslaConfig, TeslaController,
};
use tesla::forecast::{DcTimeSeriesModel, ModelConfig};
use tesla::workload::LoadSetting;
use tesla_units::Celsius;

fn small_dataset(days: f64, seed: u64) -> tesla::forecast::Trace {
    generate_sweep_trace(&DatasetConfig {
        days,
        seed,
        ..DatasetConfig::default()
    })
    .expect("sweep generation")
}

#[test]
fn dataset_to_model_to_prediction() {
    let trace = small_dataset(0.6, 1);
    let cfg = ModelConfig {
        horizon: 10,
        ..ModelConfig::default()
    };
    let model = DcTimeSeriesModel::fit(&trace, cfg).expect("model fit");

    // Predictions at a mid-trace window respond to the set-point in the
    // physically correct directions.
    let t = trace.len() - 12;
    let window = trace.window_at(t, 10).expect("window");
    let cool = model.predict(&window, Celsius::new(21.0)).expect("predict");
    let warm = model.predict(&window, Celsius::new(28.0)).expect("predict");
    assert!(
        warm.energy < cool.energy,
        "higher set-point must predict less energy"
    );
    assert!(
        warm.max_over_sensors(0..11) > cool.max_over_sensors(0..11),
        "higher set-point must predict warmer cold aisle"
    );
}

#[test]
fn tesla_controller_end_to_end_is_safe() {
    let trace = small_dataset(1.0, 2);
    let tesla = TeslaController::new(&trace, TeslaConfig::default()).expect("TESLA");
    let mut controller: Box<dyn Controller> = Box::new(tesla);
    let episode = EpisodeConfig {
        setting: LoadSetting::Medium,
        minutes: 120,
        warmup_minutes: 40,
        seed: 9,
        ..EpisodeConfig::default()
    };
    let result = run_episode(controller.as_mut(), &episode).expect("episode");
    assert_eq!(result.setpoints.len(), 120);
    assert!(result.cooling_energy_kwh > 0.0);
    // Thermal safety: the headline claim. Allow a tiny sliver of sensor
    // noise-induced crossings in the short run.
    assert!(
        result.tsv_percent <= 2.0,
        "TESLA must be thermally safe, saw {:.1}% TSV",
        result.tsv_percent
    );
    // Load awareness: the set-point must actually move.
    let min = result
        .setpoints
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let max = result
        .setpoints
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(max - min > 0.2, "set-point never moved ({min}..{max})");
}

#[test]
fn tesla_saves_energy_vs_fixed_under_load() {
    let trace = small_dataset(1.0, 3);
    let tesla = TeslaController::new(&trace, TeslaConfig::default()).expect("TESLA");
    let mut tesla: Box<dyn Controller> = Box::new(tesla);
    let mut fixed = FixedController::new(Celsius::new(23.0));
    let episode = EpisodeConfig {
        setting: LoadSetting::High,
        minutes: 180,
        warmup_minutes: 40,
        seed: 31,
        ..EpisodeConfig::default()
    };
    let r_fixed = run_episode(&mut fixed, &episode).expect("fixed episode");
    let r_tesla = run_episode(tesla.as_mut(), &episode).expect("tesla episode");
    assert!(
        r_tesla.cooling_energy_kwh < r_fixed.cooling_energy_kwh,
        "TESLA ({:.2} kWh) must beat fixed 23 C ({:.2} kWh) at high load",
        r_tesla.cooling_energy_kwh,
        r_fixed.cooling_energy_kwh
    );
}

#[test]
fn episodes_are_reproducible() {
    let trace = small_dataset(0.5, 4);
    let make = || {
        let tesla = TeslaController::new(
            &trace,
            TeslaConfig {
                seed: 77,
                ..TeslaConfig::default()
            },
        )
        .expect("TESLA");
        let mut c: Box<dyn Controller> = Box::new(tesla);
        let episode = EpisodeConfig {
            setting: LoadSetting::Medium,
            minutes: 45,
            warmup_minutes: 25,
            seed: 5,
            ..EpisodeConfig::default()
        };
        run_episode(c.as_mut(), &episode).expect("episode")
    };
    let a = make();
    let b = make();
    assert_eq!(a.setpoints, b.setpoints);
    assert_eq!(a.cooling_energy_kwh, b.cooling_energy_kwh);
}
