//! Failure-injection integration tests: the control stack must degrade
//! gracefully, never panic, when fed broken telemetry or driven into
//! pathological regimes.

use tesla::core::dataset::{generate_sweep_trace, DatasetConfig};
use tesla::core::{Controller, TeslaConfig, TeslaController};
use tesla::forecast::Trace;
use tesla::sim::{SimConfig, Testbed};
use tesla_units::Celsius;

fn trained_tesla(seed: u64) -> (TeslaController, Trace) {
    let trace = generate_sweep_trace(&DatasetConfig {
        days: 0.6,
        seed,
        ..DatasetConfig::default()
    })
    .expect("sweep");
    let cfg = TeslaConfig {
        model: tesla::forecast::ModelConfig {
            horizon: 8,
            ..Default::default()
        },
        ..TeslaConfig::default()
    };
    let tesla = TeslaController::new(&trace, cfg).expect("TESLA");
    (tesla, trace)
}

#[test]
fn empty_history_returns_cold_start() {
    let (mut tesla, _) = trained_tesla(1);
    let sp = tesla.decide(&Trace::with_sensors(2, 35));
    assert_eq!(sp, 23.0);
}

#[test]
fn sensor_dropout_does_not_panic() {
    // Simulate a stuck sensor: one rack sensor frozen at a constant, one
    // inlet sensor reading an implausible constant.
    let (mut tesla, mut trace) = trained_tesla(2);
    let n = trace.len();
    for t in n - 30..n {
        trace.dc_temps[5][t] = 0.0; // dead sensor reads zero
        trace.acu_inlet[1][t] = 60.0; // shorted sensor reads hot
    }
    let sp = tesla.decide(&trace);
    assert!(
        (20.0..=35.0).contains(&sp),
        "decision {sp} must stay in ACU bounds"
    );
}

#[test]
fn nan_telemetry_is_contained() {
    let (mut tesla, mut trace) = trained_tesla(3);
    let n = trace.len();
    trace.avg_power[n - 1] = f64::NAN;
    let sp = tesla.decide(&trace);
    // The decision must remain a valid register value even when the model
    // sees NaN inputs (the optimizer treats failed predictions as
    // infeasible and falls back).
    assert!(sp.is_finite());
    assert!((20.0..=35.0).contains(&sp));
}

#[test]
fn saturated_acu_episode_runs_to_completion() {
    // Pathological plant: a tiny ACU that cannot carry the load. The
    // simulator and the metrics must stay finite.
    let mut sim = SimConfig::default();
    sim.acu.q_max_kw = 3.0;
    let mut tb = Testbed::new(sim.clone(), 1).expect("testbed");
    tb.write_setpoint(Celsius::new(20.0));
    let utils = vec![0.9; sim.n_servers];
    let mut last = None;
    for _ in 0..240 {
        last = Some(tb.step_sample(&utils).expect("step"));
    }
    let obs = last.unwrap();
    assert!(obs.cold_aisle_max.is_finite());
    assert!(obs.cold_aisle_max > 22.0, "an undersized ACU must overheat");
    assert!(obs.acu_power_kw > 0.0);
}

#[test]
fn zero_capacity_smoothing_still_works() {
    // Degenerate smoothing buffer (N clamps to 1) must behave as a
    // passthrough, not divide by zero.
    let mut buffer = tesla::core::SmoothingBuffer::new(0);
    assert_eq!(buffer.capacity(), 1);
    assert_eq!(buffer.push(25.0), 25.0);
}

#[test]
fn monitor_survives_garbage_errors() {
    let mut m = tesla::bo::PredictionErrorMonitor::new(50, (0.1, 0.1));
    m.record(f64::INFINITY, 1.0);
    m.record(f64::NAN, f64::NAN);
    m.record(1.0, -1.0);
    let (vo, vc) = m.bootstrap_variances(100, 1);
    assert!(vo.is_finite() && vc.is_finite());
}
