//! End-to-end observability test: a supervised TESLA episode with
//! metrics enabled must populate the global registry with series from
//! every instrumented layer (core, bo, forecast, sim), render cleanly
//! through the Prometheus exporter, and leave `control_step` spans in
//! the trace buffer.
//!
//! The registry is process-global and shared with any other test in
//! this binary, so assertions are presence-based (series exist, counts
//! are non-zero), never exact-count.

use tesla::core::dataset::{generate_sweep_trace, DatasetConfig};
use tesla::core::{
    run_supervised_episode, EpisodeConfig, Supervisor, SupervisorConfig, TeslaConfig,
    TeslaController,
};
use tesla::sim::{
    ActuatorFault, ActuatorFaultKind, FaultPlan, FaultWindow, SensorFault, SensorFaultKind,
    SensorTarget,
};
use tesla::workload::LoadSetting;

/// A deliberately small but complete TESLA stack: short training sweep,
/// short horizon, few BO iterations — enough to exercise every
/// instrumented code path in seconds.
fn quick_tesla(seed: u64) -> TeslaController {
    let trace = generate_sweep_trace(&DatasetConfig {
        days: 0.6,
        seed,
        ..DatasetConfig::default()
    })
    .expect("sweep");
    let cfg = TeslaConfig {
        model: tesla::forecast::ModelConfig {
            horizon: 8,
            ..Default::default()
        },
        bo: tesla::bo::BoConfig {
            n_init: 5,
            n_iter: 2,
            n_mc: 24,
            n_grid: 16,
            ..Default::default()
        },
        n_bootstrap: 64,
        ..TeslaConfig::default()
    };
    TeslaController::new(&trace, cfg).expect("TESLA")
}

#[test]
fn supervised_episode_populates_all_layers() {
    tesla::obs::set_enabled(true);

    let mut tesla = quick_tesla(11);
    let mut sup = Supervisor::new(SupervisorConfig::default());
    // A short sensor dropout and an actuator write timeout so the
    // fault-path instruments (sim fault counters, supervisor write
    // retries) see traffic too. Windows are in testbed minutes, i.e.
    // they include the 10-minute warm-up.
    let faults = FaultPlan {
        sensors: vec![SensorFault {
            target: SensorTarget::DcSensor(0),
            kind: SensorFaultKind::Dropout,
            window: FaultWindow::new(15.0, 25.0),
        }],
        actuators: vec![ActuatorFault {
            kind: ActuatorFaultKind::WriteTimeout,
            window: FaultWindow::new(20.0, 24.0),
        }],
        ..FaultPlan::default()
    };
    let episode = EpisodeConfig {
        setting: LoadSetting::Medium,
        minutes: 30,
        warmup_minutes: 10,
        seed: 11,
        faults,
        ..EpisodeConfig::default()
    };
    let result = run_supervised_episode(&mut tesla, &mut sup, &episode).expect("episode");
    assert_eq!(result.setpoints.len(), 30);

    // ≥15 distinct series spanning every instrumented crate.
    let snapshot = tesla::obs::global().snapshot();
    let mut series: Vec<String> = snapshot
        .iter()
        .map(|s| {
            let labels: Vec<String> = s.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!("{}{{{}}}", s.name, labels.join(","))
        })
        .collect();
    series.sort();
    series.dedup();
    assert!(
        series.len() >= 15,
        "expected >=15 distinct series, got {}: {series:#?}",
        series.len()
    );
    for prefix in ["tesla_", "supervisor_", "bo_", "forecast_", "sim_"] {
        assert!(
            snapshot.iter().any(|s| s.name.starts_with(prefix)),
            "no series with prefix {prefix}; have {series:#?}"
        );
    }

    // Key per-layer instruments all saw traffic during the episode.
    for name in [
        "tesla_control_steps_total",
        "bo_acquisition_evaluations_total",
        "sim_setpoint_writes_total",
    ] {
        assert!(
            tesla::obs::global().counter(name, &[]).get() > 0,
            "{name} never incremented"
        );
    }
    assert!(
        tesla::obs::global()
            .histogram("tesla_decide_seconds", &[])
            .count()
            > 0
    );
    assert!(
        tesla::obs::global()
            .histogram("forecast_fit_seconds", &[])
            .count()
            > 0
    );
    assert!(
        tesla::obs::global()
            .histogram("forecast_predict_seconds", &[])
            .count()
            > 0
    );

    // The Prometheus rendering of the live registry is well-formed.
    let prom = tesla::obs::export::render_prometheus(tesla::obs::global());
    assert!(prom.contains("# TYPE tesla_control_steps_total counter"));
    assert!(prom.contains("# TYPE tesla_decide_seconds histogram"));
    assert!(prom.contains("tesla_decide_seconds_bucket{le=\"+Inf\"}"));

    // Control-step spans landed in the trace ring with their recorded
    // set-point fields.
    let spans = tesla::obs::global_trace().snapshot();
    let steps: Vec<_> = spans.iter().filter(|s| s.name == "control_step").collect();
    assert!(!steps.is_empty(), "no control_step spans recorded");
    assert!(steps.iter().any(|s| s
        .fields
        .iter()
        .any(|(k, _)| k == "executed_setpoint_celsius")));
    assert!(spans.iter().any(|s| s.name == "supervised_minute"));
}
