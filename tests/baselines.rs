//! Integration tests for the comparison controllers and the paper's
//! qualitative claims about them (§5.3, §6.3).

use tesla::core::dataset::{generate_sweep_trace, DatasetConfig};
use tesla::core::lazic::LazicConfig;
use tesla::core::{
    run_episode, Controller, EpisodeConfig, FixedController, LazicController, TsrlConfig,
    TsrlController,
};
use tesla::workload::LoadSetting;
use tesla_units::Celsius;

fn train_trace() -> tesla::forecast::Trace {
    generate_sweep_trace(&DatasetConfig {
        days: 1.0,
        seed: 77,
        ..DatasetConfig::default()
    })
    .expect("sweep")
}

fn episode(setting: LoadSetting, minutes: usize, seed: u64) -> EpisodeConfig {
    EpisodeConfig {
        setting,
        minutes,
        warmup_minutes: 40,
        seed,
        ..EpisodeConfig::default()
    }
}

#[test]
fn lazic_saves_energy_but_violates() {
    let train = train_trace();
    let mut lazic = LazicController::new(&train, LazicConfig::default()).expect("lazic");
    let mut fixed = FixedController::new(Celsius::new(23.0));
    let cfg = episode(LoadSetting::Medium, 240, 13);
    let r_fixed = run_episode(&mut fixed, &cfg).expect("fixed");
    let r_lazic = run_episode(&mut lazic, &cfg).expect("lazic");
    assert!(
        r_lazic.cooling_energy_kwh < r_fixed.cooling_energy_kwh,
        "Lazic must save energy ({:.2} vs {:.2} kWh)",
        r_lazic.cooling_energy_kwh,
        r_fixed.cooling_energy_kwh
    );
    assert!(
        r_lazic.tsv_percent > 1.0,
        "Lazic's boundary riding must cost thermal safety, saw {:.1}% TSV",
        r_lazic.tsv_percent
    );
}

#[test]
fn tsrl_saves_energy_but_violates() {
    let train = train_trace();
    let mut tsrl = TsrlController::new(&train, TsrlConfig::default()).expect("tsrl");
    let mut fixed = FixedController::new(Celsius::new(23.0));
    let cfg = episode(LoadSetting::High, 240, 17);
    let r_fixed = run_episode(&mut fixed, &cfg).expect("fixed");
    let r_tsrl = run_episode(&mut tsrl, &cfg).expect("tsrl");
    assert!(r_tsrl.cooling_energy_kwh < r_fixed.cooling_energy_kwh);
    assert!(
        r_tsrl.tsv_percent > 1.0,
        "TSRL must overshoot the limit, saw {:.1}% TSV",
        r_tsrl.tsv_percent
    );
}

#[test]
fn lazic_uses_smin_backup_under_stress() {
    // Impossible thermal limit: the predicted max can never clear it, so
    // every decision is the S_min backup.
    let train = train_trace();
    let cfg = LazicConfig {
        d_allowed: Celsius::new(10.0),
        ..LazicConfig::default()
    };
    let mut lazic = LazicController::new(&train, cfg).expect("lazic");
    let sp = lazic.decide(&train);
    assert_eq!(sp, 20.0);
}

#[test]
fn fixed_controller_is_the_safety_reference() {
    // The industry-practice policy holds in every load setting (that is
    // exactly why operators like it — and why it wastes energy).
    let mut fixed = FixedController::new(Celsius::new(23.0));
    for (i, setting) in LoadSetting::all().into_iter().enumerate() {
        let r = run_episode(&mut fixed, &episode(setting, 150, 100 + i as u64)).expect("episode");
        assert_eq!(r.tsv_percent, 0.0, "{} violated", setting.name());
        assert!(r.ci_percent < 5.0);
    }
}

#[test]
fn controllers_report_stable_names() {
    let train = train_trace();
    let lazic = LazicController::new(&train, LazicConfig::default()).expect("lazic");
    let tsrl = TsrlController::new(&train, TsrlConfig::default()).expect("tsrl");
    assert_eq!(lazic.name(), "lazic");
    assert_eq!(tsrl.name(), "tsrl");
    assert_eq!(FixedController::new(Celsius::new(23.0)).name(), "fixed-23C");
}
