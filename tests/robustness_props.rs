//! Property-based tests for the robustness layer: the telemetry health
//! monitor and the supervisor's degradation-ladder hysteresis.

use proptest::prelude::*;
use tesla::core::supervisor::{Rung, Supervisor, SupervisorConfig};
use tesla::telemetry::{HealthConfig, HealthFault, HealthMonitor};
use tesla_units::Celsius;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A quarantined signal never reaches the forecaster: whatever the
    /// corruption (out-of-range, NaN), the sanitized stream stays finite,
    /// and while at least one peer is healthy the imputed value stays
    /// inside the plausible band.
    #[test]
    fn quarantined_signal_never_leaks_corruption(
        bad_idx in 0usize..4,
        base in 18.0f64..24.0,
        n_steps in 5usize..40,
        spike in 46.0f64..200.0,
        use_nan in proptest::bool::ANY,
    ) {
        let cfg = HealthConfig::default();
        let (lo, hi) = (cfg.min_value, cfg.max_value);
        let mut mon = HealthMonitor::new(4, cfg);
        let corrupt = if use_nan { f64::NAN } else { spike };
        for step in 0..n_steps {
            // Healthy peers wiggle deterministically; one signal lies.
            let mut row: Vec<f64> = (0..4)
                .map(|k| base + 0.3 * ((step + k) % 5) as f64)
                .collect();
            row[bad_idx] = corrupt;
            mon.sanitize(&mut row);
            for (k, &v) in row.iter().enumerate() {
                prop_assert!(v.is_finite(), "signal {k} not finite at step {step}");
                prop_assert!(
                    (lo..=hi).contains(&v),
                    "signal {k} = {v} outside [{lo}, {hi}] at step {step}"
                );
            }
            // The corrupted raw value itself must never survive.
            prop_assert!(row[bad_idx] != corrupt || corrupt.is_nan());
            prop_assert!(mon.is_quarantined(bad_idx));
        }
    }

    /// Nominal traces produce no false positives: in-band, non-flat
    /// signals are never quarantined and pass through unmodified.
    #[test]
    fn nominal_traces_are_never_quarantined(
        base in 16.0f64..28.0,
        amp in 0.05f64..3.0,
        n_signals in 1usize..8,
        n_steps in 2usize..60,
    ) {
        let mut mon = HealthMonitor::new(n_signals, HealthConfig::default());
        for step in 0..n_steps {
            let row: Vec<f64> = (0..n_signals)
                .map(|k| base + amp * (0.7 * step as f64 + k as f64).sin())
                .collect();
            let mut out = row.clone();
            let rep = mon.sanitize(&mut out);
            prop_assert!(rep.clean(), "false positive at step {step}: {rep:?}");
            prop_assert_eq!(&out, &row);
        }
        for k in 0..n_signals {
            prop_assert!(mon.fault(k).is_none());
        }
    }

    /// A flatlined sensor is caught even though every reading is in-band.
    #[test]
    fn flatline_is_caught_in_band(
        value in 18.0f64..22.0,
        window in 3usize..12,
    ) {
        let cfg = HealthConfig { flatline_window: window, ..HealthConfig::default() };
        let mut mon = HealthMonitor::new(2, cfg);
        for step in 0..window + 2 {
            let mut row = vec![value, 20.0 + 0.5 * (step % 3) as f64];
            mon.sanitize(&mut row);
        }
        prop_assert_eq!(mon.fault(0), Some(HealthFault::Flatline));
        prop_assert!(mon.fault(1).is_none());
    }

    /// Hysteresis: for ANY stress pattern, the ladder cannot oscillate
    /// faster than the escalate/recover streak lengths allow — each
    /// transition needs a fresh streak, so transitions are bounded by
    /// `steps / min(escalate_after, recover_after) + 1`.
    #[test]
    fn ladder_transition_rate_is_bounded(
        escalate_after in 2u32..5,
        recover_after in 4u32..12,
        pattern in proptest::collection::vec(proptest::bool::ANY, 10..120),
    ) {
        let mut sup = Supervisor::new(SupervisorConfig {
            escalate_after,
            recover_after,
            ..SupervisorConfig::default()
        });
        for (m, &stressed) in pattern.iter().enumerate() {
            let q = if stressed { 1.0 } else { 0.0 };
            sup.end_of_minute(m, q, Celsius::new(21.0), Celsius::new(23.0));
        }
        let min_streak = escalate_after.min(recover_after) as usize;
        let bound = pattern.len() / min_streak + 1;
        prop_assert!(
            sup.events().len() <= bound,
            "{} transitions over {} minutes exceeds bound {}",
            sup.events().len(), pattern.len(), bound
        );
        // Consecutive events must also alternate coherently: each event
        // starts where the previous one ended.
        for pair in sup.events().windows(2) {
            prop_assert_eq!(pair[0].to, pair[1].from);
        }
    }

    /// Stress that never persists `escalate_after` consecutive minutes
    /// can never move the ladder off Normal.
    #[test]
    fn sub_threshold_stress_never_escalates(
        escalate_after in 2u32..6,
        n_bursts in 1usize..20,
    ) {
        let mut sup = Supervisor::new(SupervisorConfig {
            escalate_after,
            recover_after: 8,
            ..SupervisorConfig::default()
        });
        let mut minute = 0;
        for _ in 0..n_bursts {
            // A burst one short of the threshold, then a clean minute.
            for _ in 0..escalate_after - 1 {
                sup.end_of_minute(minute, 1.0, Celsius::new(21.0), Celsius::new(23.0));
                minute += 1;
            }
            sup.end_of_minute(minute, 0.0, Celsius::new(21.0), Celsius::new(23.0));
            minute += 1;
        }
        prop_assert_eq!(sup.rung(), Rung::Normal);
        prop_assert!(sup.events().is_empty());
    }
}
