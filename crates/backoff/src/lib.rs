#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Unified jittered-exponential-backoff policy.
//!
//! Three subsystems retry transient failures — the supervisor's Modbus
//! register writes, the historian's WAL fsyncs, and the checkpoint
//! writer — and before this crate each had its own ad-hoc loop with its
//! own cap and its own notion of "exponential". One policy now covers
//! all of them:
//!
//! * delay before retry `a` is `base · factor^(a−1)`, capped at
//!   `max_delay_ms`;
//! * an optional *jitter fraction* subtracts up to that fraction of the
//!   delay, drawn **deterministically** from a hash of `(seed, attempt)`
//!   so retry schedules are reproducible and regression-testable while
//!   still decorrelating concurrent retriers with different seeds;
//! * `max_attempts` bounds the total number of tries (first attempt
//!   included), mirroring the supervisor's long-standing
//!   "4 attempts = 3 retries" accounting.
//!
//! The crate is dependency-free so leaf crates (`tesla-obs`,
//! `tesla-historian`) can use it without cycles; `tesla-core` re-exports
//! it as `tesla_core::backoff`.

use std::time::Duration;

/// A jittered exponential backoff schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffPolicy {
    /// Base delay before the first retry, milliseconds.
    pub base_ms: u64,
    /// Multiplier applied per additional retry (2 = doubling).
    pub factor: u32,
    /// Ceiling on any single delay, milliseconds.
    pub max_delay_ms: u64,
    /// Total attempts allowed (first attempt included); min 1.
    pub max_attempts: u32,
    /// Fraction of each delay randomized away, `0.0..=1.0`. The jittered
    /// delay lies in `[nominal·(1−jitter), nominal]`, so it never
    /// exceeds the deterministic schedule.
    pub jitter: f64,
    /// Seed for the deterministic jitter hash.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base_ms: 1,
            factor: 2,
            max_delay_ms: 1_024,
            max_attempts: 4,
            jitter: 0.0,
            seed: 0,
        }
    }
}

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl BackoffPolicy {
    /// The delay to sleep before retry `attempt` (1-based: `1` is the
    /// delay between the first failure and the second try), with the
    /// deterministic jitter applied. Attempt 0 returns 0.
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        if attempt == 0 || self.base_ms == 0 {
            return 0;
        }
        // Cap the exponent so the shift/multiply cannot overflow; the
        // max_delay clamp makes larger exponents indistinguishable anyway.
        let exp = (attempt - 1).min(32);
        let factor = u64::from(self.factor.max(1));
        let mut nominal = self.base_ms;
        for _ in 0..exp {
            nominal = nominal.saturating_mul(factor);
            if nominal >= self.max_delay_ms {
                break;
            }
        }
        let nominal = nominal.min(self.max_delay_ms.max(self.base_ms));
        let jitter = self.jitter.clamp(0.0, 1.0);
        if jitter == 0.0 {
            return nominal;
        }
        // Uniform in [0, 1) from the (seed, attempt) hash.
        let u = (splitmix64(self.seed ^ u64::from(attempt)) >> 11) as f64 / (1u64 << 53) as f64;
        let shaved = (nominal as f64 * jitter * u).floor() as u64;
        nominal - shaved
    }

    /// The full retry schedule: delays before retries `1..max_attempts`
    /// (an empty vector when only one attempt is allowed).
    pub fn schedule(&self) -> Vec<u64> {
        (1..self.max_attempts.max(1))
            .map(|a| self.delay_ms(a))
            .collect()
    }

    /// Runs `op` under the policy: `op(attempt)` is called with the
    /// 1-based attempt number until it succeeds, a non-transient error
    /// occurs (per `is_transient`), or `max_attempts` is exhausted.
    /// Sleeps the jittered delay between attempts; `on_retry` observes
    /// each retry (for counters) before the sleep.
    pub fn run<T, E>(
        &self,
        mut op: impl FnMut(u32) -> Result<T, E>,
        is_transient: impl Fn(&E) -> bool,
        mut on_retry: impl FnMut(u32),
    ) -> Result<T, E> {
        let max = self.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) if attempt < max && is_transient(&e) => {
                    on_retry(attempt);
                    let d = self.delay_ms(attempt);
                    if d > 0 {
                        std::thread::sleep(Duration::from_millis(d));
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unjittered_schedule_is_the_classic_doubling() {
        let p = BackoffPolicy {
            base_ms: 10,
            factor: 2,
            max_delay_ms: 100,
            max_attempts: 6,
            jitter: 0.0,
            seed: 0,
        };
        assert_eq!(p.schedule(), vec![10, 20, 40, 80, 100]);
    }

    #[test]
    fn supervisor_legacy_schedule_is_reproduced() {
        // The supervisor's historical delays were base << (attempt-1),
        // exponent capped at 10. The policy must reproduce them exactly
        // so swapping it in changes no timing behaviour.
        let p = BackoffPolicy {
            base_ms: 1,
            factor: 2,
            max_delay_ms: 1 << 10,
            max_attempts: 12,
            jitter: 0.0,
            seed: 0,
        };
        for attempt in 1u32..12 {
            assert_eq!(p.delay_ms(attempt), 1u64 << (attempt - 1).min(10));
        }
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = BackoffPolicy {
            base_ms: 100,
            factor: 2,
            max_delay_ms: 10_000,
            max_attempts: 8,
            jitter: 0.5,
            seed: 42,
        };
        let s1 = p.schedule();
        let s2 = p.schedule();
        assert_eq!(s1, s2, "same seed, same schedule");
        for (i, &d) in s1.iter().enumerate() {
            let nominal = 100u64 << i;
            assert!(d <= nominal, "jitter never exceeds the nominal delay");
            assert!(
                d >= nominal / 2,
                "0.5 jitter shaves at most half: {d} vs {nominal}"
            );
        }
        let other = BackoffPolicy { seed: 43, ..p };
        assert_ne!(s1, other.schedule(), "different seeds decorrelate");
    }

    #[test]
    fn zero_attempt_and_zero_base_are_zero_delay() {
        let p = BackoffPolicy::default();
        assert_eq!(p.delay_ms(0), 0);
        let silent = BackoffPolicy { base_ms: 0, ..p };
        assert_eq!(silent.delay_ms(5), 0);
    }

    #[test]
    fn delay_saturates_at_the_cap_without_overflow() {
        let p = BackoffPolicy {
            base_ms: u64::MAX / 2,
            factor: u32::MAX,
            max_delay_ms: u64::MAX,
            max_attempts: 64,
            jitter: 0.0,
            seed: 0,
        };
        // Must not panic; saturates.
        assert!(p.delay_ms(63) > 0);
    }

    #[test]
    fn run_retries_transient_errors_up_to_the_cap() {
        let p = BackoffPolicy {
            base_ms: 0,
            max_attempts: 4,
            ..BackoffPolicy::default()
        };
        let mut tries = 0u32;
        let mut retries = Vec::new();
        let r: Result<(), &str> = p.run(
            |_| {
                tries += 1;
                Err("transient")
            },
            |_| true,
            |a| retries.push(a),
        );
        assert!(r.is_err());
        assert_eq!(tries, 4, "4 attempts");
        assert_eq!(retries, vec![1, 2, 3], "= 3 retries");
    }

    #[test]
    fn run_stops_on_non_transient_errors() {
        let p = BackoffPolicy {
            base_ms: 0,
            max_attempts: 5,
            ..BackoffPolicy::default()
        };
        let mut tries = 0u32;
        let r: Result<(), &str> = p.run(
            |_| {
                tries += 1;
                Err("fatal")
            },
            |_| false,
            |_| {},
        );
        assert!(r.is_err());
        assert_eq!(tries, 1);
    }

    #[test]
    fn run_succeeds_mid_schedule() {
        let p = BackoffPolicy {
            base_ms: 0,
            max_attempts: 5,
            ..BackoffPolicy::default()
        };
        let r: Result<u32, &str> = p.run(
            |attempt| {
                if attempt >= 3 {
                    Ok(attempt)
                } else {
                    Err("transient")
                }
            },
            |_| true,
            |_| {},
        );
        assert_eq!(r, Ok(3));
    }
}
