#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Dependency-free non-blocking TCP reactor.
//!
//! The workspace forbids `unsafe` and vendors no I/O crates, so the
//! classic `epoll`/`mio` readiness route is off the table. What works
//! instead — and is honest about its costs — is a *sharded poll-scan*
//! reactor: every accepted connection is set non-blocking and parked in
//! one of `shards` event loops; each loop sweeps its connections with
//! non-blocking `read`/`write` calls and hands complete bytes to a
//! per-connection [`Handler`]. A sweep that moves no bytes anywhere
//! sleeps `idle_sleep` before the next one, so an idle reactor costs
//! ~zero CPU while a saturated one never sleeps at all.
//!
//! The trade against readiness APIs is an O(connections) sweep instead
//! of an O(ready) wake-up. For the workloads this repo serves —
//! telemetry floods where *most* sockets are hot, and scrape endpoints
//! with a handful of sockets — the sweep is either amortised by payload
//! or trivially cheap. See `docs/SERVICE.md` ("Design notes") for the
//! measured numbers.
//!
//! Contracts the event loop upholds (and the `no-blocking-io-in-reactor`
//! xtask lint plus the `ReactorShard::poll_once` analysis root enforce):
//!
//! * [`ReactorShard::poll_once`] and everything it calls — including
//!   every [`Handler::on_bytes`] implementation — performs **no
//!   blocking call**: no `read_exact`/`read_line`/`write_all`, no
//!   `flush`, no channel `recv`, no sleeps, no filesystem traffic.
//! * Writes are cursor-resumed: a partial write parks the remainder and
//!   the sweep retries next pass, never spinning on one socket.
//! * A connection whose input or output buffer exceeds
//!   [`ReactorConfig::max_buffer_bytes`] is closed: an input overrun
//!   means the handler refused to consume (protocol desync), an output
//!   overrun means the peer stopped draining (slow consumer).
//!
//! Accept-side transient errors (EMFILE & friends) retry on the shared
//! [`tesla_backoff::BackoffPolicy`] schedule, mirroring the historian
//! WAL and supervisor write paths.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use tesla_backoff::BackoffPolicy;

/// What the handler wants done with the connection after a byte batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Keep the connection open.
    Continue,
    /// Flush any pending output, then close.
    Close,
}

/// Per-connection protocol state machine driven by the event loop.
///
/// Implementations must be *incremental*: `on_bytes` is called with
/// whatever bytes have arrived so far (possibly a torn frame) and must
/// drain what it can parse from `input` (removing consumed bytes),
/// append any response bytes to `output`, and return. It must never
/// block — the `no-blocking-io-in-reactor` lint patrols the source of
/// every handler living under `crates/reactor` or `crates/net`.
pub trait Handler: Send {
    /// Consumes parseable bytes from `input`, appends responses to
    /// `output`. Bytes left in `input` are presented again (with more
    /// appended) on the next call.
    fn on_bytes(&mut self, input: &mut Vec<u8>, output: &mut Vec<u8>) -> Action;

    /// Called exactly once when the connection is dropped (peer close,
    /// error, buffer overrun, or [`Action::Close`]).
    fn on_close(&mut self) {}
}

/// Observability taps for the reactor. All methods default to no-ops so
/// the reactor itself stays dependency-free; `tesla-net` and `tesla-obs`
/// wire these into their metric registries.
pub trait Hooks: Send + Sync {
    /// A connection was accepted and parked on a shard.
    fn on_accept(&self) {}
    /// A connection was dropped (any reason).
    fn on_conn_close(&self) {}
    /// A connection was refused because `max_connections` was reached.
    fn on_rejected(&self) {}
    /// The accept loop hit a transient error and scheduled a retry.
    fn on_accept_retry(&self) {}
    /// `n` bytes were read off a socket.
    fn on_bytes_read(&self, n: usize) {
        let _ = n;
    }
    /// `n` bytes were written to a socket.
    fn on_bytes_written(&self, n: usize) {
        let _ = n;
    }
}

/// The do-nothing [`Hooks`] implementation.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoHooks;

impl Hooks for NoHooks {}

/// Reactor sizing and policy knobs.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Event-loop threads; connections are round-robined across them.
    pub shards: usize,
    /// Cap on concurrently open connections across all shards; accepts
    /// beyond it are closed immediately ([`Hooks::on_rejected`]).
    pub max_connections: usize,
    /// Per-direction, per-connection buffer cap; exceeding it closes
    /// the connection (input: protocol desync; output: slow consumer).
    pub max_buffer_bytes: usize,
    /// Bytes attempted per non-blocking `read` call.
    pub read_chunk_bytes: usize,
    /// Reads allowed per connection per sweep before yielding to the
    /// next connection (bounds how long one hot socket can hog a
    /// sweep).
    pub reads_per_sweep: usize,
    /// Sleep between sweeps that moved no bytes.
    pub idle_sleep: Duration,
    /// Idle-connection poll backoff, as a power-of-two exponent cap: a
    /// connection that moved no bytes for k consecutive sweeps is only
    /// re-polled every `2^min(k, cap)` sweeps. Without readiness
    /// notification a sweep costs one `read` syscall per connection, so
    /// on shards with tens of thousands of mostly-quiet connections
    /// cold peers would otherwise dominate the sweep and starve the
    /// threads doing real work (on small hosts, the historian writers).
    /// `0` disables the backoff.
    pub poll_backoff_cap: u32,
    /// Poll backoff only engages on shards holding at least this many
    /// connections; below it a full sweep is cheap and the extra
    /// latency would buy nothing.
    pub poll_backoff_min_conns: usize,
    /// Retry schedule for transient accept errors.
    pub accept_backoff: BackoffPolicy,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            shards: 1,
            max_connections: 16_384,
            max_buffer_bytes: 4 << 20,
            read_chunk_bytes: 64 << 10,
            reads_per_sweep: 4,
            idle_sleep: Duration::from_micros(500),
            poll_backoff_cap: 4,
            poll_backoff_min_conns: 64,
            accept_backoff: BackoffPolicy {
                base_ms: 50,
                factor: 2,
                max_delay_ms: 2_000,
                max_attempts: 5,
                jitter: 0.25,
                seed: 0x0EAC,
            },
        }
    }
}

/// One parked connection and its protocol state.
struct Conn {
    stream: TcpStream,
    handler: Box<dyn Handler>,
    input: Vec<u8>,
    output: Vec<u8>,
    /// Bytes of `output` already written to the socket.
    out_cursor: usize,
    /// Drop the connection once `output` drains.
    close_after_flush: bool,
    /// Consecutive sweeps in which this connection moved no bytes;
    /// drives the exponential poll backoff.
    idle_streak: u32,
}

/// One event-loop: a set of connections swept by [`poll_once`].
///
/// [`poll_once`]: ReactorShard::poll_once
pub struct ReactorShard {
    conns: Vec<Conn>,
    /// Handed fresh connections by the accept loop.
    inbox: Arc<Mutex<Vec<TcpStream>>>,
    factory: Arc<dyn Fn() -> Box<dyn Handler> + Send + Sync>,
    hooks: Arc<dyn Hooks>,
    conn_count: Arc<AtomicUsize>,
    scratch: Vec<u8>,
    max_buffer_bytes: usize,
    reads_per_sweep: usize,
    poll_backoff_cap: u32,
    poll_backoff_min_conns: usize,
    /// Sweep counter; phase reference for the poll backoff.
    tick: u64,
}

impl ReactorShard {
    /// Moves connections parked by the accept loop into the sweep set.
    /// Returns how many arrived.
    fn drain_inbox(&mut self) -> usize {
        let mut fresh = match self.inbox.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        let n = fresh.len();
        for stream in fresh.drain(..) {
            self.conns.push(Conn {
                stream,
                handler: (self.factory)(),
                input: Vec::new(),
                output: Vec::new(),
                out_cursor: 0,
                close_after_flush: false,
                idle_streak: 0,
            });
        }
        n
    }

    /// One non-blocking sweep over the parked connections: resume
    /// pending writes, then read and hand bytes to the handler. Returns
    /// `true` if any byte moved or any connection closed (callers use
    /// `false` to decide an idle sleep — *outside* this method, which
    /// must never block).
    ///
    /// On shards holding at least `poll_backoff_min_conns` connections,
    /// connections that moved nothing for k consecutive polls are only
    /// re-polled every `2^min(k, poll_backoff_cap)` sweeps (staggered
    /// by slot so cold cohorts spread across sweeps). A sweep costs one
    /// `read` syscall per polled connection, so without this a
    /// ten-thousand-connection shard of mostly-quiet telemetry agents
    /// spends its whole core discovering that nothing happened.
    pub fn poll_once(&mut self) -> bool {
        self.tick = self.tick.wrapping_add(1);
        let backoff_on =
            self.poll_backoff_cap > 0 && self.conns.len() >= self.poll_backoff_min_conns;
        let mut progress = false;
        let mut i = 0;
        while i < self.conns.len() {
            if backoff_on {
                let conn = &self.conns[i];
                let streak = conn.idle_streak.min(self.poll_backoff_cap);
                // Connections owing bytes (pending write / deferred
                // close) are always due: their progress depends on the
                // peer draining, not on new input arriving.
                let owes = conn.out_cursor < conn.output.len() || conn.close_after_flush;
                let due = streak == 0
                    || owes
                    || self.tick.wrapping_add(i as u64) & ((1u64 << streak) - 1) == 0;
                if !due {
                    i += 1;
                    continue;
                }
            }
            match self.sweep_conn(i) {
                SweepOutcome::Keep { moved } => {
                    let conn = &mut self.conns[i];
                    conn.idle_streak = if moved {
                        0
                    } else {
                        conn.idle_streak.saturating_add(1)
                    };
                    progress |= moved;
                    i += 1;
                }
                SweepOutcome::Drop => {
                    let mut conn = self.conns.swap_remove(i);
                    conn.handler.on_close();
                    self.hooks.on_conn_close();
                    self.conn_count.fetch_sub(1, Ordering::Relaxed);
                    progress = true;
                }
            }
        }
        progress
    }

    /// Services connection `i` for one sweep.
    fn sweep_conn(&mut self, i: usize) -> SweepOutcome {
        let mut moved = false;

        // Resume a pending write first: until the peer drains what we
        // already owe it, reading more requests would only grow the
        // debt.
        if self.conns[i].out_cursor < self.conns[i].output.len() {
            let conn = &mut self.conns[i];
            match conn.stream.write(&conn.output[conn.out_cursor..]) {
                Ok(0) => return SweepOutcome::Drop,
                Ok(n) => {
                    conn.out_cursor += n;
                    moved = true;
                    self.hooks.on_bytes_written(n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return SweepOutcome::Drop,
            }
            let conn = &mut self.conns[i];
            if conn.out_cursor >= conn.output.len() {
                conn.output.clear();
                conn.out_cursor = 0;
            } else {
                // Still back-pressured: don't read more work for a
                // connection that can't take answers, and close it if
                // the debt has grown past the cap.
                if conn.output.len() - conn.out_cursor > self.max_buffer_bytes {
                    return SweepOutcome::Drop;
                }
                return SweepOutcome::Keep { moved };
            }
        }
        if self.conns[i].close_after_flush {
            return SweepOutcome::Drop;
        }

        // Read whatever is ready, up to `reads_per_sweep` chunks.
        let mut got_bytes = false;
        for _ in 0..self.reads_per_sweep.max(1) {
            let conn = &mut self.conns[i];
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => return SweepOutcome::Drop,
                Ok(n) => {
                    conn.input.extend_from_slice(&self.scratch[..n]);
                    got_bytes = true;
                    moved = true;
                    self.hooks.on_bytes_read(n);
                    if n < self.scratch.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => break,
                Err(_) => return SweepOutcome::Drop,
            }
        }

        if got_bytes {
            let conn = &mut self.conns[i];
            let action = conn.handler.on_bytes(&mut conn.input, &mut conn.output);
            if conn.input.len() > self.max_buffer_bytes {
                // The handler left more than a full buffer unconsumed:
                // the stream can no longer be framed.
                return SweepOutcome::Drop;
            }
            match action {
                Action::Continue => {}
                Action::Close => {
                    if conn.out_cursor >= conn.output.len() {
                        return SweepOutcome::Drop;
                    }
                    conn.close_after_flush = true;
                }
            }
            // Push the fresh response bytes without waiting for the
            // next sweep; most responses fit the socket buffer whole.
            let conn = &mut self.conns[i];
            if conn.out_cursor < conn.output.len() {
                match conn.stream.write(&conn.output[conn.out_cursor..]) {
                    Ok(0) => return SweepOutcome::Drop,
                    Ok(n) => {
                        conn.out_cursor += n;
                        self.hooks.on_bytes_written(n);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => return SweepOutcome::Drop,
                }
                let conn = &mut self.conns[i];
                if conn.out_cursor >= conn.output.len() {
                    conn.output.clear();
                    conn.out_cursor = 0;
                    if conn.close_after_flush {
                        return SweepOutcome::Drop;
                    }
                }
            }
        }
        SweepOutcome::Keep { moved }
    }

    /// Number of connections currently parked on this shard.
    pub fn len(&self) -> usize {
        self.conns.len()
    }

    /// Whether the shard has no connections.
    pub fn is_empty(&self) -> bool {
        self.conns.is_empty()
    }

    /// The shard's event loop: drain the inbox, sweep, sleep when idle.
    ///
    /// Named `event_loop` rather than `run` so the name-based call graph
    /// in tesla-analysis does not alias it with `BackoffPolicy::run`.
    fn event_loop(&mut self, stop: &AtomicBool, idle_sleep: Duration) {
        while !stop.load(Ordering::Acquire) {
            let fresh = self.drain_inbox();
            let progress = self.poll_once();
            if fresh == 0 && !progress {
                // The idle sleep only runs when every connection on this
                // `reactor-shard-*` thread is quiet; it is the shard's pacing.
                // lint:allow(no-blocking-io-in-reactor): idle shard pacing
                thread::sleep(idle_sleep);
            }
        }
        // Drop remaining connections cleanly so close hooks fire.
        for mut conn in self.conns.drain(..) {
            conn.handler.on_close();
            self.hooks.on_conn_close();
            self.conn_count.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// Outcome of sweeping a single connection.
enum SweepOutcome {
    /// Keep the connection; `moved` reports whether bytes flowed.
    Keep {
        /// Whether this sweep moved any bytes for the connection.
        moved: bool,
    },
    /// Close and forget the connection.
    Drop,
}

/// A running reactor: one accept thread plus `shards` event-loop
/// threads. Dropping without [`Reactor::stop`] also shuts it down.
#[derive(Debug)]
pub struct Reactor {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<thread::JoinHandle<()>>,
    conn_count: Arc<AtomicUsize>,
}

impl Reactor {
    /// Binds `addr`, spawns the accept loop and shard event loops, and
    /// serves each connection with a fresh handler from `factory`.
    pub fn bind(
        addr: &str,
        cfg: ReactorConfig,
        factory: Arc<dyn Fn() -> Box<dyn Handler> + Send + Sync>,
        hooks: Arc<dyn Hooks>,
    ) -> std::io::Result<Reactor> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conn_count = Arc::new(AtomicUsize::new(0));
        let shards = cfg.shards.max(1);

        let mut inboxes = Vec::with_capacity(shards);
        let mut threads = Vec::with_capacity(shards + 1);
        for s in 0..shards {
            let inbox: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
            inboxes.push(Arc::clone(&inbox));
            let mut shard = ReactorShard {
                conns: Vec::new(),
                inbox,
                factory: Arc::clone(&factory),
                hooks: Arc::clone(&hooks),
                conn_count: Arc::clone(&conn_count),
                scratch: vec![0u8; cfg.read_chunk_bytes.max(1)],
                max_buffer_bytes: cfg.max_buffer_bytes.max(1),
                reads_per_sweep: cfg.reads_per_sweep,
                poll_backoff_cap: cfg.poll_backoff_cap,
                poll_backoff_min_conns: cfg.poll_backoff_min_conns,
                tick: 0,
            };
            let stop_flag = Arc::clone(&stop);
            let idle = cfg.idle_sleep;
            threads.push(
                thread::Builder::new()
                    .name(format!("reactor-shard-{s}"))
                    .spawn(move || shard.event_loop(&stop_flag, idle))
                    .expect("spawn reactor shard"),
            );
        }

        let stop_flag = Arc::clone(&stop);
        let count = Arc::clone(&conn_count);
        let accept_hooks = Arc::clone(&hooks);
        threads.push(
            thread::Builder::new()
                .name("reactor-accept".into())
                .spawn(move || accept_loop(listener, cfg, inboxes, count, accept_hooks, stop_flag))
                .expect("spawn reactor accept loop"),
        );

        Ok(Reactor {
            local_addr,
            stop,
            threads,
            conn_count,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections currently open across all shards.
    pub fn connections(&self) -> usize {
        self.conn_count.load(Ordering::Relaxed)
    }

    /// Stops the accept loop and shard threads and joins them.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            // Shutdown runs on the caller's thread and joins the
            // `reactor-accept` and `reactor-shard-*` threads.
            // lint:allow(no-blocking-io-in-reactor): caller-thread shutdown join
            let _ = t.join();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Accepts connections, sets them non-blocking, and round-robins them
/// across shard inboxes; transient accept errors retry on `backoff`.
fn accept_loop(
    listener: TcpListener,
    cfg: ReactorConfig,
    inboxes: Vec<Arc<Mutex<Vec<TcpStream>>>>,
    conn_count: Arc<AtomicUsize>,
    hooks: Arc<dyn Hooks>,
    stop: Arc<AtomicBool>,
) {
    let mut next_shard = 0usize;
    let mut attempt: u32 = 0;
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                attempt = 0;
                if conn_count.load(Ordering::Relaxed) >= cfg.max_connections {
                    hooks.on_rejected();
                    drop(stream);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                conn_count.fetch_add(1, Ordering::Relaxed);
                {
                    let mut inbox = match inboxes[next_shard].lock() {
                        Ok(g) => g,
                        Err(p) => p.into_inner(),
                    };
                    inbox.push(stream);
                }
                hooks.on_accept();
                next_shard = (next_shard + 1) % inboxes.len();
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                // The dedicated `reactor-accept` thread owns no connections;
                // sleeping here paces accept polling without stalling a shard.
                // lint:allow(no-blocking-io-in-reactor): accept-thread pacing
                thread::sleep(cfg.idle_sleep.max(Duration::from_micros(200)));
            }
            Err(_) => {
                // Transient accept failure (e.g. EMFILE): back off on
                // the shared schedule rather than spinning.
                attempt = (attempt + 1).min(cfg.accept_backoff.max_attempts.max(1));
                hooks.on_accept_retry();
                // lint:allow(no-blocking-io-in-reactor): backoff on the dedicated `reactor-accept` thread
                thread::sleep(Duration::from_millis(
                    cfg.accept_backoff.delay_ms(attempt).max(1),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::net::TcpStream;
    use std::sync::atomic::AtomicU64;

    /// Echoes complete lines back, uppercased.
    struct UpperEcho;

    impl Handler for UpperEcho {
        fn on_bytes(&mut self, input: &mut Vec<u8>, output: &mut Vec<u8>) -> Action {
            while let Some(pos) = input.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = input.drain(..=pos).collect();
                output.extend(line.iter().map(|b| b.to_ascii_uppercase()));
            }
            Action::Continue
        }
    }

    fn bind_echo(cfg: ReactorConfig) -> Reactor {
        Reactor::bind(
            "127.0.0.1:0",
            cfg,
            Arc::new(|| Box::new(UpperEcho) as Box<dyn Handler>),
            Arc::new(NoHooks),
        )
        .expect("bind reactor")
    }

    #[test]
    fn echoes_lines() {
        let r = bind_echo(ReactorConfig::default());
        let mut c = TcpStream::connect(r.local_addr()).unwrap();
        c.write_all(b"hello\n").unwrap();
        let mut reader = BufReader::new(c.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "HELLO\n");
        r.stop();
    }

    #[test]
    fn interleaves_many_clients_without_head_of_line_blocking() {
        let r = bind_echo(ReactorConfig {
            shards: 2,
            ..ReactorConfig::default()
        });
        // Open a batch of clients; the *first* one never sends anything
        // (a stalled client must not stall the rest).
        let stalled = TcpStream::connect(r.local_addr()).unwrap();
        let mut clients: Vec<TcpStream> = (0..32)
            .map(|_| TcpStream::connect(r.local_addr()).unwrap())
            .collect();
        for (i, c) in clients.iter_mut().enumerate() {
            c.write_all(format!("msg-{i}\n").as_bytes()).unwrap();
        }
        for (i, c) in clients.iter_mut().enumerate() {
            let mut reader = BufReader::new(c.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line, format!("MSG-{i}\n"));
        }
        drop(stalled);
        r.stop();
    }

    #[test]
    fn cold_connections_still_serviced_under_poll_backoff() {
        // Force the idle-poll backoff on even at this tiny scale, with
        // the deepest allowed cold interval.
        let r = bind_echo(ReactorConfig {
            poll_backoff_min_conns: 1,
            poll_backoff_cap: 6,
            ..ReactorConfig::default()
        });
        let mut clients: Vec<TcpStream> = (0..16)
            .map(|_| TcpStream::connect(r.local_addr()).unwrap())
            .collect();
        for round in 0..3 {
            // Let every connection go cold (idle streaks build up far
            // past the cap), then demand service from all of them.
            std::thread::sleep(Duration::from_millis(60));
            for (i, c) in clients.iter_mut().enumerate() {
                c.write_all(format!("cold-{round}-{i}\n").as_bytes())
                    .unwrap();
            }
            for (i, c) in clients.iter_mut().enumerate() {
                c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                let mut reader = BufReader::new(c.try_clone().unwrap());
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                assert_eq!(line, format!("COLD-{round}-{i}\n"));
            }
        }
        r.stop();
    }

    #[test]
    fn torn_frames_reassemble_across_sweeps() {
        let r = bind_echo(ReactorConfig::default());
        let mut c = TcpStream::connect(r.local_addr()).unwrap();
        c.write_all(b"par").unwrap();
        std::thread::sleep(Duration::from_millis(20));
        c.write_all(b"tial\n").unwrap();
        let mut reader = BufReader::new(c.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "PARTIAL\n");
        r.stop();
    }

    #[test]
    fn connection_cap_rejects_excess_clients() {
        struct CountingHooks {
            rejected: AtomicU64,
        }
        impl Hooks for CountingHooks {
            fn on_rejected(&self) {
                self.rejected.fetch_add(1, Ordering::Relaxed);
            }
        }
        let hooks = Arc::new(CountingHooks {
            rejected: AtomicU64::new(0),
        });
        let r = Reactor::bind(
            "127.0.0.1:0",
            ReactorConfig {
                max_connections: 2,
                ..ReactorConfig::default()
            },
            Arc::new(|| Box::new(UpperEcho) as Box<dyn Handler>),
            Arc::clone(&hooks) as Arc<dyn Hooks>,
        )
        .unwrap();
        let keep: Vec<TcpStream> = (0..2)
            .map(|_| {
                let mut c = TcpStream::connect(r.local_addr()).unwrap();
                // Prove each is parked before opening the next.
                c.write_all(b"x\n").unwrap();
                let mut reader = BufReader::new(c.try_clone().unwrap());
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                c
            })
            .collect();
        // The third connection must be dropped by the server: either the
        // connect fails outright or the socket reads EOF immediately.
        let mut extra = TcpStream::connect(r.local_addr()).unwrap();
        extra
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut buf = [0u8; 1];
        let eof = matches!(extra.read(&mut buf), Ok(0));
        assert!(eof, "connection over the cap should be closed");
        assert!(hooks.rejected.load(Ordering::Relaxed) >= 1);
        drop(keep);
        r.stop();
    }

    #[test]
    fn close_action_flushes_then_closes() {
        struct OneShot;
        impl Handler for OneShot {
            fn on_bytes(&mut self, input: &mut Vec<u8>, output: &mut Vec<u8>) -> Action {
                input.clear();
                output.extend_from_slice(b"BYE\n");
                Action::Close
            }
        }
        let r = Reactor::bind(
            "127.0.0.1:0",
            ReactorConfig::default(),
            Arc::new(|| Box::new(OneShot) as Box<dyn Handler>),
            Arc::new(NoHooks),
        )
        .unwrap();
        let mut c = TcpStream::connect(r.local_addr()).unwrap();
        c.write_all(b"anything\n").unwrap();
        let mut reader = BufReader::new(c.try_clone().unwrap());
        let mut all = String::new();
        reader.read_to_string(&mut all).unwrap(); // EOF == closed
        assert_eq!(all, "BYE\n");
        r.stop();
    }
}
