//! Gaetano-style per-server CPU load controller.
//!
//! The original tool (github.com/GaetanoCarlucci/CPULoadGenerator) takes
//! a set of target cores, a desired load level, and a duration, and keeps
//! each core busy with an actuator that duty-cycles a spin loop around
//! the target. Observed utilization therefore dithers around the level
//! instead of sitting exactly on it; we model that dither as a bounded
//! AR(1) perturbation.

use rand::Rng;
use rand_distr::{Distribution, Normal};

/// A load command on one server: keep `cores_fraction` of the machine at
/// `level` utilization for `duration_s` seconds.
#[derive(Debug, Clone)]
pub struct LoadController {
    /// Fraction of the machine's cores targeted (0, 1].
    cores_fraction: f64,
    /// Desired per-core load level in [0, 1].
    level: f64,
    /// Remaining run time, seconds.
    remaining_s: f64,
    /// AR(1) dither state.
    dither: f64,
    dither_noise: Normal<f64>,
}

impl LoadController {
    /// Creates a controller. Inputs are clamped to their valid ranges.
    pub fn new(cores_fraction: f64, level: f64, duration_s: f64) -> Self {
        LoadController {
            cores_fraction: cores_fraction.clamp(0.0, 1.0),
            level: level.clamp(0.0, 1.0),
            remaining_s: duration_s.max(0.0),
            dither: 0.0,
            dither_noise: Normal::new(0.0, 0.01).expect("finite std"),
        }
    }

    /// Machine-level utilization this controller contributes right now.
    pub fn utilization(&self) -> f64 {
        if self.remaining_s <= 0.0 {
            return 0.0;
        }
        (self.cores_fraction * (self.level + self.dither)).clamp(0.0, 1.0)
    }

    /// Remaining run time in seconds.
    pub fn remaining_s(&self) -> f64 {
        self.remaining_s
    }

    /// True once the commanded duration has elapsed.
    pub fn finished(&self) -> bool {
        self.remaining_s <= 0.0
    }

    /// Advances the controller by `dt` seconds.
    pub fn tick<R: Rng>(&mut self, dt: f64, rng: &mut R) {
        if self.finished() {
            return;
        }
        self.remaining_s -= dt;
        // AR(1) dither: rho = 0.9 per tick, small innovations, hard-bounded.
        self.dither = (0.9 * self.dither + self.dither_noise.sample(rng)).clamp(-0.05, 0.05);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn utilization_tracks_level_times_cores() {
        let c = LoadController::new(0.5, 0.8, 60.0);
        assert!((c.utilization() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn finishes_after_duration() {
        let mut c = LoadController::new(1.0, 0.5, 10.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert!(!c.finished());
            c.tick(1.0, &mut rng);
        }
        assert!(c.finished());
        assert_eq!(c.utilization(), 0.0);
    }

    #[test]
    fn inputs_are_clamped() {
        let c = LoadController::new(2.0, -0.5, -3.0);
        assert_eq!(c.utilization(), 0.0);
        assert!(c.finished());
        let c = LoadController::new(2.0, 2.0, 5.0);
        assert_eq!(c.utilization(), 1.0);
    }

    #[test]
    fn dither_stays_near_the_level() {
        let mut c = LoadController::new(1.0, 0.5, 10_000.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let n = 5_000;
        for _ in 0..n {
            c.tick(1.0, &mut rng);
            let u = c.utilization();
            min = min.min(u);
            max = max.max(u);
            sum += u;
        }
        assert!(min >= 0.45 - 1e-9, "min {min}");
        assert!(max <= 0.55 + 1e-9, "max {max}");
        assert!(
            (sum / n as f64 - 0.5).abs() < 0.02,
            "mean {}",
            sum / n as f64
        );
        assert!(max > min, "dither must actually move");
    }
}
