//! Cluster-level diurnal load profiles (§5.1).
//!
//! The paper adjusts the load generator at 1-minute granularity "to
//! emulate a typical diurnal pattern seen in DCs", compressed so the load
//! rises and falls over a 12-hour testing period, with three settings
//! whose period-average CPU utilization is 0 % (idle), 20 % (medium) and
//! 40 % (high), chosen after Alibaba production cluster traces.
//!
//! The profile here is a raised half-sine (zero at the period edges,
//! peaking mid-period, averaging exactly twice...half its peak — i.e.
//! `mean = peak/2`), overlaid with an AR(1) fluctuation and occasional
//! short bursts, all clipped to `[0, 1]`.

use rand::Rng;
use rand_distr::{Distribution, Normal};

/// The three server-load settings of §5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadSetting {
    /// Load generator off: 0 % average utilization.
    Idle,
    /// 20 % average CPU utilization over the period.
    Medium,
    /// 40 % average CPU utilization over the period.
    High,
}

impl LoadSetting {
    /// Period-average cluster CPU utilization for this setting.
    pub fn mean_utilization(self) -> f64 {
        match self {
            LoadSetting::Idle => 0.0,
            LoadSetting::Medium => 0.20,
            LoadSetting::High => 0.40,
        }
    }

    /// All three settings, in the order the paper tabulates them.
    pub fn all() -> [LoadSetting; 3] {
        [LoadSetting::Idle, LoadSetting::Medium, LoadSetting::High]
    }

    /// Human-readable name matching Table 5.
    pub fn name(self) -> &'static str {
        match self {
            LoadSetting::Idle => "idle",
            LoadSetting::Medium => "medium",
            LoadSetting::High => "high",
        }
    }
}

/// Stateful diurnal profile generator.
#[derive(Debug, Clone)]
pub struct DiurnalProfile {
    setting: LoadSetting,
    period_s: f64,
    /// AR(1) fluctuation state.
    ar: f64,
    ar_noise: Normal<f64>,
    /// Remaining burst time, seconds, and burst magnitude.
    burst_left_s: f64,
    burst_mag: f64,
}

impl DiurnalProfile {
    /// Default testing period: 12 hours (§5.1).
    pub const DEFAULT_PERIOD_S: f64 = 12.0 * 3600.0;

    /// Creates a profile for the given setting and period.
    pub fn new(setting: LoadSetting, period_s: f64) -> Self {
        DiurnalProfile {
            setting,
            period_s: period_s.max(60.0),
            ar: 0.0,
            ar_noise: Normal::new(0.0, 0.022).expect("finite std"),
            burst_left_s: 0.0,
            burst_mag: 0.0,
        }
    }

    /// The load setting this profile emulates.
    pub fn setting(&self) -> LoadSetting {
        self.setting
    }

    /// Deterministic component of the target at time `t` (no noise).
    pub fn base(&self, t_s: f64) -> f64 {
        let mean = self.setting.mean_utilization();
        if mean == 0.0 {
            return 0.0;
        }
        // Raised half-sine over the period: sin²(π t / T) has mean 1/2, so
        // 2·mean·sin² averages to `mean` and peaks at 2·mean.
        let phase = (t_s / self.period_s) * std::f64::consts::PI;
        (2.0 * mean * phase.sin().powi(2)).clamp(0.0, 1.0)
    }

    /// Samples the cluster-level target utilization at time `t`.
    ///
    /// Stateful: call with monotonically increasing `t` at ~1-minute
    /// intervals for the intended fluctuation spectrum.
    pub fn sample<R: Rng>(&mut self, t_s: f64, rng: &mut R) -> f64 {
        let base = self.base(t_s);
        if self.setting == LoadSetting::Idle {
            // "Idle" clusters still run housekeeping daemons: a small
            // fluctuating background (~2-3% CPU) rather than a flat zero.
            self.ar = (0.92 * self.ar + self.ar_noise.sample(rng)).clamp(-0.02, 0.05);
            return (0.025 + self.ar).clamp(0.0, 0.08);
        }
        // Short-term AR(1) fluctuation (per-minute scale).
        self.ar = (0.92 * self.ar + self.ar_noise.sample(rng)).clamp(-0.13, 0.13);

        // Occasional bursts and cliffs (job arrivals / completions):
        // ~1 expected per 1.5 hours, either sign. The sudden *drops* are
        // what trip boundary-riding controllers into cooling interruption
        // (§6.3).
        if self.burst_left_s <= 0.0 && rng.random::<f64>() < 1.0 / 90.0 {
            self.burst_left_s = rng.random_range(180.0..900.0);
            let mag = rng.random_range(0.08..0.22);
            self.burst_mag = if rng.random::<f64>() < 0.5 { mag } else { -mag };
        }
        let burst = if self.burst_left_s > 0.0 {
            self.burst_left_s -= 60.0;
            self.burst_mag
        } else {
            0.0
        };

        (base + self.ar + burst).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn idle_profile_is_small_background_noise() {
        // "Idle" means the load generator is off; the cluster still runs
        // housekeeping daemons at a few percent CPU.
        let mut p = DiurnalProfile::new(LoadSetting::Idle, DiurnalProfile::DEFAULT_PERIOD_S);
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for m in 0..720 {
            let u = p.sample(m as f64 * 60.0, &mut rng);
            assert!((0.0..=0.08).contains(&u), "idle sample {u}");
            sum += u;
        }
        let avg = sum / 720.0;
        assert!(avg > 0.005 && avg < 0.06, "idle average {avg}");
    }

    #[test]
    fn period_average_matches_setting() {
        for setting in [LoadSetting::Medium, LoadSetting::High] {
            let mut p = DiurnalProfile::new(setting, DiurnalProfile::DEFAULT_PERIOD_S);
            let mut rng = StdRng::seed_from_u64(5);
            let n = 720; // one 12-hour period at 1-minute steps
            let mut sum = 0.0;
            for m in 0..n {
                sum += p.sample(m as f64 * 60.0, &mut rng);
            }
            let avg = sum / n as f64;
            let want = setting.mean_utilization();
            assert!(
                (avg - want).abs() < 0.05,
                "{}: average {avg:.3} vs target {want}",
                setting.name()
            );
        }
    }

    #[test]
    fn profile_rises_then_falls() {
        let p = DiurnalProfile::new(LoadSetting::High, DiurnalProfile::DEFAULT_PERIOD_S);
        let quarter = DiurnalProfile::DEFAULT_PERIOD_S / 4.0;
        let start = p.base(0.0);
        let mid = p.base(2.0 * quarter);
        let end = p.base(4.0 * quarter);
        assert!(start < 0.01);
        assert!((mid - 0.8).abs() < 1e-9, "peak is 2x the mean");
        assert!(end < 0.01);
        assert!(p.base(quarter) > start && p.base(quarter) < mid);
    }

    #[test]
    fn samples_stay_in_unit_interval() {
        let mut p = DiurnalProfile::new(LoadSetting::High, DiurnalProfile::DEFAULT_PERIOD_S);
        let mut rng = StdRng::seed_from_u64(9);
        for m in 0..2000 {
            let u = p.sample(m as f64 * 60.0, &mut rng);
            assert!((0.0..=1.0).contains(&u), "sample {u}");
        }
    }

    #[test]
    fn samples_fluctuate_around_base() {
        let mut p = DiurnalProfile::new(LoadSetting::Medium, DiurnalProfile::DEFAULT_PERIOD_S);
        let mut rng = StdRng::seed_from_u64(11);
        let t = DiurnalProfile::DEFAULT_PERIOD_S / 2.0;
        let base = p.base(t);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..50 {
            let u = p.sample(t, &mut rng);
            assert!((u - base).abs() < 0.25);
            distinct.insert((u * 1e6) as i64);
        }
        assert!(distinct.len() > 10, "fluctuation must vary");
    }

    #[test]
    fn setting_metadata() {
        assert_eq!(LoadSetting::all().len(), 3);
        assert_eq!(LoadSetting::Medium.name(), "medium");
        assert_eq!(LoadSetting::High.mean_utilization(), 0.40);
    }
}
