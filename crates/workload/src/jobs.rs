//! Kubernetes-`Job`-like orchestration (§4: the load controller is
//! deployed "using the Job resource of Kubernetes").
//!
//! The [`Orchestrator`] turns a cluster-level utilization target into
//! per-server utilizations by submitting [`Job`]s (each wrapping a
//! [`LoadController`]) to the least-loaded server, and letting them run
//! out. Per-server load is therefore heterogeneous and bursty even when
//! the cluster aggregate tracks the smooth diurnal target — matching the
//! paper's observation that aggregate power is predictable while a single
//! server's is not (§3.2, "Average server power sub-module").

use crate::loadgen::LoadController;
use rand::Rng;

/// One scheduled unit of load on one server.
#[derive(Debug, Clone)]
pub struct Job {
    /// Monotonic job identifier.
    pub id: u64,
    /// Index of the server the job was scheduled on.
    pub server: usize,
    /// The load controller executing the job.
    pub controller: LoadController,
}

/// Job-placement policy.
///
/// The paper's testbed spreads load (Kubernetes default scheduling); its
/// future-work section (§8) proposes integrating TESLA with "server-side
/// optimizations such as energy-aware workload scheduling" —
/// [`Placement::Consolidate`] implements the classic version: pack jobs
/// onto as few machines as possible so the rest can idle near zero,
/// reducing the heat TESLA must remove.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// Least-loaded first (spreads load; the default).
    #[default]
    Spread,
    /// Most-loaded-with-headroom first (energy-aware consolidation).
    Consolidate,
}

/// Schedules jobs so the cluster-average utilization tracks a target.
#[derive(Debug)]
pub struct Orchestrator {
    n_servers: usize,
    jobs: Vec<Job>,
    next_id: u64,
    placement: Placement,
    /// Cached per-server utilization from the last `tick`.
    last_utils: Vec<f64>,
}

impl Orchestrator {
    /// Creates an orchestrator for `n_servers` machines with spread
    /// placement.
    pub fn new(n_servers: usize) -> Self {
        Self::with_placement(n_servers, Placement::Spread)
    }

    /// Creates an orchestrator with an explicit placement policy.
    pub fn with_placement(n_servers: usize, placement: Placement) -> Self {
        Orchestrator {
            n_servers,
            jobs: Vec::new(),
            next_id: 0,
            placement,
            last_utils: vec![0.0; n_servers],
        }
    }

    /// The active placement policy.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// Number of servers managed.
    pub fn n_servers(&self) -> usize {
        self.n_servers
    }

    /// Jobs currently running.
    pub fn running_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Current per-server utilization (sum of resident jobs, clamped).
    pub fn server_utils(&self) -> Vec<f64> {
        let mut utils = vec![0.0; self.n_servers];
        for j in &self.jobs {
            utils[j.server] += j.controller.utilization();
        }
        for u in &mut utils {
            *u = u.clamp(0.0, 1.0);
        }
        utils
    }

    /// Cluster-average utilization.
    pub fn cluster_util(&self) -> f64 {
        if self.n_servers == 0 {
            return 0.0;
        }
        self.server_utils().iter().sum::<f64>() / self.n_servers as f64
    }

    /// Advances all jobs by `dt` seconds, reaps the finished ones, then
    /// submits new jobs as needed so the cluster average approaches
    /// `target_util`. Returns per-server utilizations.
    pub fn tick<R: Rng>(&mut self, dt: f64, target_util: f64, rng: &mut R) -> Vec<f64> {
        for j in &mut self.jobs {
            j.controller.tick(dt, rng);
        }
        self.jobs.retain(|j| !j.controller.finished());

        let target = target_util.clamp(0.0, 1.0);
        // Submit jobs until the committed load covers the target; each job
        // commits a modest slice on the least-loaded server.
        let mut utils = self.server_utils();
        let mut guard = 0;
        while self.cluster_util_of(&utils) + 1e-9 < target && guard < 4 * self.n_servers {
            guard += 1;
            let deficit = (target - self.cluster_util_of(&utils)) * self.n_servers as f64;
            let slice = deficit.min(rng.random_range(0.15..0.45));
            let server = match self.placement {
                // Least-loaded server gets the job (spread).
                Placement::Spread => {
                    utils
                        .iter()
                        .enumerate()
                        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                        .expect("n_servers > 0")
                        .0
                }
                // Most-loaded server that still has headroom for the
                // whole slice (first-fit-decreasing consolidation); if no
                // machine fits, fall back to the least-loaded one.
                Placement::Consolidate => utils
                    .iter()
                    .enumerate()
                    .filter(|(_, &u)| u + slice <= 0.95)
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or_else(|| {
                        utils
                            .iter()
                            .enumerate()
                            .min_by(|a, b| {
                                a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal)
                            })
                            .expect("n_servers > 0")
                            .0
                    }),
            };
            let duration = rng.random_range(240.0..1500.0);
            let job = Job {
                id: self.next_id,
                server,
                controller: LoadController::new(slice.min(1.0), 1.0, duration),
            };
            self.next_id += 1;
            utils[server] = (utils[server] + job.controller.utilization()).clamp(0.0, 1.0);
            self.jobs.push(job);
        }
        // If above target, nothing to do: jobs simply expire (Kubernetes
        // Jobs are not preempted either).
        let final_utils = self.server_utils();
        self.last_utils.copy_from_slice(&final_utils);
        final_utils
    }

    fn cluster_util_of(&self, utils: &[f64]) -> f64 {
        if self.n_servers == 0 {
            return 0.0;
        }
        utils.iter().sum::<f64>() / self.n_servers as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tracks_constant_target() {
        let mut orch = Orchestrator::new(21);
        let mut rng = StdRng::seed_from_u64(3);
        let mut last = 0.0;
        for _ in 0..60 {
            orch.tick(60.0, 0.3, &mut rng);
            last = orch.cluster_util();
        }
        assert!((last - 0.3).abs() < 0.08, "cluster util {last}");
    }

    #[test]
    fn idle_target_runs_no_jobs() {
        let mut orch = Orchestrator::new(10);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..30 {
            let utils = orch.tick(60.0, 0.0, &mut rng);
            assert!(utils.iter().all(|&u| u == 0.0));
        }
        assert_eq!(orch.running_jobs(), 0);
    }

    #[test]
    fn per_server_loads_are_heterogeneous() {
        let mut orch = Orchestrator::new(21);
        let mut rng = StdRng::seed_from_u64(5);
        let mut utils = Vec::new();
        for _ in 0..120 {
            utils = orch.tick(60.0, 0.35, &mut rng);
        }
        let min = utils.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = utils.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max - min > 0.01,
            "servers should differ: min {min}, max {max}"
        );
    }

    #[test]
    fn utils_always_valid() {
        let mut orch = Orchestrator::new(5);
        let mut rng = StdRng::seed_from_u64(6);
        for step in 0..300 {
            let target = 0.5 + 0.5 * ((step as f64) / 20.0).sin();
            let utils = orch.tick(60.0, target, &mut rng);
            assert_eq!(utils.len(), 5);
            for u in utils {
                assert!((0.0..=1.0).contains(&u));
            }
        }
    }

    #[test]
    fn load_decays_when_target_drops() {
        let mut orch = Orchestrator::new(21);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..60 {
            orch.tick(60.0, 0.6, &mut rng);
        }
        let high = orch.cluster_util();
        for _ in 0..60 {
            orch.tick(60.0, 0.05, &mut rng);
        }
        let low = orch.cluster_util();
        assert!(high > 0.4);
        assert!(low < high - 0.2, "load must decay: high {high}, low {low}");
    }

    #[test]
    fn consolidation_packs_fewer_servers() {
        let mut spread = Orchestrator::new(21);
        let mut packed = Orchestrator::with_placement(21, Placement::Consolidate);
        assert_eq!(packed.placement(), Placement::Consolidate);
        let mut r1 = StdRng::seed_from_u64(12);
        let mut r2 = StdRng::seed_from_u64(12);
        for _ in 0..90 {
            spread.tick(60.0, 0.25, &mut r1);
            packed.tick(60.0, 0.25, &mut r2);
        }
        let busy = |o: &Orchestrator| o.server_utils().iter().filter(|&&u| u > 0.02).count();
        let b_spread = busy(&spread);
        let b_packed = busy(&packed);
        assert!(
            b_packed < b_spread,
            "consolidation must use fewer machines: packed {b_packed} vs spread {b_spread}"
        );
        // Both still track the cluster target.
        assert!((spread.cluster_util() - 0.25).abs() < 0.1);
        assert!((packed.cluster_util() - 0.25).abs() < 0.1);
    }

    #[test]
    fn consolidation_respects_per_server_cap() {
        let mut packed = Orchestrator::with_placement(4, Placement::Consolidate);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..120 {
            let utils = packed.tick(60.0, 0.6, &mut rng);
            for u in utils {
                assert!(u <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn job_ids_are_unique_and_monotonic() {
        let mut orch = Orchestrator::new(4);
        let mut rng = StdRng::seed_from_u64(8);
        orch.tick(60.0, 0.8, &mut rng);
        let mut ids: Vec<u64> = orch.jobs.iter().map(|j| j.id).collect();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n);
        assert!(n >= 2);
    }
}
