#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Workload generation for the simulated testbed.
//!
//! The paper (§4–5.1) drives its servers with Gaetano's CPU load
//! generator, deployed through Kubernetes `Job` resources, and modulates
//! the cluster-wide target at 1-minute granularity to emulate the diurnal
//! patterns observed in Alibaba production clusters: 12-hour rise-and-fall
//! cycles averaging 0 % (idle), 20 % (medium) or 40 % (high) CPU
//! utilization.
//!
//! This crate reproduces that stack:
//!
//! * [`loadgen`] — the per-server load controller (target cores, desired
//!   level, duration), including the duty-cycle dither a spin-loop load
//!   generator exhibits.
//! * [`diurnal`] — the cluster-level diurnal target profile with AR(1)
//!   short-term fluctuation and occasional bursts.
//! * [`jobs`] — a Kubernetes-like `Job` abstraction plus a least-loaded
//!   scheduler that converts the cluster target into per-server
//!   utilizations.
//!
//! # Example: sampling a diurnal cluster target
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use tesla_workload::{DiurnalProfile, LoadSetting};
//!
//! let mut profile = DiurnalProfile::new(LoadSetting::Medium, 12.0 * 3600.0);
//! let mut rng = StdRng::seed_from_u64(7);
//! let u = profile.sample(6.0 * 3600.0, &mut rng); // mid-cycle target
//! assert!((0.0..=1.0).contains(&u));
//! ```

pub mod diurnal;
pub mod jobs;
pub mod loadgen;

pub use diurnal::{DiurnalProfile, LoadSetting};
pub use jobs::{Job, Orchestrator, Placement};
pub use loadgen::LoadController;
