#![forbid(unsafe_code)]
//! Workload generation for the simulated testbed.
//!
//! The paper (§4–5.1) drives its servers with Gaetano's CPU load
//! generator, deployed through Kubernetes `Job` resources, and modulates
//! the cluster-wide target at 1-minute granularity to emulate the diurnal
//! patterns observed in Alibaba production clusters: 12-hour rise-and-fall
//! cycles averaging 0 % (idle), 20 % (medium) or 40 % (high) CPU
//! utilization.
//!
//! This crate reproduces that stack:
//!
//! * [`loadgen`] — the per-server load controller (target cores, desired
//!   level, duration), including the duty-cycle dither a spin-loop load
//!   generator exhibits.
//! * [`diurnal`] — the cluster-level diurnal target profile with AR(1)
//!   short-term fluctuation and occasional bursts.
//! * [`jobs`] — a Kubernetes-like `Job` abstraction plus a least-loaded
//!   scheduler that converts the cluster target into per-server
//!   utilizations.

pub mod diurnal;
pub mod jobs;
pub mod loadgen;

pub use diurnal::{DiurnalProfile, LoadSetting};
pub use jobs::{Job, Orchestrator, Placement};
pub use loadgen::LoadController;
