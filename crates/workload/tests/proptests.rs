//! Property-based tests for workload generation.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tesla_workload::{DiurnalProfile, LoadController, LoadSetting, Orchestrator, Placement};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Per-server utilizations stay in [0, 1] and the cluster average
    /// approaches any reachable target, for both placement policies.
    #[test]
    fn orchestrator_tracks_targets(
        target in 0.05f64..0.8,
        n_servers in 2usize..30,
        consolidate in proptest::bool::ANY,
        seed in 0u64..500,
    ) {
        let placement = if consolidate { Placement::Consolidate } else { Placement::Spread };
        let mut orch = Orchestrator::with_placement(n_servers, placement);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..80 {
            let utils = orch.tick(60.0, target, &mut rng);
            prop_assert_eq!(utils.len(), n_servers);
            for u in &utils {
                prop_assert!((0.0..=1.0).contains(u));
            }
        }
        let avg = orch.cluster_util();
        prop_assert!(
            (avg - target).abs() < 0.2,
            "avg {avg} should approach target {target}"
        );
    }

    /// Diurnal samples stay in [0, 1] for any period and setting.
    #[test]
    fn diurnal_samples_bounded(
        period_h in 0.5f64..48.0,
        which in 0usize..3,
        seed in 0u64..500,
    ) {
        let setting = LoadSetting::all()[which];
        let mut p = DiurnalProfile::new(setting, period_h * 3600.0);
        let mut rng = StdRng::seed_from_u64(seed);
        for m in 0..200 {
            let u = p.sample(m as f64 * 60.0, &mut rng);
            prop_assert!((0.0..=1.0).contains(&u));
        }
    }

    /// The base diurnal shape integrates to the setting's mean.
    #[test]
    fn diurnal_base_average_is_the_mean(which in 1usize..3, period_h in 2.0f64..24.0) {
        let setting = LoadSetting::all()[which];
        let p = DiurnalProfile::new(setting, period_h * 3600.0);
        let n = 2000;
        let avg: f64 = (0..n)
            .map(|i| p.base(i as f64 / n as f64 * period_h * 3600.0))
            .sum::<f64>()
            / n as f64;
        prop_assert!((avg - setting.mean_utilization()).abs() < 0.01);
    }

    /// Load controllers always finish on schedule and never report
    /// utilization outside [0, cores_fraction].
    #[test]
    fn load_controller_contract(
        cores in 0.05f64..1.0,
        level in 0.0f64..1.0,
        duration in 1.0f64..600.0,
        seed in 0u64..100,
    ) {
        let mut c = LoadController::new(cores, level, duration);
        let mut rng = StdRng::seed_from_u64(seed);
        let steps = duration.ceil() as usize + 2;
        for _ in 0..steps {
            let u = c.utilization();
            // The duty-cycle dither may overshoot the level by up to 5%.
            prop_assert!(u >= 0.0 && u <= cores * 1.05 + 1e-9, "util {u} cores {cores}");
            c.tick(1.0, &mut rng);
        }
        prop_assert!(c.finished());
        prop_assert_eq!(c.utilization(), 0.0);
    }
}
