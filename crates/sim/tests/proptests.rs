//! Property-based tests on the simulator's physical invariants.

use proptest::prelude::*;
use tesla_sim::acu::Acu;
use tesla_sim::pid::Pid;
use tesla_sim::thermal::ThermalNetwork;
use tesla_sim::{AcuParams, PidParams, SimConfig, Testbed, ThermalParams};
use tesla_units::{Celsius, Kilowatts, Seconds};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The PID output always honours its clamp, whatever the error stream.
    #[test]
    fn pid_output_always_clamped(
        errors in proptest::collection::vec(-20.0f64..20.0, 1..200),
    ) {
        let mut pid = Pid::new(PidParams::default());
        for e in errors {
            let out = pid.step(e, 1.0);
            prop_assert!((0.0..=1.0).contains(&out), "output {out}");
        }
    }

    /// First law, lumped: with no cooling (supply = return) and positive
    /// server heat, total stored thermal energy strictly increases.
    #[test]
    fn heat_without_cooling_raises_stored_energy(
        heat in 0.5f64..10.0,
        steps in 10usize..400,
    ) {
        let params = ThermalParams::default();
        let weights = (params.c_cold_kj_per_k, params.c_hot_kj_per_k, params.c_mass_kj_per_k);
        let mut net = ThermalNetwork::new(params);
        let energy = |n: &ThermalNetwork| {
            let s = n.state();
            weights.0 * s.cold_aisle + weights.1 * s.hot_aisle + weights.2 * s.mass
        };
        // Move well above ambient influence first.
        for _ in 0..600 {
            let supply = net.return_temp();
            net.step(supply, Kilowatts::new(heat), Seconds::new(1.0));
        }
        let before = energy(&net);
        for _ in 0..steps {
            let supply = net.return_temp();
            net.step(supply, Kilowatts::new(heat), Seconds::new(1.0));
        }
        prop_assert!(energy(&net) > before, "stored energy must rise under net heating");
    }

    /// The ACU's reported extraction never exceeds its rated capacity and
    /// its power never drops below the fan floor.
    #[test]
    fn acu_respects_capacity_and_fan_floor(
        setpoint in 18.0f64..36.0,
        inlet in 18.0f64..34.0,
        steps in 5usize..300,
    ) {
        let params = AcuParams::default();
        let qmax = params.q_max_kw;
        let fan = params.fan_power_kw;
        let mut acu = Acu::new(params, Celsius::new(setpoint));
        for _ in 0..steps {
            let out = acu.step(Celsius::new(inlet), Celsius::new(inlet), 1.0, Seconds::new(1.0));
            prop_assert!(out.q_kw.value() <= qmax + 1e-9);
            prop_assert!(out.q_kw.value() >= -1e-9);
            prop_assert!(out.power_kw.value() >= fan - 1e-12);
            prop_assert!((0.0..=1.0).contains(&out.duty));
        }
    }

    /// Testbed monotonicity: at equal load, a warmer set-point never
    /// consumes more steady-state energy (the §6.2 mechanism), as long as
    /// both set-points are actually achievable.
    #[test]
    fn steady_energy_monotone_in_setpoint(seed in 0u64..12) {
        let sim = SimConfig::default();
        let utils = vec![0.4; sim.n_servers];
        let run = |sp: f64| -> f64 {
            let mut tb = Testbed::new(sim.clone(), seed).unwrap();
            tb.write_setpoint(Celsius::new(sp));
            tb.warm_up(&utils, 420).unwrap();
            let mut e = 0.0;
            for _ in 0..30 {
                e += tb.step_sample(&utils).unwrap().acu_energy_kwh;
            }
            e
        };
        let cool = run(22.0);
        let warm = run(25.0);
        prop_assert!(warm < cool * 1.02, "warm {warm} vs cool {cool}");
    }

    /// Register round-trip: any set-point written lands quantized within
    /// 0.05 °C and inside the specification range.
    #[test]
    fn setpoint_register_quantization(sp in -10.0f64..60.0) {
        let sim = SimConfig::default();
        let mut tb = Testbed::new(sim.clone(), 0).unwrap();
        tb.write_setpoint(Celsius::new(sp));
        let latched = tb.setpoint();
        let clamped = sim.setpoint_range().clamp(Celsius::new(sp));
        prop_assert!((latched - clamped).value().abs() <= 0.05 + 1e-12);
        prop_assert!(sim.setpoint_range().contains(latched));
    }
}
