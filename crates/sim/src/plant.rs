//! The plant abstraction the control plane steps against.
//!
//! The supervised episode engine used to be hard-wired to [`Testbed`];
//! fleet-scale control runs hundreds of zones, each of which is a
//! single-cell [`MultiZoneTestbed`] pod so the site layer can bleed heat
//! between neighbours. [`CoolingPlant`] is the seam between the two: the
//! minimal write/step surface a supervisor needs, implemented by both.

use crate::multizone::MultiZoneTestbed;
use crate::testbed::{Observation, Testbed};
use crate::SimError;
use tesla_units::Celsius;

/// One controllable cooling cell: a set-point actuator plus a sampled
/// physics step. Everything the supervised per-zone engine touches.
pub trait CoolingPlant {
    /// Number of servers whose utilization the plant expects per step.
    fn n_servers(&self) -> usize;

    /// The set-point currently latched in the ACU.
    fn setpoint(&self) -> Celsius;

    /// Infallible clamped set-point write (initialization path).
    fn write_setpoint_clamped(&mut self, sp: Celsius);

    /// Fallible validated set-point write: typed error on out-of-spec or
    /// faulted writes, quantized latched value on success.
    fn try_write_setpoint(&mut self, sp: Celsius) -> Result<Celsius, SimError>;

    /// Advances one sampling period with per-server utilization targets.
    fn step_sample(&mut self, utils: &[f64]) -> Result<Observation, SimError>;
}

impl CoolingPlant for Testbed {
    fn n_servers(&self) -> usize {
        self.config().n_servers
    }

    fn setpoint(&self) -> Celsius {
        Testbed::setpoint(self)
    }

    fn write_setpoint_clamped(&mut self, sp: Celsius) {
        Testbed::write_setpoint(self, sp);
    }

    fn try_write_setpoint(&mut self, sp: Celsius) -> Result<Celsius, SimError> {
        Testbed::try_write_setpoint(self, sp)
    }

    fn step_sample(&mut self, utils: &[f64]) -> Result<Observation, SimError> {
        Testbed::step_sample(self, utils)
    }
}

/// A single-cell multi-zone pod is a cooling plant; the fleet layer
/// exchanges heat between pods through the hot-aisle bleed accessors.
/// Multi-cell rooms are not a single plant (one supervisor cannot own
/// several independent ACUs), so every call requires exactly one cell.
impl CoolingPlant for MultiZoneTestbed {
    fn n_servers(&self) -> usize {
        self.n_servers_total()
    }

    fn setpoint(&self) -> Celsius {
        self.setpoint(0).expect("single-cell pod has a zone 0")
    }

    fn write_setpoint_clamped(&mut self, sp: Celsius) {
        let _ = self.write_setpoint(0, sp);
    }

    fn try_write_setpoint(&mut self, sp: Celsius) -> Result<Celsius, SimError> {
        if self.n_zones() != 1 {
            return Err(SimError::InvalidConfig(
                "a CoolingPlant pod must have exactly one cell".into(),
            ));
        }
        MultiZoneTestbed::try_write_setpoint(self, 0, sp)
    }

    fn step_sample(&mut self, utils: &[f64]) -> Result<Observation, SimError> {
        if self.n_zones() != 1 {
            return Err(SimError::InvalidConfig(
                "a CoolingPlant pod must have exactly one cell".into(),
            ));
        }
        Ok(MultiZoneTestbed::step_sample(self, &[utils.to_vec()])?.remove(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::multizone::MultiZoneConfig;

    fn drive(plant: &mut dyn CoolingPlant) -> Observation {
        plant.write_setpoint_clamped(Celsius::new(23.0));
        let u = vec![0.3; plant.n_servers()];
        plant.step_sample(&u).unwrap()
    }

    #[test]
    fn both_plants_step_through_the_trait() {
        let cfg = SimConfig::default();
        let mut tb = Testbed::new(cfg.clone(), 5).unwrap();
        let mut pod = MultiZoneTestbed::with_zone_seeds(
            MultiZoneConfig {
                zones: vec![cfg],
                coupling_kw_per_k: 0.0,
            },
            &[5],
        )
        .unwrap();
        let oa = drive(&mut tb);
        let ob = drive(&mut pod);
        assert_eq!(oa.dc_temps, ob.dc_temps);
        assert_eq!(tb.config().n_servers, CoolingPlant::n_servers(&pod));
        assert_eq!(CoolingPlant::setpoint(&tb), CoolingPlant::setpoint(&pod));
    }

    #[test]
    fn multi_cell_pod_is_rejected_as_a_plant() {
        let mut room = MultiZoneTestbed::new(MultiZoneConfig::uniform(2, 0.1), 7).unwrap();
        assert!(CoolingPlant::try_write_setpoint(&mut room, Celsius::new(23.0)).is_err());
        let u = vec![0.3; CoolingPlant::n_servers(&room)];
        assert!(CoolingPlant::step_sample(&mut room, &u).is_err());
    }
}
