//! Multi-zone extension: several ACU/rack zones with inter-zone air
//! exchange.
//!
//! The paper's §2 figure shows a room served by multiple ACUs; its
//! testbed instantiates one (§4). Production rooms have several, and the
//! per-zone control problem is the same — each ACU's PID tracks its own
//! inlet, each zone has its own cold-aisle sensors — with one new
//! physical term: zones exchange air through the shared room volume, so
//! a hot zone leaks heat into its neighbours.
//!
//! [`MultiZoneTestbed`] composes the crate's public building blocks
//! (server bank, thermal network, ACU, sensor array) per zone and couples
//! adjacent zones with a conductance term. One TESLA (or baseline)
//! controller per zone closes the loop; see
//! `examples/multizone_control.rs`.

// analysis:allow-file(panic-free-control-path): zone indices are
// bounded by the validate() length checks this module performs.
use crate::acu::Acu;
use crate::config::SimConfig;
use crate::sensors::SensorArray;
use crate::server::ServerBank;
use crate::testbed::Observation;
use crate::thermal::ThermalNetwork;
use crate::SimError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tesla_units::{Celsius, Seconds, NOMINAL_SETPOINT};

/// Configuration of a multi-zone room.
#[derive(Debug, Clone)]
pub struct MultiZoneConfig {
    /// Per-zone configuration (each zone is a full Table 1-style cell).
    pub zones: Vec<SimConfig>,
    /// Air-exchange conductance between *adjacent* zones, kW/K. Zone `i`
    /// exchanges with `i−1` and `i+1` (a row of containment cells).
    pub coupling_kw_per_k: f64, // lint:allow(no-raw-f64-in-public-api): thermal conductance kW/K, no newtype
}

impl MultiZoneConfig {
    /// `n` identical zones with the default cell configuration.
    // lint:allow(no-raw-f64-in-public-api): conductance kW/K, no newtype
    pub fn uniform(n: usize, coupling_kw_per_k: f64) -> Self {
        MultiZoneConfig {
            zones: vec![SimConfig::default(); n],
            coupling_kw_per_k,
        }
    }

    /// Validates every zone and the coupling.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.zones.is_empty() {
            return Err(SimError::InvalidConfig("need at least one zone".into()));
        }
        if self.coupling_kw_per_k < 0.0 {
            return Err(SimError::InvalidConfig("coupling must be >= 0".into()));
        }
        let dt = self.zones[0].inner_dt_s;
        for (i, z) in self.zones.iter().enumerate() {
            z.validate()
                .map_err(|e| SimError::InvalidConfig(format!("zone {i}: {e}")))?;
            if (z.inner_dt_s - dt).abs() > 1e-9 {
                return Err(SimError::InvalidConfig(
                    "all zones must share inner_dt_s".into(),
                ));
            }
        }
        Ok(())
    }
}

struct Zone {
    cfg: SimConfig,
    servers: ServerBank,
    thermal: ThermalNetwork,
    acu: Acu,
    sensors: SensorArray,
    rng: StdRng,
}

/// A room of several coupled ACU/rack zones.
pub struct MultiZoneTestbed {
    zones: Vec<Zone>,
    coupling: f64,
    time_s: f64,
}

impl MultiZoneTestbed {
    /// Builds the room; each zone gets an independent RNG stream derived
    /// from `seed` by golden-ratio mixing.
    pub fn new(config: MultiZoneConfig, seed: u64) -> Result<Self, SimError> {
        let seeds: Vec<u64> = (0..config.zones.len())
            .map(|i| seed ^ (i as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        Self::with_zone_seeds(config, &seeds)
    }

    /// Builds the room with an *explicit* RNG seed per zone. A one-zone
    /// room seeded `&[s]` draws randomness in exactly the same order as
    /// `Testbed::new(cfg, s)` (no faults), so its trajectory is
    /// bit-identical to the single-zone testbed — the property the fleet
    /// crate's zero-coupling equivalence test pins down.
    pub fn with_zone_seeds(config: MultiZoneConfig, seeds: &[u64]) -> Result<Self, SimError> {
        config.validate()?;
        if seeds.len() != config.zones.len() {
            return Err(SimError::InvalidConfig(format!(
                "need {} zone seeds, got {}",
                config.zones.len(),
                seeds.len()
            )));
        }
        let zones = config
            .zones
            .into_iter()
            .zip(seeds)
            .map(|(cfg, &zone_seed)| {
                let initial_sp = cfg.setpoint_range().clamp(NOMINAL_SETPOINT);
                Zone {
                    servers: ServerBank::new(cfg.n_servers, cfg.server.clone()),
                    thermal: ThermalNetwork::new(cfg.thermal.clone()),
                    acu: Acu::new(cfg.acu.clone(), initial_sp),
                    sensors: SensorArray::new(&cfg),
                    rng: StdRng::seed_from_u64(zone_seed),
                    cfg,
                }
            })
            .collect();
        Ok(MultiZoneTestbed {
            zones,
            coupling: config.coupling_kw_per_k,
            time_s: 0.0,
        })
    }

    /// Number of zones.
    pub fn n_zones(&self) -> usize {
        self.zones.len()
    }

    /// Total servers across all zones (the orchestrator's view).
    pub fn n_servers_total(&self) -> usize {
        self.zones.iter().map(|z| z.cfg.n_servers).sum()
    }

    /// Current simulation time, seconds.
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// A zone's current hot-aisle bulk temperature — the boundary state
    /// that inter-pod thermal bleed acts on.
    pub fn hot_aisle_temp(&self, zone: usize) -> Option<Celsius> {
        self.zones
            .get(zone)
            .map(|z| Celsius::new(z.thermal.state().hot_aisle))
    }

    /// A zone's hot-aisle thermal capacity, kJ/K (the denominator that
    /// converts a bleed energy transfer into a temperature change).
    // lint:allow(no-raw-f64-in-public-api): thermal capacity kJ/K, no newtype
    pub fn hot_aisle_capacity_kj_per_k(&self, zone: usize) -> Option<f64> {
        self.zones.get(zone).map(|z| z.cfg.thermal.c_hot_kj_per_k)
    }

    /// Deposits (positive) or extracts (negative) `energy_kj` into a
    /// zone's hot aisle. The fleet layer uses equal-and-opposite calls on
    /// neighbouring pods to realize site-level thermal bleed, which makes
    /// the exchange energy-conserving by construction.
    // lint:allow(no-raw-f64-in-public-api): bulk energy transfer kJ, no newtype
    pub fn add_hot_aisle_energy_kj(&mut self, zone: usize, energy_kj: f64) -> Result<(), SimError> {
        let z = self
            .zones
            .get_mut(zone)
            .ok_or_else(|| SimError::InvalidConfig(format!("no zone {zone}")))?;
        if !energy_kj.is_finite() {
            return Err(SimError::NonFiniteWrite(Celsius::new(energy_kj)));
        }
        let mut state = z.thermal.state();
        state.hot_aisle += energy_kj / z.cfg.thermal.c_hot_kj_per_k;
        z.thermal.set_state(state);
        Ok(())
    }

    /// Commands a zone's set-point (clamped to that zone's ACU range).
    pub fn write_setpoint(&mut self, zone: usize, sp: Celsius) -> Result<(), SimError> {
        let z = self
            .zones
            .get_mut(zone)
            .ok_or_else(|| SimError::InvalidConfig(format!("no zone {zone}")))?;
        let clamped = z.cfg.setpoint_range().clamp(sp);
        // Quantize like the single-zone Modbus path (0.1 °C registers).
        z.acu
            .set_setpoint(Celsius::new((clamped.value() * 10.0).round() / 10.0));
        Ok(())
    }

    /// Fallible per-zone set-point write: validates finiteness and the
    /// zone's specification bounds (typed error instead of silent
    /// clamping), then quantizes to 0.1 °C exactly like the single-zone
    /// Modbus register facade. On success returns the value latched; on
    /// failure the previous set-point stays in force.
    pub fn try_write_setpoint(&mut self, zone: usize, sp: Celsius) -> Result<Celsius, SimError> {
        let z = self
            .zones
            .get_mut(zone)
            .ok_or_else(|| SimError::InvalidConfig(format!("no zone {zone}")))?;
        let checked = z.cfg.setpoint_range().check(sp)?;
        // Same tick arithmetic as RegisterMap::try_write_setpoint.
        let ticks = (checked.value() * 10.0).round().clamp(0.0, u16::MAX as f64);
        let quantized = Celsius::new(ticks / 10.0);
        z.acu.set_setpoint(quantized);
        Ok(quantized)
    }

    /// A zone's currently latched set-point.
    pub fn setpoint(&self, zone: usize) -> Option<Celsius> {
        self.zones.get(zone).map(|z| z.acu.setpoint())
    }

    /// Advances one sampling period with per-zone utilization targets;
    /// returns one observation per zone.
    pub fn step_sample(&mut self, utils: &[Vec<f64>]) -> Result<Vec<Observation>, SimError> {
        if utils.len() != self.zones.len() {
            return Err(SimError::BadUtilization {
                expected: self.zones.len(),
                got: utils.len(),
            });
        }
        for (zi, (zone, u)) in self.zones.iter_mut().zip(utils).enumerate() {
            if u.len() != zone.cfg.n_servers {
                return Err(SimError::BadUtilization {
                    expected: zone.cfg.n_servers,
                    got: u.len(),
                });
            }
            for &v in u {
                if !(0.0..=1.0).contains(&v) || !v.is_finite() {
                    return Err(SimError::UtilizationOutOfRange(v));
                }
            }
            zone.servers.set_targets(u);
            let _ = zi;
        }

        let dt = self.zones[0].cfg.inner_dt_s;
        let steps = self.zones[0].cfg.inner_steps_per_sample();
        let n = self.zones.len();
        let mut energy = vec![0.0; n];
        let mut interrupted = vec![0usize; n];
        let mut last_power = vec![0.0; n];
        let mut last_duty = vec![0.0; n];
        let mut last_supply = vec![0.0; n];

        for _ in 0..steps {
            // Per-zone physics.
            for (zi, zone) in self.zones.iter_mut().enumerate() {
                zone.servers.step(dt);
                let heat = zone.servers.total_heat_kw();
                let ret = zone.thermal.return_temp();
                let samples = zone.acu.sample_inlet_sensors(ret, &mut zone.rng);
                let measured = Celsius::new(
                    samples.iter().map(|t| t.value()).sum::<f64>() / samples.len().max(1) as f64,
                );
                let step = zone.acu.step(
                    measured,
                    ret,
                    zone.cfg.thermal.mdot_cp_kw_per_k,
                    Seconds::new(dt),
                );
                zone.thermal.step(step.supply_temp, heat, Seconds::new(dt));
                energy[zi] += step.power_kw.value() * dt / 3600.0;
                if step.interrupted {
                    interrupted[zi] += 1;
                }
                last_power[zi] = step.power_kw.value();
                last_duty[zi] = step.duty;
                last_supply[zi] = step.supply_temp.value();
            }
            // Inter-zone exchange: adjacent hot aisles mix through the
            // shared plenum (symmetric conductance).
            if self.coupling > 0.0 && n > 1 {
                let temps: Vec<f64> = self
                    .zones
                    .iter()
                    .map(|z| z.thermal.state().hot_aisle)
                    .collect();
                for i in 0..n - 1 {
                    let q = self.coupling * (temps[i] - temps[i + 1]); // kW i→i+1
                    let c_i = self.zones[i].cfg.thermal.c_hot_kj_per_k;
                    let c_j = self.zones[i + 1].cfg.thermal.c_hot_kj_per_k;
                    let mut s_i = self.zones[i].thermal.state();
                    let mut s_j = self.zones[i + 1].thermal.state();
                    s_i.hot_aisle -= q * dt / c_i;
                    s_j.hot_aisle += q * dt / c_j;
                    self.zones[i].thermal.set_state(s_i);
                    self.zones[i + 1].thermal.set_state(s_j);
                }
            }
            self.time_s += dt;
        }

        let time_s = self.time_s;
        Ok(self
            .zones
            .iter_mut()
            .enumerate()
            .map(|(zi, zone)| {
                let state = zone.thermal.state();
                let (cold_bulk, hot_bulk) = (
                    Celsius::new(state.cold_aisle),
                    Celsius::new(state.hot_aisle),
                );
                let acu_inlet_temps: Vec<f64> = zone
                    .acu
                    .sample_inlet_sensors(hot_bulk, &mut zone.rng)
                    .iter()
                    .map(|t| t.value())
                    .collect();
                let dc_temps = zone.sensors.sample(cold_bulk, hot_bulk, &mut zone.rng);
                let server_powers_kw = zone.servers.powers_kw(&mut zone.rng);
                let avg_server_power_kw =
                    server_powers_kw.iter().sum::<f64>() / server_powers_kw.len().max(1) as f64;
                let cold_aisle_max = dc_temps[..zone.cfg.n_cold_aisle_sensors]
                    .iter()
                    .copied()
                    .fold(f64::NEG_INFINITY, f64::max);
                let cold_aisle_max_true = zone
                    .sensors
                    .cold_aisle_max_true(cold_bulk, hot_bulk)
                    .value();
                Observation {
                    time_s,
                    setpoint: zone.acu.setpoint().value(),
                    acu_inlet_temps,
                    dc_temps,
                    cpu_utils: zone.servers.effective_utils().to_vec(),
                    mem_utils: zone.servers.mem_utils().to_vec(),
                    server_powers_kw,
                    avg_server_power_kw,
                    acu_power_kw: last_power[zi],
                    acu_energy_kwh: energy[zi],
                    duty: last_duty[zi],
                    supply_temp: last_supply[zi],
                    interrupted_frac: interrupted[zi] as f64 / steps as f64,
                    cold_aisle_max,
                    cold_aisle_max_true,
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn room(n: usize, coupling: f64) -> MultiZoneTestbed {
        MultiZoneTestbed::new(MultiZoneConfig::uniform(n, coupling), 7).unwrap()
    }

    fn utils(n_zones: usize, u: f64) -> Vec<Vec<f64>> {
        vec![vec![u; SimConfig::default().n_servers]; n_zones]
    }

    #[test]
    fn uniform_config_validates() {
        MultiZoneConfig::uniform(3, 0.05).validate().unwrap();
        assert!(MultiZoneConfig::uniform(0, 0.05).validate().is_err());
        assert!(MultiZoneConfig::uniform(2, -1.0).validate().is_err());
    }

    #[test]
    fn observations_one_per_zone() {
        let mut room = room(3, 0.05);
        let obs = room.step_sample(&utils(3, 0.2)).unwrap();
        assert_eq!(obs.len(), 3);
        for o in &obs {
            assert_eq!(o.dc_temps.len(), 35);
            assert!(o.acu_power_kw.is_finite());
        }
    }

    #[test]
    fn zones_with_different_loads_diverge() {
        let mut room = room(2, 0.0); // uncoupled
        let mixed = vec![
            vec![0.0; SimConfig::default().n_servers],
            vec![0.7; SimConfig::default().n_servers],
        ];
        let mut last = None;
        for _ in 0..240 {
            last = Some(room.step_sample(&mixed).unwrap());
        }
        let obs = last.unwrap();
        assert!(
            obs[1].acu_power_kw > obs[0].acu_power_kw + 0.5,
            "busy zone {} kW vs idle zone {} kW",
            obs[1].acu_power_kw,
            obs[0].acu_power_kw
        );
    }

    #[test]
    fn coupling_drags_neighbours_together() {
        // A hot zone next to an idle one: with coupling, the idle zone's
        // ACU must work harder than without.
        let run = |coupling: f64| -> f64 {
            let mut room = room(2, coupling);
            let mixed = vec![
                vec![0.0; SimConfig::default().n_servers],
                vec![0.8; SimConfig::default().n_servers],
            ];
            let mut idle_energy = 0.0;
            for _ in 0..240 {
                let obs = room.step_sample(&mixed).unwrap();
                idle_energy += obs[0].acu_energy_kwh;
            }
            idle_energy
        };
        let isolated = run(0.0);
        let coupled = run(0.3);
        assert!(
            coupled > isolated * 1.03,
            "coupled idle zone ({coupled:.3} kWh) must absorb neighbour heat vs isolated ({isolated:.3} kWh)"
        );
    }

    #[test]
    fn per_zone_setpoints_are_independent() {
        let mut room = room(2, 0.05);
        room.write_setpoint(0, Celsius::new(21.0)).unwrap();
        room.write_setpoint(1, Celsius::new(27.0)).unwrap();
        assert_eq!(room.setpoint(0), Some(Celsius::new(21.0)));
        assert_eq!(room.setpoint(1), Some(Celsius::new(27.0)));
        assert!(room.write_setpoint(9, Celsius::new(23.0)).is_err());
    }

    #[test]
    fn single_zone_room_matches_testbed_bit_identically() {
        // A one-zone room with an explicit seed must replay the
        // single-zone testbed exactly: same RNG draw order, same
        // quantization, same physics. This is the fleet crate's
        // zero-coupling equivalence guarantee, pinned at the source.
        use crate::testbed::Testbed;
        let cfg = SimConfig::default();
        let mut single = Testbed::new(cfg.clone(), 1234).unwrap();
        let mut room = MultiZoneTestbed::with_zone_seeds(
            MultiZoneConfig {
                zones: vec![cfg.clone()],
                coupling_kw_per_k: 0.0,
            },
            &[1234],
        )
        .unwrap();
        let u = vec![0.35; cfg.n_servers];
        for minute in 0..8 {
            if minute == 3 {
                let a = single.try_write_setpoint(Celsius::new(24.16)).unwrap();
                let b = room.try_write_setpoint(0, Celsius::new(24.16)).unwrap();
                assert_eq!(a, b);
            }
            let oa = single.step_sample(&u).unwrap();
            let ob = room
                .step_sample(std::slice::from_ref(&u))
                .unwrap()
                .remove(0);
            assert_eq!(oa.dc_temps, ob.dc_temps);
            assert_eq!(oa.acu_inlet_temps, ob.acu_inlet_temps);
            assert_eq!(oa.server_powers_kw, ob.server_powers_kw);
            assert_eq!(oa.acu_power_kw, ob.acu_power_kw);
            assert_eq!(oa.acu_energy_kwh, ob.acu_energy_kwh);
            assert_eq!(oa.setpoint, ob.setpoint);
            assert_eq!(oa.cold_aisle_max_true, ob.cold_aisle_max_true);
            assert_eq!(oa.time_s, ob.time_s);
        }
    }

    #[test]
    fn coupling_is_symmetric_under_zone_swap() {
        // Swapping the two zones' seeds and loads must swap the
        // observations exactly: the exchange term treats neighbours
        // symmetrically (equal and opposite transfers).
        let cfg = MultiZoneConfig::uniform(2, 0.2);
        let mut fwd = MultiZoneTestbed::with_zone_seeds(cfg.clone(), &[11, 22]).unwrap();
        let mut rev = MultiZoneTestbed::with_zone_seeds(cfg, &[22, 11]).unwrap();
        let n = SimConfig::default().n_servers;
        let (hot, idle) = (vec![0.8; n], vec![0.05; n]);
        for _ in 0..6 {
            let a = fwd.step_sample(&[hot.clone(), idle.clone()]).unwrap();
            let b = rev.step_sample(&[idle.clone(), hot.clone()]).unwrap();
            assert_eq!(a[0].dc_temps, b[1].dc_temps);
            assert_eq!(a[1].dc_temps, b[0].dc_temps);
            assert_eq!(a[0].acu_power_kw, b[1].acu_power_kw);
            assert_eq!(a[1].acu_power_kw, b[0].acu_power_kw);
        }
    }

    #[test]
    fn coupling_between_identical_zones_is_a_no_op() {
        // Equal temperatures on both sides mean zero net exchange: a
        // coupled room of identically-seeded, identically-loaded zones
        // must match the uncoupled room bit for bit (the exchange
        // conserves energy, so equal states stay equal).
        let mk = |coupling: f64| {
            MultiZoneTestbed::with_zone_seeds(MultiZoneConfig::uniform(2, coupling), &[9, 9])
                .unwrap()
        };
        let mut coupled = mk(0.5);
        let mut isolated = mk(0.0);
        for _ in 0..6 {
            let a = coupled.step_sample(&utils(2, 0.4)).unwrap();
            let b = isolated.step_sample(&utils(2, 0.4)).unwrap();
            for (oa, ob) in a.iter().zip(&b) {
                assert_eq!(oa.dc_temps, ob.dc_temps);
                assert_eq!(oa.acu_energy_kwh, ob.acu_energy_kwh);
            }
        }
    }

    #[test]
    fn hot_aisle_energy_injection_conserves_pairwise() {
        // The fleet bleed operator: +E on one pod, −E on its neighbour.
        // Temperatures move by E/C each way and total hot-aisle energy
        // (Σ c_i·T_i) is unchanged to round-off.
        let mut room = room(2, 0.0);
        let t0 = room.hot_aisle_temp(0).unwrap().value();
        let t1 = room.hot_aisle_temp(1).unwrap().value();
        let c0 = room.hot_aisle_capacity_kj_per_k(0).unwrap();
        let c1 = room.hot_aisle_capacity_kj_per_k(1).unwrap();
        let e_kj = 50.0;
        room.add_hot_aisle_energy_kj(0, e_kj).unwrap();
        room.add_hot_aisle_energy_kj(1, -e_kj).unwrap();
        let t0b = room.hot_aisle_temp(0).unwrap().value();
        let t1b = room.hot_aisle_temp(1).unwrap().value();
        assert!((t0b - (t0 + e_kj / c0)).abs() < 1e-12);
        assert!((t1b - (t1 - e_kj / c1)).abs() < 1e-12);
        let before = c0 * t0 + c1 * t1;
        let after = c0 * t0b + c1 * t1b;
        assert!((after - before).abs() < 1e-9, "{before} -> {after}");
        assert!(room.add_hot_aisle_energy_kj(9, 1.0).is_err());
        assert!(room.add_hot_aisle_energy_kj(0, f64::NAN).is_err());
    }

    #[test]
    fn try_write_setpoint_validates_and_quantizes() {
        let mut room = room(2, 0.0);
        let latched = room.try_write_setpoint(0, Celsius::new(24.16)).unwrap();
        assert!((latched.value() - 24.2).abs() < 1e-9);
        assert_eq!(room.setpoint(0), Some(latched));
        assert!(matches!(
            room.try_write_setpoint(0, Celsius::new(50.0)),
            Err(SimError::SetpointOutOfRange { .. })
        ));
        assert!(matches!(
            room.try_write_setpoint(0, Celsius::new(f64::NAN)),
            Err(SimError::NonFiniteWrite(_))
        ));
        assert!(room.try_write_setpoint(9, Celsius::new(23.0)).is_err());
        // Rejected writes leave the latched value untouched.
        assert_eq!(room.setpoint(0), Some(latched));
    }

    #[test]
    fn zone_seed_count_must_match() {
        assert!(MultiZoneTestbed::with_zone_seeds(MultiZoneConfig::uniform(2, 0.0), &[1]).is_err());
    }

    #[test]
    fn wrong_shapes_rejected() {
        let mut room = room(2, 0.05);
        assert!(room.step_sample(&utils(1, 0.2)).is_err());
        let mut bad = utils(2, 0.2);
        bad[0].pop();
        assert!(room.step_sample(&bad).is_err());
        let mut nan = utils(2, 0.2);
        nan[1][0] = f64::NAN;
        assert!(room.step_sample(&nan).is_err());
    }
}
