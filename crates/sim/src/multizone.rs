//! Multi-zone extension: several ACU/rack zones with inter-zone air
//! exchange.
//!
//! The paper's §2 figure shows a room served by multiple ACUs; its
//! testbed instantiates one (§4). Production rooms have several, and the
//! per-zone control problem is the same — each ACU's PID tracks its own
//! inlet, each zone has its own cold-aisle sensors — with one new
//! physical term: zones exchange air through the shared room volume, so
//! a hot zone leaks heat into its neighbours.
//!
//! [`MultiZoneTestbed`] composes the crate's public building blocks
//! (server bank, thermal network, ACU, sensor array) per zone and couples
//! adjacent zones with a conductance term. One TESLA (or baseline)
//! controller per zone closes the loop; see
//! `examples/multizone_control.rs`.

// analysis:allow-file(panic-free-control-path): zone indices are
// bounded by the validate() length checks this module performs.
use crate::acu::Acu;
use crate::config::SimConfig;
use crate::sensors::SensorArray;
use crate::server::ServerBank;
use crate::testbed::Observation;
use crate::thermal::ThermalNetwork;
use crate::SimError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tesla_units::{Celsius, Seconds, NOMINAL_SETPOINT};

/// Configuration of a multi-zone room.
#[derive(Debug, Clone)]
pub struct MultiZoneConfig {
    /// Per-zone configuration (each zone is a full Table 1-style cell).
    pub zones: Vec<SimConfig>,
    /// Air-exchange conductance between *adjacent* zones, kW/K. Zone `i`
    /// exchanges with `i−1` and `i+1` (a row of containment cells).
    pub coupling_kw_per_k: f64, // lint:allow(no-raw-f64-in-public-api): thermal conductance kW/K, no newtype
}

impl MultiZoneConfig {
    /// `n` identical zones with the default cell configuration.
    // lint:allow(no-raw-f64-in-public-api): conductance kW/K, no newtype
    pub fn uniform(n: usize, coupling_kw_per_k: f64) -> Self {
        MultiZoneConfig {
            zones: vec![SimConfig::default(); n],
            coupling_kw_per_k,
        }
    }

    /// Validates every zone and the coupling.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.zones.is_empty() {
            return Err(SimError::InvalidConfig("need at least one zone".into()));
        }
        if self.coupling_kw_per_k < 0.0 {
            return Err(SimError::InvalidConfig("coupling must be >= 0".into()));
        }
        let dt = self.zones[0].inner_dt_s;
        for (i, z) in self.zones.iter().enumerate() {
            z.validate()
                .map_err(|e| SimError::InvalidConfig(format!("zone {i}: {e}")))?;
            if (z.inner_dt_s - dt).abs() > 1e-9 {
                return Err(SimError::InvalidConfig(
                    "all zones must share inner_dt_s".into(),
                ));
            }
        }
        Ok(())
    }
}

struct Zone {
    cfg: SimConfig,
    servers: ServerBank,
    thermal: ThermalNetwork,
    acu: Acu,
    sensors: SensorArray,
    rng: StdRng,
}

/// A room of several coupled ACU/rack zones.
pub struct MultiZoneTestbed {
    zones: Vec<Zone>,
    coupling: f64,
    time_s: f64,
}

impl MultiZoneTestbed {
    /// Builds the room; each zone gets an independent RNG stream.
    pub fn new(config: MultiZoneConfig, seed: u64) -> Result<Self, SimError> {
        config.validate()?;
        let zones = config
            .zones
            .into_iter()
            .enumerate()
            .map(|(i, cfg)| {
                let initial_sp = cfg.setpoint_range().clamp(NOMINAL_SETPOINT);
                Zone {
                    servers: ServerBank::new(cfg.n_servers, cfg.server.clone()),
                    thermal: ThermalNetwork::new(cfg.thermal.clone()),
                    acu: Acu::new(cfg.acu.clone(), initial_sp),
                    sensors: SensorArray::new(&cfg),
                    rng: StdRng::seed_from_u64(
                        seed ^ (i as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15),
                    ),
                    cfg,
                }
            })
            .collect();
        Ok(MultiZoneTestbed {
            zones,
            coupling: config.coupling_kw_per_k,
            time_s: 0.0,
        })
    }

    /// Number of zones.
    pub fn n_zones(&self) -> usize {
        self.zones.len()
    }

    /// Commands a zone's set-point (clamped to that zone's ACU range).
    pub fn write_setpoint(&mut self, zone: usize, sp: Celsius) -> Result<(), SimError> {
        let z = self
            .zones
            .get_mut(zone)
            .ok_or_else(|| SimError::InvalidConfig(format!("no zone {zone}")))?;
        let clamped = z.cfg.setpoint_range().clamp(sp);
        // Quantize like the single-zone Modbus path (0.1 °C registers).
        z.acu
            .set_setpoint(Celsius::new((clamped.value() * 10.0).round() / 10.0));
        Ok(())
    }

    /// A zone's currently latched set-point.
    pub fn setpoint(&self, zone: usize) -> Option<Celsius> {
        self.zones.get(zone).map(|z| z.acu.setpoint())
    }

    /// Advances one sampling period with per-zone utilization targets;
    /// returns one observation per zone.
    pub fn step_sample(&mut self, utils: &[Vec<f64>]) -> Result<Vec<Observation>, SimError> {
        if utils.len() != self.zones.len() {
            return Err(SimError::BadUtilization {
                expected: self.zones.len(),
                got: utils.len(),
            });
        }
        for (zi, (zone, u)) in self.zones.iter_mut().zip(utils).enumerate() {
            if u.len() != zone.cfg.n_servers {
                return Err(SimError::BadUtilization {
                    expected: zone.cfg.n_servers,
                    got: u.len(),
                });
            }
            for &v in u {
                if !(0.0..=1.0).contains(&v) || !v.is_finite() {
                    return Err(SimError::UtilizationOutOfRange(v));
                }
            }
            zone.servers.set_targets(u);
            let _ = zi;
        }

        let dt = self.zones[0].cfg.inner_dt_s;
        let steps = self.zones[0].cfg.inner_steps_per_sample();
        let n = self.zones.len();
        let mut energy = vec![0.0; n];
        let mut interrupted = vec![0usize; n];
        let mut last_power = vec![0.0; n];
        let mut last_duty = vec![0.0; n];
        let mut last_supply = vec![0.0; n];

        for _ in 0..steps {
            // Per-zone physics.
            for (zi, zone) in self.zones.iter_mut().enumerate() {
                zone.servers.step(dt);
                let heat = zone.servers.total_heat_kw();
                let ret = zone.thermal.return_temp();
                let samples = zone.acu.sample_inlet_sensors(ret, &mut zone.rng);
                let measured = Celsius::new(
                    samples.iter().map(|t| t.value()).sum::<f64>() / samples.len().max(1) as f64,
                );
                let step = zone.acu.step(
                    measured,
                    ret,
                    zone.cfg.thermal.mdot_cp_kw_per_k,
                    Seconds::new(dt),
                );
                zone.thermal.step(step.supply_temp, heat, Seconds::new(dt));
                energy[zi] += step.power_kw.value() * dt / 3600.0;
                if step.interrupted {
                    interrupted[zi] += 1;
                }
                last_power[zi] = step.power_kw.value();
                last_duty[zi] = step.duty;
                last_supply[zi] = step.supply_temp.value();
            }
            // Inter-zone exchange: adjacent hot aisles mix through the
            // shared plenum (symmetric conductance).
            if self.coupling > 0.0 && n > 1 {
                let temps: Vec<f64> = self
                    .zones
                    .iter()
                    .map(|z| z.thermal.state().hot_aisle)
                    .collect();
                for i in 0..n - 1 {
                    let q = self.coupling * (temps[i] - temps[i + 1]); // kW i→i+1
                    let c_i = self.zones[i].cfg.thermal.c_hot_kj_per_k;
                    let c_j = self.zones[i + 1].cfg.thermal.c_hot_kj_per_k;
                    let mut s_i = self.zones[i].thermal.state();
                    let mut s_j = self.zones[i + 1].thermal.state();
                    s_i.hot_aisle -= q * dt / c_i;
                    s_j.hot_aisle += q * dt / c_j;
                    self.zones[i].thermal.set_state(s_i);
                    self.zones[i + 1].thermal.set_state(s_j);
                }
            }
            self.time_s += dt;
        }

        let time_s = self.time_s;
        Ok(self
            .zones
            .iter_mut()
            .enumerate()
            .map(|(zi, zone)| {
                let state = zone.thermal.state();
                let (cold_bulk, hot_bulk) = (
                    Celsius::new(state.cold_aisle),
                    Celsius::new(state.hot_aisle),
                );
                let acu_inlet_temps: Vec<f64> = zone
                    .acu
                    .sample_inlet_sensors(hot_bulk, &mut zone.rng)
                    .iter()
                    .map(|t| t.value())
                    .collect();
                let dc_temps = zone.sensors.sample(cold_bulk, hot_bulk, &mut zone.rng);
                let server_powers_kw = zone.servers.powers_kw(&mut zone.rng);
                let avg_server_power_kw =
                    server_powers_kw.iter().sum::<f64>() / server_powers_kw.len().max(1) as f64;
                let cold_aisle_max = dc_temps[..zone.cfg.n_cold_aisle_sensors]
                    .iter()
                    .copied()
                    .fold(f64::NEG_INFINITY, f64::max);
                let cold_aisle_max_true = zone
                    .sensors
                    .cold_aisle_max_true(cold_bulk, hot_bulk)
                    .value();
                Observation {
                    time_s,
                    setpoint: zone.acu.setpoint().value(),
                    acu_inlet_temps,
                    dc_temps,
                    cpu_utils: zone.servers.effective_utils().to_vec(),
                    mem_utils: zone.servers.mem_utils().to_vec(),
                    server_powers_kw,
                    avg_server_power_kw,
                    acu_power_kw: last_power[zi],
                    acu_energy_kwh: energy[zi],
                    duty: last_duty[zi],
                    supply_temp: last_supply[zi],
                    interrupted_frac: interrupted[zi] as f64 / steps as f64,
                    cold_aisle_max,
                    cold_aisle_max_true,
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn room(n: usize, coupling: f64) -> MultiZoneTestbed {
        MultiZoneTestbed::new(MultiZoneConfig::uniform(n, coupling), 7).unwrap()
    }

    fn utils(n_zones: usize, u: f64) -> Vec<Vec<f64>> {
        vec![vec![u; SimConfig::default().n_servers]; n_zones]
    }

    #[test]
    fn uniform_config_validates() {
        MultiZoneConfig::uniform(3, 0.05).validate().unwrap();
        assert!(MultiZoneConfig::uniform(0, 0.05).validate().is_err());
        assert!(MultiZoneConfig::uniform(2, -1.0).validate().is_err());
    }

    #[test]
    fn observations_one_per_zone() {
        let mut room = room(3, 0.05);
        let obs = room.step_sample(&utils(3, 0.2)).unwrap();
        assert_eq!(obs.len(), 3);
        for o in &obs {
            assert_eq!(o.dc_temps.len(), 35);
            assert!(o.acu_power_kw.is_finite());
        }
    }

    #[test]
    fn zones_with_different_loads_diverge() {
        let mut room = room(2, 0.0); // uncoupled
        let mixed = vec![
            vec![0.0; SimConfig::default().n_servers],
            vec![0.7; SimConfig::default().n_servers],
        ];
        let mut last = None;
        for _ in 0..240 {
            last = Some(room.step_sample(&mixed).unwrap());
        }
        let obs = last.unwrap();
        assert!(
            obs[1].acu_power_kw > obs[0].acu_power_kw + 0.5,
            "busy zone {} kW vs idle zone {} kW",
            obs[1].acu_power_kw,
            obs[0].acu_power_kw
        );
    }

    #[test]
    fn coupling_drags_neighbours_together() {
        // A hot zone next to an idle one: with coupling, the idle zone's
        // ACU must work harder than without.
        let run = |coupling: f64| -> f64 {
            let mut room = room(2, coupling);
            let mixed = vec![
                vec![0.0; SimConfig::default().n_servers],
                vec![0.8; SimConfig::default().n_servers],
            ];
            let mut idle_energy = 0.0;
            for _ in 0..240 {
                let obs = room.step_sample(&mixed).unwrap();
                idle_energy += obs[0].acu_energy_kwh;
            }
            idle_energy
        };
        let isolated = run(0.0);
        let coupled = run(0.3);
        assert!(
            coupled > isolated * 1.03,
            "coupled idle zone ({coupled:.3} kWh) must absorb neighbour heat vs isolated ({isolated:.3} kWh)"
        );
    }

    #[test]
    fn per_zone_setpoints_are_independent() {
        let mut room = room(2, 0.05);
        room.write_setpoint(0, Celsius::new(21.0)).unwrap();
        room.write_setpoint(1, Celsius::new(27.0)).unwrap();
        assert_eq!(room.setpoint(0), Some(Celsius::new(21.0)));
        assert_eq!(room.setpoint(1), Some(Celsius::new(27.0)));
        assert!(room.write_setpoint(9, Celsius::new(23.0)).is_err());
    }

    #[test]
    fn wrong_shapes_rejected() {
        let mut room = room(2, 0.05);
        assert!(room.step_sample(&utils(1, 0.2)).is_err());
        let mut bad = utils(2, 0.2);
        bad[0].pop();
        assert!(room.step_sample(&bad).is_err());
        let mut nan = utils(2, 0.2);
        nan[1][0] = f64::NAN;
        assert!(room.step_sample(&nan).is_err());
    }
}
