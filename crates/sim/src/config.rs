//! Simulator configuration. Defaults mirror Table 1 of the paper plus the
//! calibration targets extracted from its measurements (Figs. 2–4, §2).

use crate::SimError;
use tesla_units::{Celsius, CelsiusRange, SETPOINT_RANGE};

/// PID gains for the ACU compressor loop (§2.1).
///
/// The controller acts on the residual error `inlet − set-point`; its
/// output is the compressor duty in `[0, 1]`.
#[derive(Debug, Clone)]
pub struct PidParams {
    /// Proportional gain (duty per Kelvin of residual error).
    pub kp: f64,
    /// Integral gain (duty per Kelvin-second).
    pub ki: f64,
    /// Derivative gain (duty per Kelvin/second).
    pub kd: f64,
    /// Output lower clamp.
    pub out_min: f64,
    /// Output upper clamp.
    pub out_max: f64,
}

impl Default for PidParams {
    fn default() -> Self {
        // Settles a 2 K step in roughly 3–5 minutes with the default
        // thermal time constants, matching Fig. 4's transient time scale.
        PidParams {
            kp: 0.15,
            ki: 0.001,
            kd: 0.0,
            out_min: 0.0,
            out_max: 1.0,
        }
    }
}

/// Server power model parameters.
#[derive(Debug, Clone)]
pub struct ServerParams {
    /// Idle draw per machine, kW. Fig. 8a's per-machine averages
    /// (0.233–0.365 kW under medium load) anchor the range.
    pub idle_power_kw: f64, // lint:allow(no-raw-f64-in-public-api): calibration parameter
    /// Full-utilization draw per machine, kW.
    pub max_power_kw: f64, // lint:allow(no-raw-f64-in-public-api): calibration parameter
    /// Std-dev of the per-sample power measurement noise, kW.
    pub power_noise_kw: f64, // lint:allow(no-raw-f64-in-public-api): calibration parameter
    /// First-order lag of power response to a utilization change, seconds.
    pub response_tau_s: f64,
    /// Baseline memory utilization (collected per §4, unused by control).
    pub mem_base: f64,
    /// Energy-aware server provisioning (§8 future work): when enabled,
    /// servers whose commanded and effective utilization are ~zero drop
    /// to `sleep_power_kw` instead of idling. Off by default — the
    /// paper's testbed keeps all machines online.
    pub sleep_enabled: bool,
    /// Power drawn by a sleeping server, kW.
    pub sleep_power_kw: f64, // lint:allow(no-raw-f64-in-public-api): calibration parameter
}

impl Default for ServerParams {
    fn default() -> Self {
        ServerParams {
            idle_power_kw: 0.18,
            max_power_kw: 0.56,
            power_noise_kw: 0.010,
            response_tau_s: 25.0,
            mem_base: 0.35,
            sleep_enabled: false,
            sleep_power_kw: 0.03,
        }
    }
}

/// ACU (air-cooling unit) parameters.
#[derive(Debug, Clone)]
pub struct AcuParams {
    /// Maximum thermal cooling capacity, kW.
    pub q_max_kw: f64, // lint:allow(no-raw-f64-in-public-api): calibration parameter
    /// Always-on fan power, kW. The paper reports ~0.1 kW during cooling
    /// interruption, and defines interruption as ACU power below 0.1 kW.
    pub fan_power_kw: f64, // lint:allow(no-raw-f64-in-public-api): calibration parameter
    /// Fixed compressor overhead while running, kW.
    pub base_power_kw: f64, // lint:allow(no-raw-f64-in-public-api): calibration parameter
    /// COP model: `cop = cop_intercept + cop_slope * supply_temp`,
    /// clamped to at least `cop_floor`. Higher supply (evaporator) temps
    /// give better efficiency — the energy-saving lever of §6.2.
    pub cop_intercept: f64,
    /// See `cop_intercept`.
    pub cop_slope: f64,
    /// Minimum COP clamp.
    pub cop_floor: f64,
    /// Part-load factor: `plf = plf_floor + (1 - plf_floor) * duty`;
    /// low-duty cycling wastes energy.
    pub plf_floor: f64,
    /// Lowest achievable supply-air temperature, °C.
    pub supply_temp_min: f64, // lint:allow(no-raw-f64-in-public-api): calibration parameter
    /// Duty at or below which cold-air delivery counts as interrupted.
    pub interruption_duty: f64,
    /// Maximum *upward* compressor-duty slew per second. Real compressors
    /// ramp load slowly (shedding is fast); this is what makes a cooling
    /// interruption take roughly twice as long to undo as it took to
    /// develop (Fig. 3: ~1 °C/min rise vs ~0.5 °C/min recovery).
    pub duty_slew_per_s: f64,
    /// Per-inlet-sensor systematic bias, °C (length = number of sensors).
    pub inlet_sensor_bias: Vec<f64>,
    /// Std-dev of inlet sensor noise, °C.
    pub inlet_noise_std: f64,
    /// PID controller gains.
    pub pid: PidParams,
}

impl Default for AcuParams {
    fn default() -> Self {
        AcuParams {
            q_max_kw: 12.0,
            fan_power_kw: 0.10,
            base_power_kw: 0.35,
            cop_intercept: 0.5,
            cop_slope: 0.20,
            cop_floor: 1.1,
            plf_floor: 0.55,
            supply_temp_min: 12.0,
            interruption_duty: 0.02,
            duty_slew_per_s: 0.002,
            inlet_sensor_bias: vec![-0.08, 0.08],
            inlet_noise_std: 0.12,
            pid: PidParams::default(),
        }
    }
}

/// Lumped three-node thermal network parameters (cold aisle, hot aisle,
/// equipment/structural mass).
#[derive(Debug, Clone)]
pub struct ThermalParams {
    /// Air-loop heat capacity rate `ṁ·c_p`, kW/K. Sets the server air
    /// ΔT: 6 kW of server heat over 1.0 kW/K is a 6 K aisle split.
    pub mdot_cp_kw_per_k: f64, // lint:allow(no-raw-f64-in-public-api): calibration parameter
    /// Cold-aisle air heat capacity, kJ/K.
    pub c_cold_kj_per_k: f64,
    /// Hot-aisle air heat capacity, kJ/K.
    pub c_hot_kj_per_k: f64,
    /// Equipment/structure thermal mass, kJ/K. Damps the interruption
    /// rise to the ~1 °C/min of Fig. 3.
    pub c_mass_kj_per_k: f64,
    /// Mass-to-air conductance, kW/K.
    pub h_mass_kw_per_k: f64, // lint:allow(no-raw-f64-in-public-api): calibration parameter
    /// Containment leakage fraction: portion of hot-aisle air that mixes
    /// directly back into the cold aisle despite the containment (§2).
    pub leakage: f64,
    /// Room-to-ambient conductance, kW/K.
    pub ambient_kw_per_k: f64, // lint:allow(no-raw-f64-in-public-api): calibration parameter
    /// Ambient (outside room) temperature, °C.
    pub ambient_temp_c: f64, // lint:allow(no-raw-f64-in-public-api): calibration parameter
    /// Initial cold-aisle temperature, °C.
    pub initial_cold_c: f64,
}

impl Default for ThermalParams {
    fn default() -> Self {
        ThermalParams {
            mdot_cp_kw_per_k: 1.0,
            c_cold_kj_per_k: 150.0,
            c_hot_kj_per_k: 150.0,
            c_mass_kj_per_k: 1900.0,
            h_mass_kw_per_k: 0.15,
            leakage: 0.055,
            ambient_kw_per_k: 0.02,
            ambient_temp_c: 26.0,
            // Start at operating temperature: the hot aisle (cold + 3)
            // begins right at the customary 23 °C set-point, so episodes
            // don't open with an artificial cooling interruption.
            initial_cold_c: 20.0,
        }
    }
}

/// Rack sensor array parameters.
#[derive(Debug, Clone)]
pub struct SensorParams {
    /// Std-dev of rack sensor noise, °C.
    pub noise_std: f64,
    /// Maximum spatial offset across cold-aisle sensors, °C (vertical
    /// stratification: top-of-rack sensors read warmer).
    pub cold_offset_span: f64,
    /// Maximum hot-air mixing fraction seen by a cold-aisle sensor.
    pub cold_mix_max: f64,
}

impl Default for SensorParams {
    fn default() -> Self {
        SensorParams {
            noise_std: 0.18,
            cold_offset_span: 0.7,
            cold_mix_max: 0.10,
        }
    }
}

/// Full testbed configuration. Defaults reproduce Table 1.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of servers (21 on the paper's testbed).
    pub n_servers: usize,
    /// Number of racks (4).
    pub n_racks: usize,
    /// Number of ACU internal inlet sensors, `N_a` (2).
    pub n_acu_sensors: usize,
    /// Number of rack-installed DC sensors, `N_d` (35).
    pub n_dc_sensors: usize,
    /// How many of the DC sensors monitor the cold aisle (11). These are
    /// sensor indices `0..n_cold_aisle_sensors`.
    pub n_cold_aisle_sensors: usize,
    /// Minimum ACU set-point (`S_min` = 20 °C).
    pub setpoint_min: Celsius,
    /// Maximum ACU set-point (`S_max` = 35 °C).
    pub setpoint_max: Celsius,
    /// Sampling period Δt, seconds (60 in Table 2).
    pub sample_period_s: f64,
    /// Inner physics integration step, seconds.
    pub inner_dt_s: f64,
    /// Server model parameters.
    pub server: ServerParams,
    /// ACU model parameters.
    pub acu: AcuParams,
    /// Thermal network parameters.
    pub thermal: ThermalParams,
    /// Rack sensor parameters.
    pub sensors: SensorParams,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            n_servers: 21,
            n_racks: 4,
            n_acu_sensors: 2,
            n_dc_sensors: 35,
            n_cold_aisle_sensors: 11,
            setpoint_min: SETPOINT_RANGE.min(),
            setpoint_max: SETPOINT_RANGE.max(),
            sample_period_s: 60.0,
            inner_dt_s: 1.0,
            server: ServerParams::default(),
            acu: AcuParams::default(),
            thermal: ThermalParams::default(),
            sensors: SensorParams::default(),
        }
    }
}

impl SimConfig {
    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.n_servers == 0 {
            return Err(SimError::InvalidConfig("n_servers must be > 0".into()));
        }
        if self.n_cold_aisle_sensors > self.n_dc_sensors {
            return Err(SimError::InvalidConfig(
                "cold-aisle sensor count exceeds total sensor count".into(),
            ));
        }
        if self.n_acu_sensors == 0 || self.n_acu_sensors != self.acu.inlet_sensor_bias.len() {
            return Err(SimError::InvalidConfig(
                "n_acu_sensors must match inlet_sensor_bias length".into(),
            ));
        }
        if self.setpoint_min >= self.setpoint_max {
            return Err(SimError::InvalidConfig(
                "setpoint_min >= setpoint_max".into(),
            ));
        }
        if self.inner_dt_s <= 0.0 || self.sample_period_s < self.inner_dt_s {
            return Err(SimError::InvalidConfig(
                "need 0 < inner_dt_s <= sample_period_s".into(),
            ));
        }
        if self.thermal.leakage < 0.0 || self.thermal.leakage >= 1.0 {
            return Err(SimError::InvalidConfig("leakage must be in [0, 1)".into()));
        }
        if self.acu.q_max_kw <= 0.0 || self.thermal.mdot_cp_kw_per_k <= 0.0 {
            return Err(SimError::InvalidConfig(
                "q_max_kw and mdot_cp must be positive".into(),
            ));
        }
        Ok(())
    }

    /// The ACU's set-point specification range `[S_min, S_max]` — the
    /// single source for set-point validation and clamping.
    pub fn setpoint_range(&self) -> CelsiusRange {
        CelsiusRange::new(self.setpoint_min, self.setpoint_max)
    }

    /// Indices of the cold-aisle sensors (the thermal-safety constraint
    /// set `I_cold` of Eq. 9).
    pub fn cold_aisle_indices(&self) -> std::ops::Range<usize> {
        0..self.n_cold_aisle_sensors
    }

    /// Number of inner physics steps per sampling period.
    pub fn inner_steps_per_sample(&self) -> usize {
        (self.sample_period_s / self.inner_dt_s).round().max(1.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid_and_matches_table1() {
        let c = SimConfig::default();
        c.validate().unwrap();
        assert_eq!(c.n_servers, 21);
        assert_eq!(c.n_racks, 4);
        assert_eq!(c.n_acu_sensors, 2);
        assert_eq!(c.n_dc_sensors, 35);
        assert_eq!(c.n_cold_aisle_sensors, 11);
        assert_eq!(c.setpoint_min, Celsius::new(20.0));
        assert_eq!(c.setpoint_max, Celsius::new(35.0));
        assert_eq!(c.setpoint_range().span().value(), 15.0);
        assert_eq!(c.sample_period_s, 60.0);
        assert_eq!(c.inner_steps_per_sample(), 60);
    }

    #[test]
    fn invalid_configs_rejected() {
        let c = SimConfig {
            n_servers: 0,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());

        let c = SimConfig {
            n_cold_aisle_sensors: 99,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());

        let mut c = SimConfig::default();
        c.acu.inlet_sensor_bias = vec![0.0];
        assert!(c.validate().is_err());

        let c = SimConfig {
            setpoint_min: Celsius::new(40.0),
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());

        let c = SimConfig {
            inner_dt_s: 120.0,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());

        let mut c = SimConfig::default();
        c.thermal.leakage = 1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn cold_aisle_indices_are_a_prefix() {
        let c = SimConfig::default();
        let idx: Vec<usize> = c.cold_aisle_indices().collect();
        assert_eq!(idx.len(), 11);
        assert_eq!(idx[0], 0);
        assert_eq!(*idx.last().unwrap(), 10);
    }
}
