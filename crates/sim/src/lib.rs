//! Synthetic replacement for the paper's physical testbed (§4, Table 1).
//!
//! The original TESLA system was deployed on a 21-server / 4-rack data
//! center with one Envicool XR023A air-cooling unit (ACU), 35 rack
//! temperature sensors (11 in the cold aisle), 2 ACU inlet sensors, and a
//! Modbus register interface for set-point execution. None of that hardware
//! is available to a reproduction, so this crate implements the closest
//! synthetic equivalent that exercises the same code paths:
//!
//! * [`pid`] — the ACU's proportional-integral-derivative controller
//!   (§2.1), including the *cooling interruption* regime: when the
//!   set-point sits above the actual inlet temperature the residual error
//!   is positive, the compressor duty collapses, and ACU power drops to
//!   the ~0.1 kW fan floor.
//! * [`acu`] — compressor/evaporator model: cooling capacity, COP that
//!   improves with supply temperature (the physical reason raising the
//!   set-point saves energy), part-load efficiency, and the two biased
//!   inlet sensors.
//! * [`thermal`] — a lumped three-node thermal network (cold aisle, hot
//!   aisle, equipment mass) calibrated to the paper's measured dynamics:
//!   roughly 1 °C/min cold-aisle rise during cooling interruption and
//!   roughly half that recovery rate (Fig. 3).
//! * [`server`] — per-server power as a function of CPU utilization with
//!   first-order lag and measurement noise (Fig. 2's power variance under
//!   a constant set-point comes from here).
//! * [`sensors`] — the 35-sensor rack array with per-sensor spatial
//!   offsets, hot-air mixing fractions and noise; the cold-aisle subset
//!   drives the thermal-safety constraint (§3.3, Eq. 9).
//! * [`modbus`] — a register-map facade standing in for the Modbus
//!   protocol used to command the real ACU, with a validated
//!   controller-facing write path (writable-register ranges, set-point
//!   bounds) returning typed errors.
//! * [`faults`] — schedulable fault injection: stuck/drifting/dropped/
//!   noisy sensors, set-point writes that time out or are rejected, and
//!   plant derates (fouled coils, fan failure), all windowed over
//!   simulated minutes.
//! * [`testbed`] — the facade tying everything together; one call per
//!   sampling period (Δt = 1 min) integrates the physics at a fine inner
//!   step and returns an [`Observation`] with every signal the paper's
//!   Telegraf deployment collects.
//!
//! Everything is deterministic given a seed.
//!
//! # Example: one metered minute on the testbed
//!
//! ```
//! use tesla_sim::{SimConfig, Testbed};
//! use tesla_units::{Celsius, SETPOINT_RANGE};
//!
//! let cfg = SimConfig::default();
//! let mut tb = Testbed::new(cfg.clone(), 7)?;
//! tb.try_write_setpoint(SETPOINT_RANGE.check(Celsius::new(24.0))?)?;
//! let obs = tb.step_sample(&vec![0.3; cfg.n_servers])?;
//! assert!(obs.cold_aisle_max.is_finite() && obs.acu_power_kw > 0.0);
//! # Ok::<(), tesla_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acu;
pub mod config;
pub mod faults;
pub mod modbus;
pub mod multizone;
pub mod pid;
pub mod plant;
pub mod sensors;
pub mod server;
pub mod testbed;
pub mod thermal;

pub use config::{AcuParams, PidParams, SensorParams, ServerParams, SimConfig, ThermalParams};
pub use faults::{
    ActuatorFault, ActuatorFaultKind, FaultPlan, FaultWindow, PlantFault, PlantFaultKind,
    SensorFault, SensorFaultKind, SensorTarget,
};
pub use multizone::{MultiZoneConfig, MultiZoneTestbed};
pub use plant::CoolingPlant;
pub use testbed::{Observation, Testbed};

use tesla_units::{Celsius, UnitError};

/// Errors surfaced by the simulator facade.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A utilization vector of the wrong length was supplied.
    BadUtilization {
        /// Number of servers the simulator was configured with.
        expected: usize,
        /// Length of the vector actually supplied.
        got: usize,
    },
    /// A utilization value outside `[0, 1]` was supplied.
    UtilizationOutOfRange(f64),
    /// An unknown Modbus register was addressed.
    UnknownRegister(u16),
    /// A write targeted a register the controller may not write
    /// (input/telemetry registers are device-owned).
    ReadOnlyRegister(u16),
    /// A set-point write outside the ACU's specification range.
    SetpointOutOfRange {
        /// The rejected set-point.
        value: Celsius,
        /// Lower end of the writable range.
        min: Celsius,
        /// Upper end of the writable range.
        max: Celsius,
    },
    /// A non-finite value was offered to a register write.
    NonFiniteWrite(Celsius),
    /// A Modbus write timed out (injected actuator fault); the device
    /// keeps its previous value.
    WriteTimeout,
    /// The device rejected the write with an illegal-data-address
    /// response (injected actuator fault).
    RegisterRejected(u16),
    /// Configuration failed validation.
    InvalidConfig(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::BadUtilization { expected, got } => {
                write!(f, "expected {expected} per-server utilizations, got {got}")
            }
            SimError::UtilizationOutOfRange(u) => {
                write!(f, "utilization {u} outside [0, 1]")
            }
            SimError::UnknownRegister(r) => write!(f, "unknown Modbus register {r:#06x}"),
            SimError::ReadOnlyRegister(r) => {
                write!(f, "Modbus register {r:#06x} is not controller-writable")
            }
            SimError::SetpointOutOfRange { value, min, max } => {
                write!(f, "set-point {value} outside spec range [{min}, {max}]")
            }
            SimError::NonFiniteWrite(v) => {
                write!(f, "non-finite register write value {}", v.value())
            }
            SimError::WriteTimeout => write!(f, "Modbus write timed out"),
            SimError::RegisterRejected(r) => {
                write!(f, "device rejected write to register {r:#06x}")
            }
            SimError::InvalidConfig(msg) => write!(f, "invalid simulator config: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<UnitError> for SimError {
    /// Maps the units layer's validation failures onto the simulator's
    /// register-write error vocabulary, so [`tesla_units::CelsiusRange::check`]
    /// can be the single place set-point bounds are enforced.
    fn from(e: UnitError) -> Self {
        match e {
            UnitError::NonFinite(v) => SimError::NonFiniteWrite(Celsius::new(v)),
            UnitError::OutOfRange { value, min, max } => {
                SimError::SetpointOutOfRange { value, min, max }
            }
            UnitError::BadUtilization(u) => SimError::UtilizationOutOfRange(u),
            UnitError::Parse => SimError::InvalidConfig("malformed quantity string".into()),
        }
    }
}
