//! The rack-installed sensor array (`N_d = 35`, 11 monitoring the cold
//! aisle — Table 1).
//!
//! Each sensor reads a mix of the cold- and hot-aisle bulk temperatures:
//! cold-aisle sensors sit mostly in supply air but see some hot-air
//! recirculation near the rack tops (their *mix fraction* is small);
//! hot-aisle/rack-exhaust sensors are dominated by hot-aisle air. Each
//! sensor also carries a deterministic spatial offset (vertical
//! stratification) and white measurement noise.

use crate::config::SimConfig;
use rand::Rng;
use rand_distr::{Distribution, Normal};
use tesla_units::Celsius;

/// One physical temperature sensor's placement model.
#[derive(Debug, Clone, Copy)]
struct Placement {
    /// Fraction of hot-aisle air in what the sensor samples (0 = pure
    /// cold-aisle, 1 = pure hot-aisle).
    mix: f64,
    /// Static spatial offset, °C.
    offset: f64,
}

/// The full rack sensor array.
#[derive(Debug, Clone)]
pub struct SensorArray {
    placements: Vec<Placement>,
    n_cold: usize,
    noise: Normal<f64>,
}

impl SensorArray {
    /// Builds the array from the testbed configuration. Placements are
    /// deterministic (derived from the sensor index), so two arrays built
    /// from the same config are identical.
    pub fn new(cfg: &SimConfig) -> Self {
        let p = &cfg.sensors;
        let n = cfg.n_dc_sensors;
        let n_cold = cfg.n_cold_aisle_sensors;
        let mut placements = Vec::with_capacity(n);
        for k in 0..n {
            if k < n_cold {
                // Cold-aisle: bottom-of-rack sensors are nearly pure
                // supply air; top-of-rack ones see a little recirculation.
                let frac = if n_cold > 1 {
                    k as f64 / (n_cold - 1) as f64
                } else {
                    0.0
                };
                placements.push(Placement {
                    mix: p.cold_mix_max * frac,
                    offset: p.cold_offset_span * frac - 0.2,
                });
            } else {
                // Hot-aisle / rack exhaust sensors.
                let j = k - n_cold;
                let n_hot = (n - n_cold).max(1);
                let frac = j as f64 / n_hot as f64;
                placements.push(Placement {
                    mix: 0.75 + 0.25 * frac,
                    offset: 1.5 * frac - 0.5,
                });
            }
        }
        SensorArray {
            placements,
            n_cold,
            noise: Normal::new(0.0, p.noise_std.max(1e-12)).expect("finite std"),
        }
    }

    /// Number of sensors.
    pub fn len(&self) -> usize {
        self.placements.len()
    }

    /// True when the array is empty.
    pub fn is_empty(&self) -> bool {
        self.placements.is_empty()
    }

    /// Number of cold-aisle sensors (their indices are `0..n_cold()`).
    pub fn n_cold(&self) -> usize {
        self.n_cold
    }

    /// Samples every sensor given the aisle temperatures. Raw `f64`
    /// readings are returned (not `Celsius`): downstream fault injection
    /// corrupts them with NaN dropouts and stuck values, so they are
    /// untrusted telemetry rather than validated quantities.
    pub fn sample<R: Rng>(&self, cold_aisle: Celsius, hot_aisle: Celsius, rng: &mut R) -> Vec<f64> // lint:allow(no-raw-f64-in-public-api): untrusted bulk telemetry
    {
        self.placements
            .iter()
            .map(|pl| {
                let base = (1.0 - pl.mix) * cold_aisle.value() + pl.mix * hot_aisle.value();
                base + pl.offset + self.noise.sample(rng)
            })
            .collect()
    }

    /// Noise-free reading of the *hottest cold-aisle* location — the
    /// quantity the thermal-safety constraint (Eq. 9) watches.
    pub fn cold_aisle_max_true(&self, cold_aisle: Celsius, hot_aisle: Celsius) -> Celsius {
        Celsius::new(
            self.placements[..self.n_cold]
                .iter()
                .map(|pl| {
                    (1.0 - pl.mix) * cold_aisle.value() + pl.mix * hot_aisle.value() + pl.offset
                })
                .fold(f64::NEG_INFINITY, f64::max),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn array() -> SensorArray {
        SensorArray::new(&SimConfig::default())
    }

    fn c(v: f64) -> Celsius {
        Celsius::new(v)
    }

    #[test]
    fn sensor_counts_match_table1() {
        let a = array();
        assert_eq!(a.len(), 35);
        assert_eq!(a.n_cold(), 11);
    }

    #[test]
    fn cold_sensors_read_cooler_than_hot_sensors() {
        let a = array();
        let mut rng = StdRng::seed_from_u64(1);
        let readings = a.sample(c(18.0), c(26.0), &mut rng);
        let cold_mean: f64 = readings[..11].iter().sum::<f64>() / 11.0;
        let hot_mean: f64 = readings[11..].iter().sum::<f64>() / 24.0;
        assert!(
            hot_mean - cold_mean > 4.0,
            "cold {cold_mean:.1} vs hot {hot_mean:.1}"
        );
    }

    #[test]
    fn cold_sensor_readings_track_cold_aisle() {
        let a = array();
        let mut rng = StdRng::seed_from_u64(2);
        let cool = a.sample(c(16.0), c(24.0), &mut rng);
        let warm = a.sample(c(20.0), c(24.0), &mut rng);
        for k in 0..a.n_cold() {
            assert!(
                warm[k] > cool[k] + 2.0,
                "sensor {k} must follow the cold aisle"
            );
        }
    }

    #[test]
    fn cold_aisle_max_true_exceeds_bulk_cold_temp() {
        // Top-of-rack stratification: the binding sensor reads warmer
        // than the bulk cold-aisle temperature.
        let a = array();
        let max = a.cold_aisle_max_true(c(18.0), c(26.0));
        assert!(max > c(18.0));
        assert!(max < c(26.0));
    }

    #[test]
    fn determinism_given_same_seed() {
        let a = array();
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        assert_eq!(
            a.sample(c(18.0), c(25.0), &mut r1),
            a.sample(c(18.0), c(25.0), &mut r2)
        );
    }

    #[test]
    fn noise_is_bounded_in_practice() {
        let a = array();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let r = a.sample(c(18.0), c(26.0), &mut rng);
            for v in r {
                assert!(v > 10.0 && v < 35.0, "reading {v} out of plausible range");
            }
        }
    }
}
