//! Air-cooling unit: PID-driven compressor, COP curve, inlet sensors.
//!
//! Power model (calibrated to §2.1's reported range of ~0.1 kW to ~5 kW):
//!
//! ```text
//! P_acu = P_fan + P_base + Q_eff / (COP(T_supply) · PLF(duty))    duty > ε
//! P_acu = P_fan                                                    duty ≤ ε
//! ```
//!
//! * COP rises with the supply (evaporator) temperature — serving the room
//!   with 20 °C air is cheaper per joule than with 14 °C air. This is the
//!   physical mechanism behind the paper's energy savings: TESLA raises
//!   the set-point, the supply temperature rises, the COP improves.
//! * PLF (part-load factor) penalizes low-duty compressor cycling.
//! * When the set-point exceeds the inlet temperature, the PID collapses
//!   duty to ~0 and the unit consumes only fan power: *cooling
//!   interruption* (the paper detects it as ACU power below 0.1 kW).

use crate::config::AcuParams;
use crate::pid::Pid;
use rand::Rng;
use rand_distr::{Distribution, Normal};
use tesla_units::{Celsius, DegC, Kilowatts, Seconds};

/// Per-step output of the ACU model.
#[derive(Debug, Clone, Copy)]
pub struct AcuStep {
    /// Compressor duty in `[0, 1]`.
    pub duty: f64,
    /// Heat actually extracted.
    pub q_kw: Kilowatts,
    /// Supply-air temperature.
    pub supply_temp: Celsius,
    /// Electrical power.
    pub power_kw: Kilowatts,
    /// True when cold-air delivery is interrupted.
    pub interrupted: bool,
}

/// Stateful ACU model.
#[derive(Debug, Clone)]
pub struct Acu {
    params: AcuParams,
    pid: Pid,
    setpoint: Celsius,
    noise: Normal<f64>,
    last_supply: Celsius,
    /// Previous applied duty, for the upward slew-rate limit.
    prev_duty: f64,
    /// Transient capacity multiplier on `q_max` (fouled coil; 1 = healthy).
    capacity_derate: f64,
    /// True while the supply fan has failed: no airflow, no extraction,
    /// no power draw.
    fan_failed: bool,
}

impl Acu {
    /// Creates an ACU with the given parameters and an initial set-point.
    pub fn new(params: AcuParams, initial_setpoint: Celsius) -> Self {
        let pid = Pid::new(params.pid.clone());
        let noise = Normal::new(0.0, params.inlet_noise_std.max(1e-12)).expect("finite std");
        Acu {
            pid,
            noise,
            setpoint: initial_setpoint,
            last_supply: initial_setpoint - DegC::new(4.0),
            prev_duty: 0.0,
            capacity_derate: 1.0,
            fan_failed: false,
            params,
        }
    }

    /// Parameters in use.
    pub fn params(&self) -> &AcuParams {
        &self.params
    }

    /// Currently executed set-point.
    pub fn setpoint(&self) -> Celsius {
        self.setpoint
    }

    /// Commands a new set-point (clamping is the testbed's job; the ACU
    /// trusts its register).
    pub fn set_setpoint(&mut self, sp: Celsius) {
        self.setpoint = sp;
    }

    /// Number of inlet sensors.
    pub fn n_sensors(&self) -> usize {
        self.params.inlet_sensor_bias.len()
    }

    /// Samples the inlet sensors given the true return-air temperature.
    pub fn sample_inlet_sensors<R: Rng>(&self, return_temp: Celsius, rng: &mut R) -> Vec<Celsius> {
        self.params
            .inlet_sensor_bias
            .iter()
            .map(|b| return_temp + DegC::new(b + self.noise.sample(rng)))
            .collect()
    }

    /// Advances the compressor control loop by `dt`.
    ///
    /// * `measured_inlet` — the PID's process variable (mean of the inlet
    ///   sensors on the real unit).
    /// * `true_return` — physical return-air temperature used to compute
    ///   the achievable supply temperature.
    /// * `mdot_cp` — air-loop heat capacity rate, kW/K.
    pub fn step(
        &mut self,
        measured_inlet: Celsius,
        true_return: Celsius,
        mdot_cp: f64,
        dt: Seconds,
    ) -> AcuStep {
        if self.fan_failed {
            // No airflow: nothing is extracted and the unit is dark. The
            // compressor restarts from zero duty (through the slew limit)
            // once the fan recovers.
            self.prev_duty = 0.0;
            self.last_supply = true_return;
            return AcuStep {
                duty: 0.0,
                q_kw: Kilowatts::new(0.0),
                supply_temp: true_return,
                power_kw: Kilowatts::new(0.0),
                interrupted: true,
            };
        }
        // Residual error: inlet − set-point. Positive → must cool harder.
        let error = (measured_inlet - self.setpoint).value();
        let commanded = self.pid.step(error, dt.value());
        // Compressors ramp load slowly but shed it fast: limit only the
        // upward slew.
        let duty = commanded.min(self.prev_duty + self.params.duty_slew_per_s * dt.value());
        self.prev_duty = duty;

        let q_requested = duty * self.params.q_max_kw * self.capacity_derate;
        // Supply cannot go below the evaporator floor.
        let supply_unclamped = true_return.value() - q_requested / mdot_cp;
        let supply = supply_unclamped.max(self.params.supply_temp_min);
        let q_eff = (true_return.value() - supply) * mdot_cp;

        let interrupted = duty <= self.params.interruption_duty;
        let power = if interrupted {
            self.params.fan_power_kw
        } else {
            let cop = (self.params.cop_intercept + self.params.cop_slope * supply)
                .max(self.params.cop_floor);
            let plf = self.params.plf_floor + (1.0 - self.params.plf_floor) * duty;
            self.params.fan_power_kw + self.params.base_power_kw + q_eff / (cop * plf)
        };

        self.last_supply = Celsius::new(supply);
        AcuStep {
            duty,
            q_kw: Kilowatts::new(q_eff),
            supply_temp: Celsius::new(supply),
            power_kw: Kilowatts::new(power),
            interrupted,
        }
    }

    /// Supply temperature from the most recent step.
    pub fn last_supply(&self) -> Celsius {
        self.last_supply
    }

    /// Resets controller dynamic state.
    pub fn reset(&mut self) {
        self.pid.reset();
        self.prev_duty = 0.0;
    }

    /// Degrades (or restores) the refrigeration efficiency by scaling the
    /// COP curve — fouled coils, refrigerant loss, worn compressors.
    /// `factor` multiplies both COP coefficients; values below 1 degrade.
    pub fn scale_cop(&mut self, factor: f64) {
        let f = factor.max(0.05);
        self.params.cop_intercept *= f;
        self.params.cop_slope *= f;
    }

    /// Sets the transient capacity derate (fouled coil): `q_max` is
    /// multiplied by `factor` until the next call. 1.0 restores health.
    pub fn set_capacity_derate(&mut self, factor: f64) {
        self.capacity_derate = factor.clamp(0.0, 1.0);
    }

    /// Current transient capacity derate.
    pub fn capacity_derate(&self) -> f64 {
        self.capacity_derate
    }

    /// Fails or restores the supply fan.
    pub fn set_fan_failed(&mut self, failed: bool) {
        self.fan_failed = failed;
    }

    /// True while the supply fan is failed.
    pub fn fan_failed(&self) -> bool {
        self.fan_failed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn acu(sp: f64) -> Acu {
        Acu::new(AcuParams::default(), Celsius::new(sp))
    }

    /// One 1 s step with the measured inlet equal to the true return.
    fn step1(a: &mut Acu, temp: f64) -> AcuStep {
        a.step(
            Celsius::new(temp),
            Celsius::new(temp),
            1.0,
            Seconds::new(1.0),
        )
    }

    #[test]
    fn setpoint_above_inlet_interrupts_cooling() {
        let mut a = acu(30.0);
        // Inlet at 24 °C, set-point 30 °C: residual error negative.
        let mut last = None;
        for _ in 0..120 {
            last = Some(step1(&mut a, 24.0));
        }
        let s = last.unwrap();
        assert!(s.interrupted);
        assert!((s.power_kw.value() - AcuParams::default().fan_power_kw).abs() < 1e-12);
        assert_eq!(s.q_kw.value(), 0.0);
    }

    #[test]
    fn setpoint_below_inlet_drives_duty_up() {
        let mut a = acu(20.0);
        let mut duties = Vec::new();
        for _ in 0..700 {
            duties.push(step1(&mut a, 27.0).duty);
        }
        assert!(duties[0] > 0.0);
        // The slew limiter paces the ramp, but a persistent error must
        // still saturate the compressor eventually.
        assert!(
            *duties.last().unwrap() > 0.9,
            "persistent error saturates duty"
        );
        // And the ramp respects the slew limit.
        for w in duties.windows(2) {
            assert!(w[1] - w[0] <= 0.002 + 1e-12);
        }
    }

    #[test]
    fn max_power_is_about_five_kilowatts() {
        // §2.1: "as high as ~5 kW on our testbed". Worst case: the unit
        // saturates (duty 1) while the supply floor pins the evaporator
        // at its coldest, least-efficient point.
        let mut a = acu(15.0);
        let mut p = 0.0;
        for _ in 0..600 {
            p = step1(&mut a, 24.0).power_kw.value();
        }
        assert!(p > 4.0 && p < 6.0, "saturated power {p} kW");
    }

    #[test]
    fn higher_supply_temperature_is_more_efficient() {
        // Same extraction duty at two return temperatures: the warmer
        // evaporator must draw less power per kW of heat moved.
        let params = AcuParams::default();
        let mut cold = Acu::new(params.clone(), Celsius::new(18.0));
        let mut warm = Acu::new(params, Celsius::new(26.0));
        let mut p_cold = 0.0;
        let mut p_warm = 0.0;
        let mut q_cold = 0.0;
        let mut q_warm = 0.0;
        for _ in 0..1200 {
            // Hold each at ~2 K residual error so duty settles similarly.
            let sc = step1(&mut cold, 20.0);
            let sw = step1(&mut warm, 28.0);
            p_cold = sc.power_kw.value();
            p_warm = sw.power_kw.value();
            q_cold = sc.q_kw.value();
            q_warm = sw.q_kw.value();
        }
        let eff_cold = q_cold / p_cold;
        let eff_warm = q_warm / p_warm;
        assert!(
            eff_warm > eff_cold,
            "kW-per-kW: warm {eff_warm:.2} must beat cold {eff_cold:.2}"
        );
    }

    #[test]
    fn supply_temperature_respects_floor() {
        let mut a = acu(5.0); // absurdly low set-point
        let mut s = step1(&mut a, 14.0);
        for _ in 0..600 {
            s = step1(&mut a, 14.0);
        }
        assert!(s.supply_temp.value() >= AcuParams::default().supply_temp_min - 1e-9);
        // Effective Q is limited accordingly.
        assert!(s.q_kw.value() <= (14.0 - AcuParams::default().supply_temp_min) + 1e-9);
    }

    #[test]
    fn inlet_sensors_carry_bias_and_noise() {
        let a = acu(25.0);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 4000;
        let mut sums = vec![0.0; a.n_sensors()];
        for _ in 0..n {
            for (s, v) in sums
                .iter_mut()
                .zip(a.sample_inlet_sensors(Celsius::new(25.0), &mut rng))
            {
                *s += v.value();
            }
        }
        let means: Vec<f64> = sums.iter().map(|s| s / n as f64).collect();
        let bias = &AcuParams::default().inlet_sensor_bias;
        for (m, b) in means.iter().zip(bias) {
            assert!((m - (25.0 + b)).abs() < 0.01, "sensor mean {m} vs bias {b}");
        }
    }

    #[test]
    fn setpoint_dip_costs_transient_power() {
        // Fig. 4: a transient set-point dip of ~1 °C raises power by tens
        // of percent even though the lower set-point is never reached.
        // This is a closed-loop effect, so couple the ACU to the thermal
        // network.
        use crate::config::ThermalParams;
        use crate::thermal::ThermalNetwork;
        let mut a = acu(28.5);
        let mut net = ThermalNetwork::new(ThermalParams::default());
        let heat = Kilowatts::new(5.0);
        let dt = Seconds::new(1.0);
        let mut settled = 0.0;
        for _ in 0..40_000 {
            let ret = net.return_temp();
            let s = a.step(ret, ret, 1.0, dt);
            net.step(s.supply_temp, heat, dt);
            settled = s.power_kw.value();
        }
        // Dip the set-point by 1 °C for two minutes.
        a.set_setpoint(Celsius::new(27.5));
        let mut peak: f64 = 0.0;
        for _ in 0..120 {
            let ret = net.return_temp();
            let s = a.step(ret, ret, 1.0, dt);
            net.step(s.supply_temp, heat, dt);
            peak = peak.max(s.power_kw.value());
        }
        assert!(
            peak > settled * 1.10,
            "dip should raise power: settled {settled:.2} kW, peak {peak:.2} kW"
        );
    }

    #[test]
    fn cop_degradation_raises_power() {
        let mut healthy = acu(20.0);
        let mut degraded = acu(20.0);
        degraded.scale_cop(0.7);
        let mut p_healthy = 0.0;
        let mut p_degraded = 0.0;
        for _ in 0..900 {
            p_healthy = step1(&mut healthy, 24.0).power_kw.value();
            p_degraded = step1(&mut degraded, 24.0).power_kw.value();
        }
        assert!(
            p_degraded > p_healthy * 1.2,
            "degraded {p_degraded:.2} kW vs healthy {p_healthy:.2} kW"
        );
    }

    #[test]
    fn capacity_derate_limits_extraction() {
        let mut healthy = acu(20.0);
        let mut fouled = acu(20.0);
        fouled.set_capacity_derate(0.4);
        let mut q_healthy = 0.0;
        let mut q_fouled = 0.0;
        for _ in 0..900 {
            q_healthy = step1(&mut healthy, 27.0).q_kw.value();
            q_fouled = step1(&mut fouled, 27.0).q_kw.value();
        }
        assert!(
            q_fouled < q_healthy * 0.6,
            "fouled {q_fouled:.2} kW vs healthy {q_healthy:.2} kW"
        );
        // Restoring health restores capacity.
        fouled.set_capacity_derate(1.0);
        for _ in 0..900 {
            q_fouled = step1(&mut fouled, 27.0).q_kw.value();
        }
        assert!((q_fouled - q_healthy).abs() < 0.5);
    }

    #[test]
    fn fan_failure_kills_extraction_and_power() {
        let mut a = acu(20.0);
        for _ in 0..300 {
            step1(&mut a, 27.0);
        }
        a.set_fan_failed(true);
        let s = step1(&mut a, 27.0);
        assert!(s.interrupted);
        assert_eq!(s.q_kw.value(), 0.0);
        assert_eq!(s.power_kw.value(), 0.0);
        assert_eq!(s.supply_temp, Celsius::new(27.0));
        // Recovery ramps the compressor back through the slew limit.
        a.set_fan_failed(false);
        let s1 = step1(&mut a, 27.0);
        assert!(s1.duty <= AcuParams::default().duty_slew_per_s + 1e-12);
    }

    #[test]
    fn reset_clears_pid_state() {
        // Accumulate integral at a moderate, non-saturating error.
        let mut a = acu(26.0);
        for _ in 0..100 {
            step1(&mut a, 27.0);
        }
        let before = step1(&mut a, 27.0).duty;
        a.reset();
        let after = step1(&mut a, 27.0).duty;
        assert!(
            after < before,
            "reset must drop the accumulated integral: before {before}, after {after}"
        );
    }
}
