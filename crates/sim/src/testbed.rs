//! The testbed facade: servers + thermal network + ACU + sensors, driven
//! one sampling period (Δt = 1 min) at a time.
//!
//! Physics integrate at a fine inner step (default 1 s); the observation
//! returned after each sampling period carries every signal the paper's
//! Telegraf deployment collects (§4): per-server power and CPU/memory
//! utilization, ACU instantaneous power and inlet-sensor temperatures,
//! and the 35 rack sensor readings. Set-points are commanded through the
//! Modbus register facade, quantized to 0.1 °C like the real device.

use crate::acu::Acu;
use crate::config::SimConfig;
use crate::faults::{ActuatorFaultKind, FaultPlan};
use crate::modbus::{RegisterMap, REG_INLET_BASE, REG_POWER_W, REG_SETPOINT};
use crate::sensors::SensorArray;
use crate::server::ServerBank;
use crate::thermal::ThermalNetwork;
use crate::SimError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tesla_units::{Celsius, Kilowatts, Seconds, NOMINAL_SETPOINT};

/// One sampling period's worth of telemetry.
#[derive(Debug, Clone)]
pub struct Observation {
    /// Simulation time at the end of the period, seconds.
    pub time_s: f64,
    /// Set-point the ACU executed during this period, °C.
    pub setpoint: f64, // lint:allow(no-raw-f64-in-public-api): bulk telemetry record
    /// ACU inlet sensor readings at the sample instant (`N_a` values), °C.
    pub acu_inlet_temps: Vec<f64>, // lint:allow(no-raw-f64-in-public-api): bulk telemetry record
    /// Rack sensor readings (`N_d` values), °C. Cold-aisle sensors come
    /// first (indices `0..n_cold_aisle_sensors`).
    pub dc_temps: Vec<f64>, // lint:allow(no-raw-f64-in-public-api): bulk telemetry record
    /// Per-server electrical power, kW.
    pub server_powers_kw: Vec<f64>, // lint:allow(no-raw-f64-in-public-api): bulk telemetry record
    /// Average per-server power, kW (the ASP sub-module's signal).
    pub avg_server_power_kw: f64, // lint:allow(no-raw-f64-in-public-api): bulk telemetry record
    /// Per-server CPU utilization in `[0, 1]`.
    pub cpu_utils: Vec<f64>,
    /// Per-server memory utilization in `[0, 1]`.
    pub mem_utils: Vec<f64>,
    /// ACU instantaneous electrical power at the sample instant, kW.
    pub acu_power_kw: f64, // lint:allow(no-raw-f64-in-public-api): bulk telemetry record
    /// ACU energy consumed over this sampling period, kWh.
    pub acu_energy_kwh: f64, // lint:allow(no-raw-f64-in-public-api): bulk telemetry record
    /// Compressor duty at the sample instant.
    pub duty: f64,
    /// Supply-air temperature at the sample instant, °C.
    pub supply_temp: f64, // lint:allow(no-raw-f64-in-public-api): bulk telemetry record
    /// Fraction of this period spent in cooling interruption.
    pub interrupted_frac: f64,
    /// Max over the cold-aisle sensor readings, °C (Eq. 9's quantity).
    /// Computed from the *reported* (possibly fault-corrupted) readings;
    /// NaN dropouts are skipped.
    pub cold_aisle_max: f64, // lint:allow(no-raw-f64-in-public-api): untrusted telemetry record
    /// Noise- and fault-free max cold-aisle temperature, °C — the ground
    /// truth used to score thermal safety when sensors may be lying.
    pub cold_aisle_max_true: f64, // lint:allow(no-raw-f64-in-public-api): scoring ground truth, telemetry record
}

impl Observation {
    /// True if any cold-aisle sensor exceeded `limit` at the sample instant.
    pub fn violates(&self, limit: f64) -> bool {
        self.cold_aisle_max > limit
    }
}

/// The simulated data-center testbed.
#[derive(Debug)]
pub struct Testbed {
    cfg: SimConfig,
    servers: ServerBank,
    thermal: ThermalNetwork,
    acu: Acu,
    sensors: SensorArray,
    registers: RegisterMap,
    faults: FaultPlan,
    rng: StdRng,
    time_s: f64,
    /// Fault kinds active at the previous sample (for rising-edge
    /// activation counters).
    active_faults: Vec<&'static str>,
}

impl Testbed {
    /// Builds a testbed from a validated configuration and RNG seed.
    pub fn new(cfg: SimConfig, seed: u64) -> Result<Self, SimError> {
        cfg.validate()?;
        let servers = ServerBank::new(cfg.n_servers, cfg.server.clone());
        let thermal = ThermalNetwork::new(cfg.thermal.clone());
        let initial_sp = cfg.setpoint_range().clamp(NOMINAL_SETPOINT);
        let acu = Acu::new(cfg.acu.clone(), initial_sp);
        let sensors = SensorArray::new(&cfg);
        let mut registers = RegisterMap::new();
        registers.write_temp(REG_SETPOINT, initial_sp);
        Ok(Testbed {
            cfg,
            servers,
            thermal,
            acu,
            sensors,
            registers,
            faults: FaultPlan::none(),
            rng: StdRng::seed_from_u64(seed),
            time_s: 0.0,
            active_faults: Vec::new(),
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Current simulation time, seconds.
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// Installs a fault schedule. Windows are interpreted in *testbed*
    /// simulation time (minutes since construction, including any
    /// warm-up the caller runs).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// The installed fault schedule.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Current simulation time in minutes (the unit fault windows use).
    pub fn time_min(&self) -> f64 {
        self.time_s / 60.0
    }

    /// Commands a new set-point through the Modbus register (clamped to
    /// the ACU's `[S_min, S_max]` specification, quantized to 0.1 °C).
    /// This legacy path ignores actuator faults; fault-aware callers use
    /// [`Testbed::try_write_setpoint`].
    pub fn write_setpoint(&mut self, sp: Celsius) {
        let clamped = self.cfg.setpoint_range().clamp(sp);
        self.registers.write_temp(REG_SETPOINT, clamped);
        let quantized = self
            .registers
            .read_temp(REG_SETPOINT)
            .expect("set-point register always populated");
        self.acu.set_setpoint(quantized);
    }

    /// Fallible set-point write: validates bounds through the register
    /// facade (typed error instead of silent clamping) and honours any
    /// actuator fault active right now. On success returns the quantized
    /// value the ACU latched; on failure the previous set-point stays in
    /// force.
    pub fn try_write_setpoint(&mut self, sp: Celsius) -> Result<Celsius, SimError> {
        match self.faults.active_actuator(self.time_min()) {
            Some(
                kind @ (ActuatorFaultKind::WriteTimeout | ActuatorFaultKind::RejectedRegister),
            ) => {
                tesla_obs::global()
                    .counter("sim_setpoint_write_faults_total", &[("kind", kind.label())])
                    .inc();
                return Err(match kind {
                    ActuatorFaultKind::WriteTimeout => SimError::WriteTimeout,
                    ActuatorFaultKind::RejectedRegister => SimError::RegisterRejected(REG_SETPOINT),
                });
            }
            None => {}
        }
        let quantized = self
            .registers
            .try_write_setpoint(sp, self.cfg.setpoint_range())?;
        self.acu.set_setpoint(quantized);
        tesla_obs::counter!("sim_setpoint_writes_total").inc();
        Ok(quantized)
    }

    /// The set-point currently latched in the ACU.
    pub fn setpoint(&self) -> Celsius {
        self.acu.setpoint()
    }

    /// Read-only access to the Modbus register map.
    pub fn registers(&self) -> &RegisterMap {
        &self.registers
    }

    /// Direct access to the thermal state (diagnostics and tests).
    pub fn thermal_state(&self) -> crate::thermal::ThermalState {
        self.thermal.state()
    }

    /// Injects ACU refrigeration degradation mid-run (fouled coils,
    /// refrigerant loss): scales the COP curve by `factor` (< 1 degrades).
    /// Used to study plant drift and online recalibration.
    pub fn degrade_acu_cop(&mut self, factor: f64) {
        self.acu.scale_cop(factor);
    }

    /// Changes the containment leakage mid-run (a removed blanking panel):
    /// the cold aisle runs warmer at the same set-point afterwards.
    pub fn set_containment_leakage(&mut self, leakage: f64) {
        self.thermal.set_leakage(leakage);
    }

    /// Runs the physics to a near-steady state under a constant
    /// utilization, without producing observations. Useful to start
    /// experiments from equilibrium instead of the arbitrary initial state.
    pub fn warm_up(&mut self, utils: &[f64], minutes: usize) -> Result<(), SimError> {
        for _ in 0..minutes {
            self.step_sample(utils)?;
        }
        Ok(())
    }

    /// Advances one sampling period (`cfg.sample_period_s`) with the given
    /// per-server utilization targets and returns the telemetry sample.
    pub fn step_sample(&mut self, utils: &[f64]) -> Result<Observation, SimError> {
        if utils.len() != self.cfg.n_servers {
            return Err(SimError::BadUtilization {
                expected: self.cfg.n_servers,
                got: utils.len(),
            });
        }
        for &u in utils {
            if !(0.0..=1.0).contains(&u) || !u.is_finite() {
                return Err(SimError::UtilizationOutOfRange(u));
            }
        }
        self.servers.set_targets(utils);

        // Plant faults resolve at sample granularity (windows are in
        // minutes, one sample is one minute).
        let t_min = self.time_min();
        if tesla_obs::enabled() {
            let now_active = self.faults.active_kind_labels(t_min);
            for kind in &now_active {
                if !self.active_faults.contains(kind) {
                    tesla_obs::global()
                        .counter("sim_fault_activations_total", &[("kind", kind)])
                        .inc();
                    tesla_obs::event("fault_activated", &[("t_min", t_min)]);
                }
            }
            self.active_faults = now_active;
        }
        self.acu
            .set_capacity_derate(self.faults.capacity_factor(t_min));
        self.acu.set_fan_failed(self.faults.fan_failed(t_min));

        let dt = self.cfg.inner_dt_s;
        let steps = self.cfg.inner_steps_per_sample();
        let mdot_cp = self.cfg.thermal.mdot_cp_kw_per_k;

        let mut energy_kwh = 0.0;
        let mut interrupted_steps = 0usize;
        let mut last_power = 0.0;
        let mut last_duty = 0.0;
        let mut last_supply = self.acu.last_supply().value();
        let mut last_measured = self.acu.setpoint().value();

        for _ in 0..steps {
            self.servers.step(dt);
            let heat = self.servers.total_heat_kw();
            let true_return = self.thermal.return_temp();
            // The PID acts on its (noisy, biased) inlet sensors.
            let inlet_samples = self.acu.sample_inlet_sensors(true_return, &mut self.rng);
            let measured = Celsius::new(
                inlet_samples.iter().map(|t| t.value()).sum::<f64>()
                    / inlet_samples.len().max(1) as f64,
            );
            let step = self
                .acu
                .step(measured, true_return, mdot_cp, Seconds::new(dt));
            self.thermal.step(step.supply_temp, heat, Seconds::new(dt));

            energy_kwh += step.power_kw.value() * dt / 3600.0;
            if step.interrupted {
                interrupted_steps += 1;
            }
            last_power = step.power_kw.value();
            last_duty = step.duty;
            last_supply = step.supply_temp.value();
            last_measured = measured.value();
            self.time_s += dt;
        }
        // The PID's tracking residual: measured inlet minus set-point at
        // the last inner step. Persistent nonzero values mean the loop
        // cannot reach its command (capacity derate, fan failure).
        tesla_obs::gauge!("sim_pid_error_celsius").set(last_measured - self.acu.setpoint().value());

        let state = self.thermal.state();
        let (cold_bulk, hot_bulk) = (
            Celsius::new(state.cold_aisle),
            Celsius::new(state.hot_aisle),
        );
        let mut acu_inlet_temps: Vec<f64> = self
            .acu
            .sample_inlet_sensors(hot_bulk, &mut self.rng)
            .iter()
            .map(|t| t.value())
            .collect();
        let mut dc_temps = self.sensors.sample(cold_bulk, hot_bulk, &mut self.rng);
        let cold_aisle_max_true = self
            .sensors
            .cold_aisle_max_true(cold_bulk, hot_bulk)
            .value();
        // Sensor faults corrupt only what is *reported*; the physics and
        // the ground-truth max above are untouched. Faults resolve
        // against the minute this sample started, matching plant faults.
        self.faults
            .corrupt_readings(t_min, &mut dc_temps, &mut acu_inlet_temps, &mut self.rng);
        let server_powers_kw = self.servers.powers_kw(&mut self.rng);
        let avg_server_power_kw =
            server_powers_kw.iter().sum::<f64>() / server_powers_kw.len().max(1) as f64;
        // NaN dropouts are skipped by f64::max.
        let cold_aisle_max = dc_temps[..self.cfg.n_cold_aisle_sensors]
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);

        self.registers
            .write_power_kw(REG_POWER_W, Kilowatts::new(last_power));
        for (i, v) in acu_inlet_temps.iter().enumerate() {
            self.registers
                .write_temp(REG_INLET_BASE + i as u16, Celsius::new(*v));
        }

        Ok(Observation {
            time_s: self.time_s,
            setpoint: self.acu.setpoint().value(),
            acu_inlet_temps,
            dc_temps,
            cpu_utils: self.servers.effective_utils().to_vec(),
            mem_utils: self.servers.mem_utils().to_vec(),
            server_powers_kw,
            avg_server_power_kw,
            acu_power_kw: last_power,
            acu_energy_kwh: energy_kwh,
            duty: last_duty,
            supply_temp: last_supply,
            interrupted_frac: interrupted_steps as f64 / steps as f64,
            cold_aisle_max,
            cold_aisle_max_true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn testbed() -> Testbed {
        Testbed::new(SimConfig::default(), 42).unwrap()
    }

    fn uniform(u: f64) -> Vec<f64> {
        vec![u; SimConfig::default().n_servers]
    }

    #[test]
    fn observation_has_table1_shapes() {
        let mut tb = testbed();
        let obs = tb.step_sample(&uniform(0.2)).unwrap();
        assert_eq!(obs.acu_inlet_temps.len(), 2);
        assert_eq!(obs.dc_temps.len(), 35);
        assert_eq!(obs.server_powers_kw.len(), 21);
        assert_eq!(obs.cpu_utils.len(), 21);
        assert!((obs.time_s - 60.0).abs() < 1e-9);
    }

    #[test]
    fn bad_utilization_inputs_rejected() {
        let mut tb = testbed();
        assert!(matches!(
            tb.step_sample(&[0.5; 3]),
            Err(SimError::BadUtilization {
                expected: 21,
                got: 3
            })
        ));
        assert!(matches!(
            tb.step_sample(&uniform(1.5)),
            Err(SimError::UtilizationOutOfRange(_))
        ));
        let mut bad = uniform(0.2);
        bad[0] = f64::NAN;
        assert!(tb.step_sample(&bad).is_err());
    }

    #[test]
    fn modbus_registers_mirror_telemetry() {
        use crate::modbus::{REG_INLET_BASE, REG_POWER_W};
        let mut tb = testbed();
        tb.write_setpoint(Celsius::new(24.0));
        let obs = tb.step_sample(&uniform(0.3)).unwrap();
        let regs = tb.registers();
        // Power register mirrors the last instantaneous power (W-quantized).
        let reg_p = regs.read_power_kw(REG_POWER_W).unwrap();
        assert!((reg_p.value() - obs.acu_power_kw).abs() < 0.001);
        // Inlet registers mirror the sampled sensor temps (0.1 C quantized).
        for (i, v) in obs.acu_inlet_temps.iter().enumerate() {
            let reg_t = regs.read_temp(REG_INLET_BASE + i as u16).unwrap();
            assert!((reg_t.value() - v).abs() <= 0.05 + 1e-9);
        }
    }

    #[test]
    fn setpoint_clamps_to_spec_range() {
        let mut tb = testbed();
        tb.write_setpoint(Celsius::new(50.0));
        assert_eq!(tb.setpoint(), Celsius::new(35.0));
        tb.write_setpoint(Celsius::new(1.0));
        assert_eq!(tb.setpoint(), Celsius::new(20.0));
        tb.write_setpoint(Celsius::new(23.456));
        // Quantized to 0.1 °C by the register facade.
        assert!((tb.setpoint().value() - 23.5).abs() < 1e-9);
    }

    #[test]
    fn fixed_setpoint_reaches_thermal_safety() {
        // The paper's fixed 23 °C policy never violates the 22 °C
        // cold-aisle limit; neither should ours at medium load.
        let mut tb = testbed();
        tb.write_setpoint(Celsius::new(23.0));
        tb.warm_up(&uniform(0.25), 240).unwrap();
        let obs = tb.step_sample(&uniform(0.25)).unwrap();
        assert!(
            obs.cold_aisle_max < 22.0,
            "cold aisle max {} should be safe at 23 °C set-point",
            obs.cold_aisle_max
        );
        assert!(obs.interrupted_frac < 0.05, "no interruption expected");
    }

    #[test]
    fn high_setpoint_causes_interruption_and_fan_floor_power() {
        let mut tb = testbed();
        tb.write_setpoint(Celsius::new(23.0));
        tb.warm_up(&uniform(0.2), 180).unwrap();
        // Jump the set-point far above the return temperature.
        tb.write_setpoint(Celsius::new(35.0));
        let obs = tb.step_sample(&uniform(0.2)).unwrap();
        assert!(
            obs.interrupted_frac > 0.5,
            "interrupted {}",
            obs.interrupted_frac
        );
        assert!(
            obs.acu_power_kw <= 0.11,
            "fan floor, got {} kW",
            obs.acu_power_kw
        );
    }

    #[test]
    fn interruption_heats_the_cold_aisle_about_a_degree_per_minute() {
        let mut tb = testbed();
        tb.write_setpoint(Celsius::new(23.0));
        tb.warm_up(&uniform(0.35), 240).unwrap();
        let before = tb.step_sample(&uniform(0.35)).unwrap().cold_aisle_max;
        tb.write_setpoint(Celsius::new(35.0)); // force interruption
        for _ in 0..4 {
            tb.step_sample(&uniform(0.35)).unwrap();
        }
        let after = tb.step_sample(&uniform(0.35)).unwrap().cold_aisle_max;
        let rate = (after - before) / 5.0;
        assert!(rate > 0.4 && rate < 2.5, "rise rate {rate} °C/min");
    }

    #[test]
    fn energy_accumulates_with_power() {
        let mut tb = testbed();
        tb.write_setpoint(Celsius::new(21.0));
        tb.warm_up(&uniform(0.4), 120).unwrap();
        let obs = tb.step_sample(&uniform(0.4)).unwrap();
        // One minute at P kW is P/60 kWh.
        assert!(obs.acu_energy_kwh > 0.0);
        assert!((obs.acu_energy_kwh - obs.acu_power_kw / 60.0).abs() < 0.02);
    }

    #[test]
    fn higher_load_means_higher_acu_power_at_fixed_setpoint() {
        let mut idle = testbed();
        let mut busy = testbed();
        idle.write_setpoint(Celsius::new(23.0));
        busy.write_setpoint(Celsius::new(23.0));
        idle.warm_up(&uniform(0.0), 240).unwrap();
        busy.warm_up(&uniform(0.5), 240).unwrap();
        let p_idle = idle.step_sample(&uniform(0.0)).unwrap().acu_power_kw;
        let p_busy = busy.step_sample(&uniform(0.5)).unwrap().acu_power_kw;
        assert!(
            p_busy > p_idle + 0.5,
            "busy {p_busy:.2} kW must exceed idle {p_idle:.2} kW"
        );
    }

    #[test]
    fn raising_setpoint_saves_energy_without_interruption() {
        // §6.2's mechanism: a modestly higher set-point improves COP.
        let mut low = testbed();
        let mut high = testbed();
        low.write_setpoint(Celsius::new(23.0));
        high.write_setpoint(Celsius::new(26.0));
        low.warm_up(&uniform(0.4), 360).unwrap();
        high.warm_up(&uniform(0.4), 360).unwrap();
        let mut e_low = 0.0;
        let mut e_high = 0.0;
        let mut int_high = 0.0;
        for _ in 0..60 {
            e_low += low.step_sample(&uniform(0.4)).unwrap().acu_energy_kwh;
            let o = high.step_sample(&uniform(0.4)).unwrap();
            e_high += o.acu_energy_kwh;
            int_high += o.interrupted_frac;
        }
        assert!(
            e_high < e_low * 0.97,
            "26 °C ({e_high:.2} kWh) must save vs 23 °C ({e_low:.2} kWh)"
        );
        assert!(
            int_high / 60.0 < 0.2,
            "saving must not come from interruption"
        );
    }

    #[test]
    fn acu_degradation_increases_energy_mid_run() {
        let mut tb = testbed();
        tb.write_setpoint(Celsius::new(23.0));
        tb.warm_up(&uniform(0.35), 240).unwrap();
        let mut before = 0.0;
        for _ in 0..20 {
            before += tb.step_sample(&uniform(0.35)).unwrap().acu_energy_kwh;
        }
        tb.degrade_acu_cop(0.7);
        tb.warm_up(&uniform(0.35), 60).unwrap();
        let mut after = 0.0;
        for _ in 0..20 {
            after += tb.step_sample(&uniform(0.35)).unwrap().acu_energy_kwh;
        }
        assert!(
            after > before * 1.15,
            "after {after:.3} vs before {before:.3}"
        );
    }

    #[test]
    fn try_write_setpoint_rejects_out_of_spec() {
        let mut tb = testbed();
        assert!(matches!(
            tb.try_write_setpoint(Celsius::new(50.0)),
            Err(SimError::SetpointOutOfRange { .. })
        ));
        assert!(matches!(
            tb.try_write_setpoint(Celsius::new(f64::NAN)),
            Err(SimError::NonFiniteWrite(_))
        ));
        // In-spec writes latch quantized.
        let latched = tb.try_write_setpoint(Celsius::new(24.16)).unwrap();
        assert!((latched.value() - 24.2).abs() < 1e-9);
        assert!((tb.setpoint().value() - 24.2).abs() < 1e-9);
    }

    #[test]
    fn actuator_fault_blocks_write_and_keeps_old_setpoint() {
        use crate::faults::{ActuatorFault, ActuatorFaultKind, FaultPlan, FaultWindow};
        let mut tb = testbed();
        tb.write_setpoint(Celsius::new(23.0));
        tb.set_fault_plan(FaultPlan {
            actuators: vec![ActuatorFault {
                kind: ActuatorFaultKind::WriteTimeout,
                window: FaultWindow::new(0.0, 2.0),
            }],
            ..FaultPlan::default()
        });
        assert!(matches!(
            tb.try_write_setpoint(Celsius::new(25.0)),
            Err(SimError::WriteTimeout)
        ));
        assert_eq!(tb.setpoint(), Celsius::new(23.0));
        // Step past the window; the write goes through.
        tb.step_sample(&uniform(0.2)).unwrap();
        tb.step_sample(&uniform(0.2)).unwrap();
        assert_eq!(
            tb.try_write_setpoint(Celsius::new(25.0)).unwrap(),
            Celsius::new(25.0)
        );
        assert_eq!(tb.setpoint(), Celsius::new(25.0));
    }

    #[test]
    fn stuck_sensor_corrupts_report_but_not_truth() {
        use crate::faults::{FaultPlan, SensorFault, SensorFaultKind, SensorTarget};
        let mut tb = testbed();
        tb.write_setpoint(Celsius::new(23.0));
        tb.set_fault_plan(FaultPlan {
            sensors: vec![SensorFault {
                target: SensorTarget::DcSensor(0),
                kind: SensorFaultKind::StuckAt(45.0),
                window: crate::faults::FaultWindow::new(0.0, 1e9),
            }],
            ..FaultPlan::default()
        });
        let obs = tb.step_sample(&uniform(0.25)).unwrap();
        assert_eq!(obs.dc_temps[0], 45.0);
        assert_eq!(obs.cold_aisle_max, 45.0, "reported max follows the liar");
        assert!(obs.cold_aisle_max_true < 30.0, "ground truth is unaffected");
    }

    #[test]
    fn dropout_nan_is_skipped_by_reported_max() {
        use crate::faults::{FaultPlan, SensorFault, SensorFaultKind, SensorTarget};
        let mut tb = testbed();
        tb.set_fault_plan(FaultPlan {
            sensors: vec![SensorFault {
                target: SensorTarget::DcSensor(3),
                kind: SensorFaultKind::Dropout,
                window: crate::faults::FaultWindow::new(0.0, 1e9),
            }],
            ..FaultPlan::default()
        });
        let obs = tb.step_sample(&uniform(0.25)).unwrap();
        assert!(obs.dc_temps[3].is_nan());
        assert!(obs.cold_aisle_max.is_finite());
    }

    #[test]
    fn fan_failure_window_heats_cold_aisle_then_recovers() {
        use crate::faults::{FaultPlan, PlantFault, PlantFaultKind};
        let mut tb = testbed();
        tb.write_setpoint(Celsius::new(23.0));
        tb.warm_up(&uniform(0.3), 240).unwrap();
        let start_min = tb.time_min();
        tb.set_fault_plan(FaultPlan {
            plant: vec![PlantFault {
                kind: PlantFaultKind::FanFailure,
                window: crate::faults::FaultWindow::new(start_min, start_min + 5.0),
            }],
            ..FaultPlan::default()
        });
        let before = tb.step_sample(&uniform(0.3)).unwrap();
        assert_eq!(before.acu_power_kw, 0.0, "dark unit during fan failure");
        let mut during = before.cold_aisle_max_true;
        for _ in 0..4 {
            during = tb.step_sample(&uniform(0.3)).unwrap().cold_aisle_max_true;
        }
        assert!(
            during > before.cold_aisle_max_true + 1.0,
            "no airflow must heat the room: {} -> {}",
            before.cold_aisle_max_true,
            during
        );
        // Past the window the unit recovers and pulls the room back down.
        let mut after = during;
        for _ in 0..30 {
            after = tb.step_sample(&uniform(0.3)).unwrap().cold_aisle_max_true;
        }
        assert!(after < during, "recovery must cool: {during} -> {after}");
    }

    #[test]
    fn fouled_coil_window_reduces_extraction_capacity() {
        use crate::faults::{FaultPlan, PlantFault, PlantFaultKind};
        let mut healthy = testbed();
        let mut fouled = testbed();
        for tb in [&mut healthy, &mut fouled] {
            tb.write_setpoint(Celsius::new(21.0));
            tb.warm_up(&uniform(0.5), 240).unwrap();
        }
        let start_min = fouled.time_min();
        fouled.set_fault_plan(FaultPlan {
            plant: vec![PlantFault {
                kind: PlantFaultKind::FouledCoil {
                    capacity_factor: 0.3,
                },
                window: crate::faults::FaultWindow::new(start_min, start_min + 120.0),
            }],
            ..FaultPlan::default()
        });
        let mut t_healthy = 0.0;
        let mut t_fouled = 0.0;
        for _ in 0..60 {
            t_healthy = healthy
                .step_sample(&uniform(0.5))
                .unwrap()
                .cold_aisle_max_true;
            t_fouled = fouled
                .step_sample(&uniform(0.5))
                .unwrap()
                .cold_aisle_max_true;
        }
        assert!(
            t_fouled > t_healthy + 0.5,
            "derated capacity must run warmer: fouled {t_fouled:.2} vs healthy {t_healthy:.2}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Testbed::new(SimConfig::default(), 7).unwrap();
        let mut b = Testbed::new(SimConfig::default(), 7).unwrap();
        for _ in 0..5 {
            let oa = a.step_sample(&uniform(0.3)).unwrap();
            let ob = b.step_sample(&uniform(0.3)).unwrap();
            assert_eq!(oa.dc_temps, ob.dc_temps);
            assert_eq!(oa.acu_power_kw, ob.acu_power_kw);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Testbed::new(SimConfig::default(), 1).unwrap();
        let mut b = Testbed::new(SimConfig::default(), 2).unwrap();
        let oa = a.step_sample(&uniform(0.3)).unwrap();
        let ob = b.step_sample(&uniform(0.3)).unwrap();
        assert_ne!(oa.dc_temps, ob.dc_temps);
    }
}
