//! Schedulable fault injection for the testbed.
//!
//! Real deployments of TESLA-style controllers face sensor faults (stuck
//! thermistors, drifting calibration, dropped Modbus reads, EMI noise
//! bursts), actuator faults (set-point writes that time out or are
//! rejected by the device), and plant degradation (fouled coils, failed
//! fans). A [`FaultPlan`] schedules any mix of these over simulation
//! time so the control stack's degradation behaviour can be tested
//! deterministically.
//!
//! Faults are *windows* over simulated minutes: a fault is active while
//! `start_min <= t < end_min`. Sensor faults corrupt the readings the
//! controller sees; the physics and the ground-truth signals in the
//! [`crate::Observation`] are untouched, so experiments can score true
//! thermal safety separately from what the (possibly lying) sensors
//! report.

use rand::Rng;

/// A half-open activity window over simulated minutes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultWindow {
    /// First minute (inclusive) the fault is active.
    pub start_min: f64,
    /// End minute (exclusive).
    pub end_min: f64,
}

impl FaultWindow {
    /// A window covering `[start, end)` minutes.
    pub fn new(start_min: f64, end_min: f64) -> Self {
        FaultWindow { start_min, end_min }
    }

    /// True while `t_min` falls inside the window.
    pub fn contains(&self, t_min: f64) -> bool {
        t_min >= self.start_min && t_min < self.end_min
    }

    /// Minutes elapsed since the window opened (0 before it opens).
    pub fn elapsed(&self, t_min: f64) -> f64 {
        (t_min - self.start_min).max(0.0)
    }
}

/// Which sensor a sensor fault corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SensorTarget {
    /// A rack sensor (index into the `dc_temps` vector; cold-aisle
    /// sensors are `0..n_cold_aisle_sensors`).
    DcSensor(usize),
    /// An ACU inlet sensor (index into `acu_inlet_temps`).
    AcuInlet(usize),
}

/// How a faulty sensor misbehaves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SensorFaultKind {
    /// The reading freezes at a constant value (failed thermistor pulled
    /// to a rail, or a gateway repeating its last frame).
    StuckAt(f64),
    /// The reading accumulates a calibration drift of `rate` °C per
    /// minute from the window's start.
    Drift {
        /// Drift rate, °C per minute of fault activity.
        rate_c_per_min: f64,
    },
    /// The reading is lost entirely and surfaces as NaN (a dropped
    /// Modbus read).
    Dropout,
    /// Extra zero-mean Gaussian noise (EMI burst, loose connector).
    NoiseBurst {
        /// Standard deviation of the added noise, °C.
        std_c: f64,
    },
}

impl SensorFaultKind {
    /// Metric-label spelling of the failure mode.
    pub fn label(self) -> &'static str {
        match self {
            SensorFaultKind::StuckAt(_) => "sensor_stuck",
            SensorFaultKind::Drift { .. } => "sensor_drift",
            SensorFaultKind::Dropout => "sensor_dropout",
            SensorFaultKind::NoiseBurst { .. } => "sensor_noise",
        }
    }
}

/// One scheduled sensor fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorFault {
    /// The corrupted sensor.
    pub target: SensorTarget,
    /// The failure mode.
    pub kind: SensorFaultKind,
    /// When the fault is active.
    pub window: FaultWindow,
}

/// How the set-point actuation path fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActuatorFaultKind {
    /// The Modbus write times out; the device keeps its old set-point.
    WriteTimeout,
    /// The device NAKs the write (illegal-data-address response).
    RejectedRegister,
}

impl ActuatorFaultKind {
    /// Metric-label spelling of the failure mode.
    pub fn label(self) -> &'static str {
        match self {
            ActuatorFaultKind::WriteTimeout => "actuator_write_timeout",
            ActuatorFaultKind::RejectedRegister => "actuator_rejected_register",
        }
    }
}

/// One scheduled actuator fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActuatorFault {
    /// The failure mode.
    pub kind: ActuatorFaultKind,
    /// When the fault is active.
    pub window: FaultWindow,
}

/// Plant-side degradation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlantFaultKind {
    /// Fouled evaporator coil: cooling capacity `q_max` is scaled by
    /// `capacity_factor` (< 1) while active.
    FouledCoil {
        /// Multiplier on the ACU's maximum extraction capacity.
        capacity_factor: f64,
    },
    /// The ACU supply fan fails: no air moves, no heat is extracted, and
    /// the unit draws no power until the fan recovers.
    FanFailure,
}

impl PlantFaultKind {
    /// Metric-label spelling of the failure mode.
    pub fn label(self) -> &'static str {
        match self {
            PlantFaultKind::FouledCoil { .. } => "plant_fouled_coil",
            PlantFaultKind::FanFailure => "plant_fan_failure",
        }
    }
}

/// One scheduled plant fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlantFault {
    /// The failure mode.
    pub kind: PlantFaultKind,
    /// When the fault is active.
    pub window: FaultWindow,
}

/// A full fault schedule for one episode.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Scheduled sensor faults.
    pub sensors: Vec<SensorFault>,
    /// Scheduled actuator faults.
    pub actuators: Vec<ActuatorFault>,
    /// Scheduled plant faults.
    pub plant: Vec<PlantFault>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.sensors.is_empty() && self.actuators.is_empty() && self.plant.is_empty()
    }

    /// True when any fault (of any class) is active at `t_min`.
    pub fn any_active(&self, t_min: f64) -> bool {
        self.sensors.iter().any(|f| f.window.contains(t_min))
            || self.actuators.iter().any(|f| f.window.contains(t_min))
            || self.plant.iter().any(|f| f.window.contains(t_min))
    }

    /// The actuator fault active at `t_min`, if any (first match wins).
    pub fn active_actuator(&self, t_min: f64) -> Option<ActuatorFaultKind> {
        self.actuators
            .iter()
            .find(|f| f.window.contains(t_min))
            .map(|f| f.kind)
    }

    /// Effective capacity multiplier at `t_min` (1.0 when healthy).
    /// Overlapping fouled-coil windows compound.
    pub fn capacity_factor(&self, t_min: f64) -> f64 {
        self.plant
            .iter()
            .filter(|f| f.window.contains(t_min))
            .map(|f| match f.kind {
                PlantFaultKind::FouledCoil { capacity_factor } => capacity_factor.clamp(0.0, 1.0),
                PlantFaultKind::FanFailure => 1.0,
            })
            .product()
    }

    /// True when a fan failure is active at `t_min`.
    pub fn fan_failed(&self, t_min: f64) -> bool {
        self.plant
            .iter()
            .any(|f| f.window.contains(t_min) && f.kind == PlantFaultKind::FanFailure)
    }

    /// Metric labels of every fault kind active at `t_min`, sorted and
    /// deduplicated — the testbed edge-detects on this to count fault
    /// activations.
    pub fn active_kind_labels(&self, t_min: f64) -> Vec<&'static str> {
        let mut labels: Vec<&'static str> = self
            .sensors
            .iter()
            .filter(|f| f.window.contains(t_min))
            .map(|f| f.kind.label())
            .chain(
                self.actuators
                    .iter()
                    .filter(|f| f.window.contains(t_min))
                    .map(|f| f.kind.label()),
            )
            .chain(
                self.plant
                    .iter()
                    .filter(|f| f.window.contains(t_min))
                    .map(|f| f.kind.label()),
            )
            .collect();
        labels.sort_unstable();
        labels.dedup();
        labels
    }

    /// Applies every active sensor fault to the sampled readings in
    /// place. `dc_temps` and `acu_inlet` are the raw sensor vectors for
    /// this sample; out-of-range targets are ignored (a plan written for
    /// a bigger testbed degrades gracefully on a smaller one).
    pub fn corrupt_readings<R: Rng>(
        &self,
        t_min: f64,
        dc_temps: &mut [f64], // lint:allow(no-raw-f64-in-public-api): corrupts raw sensor vectors in place
        acu_inlet: &mut [f64],
        rng: &mut R,
    ) {
        for fault in &self.sensors {
            if !fault.window.contains(t_min) {
                continue;
            }
            let slot = match fault.target {
                SensorTarget::DcSensor(k) => dc_temps.get_mut(k),
                SensorTarget::AcuInlet(k) => acu_inlet.get_mut(k),
            };
            let Some(v) = slot else { continue };
            match fault.kind {
                SensorFaultKind::StuckAt(value) => *v = value,
                SensorFaultKind::Drift { rate_c_per_min } => {
                    *v += rate_c_per_min * fault.window.elapsed(t_min);
                }
                SensorFaultKind::Dropout => *v = f64::NAN,
                SensorFaultKind::NoiseBurst { std_c } => {
                    // Box-Muller from two uniforms; keeps the fault layer
                    // independent of the sensor models' distributions.
                    let u1: f64 = rng.random::<f64>().max(1e-12);
                    let u2: f64 = rng.random::<f64>();
                    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                    *v += std_c.max(0.0) * z;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn window(a: f64, b: f64) -> FaultWindow {
        FaultWindow::new(a, b)
    }

    #[test]
    fn window_is_half_open() {
        let w = window(10.0, 20.0);
        assert!(!w.contains(9.99));
        assert!(w.contains(10.0));
        assert!(w.contains(19.99));
        assert!(!w.contains(20.0));
    }

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert!(!plan.any_active(0.0));
        assert_eq!(plan.capacity_factor(5.0), 1.0);
        assert!(!plan.fan_failed(5.0));
        assert!(plan.active_actuator(5.0).is_none());

        let mut dc = vec![20.0, 21.0];
        let mut inlet = vec![25.0];
        let mut rng = StdRng::seed_from_u64(1);
        plan.corrupt_readings(5.0, &mut dc, &mut inlet, &mut rng);
        assert_eq!(dc, vec![20.0, 21.0]);
        assert_eq!(inlet, vec![25.0]);
    }

    #[test]
    fn stuck_at_overrides_reading_only_inside_window() {
        let plan = FaultPlan {
            sensors: vec![SensorFault {
                target: SensorTarget::DcSensor(1),
                kind: SensorFaultKind::StuckAt(40.0),
                window: window(10.0, 20.0),
            }],
            ..FaultPlan::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let mut dc = vec![20.0, 21.0, 22.0];
        plan.corrupt_readings(5.0, &mut dc, &mut [], &mut rng);
        assert_eq!(dc[1], 21.0);
        plan.corrupt_readings(15.0, &mut dc, &mut [], &mut rng);
        assert_eq!(dc[1], 40.0);
        assert_eq!(dc[0], 20.0);
        assert_eq!(dc[2], 22.0);
    }

    #[test]
    fn drift_accumulates_from_window_start() {
        let plan = FaultPlan {
            sensors: vec![SensorFault {
                target: SensorTarget::AcuInlet(0),
                kind: SensorFaultKind::Drift {
                    rate_c_per_min: 0.5,
                },
                window: window(100.0, 200.0),
            }],
            ..FaultPlan::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let mut inlet = vec![25.0];
        plan.corrupt_readings(110.0, &mut [], &mut inlet, &mut rng);
        assert!((inlet[0] - 30.0).abs() < 1e-9, "10 min at 0.5 °C/min");
    }

    #[test]
    fn dropout_yields_nan() {
        let plan = FaultPlan {
            sensors: vec![SensorFault {
                target: SensorTarget::DcSensor(0),
                kind: SensorFaultKind::Dropout,
                window: window(0.0, 10.0),
            }],
            ..FaultPlan::default()
        };
        let mut rng = StdRng::seed_from_u64(4);
        let mut dc = vec![20.0];
        plan.corrupt_readings(1.0, &mut dc, &mut [], &mut rng);
        assert!(dc[0].is_nan());
    }

    #[test]
    fn noise_burst_perturbs_with_roughly_right_spread() {
        let plan = FaultPlan {
            sensors: vec![SensorFault {
                target: SensorTarget::DcSensor(0),
                kind: SensorFaultKind::NoiseBurst { std_c: 2.0 },
                window: window(0.0, 1e9),
            }],
            ..FaultPlan::default()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let n = 4000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let mut dc = vec![0.0];
            plan.corrupt_readings(1.0, &mut dc, &mut [], &mut rng);
            sum += dc[0];
            sumsq += dc[0] * dc[0];
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.2, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.3, "std {}", var.sqrt());
    }

    #[test]
    fn out_of_range_targets_are_ignored() {
        let plan = FaultPlan {
            sensors: vec![SensorFault {
                target: SensorTarget::DcSensor(99),
                kind: SensorFaultKind::StuckAt(0.0),
                window: window(0.0, 10.0),
            }],
            ..FaultPlan::default()
        };
        let mut rng = StdRng::seed_from_u64(6);
        let mut dc = vec![20.0];
        plan.corrupt_readings(1.0, &mut dc, &mut [], &mut rng);
        assert_eq!(dc, vec![20.0]);
    }

    #[test]
    fn fouled_coils_compound_and_fan_failure_reports() {
        let plan = FaultPlan {
            plant: vec![
                PlantFault {
                    kind: PlantFaultKind::FouledCoil {
                        capacity_factor: 0.5,
                    },
                    window: window(0.0, 100.0),
                },
                PlantFault {
                    kind: PlantFaultKind::FouledCoil {
                        capacity_factor: 0.5,
                    },
                    window: window(50.0, 100.0),
                },
                PlantFault {
                    kind: PlantFaultKind::FanFailure,
                    window: window(80.0, 90.0),
                },
            ],
            ..FaultPlan::default()
        };
        assert_eq!(plan.capacity_factor(10.0), 0.5);
        assert_eq!(plan.capacity_factor(60.0), 0.25);
        assert_eq!(plan.capacity_factor(150.0), 1.0);
        assert!(plan.fan_failed(85.0));
        assert!(!plan.fan_failed(95.0));
    }

    #[test]
    fn actuator_fault_reports_kind_in_window() {
        let plan = FaultPlan {
            actuators: vec![ActuatorFault {
                kind: ActuatorFaultKind::WriteTimeout,
                window: window(30.0, 40.0),
            }],
            ..FaultPlan::default()
        };
        assert_eq!(
            plan.active_actuator(35.0),
            Some(ActuatorFaultKind::WriteTimeout)
        );
        assert!(plan.active_actuator(45.0).is_none());
        assert!(plan.any_active(35.0));
        assert!(!plan.any_active(45.0));
    }
}
