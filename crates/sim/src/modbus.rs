//! Register-map facade standing in for the Modbus interface of the real
//! ACU (§4: "TESLA writes the value in the register of ACU's PID
//! controller through the Modbus protocol").
//!
//! Values are stored as scaled 16-bit holding registers exactly like the
//! real device (temperature in 0.1 °C units), so the controller side of
//! the code exercises a faithful write-register → quantize → PID path —
//! including the 0.1 °C quantization a real deployment experiences.

use crate::SimError;
use std::collections::BTreeMap;

/// Holding-register address of the set-point (0.1 °C units).
pub const REG_SETPOINT: u16 = 0x0001;
/// Input-register address of inlet sensor 0 (0.1 °C units).
pub const REG_INLET_BASE: u16 = 0x0100;
/// Input-register address of the instantaneous ACU power (watts).
pub const REG_POWER_W: u16 = 0x0200;

/// Scale factor between °C and register ticks.
const TEMP_SCALE: f64 = 10.0;

/// Highest holding-register address the controller may write. Input
/// registers (`REG_INLET_BASE` and above) are device-owned telemetry.
pub const HOLDING_REG_MAX: u16 = 0x00FF;

/// A tiny Modbus-like register map.
#[derive(Debug, Clone, Default)]
pub struct RegisterMap {
    regs: BTreeMap<u16, u16>,
}

impl RegisterMap {
    /// Creates an empty register map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes a raw 16-bit register. This is the *device-side* path: the
    /// simulator uses it to publish telemetry into input registers.
    /// Controller code should go through [`RegisterMap::try_write`] or
    /// [`RegisterMap::try_write_setpoint`], which validate.
    pub fn write(&mut self, addr: u16, value: u16) {
        self.regs.insert(addr, value);
    }

    /// Controller-side raw write: rejects device-owned (input/telemetry)
    /// registers instead of silently accepting them.
    pub fn try_write(&mut self, addr: u16, value: u16) -> Result<(), SimError> {
        if addr > HOLDING_REG_MAX {
            return Err(SimError::ReadOnlyRegister(addr));
        }
        self.regs.insert(addr, value);
        Ok(())
    }

    /// Controller-side set-point write: validates finiteness and the
    /// ACU's specification bounds, then quantizes to 0.1 °C. Returns the
    /// quantized value actually latched. Out-of-spec commands are
    /// *rejected* (typed error), not clamped — clamping is a policy the
    /// caller must opt into.
    pub fn try_write_setpoint(
        &mut self,
        celsius: f64,
        min: f64,
        max: f64,
    ) -> Result<f64, SimError> {
        if !celsius.is_finite() {
            return Err(SimError::NonFiniteWrite(celsius));
        }
        if celsius < min || celsius > max {
            return Err(SimError::SetpointOutOfRange {
                value: celsius,
                min,
                max,
            });
        }
        let ticks = (celsius * TEMP_SCALE).round().clamp(0.0, u16::MAX as f64) as u16;
        self.try_write(REG_SETPOINT, ticks)?;
        Ok(ticks as f64 / TEMP_SCALE)
    }

    /// Reads a raw 16-bit register.
    pub fn read(&self, addr: u16) -> Result<u16, SimError> {
        self.regs
            .get(&addr)
            .copied()
            .ok_or(SimError::UnknownRegister(addr))
    }

    /// Writes a temperature in °C (quantized to 0.1 °C).
    pub fn write_temp(&mut self, addr: u16, celsius: f64) {
        let ticks = (celsius * TEMP_SCALE).round().clamp(0.0, u16::MAX as f64) as u16;
        self.write(addr, ticks);
    }

    /// Reads a temperature in °C.
    pub fn read_temp(&self, addr: u16) -> Result<f64, SimError> {
        Ok(self.read(addr)? as f64 / TEMP_SCALE)
    }

    /// Writes a power in kW (stored as integer watts).
    pub fn write_power_kw(&mut self, addr: u16, kw: f64) {
        let w = (kw * 1000.0).round().clamp(0.0, u16::MAX as f64) as u16;
        self.write(addr, w);
    }

    /// Reads a power in kW.
    pub fn read_power_kw(&self, addr: u16) -> Result<f64, SimError> {
        Ok(self.read(addr)? as f64 / 1000.0)
    }

    /// Number of populated registers.
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// True when no registers are populated.
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temperature_roundtrip_quantizes_to_tenths() {
        let mut m = RegisterMap::new();
        m.write_temp(REG_SETPOINT, 23.462);
        assert_eq!(m.read_temp(REG_SETPOINT).unwrap(), 23.5);
        m.write_temp(REG_SETPOINT, 23.44);
        assert_eq!(m.read_temp(REG_SETPOINT).unwrap(), 23.4);
    }

    #[test]
    fn unknown_register_is_an_error() {
        let m = RegisterMap::new();
        assert!(matches!(
            m.read(0x7777),
            Err(SimError::UnknownRegister(0x7777))
        ));
    }

    #[test]
    fn power_roundtrip() {
        let mut m = RegisterMap::new();
        m.write_power_kw(REG_POWER_W, 2.4567);
        assert!((m.read_power_kw(REG_POWER_W).unwrap() - 2.457).abs() < 1e-9);
    }

    #[test]
    fn negative_temp_clamps_to_zero() {
        let mut m = RegisterMap::new();
        m.write_temp(REG_SETPOINT, -5.0);
        assert_eq!(m.read_temp(REG_SETPOINT).unwrap(), 0.0);
    }

    #[test]
    fn try_write_rejects_device_owned_registers() {
        let mut m = RegisterMap::new();
        assert!(matches!(
            m.try_write(REG_INLET_BASE, 230),
            Err(SimError::ReadOnlyRegister(a)) if a == REG_INLET_BASE
        ));
        assert!(matches!(
            m.try_write(REG_POWER_W, 1500),
            Err(SimError::ReadOnlyRegister(_))
        ));
        assert!(m.try_write(REG_SETPOINT, 230).is_ok());
        assert_eq!(m.read_temp(REG_SETPOINT).unwrap(), 23.0);
    }

    #[test]
    fn try_write_setpoint_validates_bounds_and_quantizes() {
        let mut m = RegisterMap::new();
        let latched = m.try_write_setpoint(23.456, 20.0, 35.0).unwrap();
        assert!((latched - 23.5).abs() < 1e-9);
        assert_eq!(m.read_temp(REG_SETPOINT).unwrap(), 23.5);

        assert!(matches!(
            m.try_write_setpoint(50.0, 20.0, 35.0),
            Err(SimError::SetpointOutOfRange { value, min, max })
                if value == 50.0 && min == 20.0 && max == 35.0
        ));
        assert!(matches!(
            m.try_write_setpoint(1.0, 20.0, 35.0),
            Err(SimError::SetpointOutOfRange { .. })
        ));
        assert!(matches!(
            m.try_write_setpoint(f64::NAN, 20.0, 35.0),
            Err(SimError::NonFiniteWrite(_))
        ));
        // The rejected writes left the latched value untouched.
        assert_eq!(m.read_temp(REG_SETPOINT).unwrap(), 23.5);
    }

    #[test]
    fn len_tracks_distinct_registers() {
        let mut m = RegisterMap::new();
        assert!(m.is_empty());
        m.write_temp(REG_SETPOINT, 20.0);
        m.write_temp(REG_SETPOINT, 25.0);
        m.write_temp(REG_INLET_BASE, 22.0);
        assert_eq!(m.len(), 2);
    }
}
