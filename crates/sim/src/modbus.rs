//! Register-map facade standing in for the Modbus interface of the real
//! ACU (§4: "TESLA writes the value in the register of ACU's PID
//! controller through the Modbus protocol").
//!
//! Values are stored as scaled 16-bit holding registers exactly like the
//! real device (temperature in 0.1 °C units), so the controller side of
//! the code exercises a faithful write-register → quantize → PID path —
//! including the 0.1 °C quantization a real deployment experiences.

use crate::SimError;
use std::collections::BTreeMap;
use tesla_units::{Celsius, CelsiusRange, Kilowatts};

/// Holding-register address of the set-point (0.1 °C units).
pub const REG_SETPOINT: u16 = 0x0001;
/// Input-register address of inlet sensor 0 (0.1 °C units).
pub const REG_INLET_BASE: u16 = 0x0100;
/// Input-register address of the instantaneous ACU power (watts).
pub const REG_POWER_W: u16 = 0x0200;

/// Scale factor between °C and register ticks.
const TEMP_SCALE: f64 = 10.0;

/// Highest holding-register address the controller may write. Input
/// registers (`REG_INLET_BASE` and above) are device-owned telemetry.
pub const HOLDING_REG_MAX: u16 = 0x00FF;

/// A tiny Modbus-like register map.
#[derive(Debug, Clone, Default)]
pub struct RegisterMap {
    regs: BTreeMap<u16, u16>,
}

impl RegisterMap {
    /// Creates an empty register map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes a raw 16-bit register. This is the *device-side* path: the
    /// simulator uses it to publish telemetry into input registers.
    /// Controller code should go through [`RegisterMap::try_write`] or
    /// [`RegisterMap::try_write_setpoint`], which validate.
    pub fn write(&mut self, addr: u16, value: u16) {
        self.regs.insert(addr, value);
    }

    /// Controller-side raw write: rejects device-owned (input/telemetry)
    /// registers instead of silently accepting them.
    pub fn try_write(&mut self, addr: u16, value: u16) -> Result<(), SimError> {
        if addr > HOLDING_REG_MAX {
            return Err(SimError::ReadOnlyRegister(addr));
        }
        self.regs.insert(addr, value);
        Ok(())
    }

    /// Controller-side set-point write: validates finiteness and the
    /// ACU's specification bounds via [`CelsiusRange::check`] (the single
    /// validation point for set-point commands), then quantizes to
    /// 0.1 °C. Returns the quantized value actually latched. Out-of-spec
    /// commands are *rejected* (typed error), not clamped — clamping is a
    /// policy the caller must opt into.
    pub fn try_write_setpoint(
        &mut self,
        setpoint: Celsius,
        spec: CelsiusRange,
    ) -> Result<Celsius, SimError> {
        let checked = spec.check(setpoint)?;
        let ticks = (checked.value() * TEMP_SCALE)
            .round()
            .clamp(0.0, u16::MAX as f64) as u16;
        self.try_write(REG_SETPOINT, ticks)?;
        Ok(Celsius::new(ticks as f64 / TEMP_SCALE))
    }

    /// Reads a raw 16-bit register.
    pub fn read(&self, addr: u16) -> Result<u16, SimError> {
        self.regs
            .get(&addr)
            .copied()
            .ok_or(SimError::UnknownRegister(addr))
    }

    /// Writes a temperature (quantized to 0.1 °C).
    pub fn write_temp(&mut self, addr: u16, temp: Celsius) {
        let ticks = (temp.value() * TEMP_SCALE)
            .round()
            .clamp(0.0, u16::MAX as f64) as u16;
        self.write(addr, ticks);
    }

    /// Reads a temperature.
    pub fn read_temp(&self, addr: u16) -> Result<Celsius, SimError> {
        Ok(Celsius::new(self.read(addr)? as f64 / TEMP_SCALE))
    }

    /// Writes a power (stored as integer watts).
    pub fn write_power_kw(&mut self, addr: u16, power: Kilowatts) {
        let w = (power.value() * 1000.0).round().clamp(0.0, u16::MAX as f64) as u16;
        self.write(addr, w);
    }

    /// Reads a power.
    pub fn read_power_kw(&self, addr: u16) -> Result<Kilowatts, SimError> {
        Ok(Kilowatts::new(self.read(addr)? as f64 / 1000.0))
    }

    /// Number of populated registers.
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// True when no registers are populated.
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesla_units::SETPOINT_RANGE;

    #[test]
    fn temperature_roundtrip_quantizes_to_tenths() {
        let mut m = RegisterMap::new();
        m.write_temp(REG_SETPOINT, Celsius::new(23.462));
        assert_eq!(m.read_temp(REG_SETPOINT).unwrap(), Celsius::new(23.5));
        m.write_temp(REG_SETPOINT, Celsius::new(23.44));
        assert_eq!(m.read_temp(REG_SETPOINT).unwrap(), Celsius::new(23.4));
    }

    #[test]
    fn unknown_register_is_an_error() {
        let m = RegisterMap::new();
        assert!(matches!(
            m.read(0x7777),
            Err(SimError::UnknownRegister(0x7777))
        ));
    }

    #[test]
    fn power_roundtrip() {
        let mut m = RegisterMap::new();
        m.write_power_kw(REG_POWER_W, Kilowatts::new(2.4567));
        assert!((m.read_power_kw(REG_POWER_W).unwrap().value() - 2.457).abs() < 1e-9);
    }

    #[test]
    fn negative_temp_clamps_to_zero() {
        let mut m = RegisterMap::new();
        m.write_temp(REG_SETPOINT, Celsius::new(-5.0));
        assert_eq!(m.read_temp(REG_SETPOINT).unwrap(), Celsius::new(0.0));
    }

    #[test]
    fn try_write_rejects_device_owned_registers() {
        let mut m = RegisterMap::new();
        assert!(matches!(
            m.try_write(REG_INLET_BASE, 230),
            Err(SimError::ReadOnlyRegister(a)) if a == REG_INLET_BASE
        ));
        assert!(matches!(
            m.try_write(REG_POWER_W, 1500),
            Err(SimError::ReadOnlyRegister(_))
        ));
        assert!(m.try_write(REG_SETPOINT, 230).is_ok());
        assert_eq!(m.read_temp(REG_SETPOINT).unwrap(), Celsius::new(23.0));
    }

    #[test]
    fn try_write_setpoint_validates_bounds_and_quantizes() {
        let mut m = RegisterMap::new();
        let latched = m
            .try_write_setpoint(Celsius::new(23.456), SETPOINT_RANGE)
            .unwrap();
        assert!((latched.value() - 23.5).abs() < 1e-9);
        assert_eq!(m.read_temp(REG_SETPOINT).unwrap(), Celsius::new(23.5));

        assert!(matches!(
            m.try_write_setpoint(Celsius::new(50.0), SETPOINT_RANGE),
            Err(SimError::SetpointOutOfRange { value, min, max })
                if value == Celsius::new(50.0)
                    && min == SETPOINT_RANGE.min()
                    && max == SETPOINT_RANGE.max()
        ));
        assert!(matches!(
            m.try_write_setpoint(Celsius::new(1.0), SETPOINT_RANGE),
            Err(SimError::SetpointOutOfRange { .. })
        ));
        assert!(matches!(
            m.try_write_setpoint(Celsius::new(f64::NAN), SETPOINT_RANGE),
            Err(SimError::NonFiniteWrite(_))
        ));
        // The rejected writes left the latched value untouched.
        assert_eq!(m.read_temp(REG_SETPOINT).unwrap(), Celsius::new(23.5));
    }

    #[test]
    fn len_tracks_distinct_registers() {
        let mut m = RegisterMap::new();
        assert!(m.is_empty());
        m.write_temp(REG_SETPOINT, Celsius::new(20.0));
        m.write_temp(REG_SETPOINT, Celsius::new(25.0));
        m.write_temp(REG_INLET_BASE, Celsius::new(22.0));
        assert_eq!(m.len(), 2);
    }
}
