//! Lumped three-node thermal network: cold aisle, hot aisle, equipment mass.
//!
//! Air circulates in a loop: ACU supply → cold aisle → through the servers
//! (picking up their heat) → hot aisle → back to the ACU as return air.
//! Containment separates the aisles except for a small leakage fraction.
//! A large equipment/structural thermal mass exchanges heat with both
//! aisles, which is what makes cooling-interruption temperature ramps
//! *slow to undo*: the paper measures ~1 °C/min rise but only ~0.5 °C/min
//! recovery (Fig. 3), because the mass keeps re-heating the air after the
//! compressor restarts.

use crate::config::ThermalParams;
use tesla_units::{Celsius, Kilowatts, Seconds};

/// Thermal state of the room.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalState {
    /// Cold-aisle bulk air temperature, °C.
    pub cold_aisle: f64, // lint:allow(no-raw-f64-in-public-api): ODE integrator state, raw for arithmetic
    /// Hot-aisle bulk air temperature, °C.
    pub hot_aisle: f64, // lint:allow(no-raw-f64-in-public-api): ODE integrator state, raw for arithmetic
    /// Equipment/structural mass temperature, °C.
    pub mass: f64,
}

/// The room's thermal network integrator.
#[derive(Debug, Clone)]
pub struct ThermalNetwork {
    params: ThermalParams,
    state: ThermalState,
}

impl ThermalNetwork {
    /// Creates a network equilibrated at the configured initial cold-aisle
    /// temperature with an idle-ish aisle split.
    pub fn new(params: ThermalParams) -> Self {
        let cold = params.initial_cold_c;
        let state = ThermalState {
            cold_aisle: cold,
            hot_aisle: cold + 3.0,
            mass: cold + 1.5,
        };
        ThermalNetwork { params, state }
    }

    /// Current state.
    pub fn state(&self) -> ThermalState {
        self.state
    }

    /// ACU return-air temperature (what its inlet sensors measure).
    pub fn return_temp(&self) -> Celsius {
        Celsius::new(self.state.hot_aisle)
    }

    /// Parameters used by this network.
    pub fn params(&self) -> &ThermalParams {
        &self.params
    }

    /// Advances the network by `dt`.
    ///
    /// * `supply_temp` — ACU supply-air temperature.
    /// * `server_heat_kw` — total heat dissipated by the servers.
    pub fn step(&mut self, supply_temp: Celsius, server_heat_kw: Kilowatts, dt: Seconds) {
        let supply_temp = supply_temp.value();
        let server_heat_kw = server_heat_kw.value();
        let dt = dt.value();
        let p = &self.params;
        let s = &mut self.state;
        // Cold aisle receives mostly supply air plus leaked hot-aisle air.
        // Leakage grows with the aisle split: a larger ΔT drives stronger
        // buoyant recirculation over the containment. This mild
        // nonlinearity is also what separates direct-strategy forecasting
        // from recursive linear rollouts (Table 3): a one-step linear
        // model's bias compounds through recursion, while per-step direct
        // regressions absorb it.
        let split = (s.hot_aisle - s.cold_aisle).max(0.0);
        let leak = (p.leakage * (1.0 + 0.08 * split)).min(0.5);
        let mix = (1.0 - leak) * supply_temp + leak * s.hot_aisle;

        let d_cold = (p.mdot_cp_kw_per_k * (mix - s.cold_aisle)
            + p.h_mass_kw_per_k * (s.mass - s.cold_aisle)
            + p.ambient_kw_per_k * (p.ambient_temp_c - s.cold_aisle))
            / p.c_cold_kj_per_k;

        let d_hot = (p.mdot_cp_kw_per_k * (s.cold_aisle - s.hot_aisle)
            + server_heat_kw
            + p.h_mass_kw_per_k * (s.mass - s.hot_aisle))
            / p.c_hot_kj_per_k;

        let d_mass = (p.h_mass_kw_per_k * (s.cold_aisle - s.mass)
            + p.h_mass_kw_per_k * (s.hot_aisle - s.mass))
            / p.c_mass_kj_per_k;

        s.cold_aisle += d_cold * dt;
        s.hot_aisle += d_hot * dt;
        s.mass += d_mass * dt;
    }

    /// Overrides the state (used by tests and scenario setup).
    pub fn set_state(&mut self, state: ThermalState) {
        self.state = state;
    }

    /// Changes the containment leakage fraction mid-run (a removed blanking
    /// panel, a propped door): plant drift for recalibration studies.
    pub fn set_leakage(&mut self, leakage: f64) {
        self.params.leakage = leakage.clamp(0.0, 0.9);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn network() -> ThermalNetwork {
        ThermalNetwork::new(ThermalParams::default())
    }

    /// Run to (approximate) steady state with a fixed supply temperature.
    fn settle(net: &mut ThermalNetwork, supply: f64, heat: f64, secs: usize) {
        for _ in 0..secs {
            net.step(
                Celsius::new(supply),
                Kilowatts::new(heat),
                Seconds::new(1.0),
            );
        }
    }

    /// One 1 s step from raw values (test convenience).
    fn step1(net: &mut ThermalNetwork, supply: f64, heat: f64) {
        net.step(
            Celsius::new(supply),
            Kilowatts::new(heat),
            Seconds::new(1.0),
        );
    }

    #[test]
    fn aisle_split_matches_heat_over_mdotcp() {
        let mut net = network();
        settle(&mut net, 16.0, 6.0, 30_000);
        let s = net.state();
        // ΔT ≈ P / (ṁ c_p) = 6 K with small corrections from mass/ambient.
        let split = s.hot_aisle - s.cold_aisle;
        assert!((split - 6.0).abs() < 0.8, "aisle split {split}");
    }

    #[test]
    fn no_cooling_causes_rise_about_one_degree_per_minute() {
        // Fig. 3 calibration: cooling interruption under load heats the
        // cold aisle at roughly 1 °C/min.
        let mut net = network();
        settle(&mut net, 16.0, 6.0, 30_000);
        let before = net.state().cold_aisle;
        // Interruption: supply = return (no heat extracted).
        for _ in 0..300 {
            let supply = net.return_temp();
            net.step(supply, Kilowatts::new(6.0), Seconds::new(1.0));
        }
        let rate_per_min = (net.state().cold_aisle - before) / 5.0;
        assert!(
            rate_per_min > 0.5 && rate_per_min < 2.0,
            "interruption rise {rate_per_min} °C/min"
        );
    }

    #[test]
    fn recovery_is_slower_than_the_rise() {
        // Fig. 3: a 10-minute interruption takes roughly twice as long to
        // undo, because the thermal mass heated during the interruption
        // keeps re-heating the air once normal cooling resumes. "Normal"
        // cooling means returning to the pre-interruption supply
        // temperature (what the PID converges back to), not emergency
        // full-capacity cooling.
        let mut net = network();
        let supply0 = 16.0;
        settle(&mut net, supply0, 6.0, 30_000);
        let t0 = net.state().cold_aisle;

        // 10 minutes of interruption.
        for _ in 0..600 {
            let supply = net.return_temp();
            net.step(supply, Kilowatts::new(6.0), Seconds::new(1.0));
        }
        let peak = net.state().cold_aisle;
        assert!(peak > t0 + 3.0, "interruption must heat the aisle");

        // Resume the pre-interruption supply and time the recovery.
        let mut minutes_to_recover = 0.0;
        while net.state().cold_aisle > t0 + 0.15 && minutes_to_recover < 240.0 {
            for _ in 0..60 {
                step1(&mut net, supply0, 6.0);
            }
            minutes_to_recover += 1.0;
        }
        assert!(
            minutes_to_recover > 10.0,
            "undoing a 10-minute interruption must take longer than the \
             interruption itself; took {minutes_to_recover} min"
        );
        assert!(minutes_to_recover < 240.0, "recovery must complete");
    }

    #[test]
    fn energy_balance_at_steady_state() {
        // At steady state, heat extracted by the ACU equals server heat
        // plus the ambient in-leak.
        let mut net = network();
        settle(&mut net, 17.0, 5.0, 60_000);
        let s = net.state();
        let p = net.params().clone();
        let q_extracted = p.mdot_cp_kw_per_k * (s.hot_aisle - 17.0) * (1.0 - p.leakage)
            - p.mdot_cp_kw_per_k * p.leakage * 0.0; // mixing handled below
                                                    // Simpler check: cold aisle must sit between supply and hot aisle,
                                                    // and the ambient leak is bounded.
        assert!(s.cold_aisle > 17.0 && s.cold_aisle < s.hot_aisle);
        let ambient_leak = p.ambient_kw_per_k * (p.ambient_temp_c - s.cold_aisle);
        assert!(ambient_leak.abs() < 0.5);
        assert!(
            q_extracted > 4.0,
            "extraction {q_extracted} must carry server heat"
        );
    }

    #[test]
    fn hotter_supply_raises_every_node() {
        let mut cool = network();
        let mut warm = network();
        settle(&mut cool, 15.0, 5.0, 30_000);
        settle(&mut warm, 19.0, 5.0, 30_000);
        assert!(warm.state().cold_aisle > cool.state().cold_aisle);
        assert!(warm.state().hot_aisle > cool.state().hot_aisle);
        assert!(warm.state().mass > cool.state().mass);
    }

    #[test]
    fn more_server_heat_widens_the_split() {
        let mut lo = network();
        let mut hi = network();
        settle(&mut lo, 16.0, 2.7, 30_000);
        settle(&mut hi, 16.0, 8.0, 30_000);
        let split_lo = lo.state().hot_aisle - lo.state().cold_aisle;
        let split_hi = hi.state().hot_aisle - hi.state().cold_aisle;
        assert!(split_hi > split_lo + 3.0);
    }

    #[test]
    fn mass_lags_air_during_transients() {
        let mut net = network();
        settle(&mut net, 16.0, 5.0, 30_000);
        let mass_before = net.state().mass;
        // Sudden heat spike for 2 minutes.
        for _ in 0..120 {
            step1(&mut net, 16.0, 10.0);
        }
        let s = net.state();
        assert!(s.hot_aisle - s.mass > 1.0, "air should outrun the mass");
        assert!(
            (s.mass - mass_before).abs() < 0.5,
            "mass barely moves in 2 min"
        );
    }
}
