//! Per-server power model.
//!
//! Each server draws `idle + (max − idle) · util` kW at steady state, with
//! a first-order lag on utilization changes (DVFS/fan ramping) and small
//! per-sample measurement noise. The noise is what makes ACU power vary
//! by hundreds of watts even under a constant set-point (Fig. 2): server
//! heat fluctuates, the PID compensates, compressor duty moves.

use crate::config::ServerParams;
use rand::Rng;
use rand_distr::{Distribution, Normal};
use tesla_units::Kilowatts;

/// A bank of `n` simulated servers.
#[derive(Debug, Clone)]
pub struct ServerBank {
    params: ServerParams,
    /// Lagged (effective) utilization per server.
    effective_util: Vec<f64>,
    /// Commanded utilization per server.
    target_util: Vec<f64>,
    /// Memory utilization per server (collected, not control-relevant).
    mem_util: Vec<f64>,
    noise: Normal<f64>,
}

impl ServerBank {
    /// Creates a bank of `n` idle servers.
    pub fn new(n: usize, params: ServerParams) -> Self {
        let noise = Normal::new(0.0, params.power_noise_kw.max(1e-12)).expect("finite std");
        ServerBank {
            effective_util: vec![0.0; n],
            target_util: vec![0.0; n],
            mem_util: vec![params.mem_base; n],
            params,
            noise,
        }
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.effective_util.len()
    }

    /// True when the bank has no servers.
    pub fn is_empty(&self) -> bool {
        self.effective_util.is_empty()
    }

    /// Sets the commanded CPU utilization for every server (`[0, 1]` each).
    pub fn set_targets(&mut self, utils: &[f64]) {
        debug_assert_eq!(utils.len(), self.len());
        self.target_util.copy_from_slice(utils);
    }

    /// Advances the lag dynamics by `dt` seconds.
    pub fn step(&mut self, dt: f64) {
        let alpha = 1.0 - (-dt / self.params.response_tau_s.max(1e-9)).exp();
        for (eff, tgt) in self.effective_util.iter_mut().zip(&self.target_util) {
            *eff += alpha * (tgt - *eff);
        }
        // Memory follows CPU loosely (paper collects it; nothing uses it).
        for (mem, eff) in self.mem_util.iter_mut().zip(&self.effective_util) {
            let target = self.params.mem_base + 0.4 * eff;
            *mem += (dt / 120.0).min(1.0) * (target - *mem);
        }
    }

    /// Steady-state power for one server given its effective and
    /// commanded utilization.
    fn server_power(&self, effective: f64, target: f64) -> f64 {
        if self.params.sleep_enabled && target <= 1e-9 && effective < 0.01 {
            // Energy-aware provisioning (§8 future work): park unused
            // machines in a low-power sleep state.
            self.params.sleep_power_kw
        } else {
            self.params.idle_power_kw
                + (self.params.max_power_kw - self.params.idle_power_kw) * effective
        }
    }

    /// Instantaneous electrical power per server, kW (with sampling
    /// noise). Raw `f64` per-server telemetry, not `Kilowatts`: this is
    /// the bulk sensor boundary the forecaster trains on.
    pub fn powers_kw<R: Rng>(&self, rng: &mut R) -> Vec<f64> // lint:allow(no-raw-f64-in-public-api): bulk telemetry
    {
        self.effective_util
            .iter()
            .zip(&self.target_util)
            .map(|(&u, &t)| (self.server_power(u, t) + self.noise.sample(rng)).max(0.0))
            .collect()
    }

    /// Total *heat* injected into the room (noise-free: physics sees
    /// the true dissipation, sensors see the noisy one).
    pub fn total_heat_kw(&self) -> Kilowatts {
        Kilowatts::new(
            self.effective_util
                .iter()
                .zip(&self.target_util)
                .map(|(&u, &t)| self.server_power(u, t))
                .sum(),
        )
    }

    /// Effective (lagged) utilizations.
    pub fn effective_utils(&self) -> &[f64] {
        &self.effective_util
    }

    /// Memory utilizations.
    pub fn mem_utils(&self) -> &[f64] {
        &self.mem_util
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bank(n: usize) -> ServerBank {
        ServerBank::new(n, ServerParams::default())
    }

    #[test]
    fn idle_bank_draws_idle_power() {
        let b = bank(21);
        let p = b.total_heat_kw().value();
        assert!((p - 21.0 * 0.18).abs() < 1e-9, "idle heat {p}");
    }

    #[test]
    fn utilization_lag_converges_to_target() {
        let mut b = bank(3);
        b.set_targets(&[1.0, 0.5, 0.0]);
        for _ in 0..600 {
            b.step(1.0);
        }
        let eff = b.effective_utils();
        assert!((eff[0] - 1.0).abs() < 1e-3);
        assert!((eff[1] - 0.5).abs() < 1e-3);
        assert!(eff[2].abs() < 1e-3);
    }

    #[test]
    fn lag_is_gradual() {
        let mut b = bank(1);
        b.set_targets(&[1.0]);
        b.step(1.0);
        let eff = b.effective_utils()[0];
        assert!(
            eff > 0.0 && eff < 0.2,
            "one second should move util only slightly, got {eff}"
        );
    }

    #[test]
    fn power_is_monotone_in_utilization() {
        let mut lo = bank(1);
        let mut hi = bank(1);
        lo.set_targets(&[0.2]);
        hi.set_targets(&[0.8]);
        for _ in 0..300 {
            lo.step(1.0);
            hi.step(1.0);
        }
        assert!(hi.total_heat_kw() > lo.total_heat_kw());
    }

    #[test]
    fn sampled_power_has_noise_but_stays_nonnegative() {
        let mut b = bank(5);
        b.set_targets(&[0.0; 5]);
        let mut rng = StdRng::seed_from_u64(7);
        let p1 = b.powers_kw(&mut rng);
        let p2 = b.powers_kw(&mut rng);
        assert_ne!(p1, p2, "noise should differ across samples");
        for p in p1.iter().chain(&p2) {
            assert!(*p >= 0.0);
        }
    }

    #[test]
    fn per_machine_power_range_matches_paper() {
        // Fig. 8a: per-machine average power 0.233–0.365 kW under medium
        // load; our model must cover that band within util in [0, 1].
        let mut b = bank(1);
        b.set_targets(&[0.45]);
        for _ in 0..600 {
            b.step(1.0);
        }
        let p = b.total_heat_kw().value();
        assert!(p > 0.25 && p < 0.45, "mid-util per-machine power {p}");
    }

    #[test]
    fn sleep_mode_parks_unused_servers() {
        let params = ServerParams {
            sleep_enabled: true,
            ..ServerParams::default()
        };
        let mut b = ServerBank::new(2, params.clone());
        b.set_targets(&[0.0, 0.4]);
        for _ in 0..600 {
            b.step(1.0);
        }
        let heat = b.total_heat_kw().value();
        // Server 0 sleeps (0.03 kW), server 1 runs at 0.4 util.
        let expected = params.sleep_power_kw
            + params.idle_power_kw
            + (params.max_power_kw - params.idle_power_kw) * 0.4;
        assert!(
            (heat - expected).abs() < 1e-3,
            "heat {heat} vs expected {expected}"
        );
        // Default config never sleeps.
        let mut b2 = ServerBank::new(1, ServerParams::default());
        b2.set_targets(&[0.0]);
        b2.step(1.0);
        assert!((b2.total_heat_kw().value() - ServerParams::default().idle_power_kw).abs() < 1e-9);
    }

    #[test]
    fn mem_util_tracks_cpu_slowly() {
        let mut b = bank(1);
        b.set_targets(&[1.0]);
        for _ in 0..3600 {
            b.step(1.0);
        }
        let mem = b.mem_utils()[0];
        assert!(mem > ServerParams::default().mem_base);
        assert!(mem <= 1.0);
    }
}
