//! Discrete PID controller with output clamping and conditional-integration
//! anti-windup (§2.1 of the paper).
//!
//! The controlled error is `inlet_temp − set-point`: positive error means
//! the room's return air is warmer than requested and the compressor duty
//! must rise. When the set-point sits *above* the inlet temperature the
//! error is negative, the proportional and integral terms collapse the
//! duty to zero, and cold air stops being delivered — the *cooling
//! interruption* regime central to the paper's thermal-safety argument.

use crate::config::PidParams;

/// Stateful discrete PID controller.
#[derive(Debug, Clone)]
pub struct Pid {
    params: PidParams,
    integral: f64,
    prev_error: Option<f64>,
}

impl Pid {
    /// Creates a controller with zeroed state.
    pub fn new(params: PidParams) -> Self {
        Pid {
            params,
            integral: 0.0,
            prev_error: None,
        }
    }

    /// The configured gains.
    pub fn params(&self) -> &PidParams {
        &self.params
    }

    /// Current integral-term accumulation (duty units).
    pub fn integral(&self) -> f64 {
        self.integral
    }

    /// Resets dynamic state (integral and derivative history).
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.prev_error = None;
    }

    /// Advances the controller by `dt` seconds given the current error
    /// (`measurement − set-point`) and returns the clamped output.
    ///
    /// Anti-windup: the integral only accumulates while the unclamped
    /// output stays inside the output range, or while the error would
    /// drive the output back toward the range.
    pub fn step(&mut self, error: f64, dt: f64) -> f64 {
        debug_assert!(dt > 0.0);
        let p = self.params.kp * error;
        let d = match self.prev_error {
            Some(prev) => self.params.kd * (error - prev) / dt,
            None => 0.0,
        };
        self.prev_error = Some(error);

        let candidate_integral = self.integral + self.params.ki * error * dt;
        let unclamped = p + candidate_integral + d;

        let out = unclamped.clamp(self.params.out_min, self.params.out_max);
        let saturated_high = unclamped > self.params.out_max && error > 0.0;
        let saturated_low = unclamped < self.params.out_min && error < 0.0;
        if !saturated_high && !saturated_low {
            self.integral = candidate_integral;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> PidParams {
        PidParams {
            kp: 0.3,
            ki: 0.01,
            kd: 0.0,
            out_min: 0.0,
            out_max: 1.0,
        }
    }

    #[test]
    fn positive_error_raises_output() {
        let mut pid = Pid::new(params());
        let out = pid.step(1.0, 1.0);
        assert!(out > 0.0);
        let out2 = pid.step(1.0, 1.0);
        assert!(out2 > out, "integral should accumulate");
    }

    #[test]
    fn negative_error_collapses_output_to_zero() {
        // Set-point above inlet temperature: cooling interruption.
        let mut pid = Pid::new(params());
        for _ in 0..100 {
            let out = pid.step(-2.0, 1.0);
            assert_eq!(out, 0.0);
        }
    }

    #[test]
    fn output_respects_clamp() {
        let mut pid = Pid::new(params());
        for _ in 0..10_000 {
            let out = pid.step(50.0, 1.0);
            assert!((0.0..=1.0).contains(&out));
        }
    }

    #[test]
    fn anti_windup_allows_fast_recovery() {
        let mut with_aw = Pid::new(params());
        // Drive into saturation for a long time.
        for _ in 0..5_000 {
            with_aw.step(10.0, 1.0);
        }
        // The integral must not have grown unboundedly: after the error
        // flips sign, the output must leave saturation quickly.
        let mut steps_to_drop = 0;
        loop {
            let out = with_aw.step(-1.0, 1.0);
            steps_to_drop += 1;
            if out < 1.0 {
                break;
            }
            assert!(steps_to_drop < 200, "anti-windup failed: output stuck high");
        }
    }

    #[test]
    fn derivative_term_reacts_to_error_slope() {
        let p = PidParams {
            kp: 0.0,
            ki: 0.0,
            kd: 1.0,
            out_min: -10.0,
            out_max: 10.0,
        };
        let mut pid = Pid::new(p);
        assert_eq!(pid.step(0.0, 1.0), 0.0); // no history yet
        let out = pid.step(2.0, 1.0); // slope = 2 per second
        assert!((out - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_state() {
        let mut pid = Pid::new(params());
        for _ in 0..50 {
            pid.step(2.0, 1.0);
        }
        assert!(pid.integral() > 0.0);
        pid.reset();
        assert_eq!(pid.integral(), 0.0);
        // First step after reset has no derivative kick.
        let out = pid.step(1.0, 1.0);
        assert!((out - (0.3 + 0.01)).abs() < 1e-12);
    }

    #[test]
    fn zero_error_holds_integral() {
        let mut pid = Pid::new(params());
        pid.step(1.0, 1.0);
        let i = pid.integral();
        pid.step(0.0, 1.0);
        assert_eq!(pid.integral(), i);
    }
}
