//! Zero-cost units-of-measure newtypes for the TESLA control stack.
//!
//! TESLA's safety argument depends on never confusing the physical
//! quantities flowing through the control loop: cold-aisle temperatures
//! vs. temperature *deltas*, instantaneous ACU power vs. interval energy,
//! set-point commands vs. sensor readings. A one-line unit mix-up in the
//! energy model or the supervisor silently corrupts the thermal-safety
//! violation rate the whole reproduction is judged on — so these
//! invariants are enforced by the type system, not by review.
//!
//! Every type is a `repr(transparent)` wrapper over `f64` with *checked*
//! arithmetic: only physically meaningful operations compile.
//!
//! | operation | result |
//! |---|---|
//! | `Celsius - Celsius` | [`DegC`] (a delta) |
//! | `Celsius ± DegC` | [`Celsius`] |
//! | `DegC ± DegC`, `DegC * f64` | [`DegC`] |
//! | `Watts * Seconds` | [`Joules`] |
//! | `Kilowatts * Seconds` | [`Joules`] |
//! | `Joules → KilowattHours` | [`Joules::to_kwh`] |
//! | `KilowattHours / Seconds` | [`Kilowatts`] (mean power) |
//!
//! Absolute temperatures deliberately do **not** add, and no two distinct
//! units mix:
//!
//! ```compile_fail
//! use tesla_units::Celsius;
//! let _ = Celsius::new(20.0) + Celsius::new(1.0); // no Add<Celsius>
//! ```
//!
//! ```compile_fail
//! use tesla_units::{Celsius, Watts};
//! let _ = Celsius::new(20.0) + Watts::new(5.0); // cross-unit arithmetic
//! ```
//!
//! ```compile_fail
//! use tesla_units::{Kilowatts, KilowattHours};
//! let _ = Kilowatts::new(2.0) + KilowattHours::new(2.0); // power ≠ energy
//! ```
//!
//! The crate also carries the paper's operating envelope as `const`s
//! ([`SETPOINT_RANGE`], [`OPERATING_ENVELOPE`], [`THERMAL_LIMIT`],
//! [`COLD_AISLE_LIMIT`], [`NOMINAL_SETPOINT`]) so numeric set-point
//! bounds live in exactly one place; the `bounded-setpoint-literal`
//! lint (`cargo xtask lint`) keeps stray literals out of the control
//! crates.
//!
//! Serialization: the workspace vendors no serde, so the wire format is
//! `Display`/`FromStr` — every type round-trips exactly through its
//! string form (property-tested in `tests/proptests.rs`).

// analysis:allow-file(no-alloc-in-decide-steady-state): typed-vector
// unwrapping copies one horizon-length Vec at the model boundary.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};
use std::str::FromStr;

/// Validation failure for a unit-typed value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UnitError {
    /// A non-finite value where a physical quantity was required.
    NonFinite(f64),
    /// A temperature outside the permitted range.
    OutOfRange {
        /// Offending value.
        value: Celsius,
        /// Inclusive lower bound.
        min: Celsius,
        /// Inclusive upper bound.
        max: Celsius,
    },
    /// A utilization outside `[0, 1]`.
    BadUtilization(f64),
    /// A string that does not parse as the expected quantity.
    Parse,
}

impl fmt::Display for UnitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnitError::NonFinite(v) => write!(f, "non-finite quantity {v}"),
            UnitError::OutOfRange { value, min, max } => {
                write!(f, "{value} outside [{min}, {max}]")
            }
            UnitError::BadUtilization(v) => write!(f, "utilization {v} outside [0, 1]"),
            UnitError::Parse => write!(f, "malformed quantity string"),
        }
    }
}

impl std::error::Error for UnitError {}

/// Implements the shared newtype surface: constructor, accessor, Display
/// ("value suffix"), FromStr (suffix optional), and ordering helpers.
macro_rules! quantity_base {
    ($ty:ident, $suffix:literal, $doc_unit:literal) => {
        impl $ty {
            #[doc = concat!("Wraps a raw `f64` in ", $doc_unit, ".")]
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// The raw `f64` value.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// True when the underlying value is finite.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// The smaller of two values (total over non-NaN inputs).
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// The larger of two values (total over non-NaN inputs).
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Absolute magnitude.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $suffix)
            }
        }

        impl FromStr for $ty {
            type Err = UnitError;

            /// Parses `"<number>"` or `"<number> <suffix>"` (suffix
            /// exactly as `Display` prints it).
            fn from_str(s: &str) -> Result<Self, UnitError> {
                let body = s
                    .trim()
                    .strip_suffix($suffix)
                    .unwrap_or_else(|| s.trim())
                    .trim();
                body.parse::<f64>().map($ty).map_err(|_| UnitError::Parse)
            }
        }
    };
}

/// Adds linear-space arithmetic (Add/Sub/Sum/scalar Mul/Div) to a
/// quantity whose values form a vector space (deltas, powers, energies,
/// durations — *not* absolute temperatures).
macro_rules! quantity_linear {
    ($ty:ident) => {
        impl Add for $ty {
            type Output = $ty;
            #[inline]
            fn add(self, rhs: $ty) -> $ty {
                $ty(self.0 + rhs.0)
            }
        }

        impl AddAssign for $ty {
            #[inline]
            fn add_assign(&mut self, rhs: $ty) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $ty {
            type Output = $ty;
            #[inline]
            fn sub(self, rhs: $ty) -> $ty {
                $ty(self.0 - rhs.0)
            }
        }

        impl SubAssign for $ty {
            #[inline]
            fn sub_assign(&mut self, rhs: $ty) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $ty {
            type Output = $ty;
            #[inline]
            fn neg(self) -> $ty {
                $ty(-self.0)
            }
        }

        impl Mul<f64> for $ty {
            type Output = $ty;
            #[inline]
            fn mul(self, rhs: f64) -> $ty {
                $ty(self.0 * rhs)
            }
        }

        impl Mul<$ty> for f64 {
            type Output = $ty;
            #[inline]
            fn mul(self, rhs: $ty) -> $ty {
                $ty(self * rhs.0)
            }
        }

        impl Div<f64> for $ty {
            type Output = $ty;
            #[inline]
            fn div(self, rhs: f64) -> $ty {
                $ty(self.0 / rhs)
            }
        }

        impl Div for $ty {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $ty) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $ty {
            fn sum<I: Iterator<Item = $ty>>(iter: I) -> $ty {
                $ty(iter.map(|v| v.0).sum())
            }
        }
    };
}

// ---------------------------------------------------------------------------
// Temperature
// ---------------------------------------------------------------------------

/// An absolute temperature in degrees Celsius.
///
/// Absolute temperatures form an affine space: they subtract to a
/// [`DegC`] delta and shift by one, but two absolute temperatures never
/// add (`Celsius + Celsius` is a type error by design).
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
#[repr(transparent)]
pub struct Celsius(f64);

quantity_base!(Celsius, "°C", "degrees Celsius (absolute)");

impl Celsius {
    /// Validates finiteness, surfacing [`UnitError::NonFinite`].
    pub fn checked(value: f64) -> Result<Self, UnitError> {
        if value.is_finite() {
            Ok(Celsius(value))
        } else {
            Err(UnitError::NonFinite(value))
        }
    }

    /// Converts a borrowed slice of raw readings into typed values.
    pub fn from_raw_slice(raw: &[f64]) -> Vec<Celsius> {
        raw.iter().copied().map(Celsius).collect()
    }

    /// Strips the types from a slice of readings (bulk-storage boundary).
    pub fn to_raw_vec(typed: &[Celsius]) -> Vec<f64> {
        typed.iter().map(|c| c.0).collect()
    }
}

/// A temperature *difference* in degrees Celsius (equivalently kelvin).
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
#[repr(transparent)]
pub struct DegC(f64);

quantity_base!(DegC, "Δ°C", "a temperature delta");
quantity_linear!(DegC);

impl Sub for Celsius {
    type Output = DegC;
    /// `Celsius - Celsius = DegC`: the only way two absolutes combine.
    #[inline]
    fn sub(self, rhs: Celsius) -> DegC {
        DegC(self.0 - rhs.0)
    }
}

impl Add<DegC> for Celsius {
    type Output = Celsius;
    #[inline]
    fn add(self, rhs: DegC) -> Celsius {
        Celsius(self.0 + rhs.0)
    }
}

impl Sub<DegC> for Celsius {
    type Output = Celsius;
    #[inline]
    fn sub(self, rhs: DegC) -> Celsius {
        Celsius(self.0 - rhs.0)
    }
}

impl AddAssign<DegC> for Celsius {
    #[inline]
    fn add_assign(&mut self, rhs: DegC) {
        self.0 += rhs.0;
    }
}

impl SubAssign<DegC> for Celsius {
    #[inline]
    fn sub_assign(&mut self, rhs: DegC) {
        self.0 -= rhs.0;
    }
}

// ---------------------------------------------------------------------------
// Power and energy
// ---------------------------------------------------------------------------

/// Instantaneous electrical power, watts.
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
#[repr(transparent)]
pub struct Watts(f64);

quantity_base!(Watts, "W", "watts");
quantity_linear!(Watts);

/// Instantaneous electrical power, kilowatts (the scale the testbed's
/// telemetry reports in).
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
#[repr(transparent)]
pub struct Kilowatts(f64);

quantity_base!(Kilowatts, "kW", "kilowatts");
quantity_linear!(Kilowatts);

/// Energy, joules (watt-seconds).
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
#[repr(transparent)]
pub struct Joules(f64);

quantity_base!(Joules, "J", "joules");
quantity_linear!(Joules);

/// Energy, kilowatt-hours (the paper's Table 5 scale).
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
#[repr(transparent)]
pub struct KilowattHours(f64);

quantity_base!(KilowattHours, "kWh", "kilowatt-hours");
quantity_linear!(KilowattHours);

impl Watts {
    /// Converts to kilowatts.
    #[inline]
    pub const fn to_kilowatts(self) -> Kilowatts {
        Kilowatts(self.0 / 1000.0)
    }
}

impl Kilowatts {
    /// Converts to watts.
    #[inline]
    pub const fn to_watts(self) -> Watts {
        Watts(self.0 * 1000.0)
    }
}

impl Joules {
    /// Converts to kilowatt-hours (1 kWh = 3.6 MJ).
    #[inline]
    pub const fn to_kwh(self) -> KilowattHours {
        KilowattHours(self.0 / 3.6e6)
    }
}

impl KilowattHours {
    /// Converts to joules.
    #[inline]
    pub const fn to_joules(self) -> Joules {
        Joules(self.0 * 3.6e6)
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;
    /// `P · t = E`: watts times seconds is joules.
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        rhs * self
    }
}

impl Mul<Seconds> for Kilowatts {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * 1000.0 * rhs.0)
    }
}

impl Mul<Kilowatts> for Seconds {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Kilowatts) -> Joules {
        rhs * self
    }
}

impl Div<Seconds> for KilowattHours {
    type Output = Kilowatts;
    /// Mean power over an interval: `E / t`.
    #[inline]
    fn div(self, rhs: Seconds) -> Kilowatts {
        Kilowatts(self.0 * 3600.0 / rhs.0)
    }
}

// ---------------------------------------------------------------------------
// Time and utilization
// ---------------------------------------------------------------------------

/// A duration in seconds (simulation and control-period time).
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
#[repr(transparent)]
pub struct Seconds(f64);

quantity_base!(Seconds, "s", "seconds");
quantity_linear!(Seconds);

impl Seconds {
    /// Builds from whole minutes.
    #[inline]
    pub const fn from_minutes(minutes: f64) -> Self {
        Seconds(minutes * 60.0)
    }

    /// The duration expressed in minutes.
    #[inline]
    pub const fn to_minutes(self) -> f64 {
        self.0 / 60.0
    }

    /// The duration expressed in hours.
    #[inline]
    pub const fn to_hours(self) -> f64 {
        self.0 / 3600.0
    }
}

/// A dimensionless utilization in `[0, 1]`.
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
#[repr(transparent)]
pub struct Utilization(f64);

quantity_base!(Utilization, "util", "a utilization fraction");

impl Utilization {
    /// Fully idle.
    pub const ZERO: Utilization = Utilization(0.0);
    /// Fully busy.
    pub const FULL: Utilization = Utilization(1.0);

    /// Validates the `[0, 1]` invariant.
    pub fn checked(value: f64) -> Result<Self, UnitError> {
        if value.is_finite() && (0.0..=1.0).contains(&value) {
            Ok(Utilization(value))
        } else {
            Err(UnitError::BadUtilization(value))
        }
    }

    /// Clamps into `[0, 1]` (NaN becomes 0).
    pub fn saturating(value: f64) -> Self {
        if value.is_nan() {
            Utilization(0.0)
        } else {
            Utilization(value.clamp(0.0, 1.0))
        }
    }
}

// ---------------------------------------------------------------------------
// Fleet zone identity
// ---------------------------------------------------------------------------

/// Identity of one cooling zone (pod) in a fleet.
///
/// Fleet-scale APIs thread this newtype instead of a raw `usize` so a
/// zone identity can never be confused with a sensor index, a worker
/// index, or a minute counter (`cargo xtask lint`'s
/// `no-raw-zone-index-in-public-api` rule enforces this on the fleet
/// crate's public surface). The `Display`/`FromStr` form (`z<index>`)
/// doubles as the historian series prefix, so `z7.acu.power_kw` is
/// derivable from the id in exactly one place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct ZoneId(usize);

impl ZoneId {
    /// Wraps a raw zone index.
    #[inline]
    pub const fn new(index: usize) -> Self {
        ZoneId(index)
    }

    /// The raw zone index (row into fleet-ordered storage).
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }

    /// The historian series prefix for this zone, e.g. `"z7."`.
    pub fn series_prefix(self) -> String {
        format!("z{}.", self.0)
    }

    /// Prefixes a base metric name with this zone's namespace, e.g.
    /// `ZoneId::new(7).series("acu.power_kw")` → `"z7.acu.power_kw"`.
    pub fn series(self, metric: &str) -> String {
        format!("z{}.{metric}", self.0)
    }
}

impl fmt::Display for ZoneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "z{}", self.0)
    }
}

impl FromStr for ZoneId {
    type Err = UnitError;

    /// Parses the `Display` form `z<index>` (a bare index is rejected —
    /// the prefix is what distinguishes a zone id on the wire).
    fn from_str(s: &str) -> Result<Self, UnitError> {
        let body = s.trim().strip_prefix('z').ok_or(UnitError::Parse)?;
        if body.is_empty() || !body.bytes().all(|b| b.is_ascii_digit()) {
            return Err(UnitError::Parse);
        }
        body.parse::<usize>()
            .map(ZoneId)
            .map_err(|_| UnitError::Parse)
    }
}

// ---------------------------------------------------------------------------
// Ranges and the paper's operating envelope
// ---------------------------------------------------------------------------

/// An inclusive absolute-temperature range, the single validation point
/// for set-point commands (`cargo xtask lint`'s `bounded-setpoint-literal`
/// rule keeps raw bound literals out of the control crates).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CelsiusRange {
    min: Celsius,
    max: Celsius,
}

impl CelsiusRange {
    /// A range from `min` to `max` (callers must pass `min <= max`).
    #[inline]
    pub const fn new(min: Celsius, max: Celsius) -> Self {
        CelsiusRange { min, max }
    }

    /// Inclusive lower bound.
    #[inline]
    pub const fn min(&self) -> Celsius {
        self.min
    }

    /// Inclusive upper bound.
    #[inline]
    pub const fn max(&self) -> Celsius {
        self.max
    }

    /// The range width.
    #[inline]
    pub fn span(&self) -> DegC {
        self.max - self.min
    }

    /// True when `t` lies inside the range (inclusive).
    #[inline]
    pub fn contains(&self, t: Celsius) -> bool {
        self.min.0 <= t.0 && t.0 <= self.max.0
    }

    /// Clamps `t` into the range.
    #[inline]
    pub fn clamp(&self, t: Celsius) -> Celsius {
        Celsius(t.0.clamp(self.min.0, self.max.0))
    }

    /// Validates `t`: finite and in range. This is the one place
    /// set-point bounds are checked — everything upstream of a Modbus
    /// write funnels through here.
    pub fn check(&self, t: Celsius) -> Result<Celsius, UnitError> {
        if !t.0.is_finite() {
            return Err(UnitError::NonFinite(t.0));
        }
        if !self.contains(t) {
            return Err(UnitError::OutOfRange {
                value: t,
                min: self.min,
                max: self.max,
            });
        }
        Ok(t)
    }
}

impl fmt::Display for CelsiusRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.min, self.max)
    }
}

/// The ACU's writable set-point specification range, `S_min..=S_max`
/// (Table 1: the Envicool XR023A accepts 20–35 °C). Every Modbus
/// set-point write is validated against this range.
pub const SETPOINT_RANGE: CelsiusRange = CelsiusRange::new(Celsius::new(20.0), Celsius::new(35.0));

/// The paper's §3 *operating envelope*: the band the optimizer is
/// expected to search in practice (18–32 °C). Narrower than the device
/// spec; exposed for candidate-grid construction and sanity checks.
pub const OPERATING_ENVELOPE: CelsiusRange =
    CelsiusRange::new(Celsius::new(18.0), Celsius::new(32.0));

/// The paper's rack-inlet thermal redline (27 °C, §4): beyond this the
/// hardware itself is considered at risk, independent of `d_allowed`.
pub const THERMAL_LIMIT: Celsius = Celsius::new(27.0);

/// Default cold-aisle limit `d_allowed` used by the Table 5 evaluation
/// (22 °C, §5.3) — the constraint TSV is scored against.
pub const COLD_AISLE_LIMIT: Celsius = Celsius::new(22.0);

/// The operator-baseline set-point (23 °C): the fixed policy of Table 5
/// and the customary value the testbed starts episodes at.
pub const NOMINAL_SETPOINT: Celsius = Celsius::new(23.0);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn celsius_subtraction_yields_delta() {
        let d = Celsius::new(24.5) - Celsius::new(22.0);
        assert_eq!(d, DegC::new(2.5));
        assert_eq!(Celsius::new(22.0) + d, Celsius::new(24.5));
        assert_eq!(Celsius::new(24.5) - d, Celsius::new(22.0));
    }

    #[test]
    fn delta_arithmetic_is_linear() {
        let a = DegC::new(1.5);
        let b = DegC::new(0.5);
        assert_eq!(a + b, DegC::new(2.0));
        assert_eq!(a - b, DegC::new(1.0));
        assert_eq!(-a, DegC::new(-1.5));
        assert_eq!(a * 2.0, DegC::new(3.0));
        assert_eq!(2.0 * a, DegC::new(3.0));
        assert_eq!(a / 3.0, DegC::new(0.5));
        assert_eq!(a / b, 3.0);
        let total: DegC = [a, b, b].into_iter().sum();
        assert_eq!(total, DegC::new(2.5));
    }

    #[test]
    fn watts_times_seconds_is_joules() {
        assert_eq!(Watts::new(100.0) * Seconds::new(60.0), Joules::new(6000.0));
        assert_eq!(Seconds::new(60.0) * Watts::new(100.0), Joules::new(6000.0));
        // 1 kW for one hour is one kWh.
        let e = Kilowatts::new(1.0) * Seconds::new(3600.0);
        assert_eq!(e.to_kwh(), KilowattHours::new(1.0));
        assert_eq!(KilowattHours::new(1.0).to_joules(), Joules::new(3.6e6));
    }

    #[test]
    fn mean_power_from_interval_energy() {
        // 0.5 kWh over 30 minutes is a 1 kW mean draw.
        let p = KilowattHours::new(0.5) / Seconds::from_minutes(30.0);
        assert!((p.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn power_scale_conversions() {
        assert_eq!(Watts::new(1500.0).to_kilowatts(), Kilowatts::new(1.5));
        assert_eq!(Kilowatts::new(2.4).to_watts(), Watts::new(2400.0));
    }

    #[test]
    fn seconds_conversions() {
        assert_eq!(Seconds::from_minutes(2.0), Seconds::new(120.0));
        assert_eq!(Seconds::new(90.0).to_minutes(), 1.5);
        assert_eq!(Seconds::new(1800.0).to_hours(), 0.5);
    }

    #[test]
    fn utilization_validates_and_saturates() {
        assert!(Utilization::checked(0.5).is_ok());
        assert!(Utilization::checked(-0.1).is_err());
        assert!(Utilization::checked(1.1).is_err());
        assert!(Utilization::checked(f64::NAN).is_err());
        assert_eq!(Utilization::saturating(1.7), Utilization::FULL);
        assert_eq!(Utilization::saturating(f64::NAN), Utilization::ZERO);
    }

    #[test]
    fn range_check_is_the_single_validator() {
        let r = SETPOINT_RANGE;
        assert_eq!(r.check(Celsius::new(23.0)), Ok(Celsius::new(23.0)));
        assert!(matches!(
            r.check(Celsius::new(50.0)),
            Err(UnitError::OutOfRange { value, min, max })
                if value == Celsius::new(50.0) && min == r.min() && max == r.max()
        ));
        assert!(matches!(
            r.check(Celsius::new(f64::NAN)),
            Err(UnitError::NonFinite(_))
        ));
        assert_eq!(r.clamp(Celsius::new(50.0)), r.max());
        assert_eq!(r.clamp(Celsius::new(-5.0)), r.min());
        assert_eq!(r.span(), DegC::new(15.0));
    }

    #[test]
    fn envelope_constants_match_the_paper() {
        assert_eq!(SETPOINT_RANGE.min(), Celsius::new(20.0));
        assert_eq!(SETPOINT_RANGE.max(), Celsius::new(35.0));
        assert_eq!(OPERATING_ENVELOPE.min(), Celsius::new(18.0));
        assert_eq!(OPERATING_ENVELOPE.max(), Celsius::new(32.0));
        assert_eq!(THERMAL_LIMIT, Celsius::new(27.0));
        assert_eq!(COLD_AISLE_LIMIT, Celsius::new(22.0));
        assert_eq!(NOMINAL_SETPOINT, Celsius::new(23.0));
        assert!(SETPOINT_RANGE.contains(NOMINAL_SETPOINT));
        assert!(OPERATING_ENVELOPE.contains(NOMINAL_SETPOINT));
    }

    #[test]
    fn display_and_parse_round_trip() {
        let t = Celsius::new(23.4567);
        assert_eq!(t.to_string(), "23.4567 °C");
        assert_eq!("23.4567 °C".parse::<Celsius>(), Ok(t));
        assert_eq!("23.4567".parse::<Celsius>(), Ok(t));
        assert_eq!(
            "1.5 kWh".parse::<KilowattHours>(),
            Ok(KilowattHours::new(1.5))
        );
        assert_eq!("2 Δ°C".parse::<DegC>(), Ok(DegC::new(2.0)));
        assert!("garbage °C".parse::<Celsius>().is_err());
    }

    #[test]
    fn checked_constructor_rejects_non_finite() {
        assert!(Celsius::checked(23.0).is_ok());
        assert!(matches!(
            Celsius::checked(f64::INFINITY),
            Err(UnitError::NonFinite(_))
        ));
    }

    #[test]
    fn raw_slice_round_trip() {
        let raw = [21.0, 22.5, 23.0];
        let typed = Celsius::from_raw_slice(&raw);
        assert_eq!(typed[1], Celsius::new(22.5));
        assert_eq!(Celsius::to_raw_vec(&typed), raw.to_vec());
    }

    #[test]
    fn zone_id_round_trip_and_series() {
        let z = ZoneId::new(7);
        assert_eq!(z.index(), 7);
        assert_eq!(z.to_string(), "z7");
        assert_eq!("z7".parse::<ZoneId>(), Ok(z));
        assert_eq!(" z12 ".parse::<ZoneId>(), Ok(ZoneId::new(12)));
        assert_eq!(z.series_prefix(), "z7.");
        assert_eq!(z.series("acu.power_kw"), "z7.acu.power_kw");
        assert!("7".parse::<ZoneId>().is_err());
        assert!("z".parse::<ZoneId>().is_err());
        assert!("z-1".parse::<ZoneId>().is_err());
        assert!("zone7".parse::<ZoneId>().is_err());
        assert!(ZoneId::new(1) < ZoneId::new(2));
    }

    #[test]
    fn ordering_matches_raw_values() {
        assert!(Celsius::new(21.0) < Celsius::new(22.0));
        assert!(Kilowatts::new(3.0) > Kilowatts::new(0.1));
        assert_eq!(
            Celsius::new(25.0).max(Celsius::new(24.0)),
            Celsius::new(25.0)
        );
        assert_eq!(DegC::new(-1.5).abs(), DegC::new(1.5));
    }
}
