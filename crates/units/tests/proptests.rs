//! Property tests for the units layer: string round-trips, arithmetic
//! closure/consistency with the raw values, and ordering coherence.

use proptest::prelude::*;
use tesla_units::{
    Celsius, CelsiusRange, DegC, Joules, KilowattHours, Kilowatts, Seconds, Utilization, Watts,
    SETPOINT_RANGE,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Display → FromStr is the crate's wire format (no serde is
    /// vendored); it must round-trip exactly for every finite value.
    #[test]
    fn string_round_trip_is_exact(v in -1e9f64..1e9) {
        prop_assert_eq!(Celsius::new(v).to_string().parse::<Celsius>(), Ok(Celsius::new(v)));
        prop_assert_eq!(DegC::new(v).to_string().parse::<DegC>(), Ok(DegC::new(v)));
        prop_assert_eq!(Watts::new(v).to_string().parse::<Watts>(), Ok(Watts::new(v)));
        prop_assert_eq!(Kilowatts::new(v).to_string().parse::<Kilowatts>(), Ok(Kilowatts::new(v)));
        prop_assert_eq!(
            KilowattHours::new(v).to_string().parse::<KilowattHours>(),
            Ok(KilowattHours::new(v))
        );
        prop_assert_eq!(Joules::new(v).to_string().parse::<Joules>(), Ok(Joules::new(v)));
        prop_assert_eq!(Seconds::new(v).to_string().parse::<Seconds>(), Ok(Seconds::new(v)));
    }

    /// Affine-space closure: subtracting two absolutes and adding the
    /// delta back reproduces the raw f64 arithmetic bit-for-bit.
    #[test]
    fn celsius_affine_arithmetic_matches_raw(a in -50.0f64..100.0, b in -50.0f64..100.0) {
        let d = Celsius::new(a) - Celsius::new(b);
        prop_assert_eq!(d.value(), a - b);
        prop_assert_eq!((Celsius::new(b) + d).value(), b + (a - b));
        prop_assert_eq!((Celsius::new(a) - d).value(), a - (a - b));
    }

    /// Linear-space closure for deltas: sums and scalings match raw math.
    #[test]
    fn delta_linear_arithmetic_matches_raw(a in -40.0f64..40.0, b in -40.0f64..40.0, k in -4.0f64..4.0) {
        prop_assert_eq!((DegC::new(a) + DegC::new(b)).value(), a + b);
        prop_assert_eq!((DegC::new(a) - DegC::new(b)).value(), a - b);
        prop_assert_eq!((DegC::new(a) * k).value(), a * k);
        prop_assert_eq!((k * DegC::new(a)).value(), k * a);
    }

    /// Energy bookkeeping: accumulating power over time in joules agrees
    /// with the raw kWh integral to floating-point accuracy.
    #[test]
    fn power_time_energy_consistency(p_kw in 0.0f64..6.0, secs in 1.0f64..7200.0) {
        let e = Kilowatts::new(p_kw) * Seconds::new(secs);
        let kwh = e.to_kwh();
        prop_assert!((kwh.value() - p_kw * secs / 3600.0).abs() < 1e-9);
        // Mean power recovered from interval energy inverts the product.
        let mean = kwh / Seconds::new(secs);
        prop_assert!((mean.value() - p_kw).abs() < 1e-9);
        // Watts and kilowatts paths agree.
        let e_w = Watts::new(p_kw * 1000.0) * Seconds::new(secs);
        prop_assert!((e_w.value() - e.value()).abs() < 1e-6);
    }

    /// Ordering on every type is exactly the raw-value ordering.
    #[test]
    fn ordering_consistent_with_raw(a in -1e6f64..1e6, b in -1e6f64..1e6) {
        prop_assert_eq!(Celsius::new(a) < Celsius::new(b), a < b);
        prop_assert_eq!(DegC::new(a) <= DegC::new(b), a <= b);
        prop_assert_eq!(Kilowatts::new(a) > Kilowatts::new(b), a > b);
        prop_assert_eq!(KilowattHours::new(a) >= KilowattHours::new(b), a >= b);
        prop_assert_eq!(Celsius::new(a).max(Celsius::new(b)).value(), a.max(b));
        prop_assert_eq!(Celsius::new(a).min(Celsius::new(b)).value(), a.min(b));
    }

    /// Range validation: `check` accepts exactly the contained values and
    /// `clamp` always lands inside.
    #[test]
    fn range_check_and_clamp_agree(v in -20.0f64..60.0, lo in 0.0f64..25.0, width in 0.1f64..30.0) {
        let range = CelsiusRange::new(Celsius::new(lo), Celsius::new(lo + width));
        let t = Celsius::new(v);
        prop_assert_eq!(range.check(t).is_ok(), range.contains(t));
        prop_assert!(range.contains(range.clamp(t)));
        if range.contains(t) {
            prop_assert_eq!(range.clamp(t), t);
        }
    }

    /// The device spec range accepts every quantized tick it can encode.
    #[test]
    fn setpoint_range_accepts_interior_ticks(ticks in 200u16..=350) {
        let t = Celsius::new(ticks as f64 / 10.0);
        prop_assert!(SETPOINT_RANGE.check(t).is_ok());
    }

    /// Utilization saturation is idempotent and always valid.
    #[test]
    fn utilization_saturation_is_idempotent(v in -5.0f64..5.0) {
        let u = Utilization::saturating(v);
        prop_assert!(Utilization::checked(u.value()).is_ok());
        prop_assert_eq!(Utilization::saturating(u.value()), u);
    }
}
