//! Property-based tests for the linear-algebra kernel.

use proptest::prelude::*;
use tesla_linalg::{cholesky::Cholesky, fit_ridge, matrix::Matrix, stats, vector};

/// Strategy: a random matrix with entries in [-5, 5].
fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-5.0f64..5.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cholesky_roundtrip_on_random_spd(m in matrix_strategy(5, 5)) {
        // A = M Mᵀ + n·I is SPD for any M.
        let mt = m.transpose();
        let mut a = m.matmul(&mt).unwrap();
        a.add_diagonal(5.0);
        let c = Cholesky::decompose(&a).unwrap();
        let l = c.factor();
        let r = l.matmul(&l.transpose()).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                prop_assert!((r[(i, j)] - a[(i, j)]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn cholesky_solve_is_inverse_of_matvec(
        m in matrix_strategy(4, 4),
        x in proptest::collection::vec(-3.0f64..3.0, 4),
    ) {
        let mt = m.transpose();
        let mut a = m.matmul(&mt).unwrap();
        a.add_diagonal(4.0);
        let b = a.matvec(&x).unwrap();
        let c = Cholesky::decompose(&a).unwrap();
        let xr = c.solve(&b).unwrap();
        for (got, want) in xr.iter().zip(&x) {
            prop_assert!((got - want).abs() < 1e-6);
        }
    }

    #[test]
    fn transpose_preserves_frobenius_norm(m in matrix_strategy(3, 6)) {
        let t = m.transpose();
        let n1: f64 = m.as_slice().iter().map(|v| v * v).sum();
        let n2: f64 = t.as_slice().iter().map(|v| v * v).sum();
        prop_assert!((n1 - n2).abs() < 1e-9);
    }

    #[test]
    fn matmul_associates_with_vector(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(4, 2),
        v in proptest::collection::vec(-2.0f64..2.0, 2),
    ) {
        // (A B) v == A (B v)
        let ab = a.matmul(&b).unwrap();
        let lhs = ab.matvec(&v).unwrap();
        let bv = b.matvec(&v).unwrap();
        let rhs = a.matvec(&bv).unwrap();
        for (l, r) in lhs.iter().zip(&rhs) {
            prop_assert!((l - r).abs() < 1e-8);
        }
    }

    #[test]
    fn ridge_training_residual_never_worse_with_less_regularization(
        xs in proptest::collection::vec(-4.0f64..4.0, 24),
        ys in proptest::collection::vec(-4.0f64..4.0, 12),
    ) {
        let x = Matrix::from_vec(12, 2, xs).unwrap();
        let m0 = fit_ridge(&x, &ys, 1e-8).unwrap();
        let m1 = fit_ridge(&x, &ys, 10.0).unwrap();
        let sse = |m: &tesla_linalg::Ridge| -> f64 {
            (0..12).map(|i| {
                let e = m.predict(x.row(i)) - ys[i];
                e * e
            }).sum()
        };
        // Allow tiny numerical slack.
        prop_assert!(sse(&m0) <= sse(&m1) + 1e-6);
    }

    #[test]
    fn dot_is_commutative_and_bilinear(
        a in proptest::collection::vec(-10.0f64..10.0, 9),
        b in proptest::collection::vec(-10.0f64..10.0, 9),
        s in -3.0f64..3.0,
    ) {
        prop_assert!((vector::dot(&a, &b) - vector::dot(&b, &a)).abs() < 1e-9);
        let scaled: Vec<f64> = a.iter().map(|x| x * s).collect();
        prop_assert!((vector::dot(&scaled, &b) - s * vector::dot(&a, &b)).abs() < 1e-7);
    }

    #[test]
    fn mape_is_scale_invariant(
        t in proptest::collection::vec(1.0f64..100.0, 10),
        e in proptest::collection::vec(-0.5f64..0.5, 10),
        s in 0.1f64..10.0,
    ) {
        let p: Vec<f64> = t.iter().zip(&e).map(|(ti, ei)| ti * (1.0 + ei)).collect();
        let st: Vec<f64> = t.iter().map(|v| v * s).collect();
        let sp: Vec<f64> = p.iter().map(|v| v * s).collect();
        prop_assert!((stats::mape(&t, &p) - stats::mape(&st, &sp)).abs() < 1e-6);
    }

    #[test]
    fn quantile_is_monotone_in_q(xs in proptest::collection::vec(-50.0f64..50.0, 1..40)) {
        let q1 = stats::quantile(&xs, 0.25);
        let q2 = stats::quantile(&xs, 0.5);
        let q3 = stats::quantile(&xs, 0.75);
        prop_assert!(q1 <= q2 + 1e-12);
        prop_assert!(q2 <= q3 + 1e-12);
    }

    /// Rank-1 `append_row` reproduces a from-scratch `decompose_jittered`
    /// on random SPD matrices: factor the leading (n-1)-minor, append the
    /// last row/column, and compare every factor entry to 1e-9.
    #[test]
    fn append_row_matches_decompose_jittered_on_random_spd(m in matrix_strategy(6, 6)) {
        let mt = m.transpose();
        let mut a = m.matmul(&mt).unwrap();
        a.add_diagonal(6.0);
        let n = 6;
        let mut lead = Matrix::zeros(n - 1, n - 1);
        for i in 0..n - 1 {
            for j in 0..n - 1 {
                lead[(i, j)] = a[(i, j)];
            }
        }
        let mut grown = Cholesky::decompose_jittered(&lead, 1e-8, 12).unwrap();
        let col: Vec<f64> = (0..n - 1).map(|j| a[(n - 1, j)]).collect();
        grown.append_row(&col, a[(n - 1, n - 1)]).unwrap();
        let full = Cholesky::decompose_jittered(&a, 1e-8, 12).unwrap();
        prop_assert_eq!(grown.jitter(), full.jitter());
        for i in 0..n {
            for j in 0..n {
                prop_assert!(
                    (grown.factor()[(i, j)] - full.factor()[(i, j)]).abs() < 1e-9,
                    "entry ({}, {}): {} vs {}",
                    i, j, grown.factor()[(i, j)], full.factor()[(i, j)]
                );
            }
        }
    }

    /// The multi-RHS forward substitution agrees with per-vector solves
    /// on random SPD factors and random right-hand sides.
    #[test]
    fn forward_substitute_batch_matches_per_vector_on_random_spd(
        m in matrix_strategy(5, 5),
        rhs in proptest::collection::vec(-4.0f64..4.0, 15),
    ) {
        let mt = m.transpose();
        let mut a = m.matmul(&mt).unwrap();
        a.add_diagonal(5.0);
        let c = Cholesky::decompose(&a).unwrap();
        let batch = c.forward_substitute_batch(&rhs).unwrap();
        for (k, chunk) in rhs.chunks(5).enumerate() {
            let single = c.forward_substitute(chunk);
            prop_assert_eq!(&batch[k * 5..(k + 1) * 5], single.as_slice());
        }
    }
}
