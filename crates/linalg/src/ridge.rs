//! Closed-form ridge / ordinary-least-squares regression.
//!
//! §3.2 of the paper: every sub-module of the DC time-series model is a
//! linear regression solved analytically; the ACU, DCS, and cooling-energy
//! sub-modules use L2 regularization (`α = 1`) because they consume
//! *predicted* inputs at inference time, while the ASP sub-module and the
//! Lazic et al. baseline use OLS (`α = 0`).
//!
//! Features are standardized internally (zero mean, unit variance) before
//! solving so a single α is meaningful across heterogeneous inputs
//! (temperatures in °C, powers in kW); the paper obtains the same effect
//! through its global min-max preprocessing.

// analysis:allow-file(panic-free-control-path): dense numeric kernel;
// every index is loop-bounded by lengths validated at the call
// boundary, and debug_asserts guard the shape contracts.
use crate::{cholesky::Cholesky, matrix::Matrix, LinalgError, Result};

/// A fitted ridge regression model `y ≈ w·x + b`.
#[derive(Debug, Clone)]
pub struct Ridge {
    alpha: f64,
    /// Weights folded back into the original feature space
    /// (`weights[i] / feat_std[i]`), cached at construction so `predict`
    /// is a single dot product over the raw features.
    folded_weights: Vec<f64>,
    /// Intercept in the original feature space, cached alongside
    /// `folded_weights`.
    folded_bias: f64,
}

impl Ridge {
    /// Assembles a fitted model from its parts. Used by callers that solve
    /// the normal equations themselves (e.g. the forecaster's shared-gram
    /// multi-target path) but want the standard predict/accessor API.
    ///
    /// `weights` are in the *standardized* feature space described by
    /// `feat_mean`/`feat_std`; `bias` is the target mean.
    pub fn from_parts(
        weights: Vec<f64>,
        bias: f64,
        alpha: f64,
        feat_mean: Vec<f64>,
        feat_std: Vec<f64>,
    ) -> Self {
        assert_eq!(weights.len(), feat_mean.len());
        assert_eq!(weights.len(), feat_std.len());
        let folded_weights: Vec<f64> = weights.iter().zip(&feat_std).map(|(w, s)| w / s).collect();
        let mut folded_bias = bias;
        for ((w, m), s) in weights.iter().zip(&feat_mean).zip(&feat_std) {
            folded_bias -= w * m / s;
        }
        Ridge {
            alpha,
            folded_weights,
            folded_bias,
        }
    }

    /// Regularization strength the model was fitted with.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The learned weights, mapped back to the *original* (unstandardized)
    /// feature space.
    pub fn weights(&self) -> Vec<f64> {
        self.folded_weights.clone()
    }

    /// Borrow of the original-space weights — the coefficients `predict`
    /// actually multiplies with. Callers that hoist window-invariant
    /// partial dot products (the forecaster's prepared hot path) read
    /// these directly instead of cloning.
    pub fn folded_weights(&self) -> &[f64] {
        &self.folded_weights
    }

    /// The learned intercept in the original feature space.
    pub fn bias(&self) -> f64 {
        self.folded_bias
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.folded_weights.len()
    }

    /// Predicts a single example: one dot product over the raw features
    /// with the cached original-space weights (the standardization is
    /// folded in at construction, halving the per-feature arithmetic).
    pub fn predict(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.folded_weights.len());
        let mut acc = self.folded_bias;
        for (w, xi) in self.folded_weights.iter().zip(x) {
            acc += w * xi;
        }
        acc
    }

    /// Predicts a batch of examples (rows of `x`).
    pub fn predict_batch(&self, x: &Matrix) -> Result<Vec<f64>> {
        if x.cols() != self.folded_weights.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "ridge predict",
                lhs: (1, self.folded_weights.len()),
                rhs: x.shape(),
            });
        }
        Ok((0..x.rows()).map(|i| self.predict(x.row(i))).collect())
    }
}

/// Fits ridge regression by solving the normal equations
/// `(XᵀX + αI) w = Xᵀy` with a (jittered) Cholesky factorization.
///
/// `alpha = 0` yields ordinary least squares. The intercept is never
/// regularized (handled by centering the targets).
pub fn fit_ridge(x: &Matrix, y: &[f64], alpha: f64) -> Result<Ridge> {
    let n = x.rows();
    let d = x.cols();
    if n == 0 || d == 0 {
        return Err(LinalgError::Empty("ridge design matrix"));
    }
    if y.len() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "ridge fit",
            lhs: x.shape(),
            rhs: (y.len(), 1),
        });
    }
    if !alpha.is_finite() || alpha < 0.0 {
        return Err(LinalgError::Empty("ridge alpha must be finite and >= 0"));
    }

    // Standardize features; center targets.
    let mut feat_mean = vec![0.0; d];
    let mut feat_std = vec![0.0; d];
    for j in 0..d {
        let mut m = 0.0;
        for i in 0..n {
            m += x[(i, j)];
        }
        m /= n as f64;
        let mut v = 0.0;
        for i in 0..n {
            let c = x[(i, j)] - m;
            v += c * c;
        }
        v /= n as f64;
        feat_mean[j] = m;
        feat_std[j] = if v.sqrt() > 1e-12 { v.sqrt() } else { 1.0 };
    }
    let y_mean = y.iter().sum::<f64>() / n as f64;

    let mut xs = Matrix::zeros(n, d);
    for i in 0..n {
        for j in 0..d {
            xs[(i, j)] = (x[(i, j)] - feat_mean[j]) / feat_std[j];
        }
    }

    let mut gram = xs.gram();
    gram.add_diagonal(alpha);
    // Xᵀ (y - ȳ)
    let mut xty = vec![0.0; d];
    for (i, &yv) in y.iter().enumerate().take(n) {
        let yi = yv - y_mean;
        let row = xs.row(i);
        for j in 0..d {
            xty[j] += row[j] * yi;
        }
    }

    let chol = Cholesky::decompose_jittered(&gram, 1e-10, 14)?;
    let weights = chol.solve(&xty)?;

    Ok(Ridge::from_parts(
        weights, y_mean, alpha, feat_mean, feat_std,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design(rows: &[&[f64]]) -> Matrix {
        Matrix::from_rows(&rows.iter().map(|r| r.to_vec()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn ols_recovers_exact_linear_function() {
        // y = 2 x0 - 3 x1 + 5 on a full-rank design.
        let x = design(&[
            &[0.0, 0.0],
            &[1.0, 0.0],
            &[0.0, 1.0],
            &[1.0, 1.0],
            &[2.0, 1.0],
        ]);
        let y: Vec<f64> = (0..x.rows())
            .map(|i| 2.0 * x[(i, 0)] - 3.0 * x[(i, 1)] + 5.0)
            .collect();
        let model = fit_ridge(&x, &y, 0.0).unwrap();
        let w = model.weights();
        assert!((w[0] - 2.0).abs() < 1e-8, "w0={}", w[0]);
        assert!((w[1] + 3.0).abs() < 1e-8, "w1={}", w[1]);
        assert!((model.bias() - 5.0).abs() < 1e-8);
        for (i, &yi) in y.iter().enumerate() {
            assert!((model.predict(x.row(i)) - yi).abs() < 1e-8);
        }
    }

    #[test]
    fn ridge_shrinks_weights_towards_zero() {
        let x = design(&[&[1.0], &[2.0], &[3.0], &[4.0]]);
        let y = vec![2.0, 4.0, 6.0, 8.0];
        let ols = fit_ridge(&x, &y, 0.0).unwrap();
        let strong = fit_ridge(&x, &y, 100.0).unwrap();
        assert!(strong.weights()[0].abs() < ols.weights()[0].abs());
        // Both models still pass through the mean point.
        let mean_pred = strong.predict(&[2.5]);
        assert!((mean_pred - 5.0).abs() < 1e-9);
    }

    #[test]
    fn collinear_features_handled_by_ridge() {
        // x1 = 2 * x0 exactly: OLS normal equations are singular, but the
        // jittered Cholesky + ridge must both survive.
        let x = design(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0], &[4.0, 8.0]]);
        let y = vec![1.0, 2.0, 3.0, 4.0];
        let model = fit_ridge(&x, &y, 1.0).unwrap();
        let preds = model.predict_batch(&x).unwrap();
        for (p, t) in preds.iter().zip(&y) {
            assert!((p - t).abs() < 0.2, "p={p} t={t}");
        }
    }

    #[test]
    fn constant_feature_does_not_blow_up() {
        let x = design(&[&[1.0, 7.0], &[2.0, 7.0], &[3.0, 7.0]]);
        let y = vec![1.0, 2.0, 3.0];
        let model = fit_ridge(&x, &y, 0.5).unwrap();
        assert!(model.predict(&[2.0, 7.0]).is_finite());
    }

    #[test]
    fn mismatched_target_length_errors() {
        let x = design(&[&[1.0], &[2.0]]);
        assert!(fit_ridge(&x, &[1.0], 0.0).is_err());
    }

    #[test]
    fn negative_alpha_rejected() {
        let x = design(&[&[1.0], &[2.0]]);
        assert!(fit_ridge(&x, &[1.0, 2.0], -1.0).is_err());
    }

    #[test]
    fn predict_batch_wrong_width_errors() {
        let x = design(&[&[1.0], &[2.0]]);
        let model = fit_ridge(&x, &[1.0, 2.0], 0.0).unwrap();
        let bad = design(&[&[1.0, 2.0]]);
        assert!(model.predict_batch(&bad).is_err());
    }

    #[test]
    fn weights_accessor_matches_predictions() {
        let x = design(&[&[0.0, 1.0], &[1.0, 3.0], &[2.0, -1.0], &[3.0, 0.5]]);
        let y = vec![1.0, 0.0, 2.5, -1.0];
        let model = fit_ridge(&x, &y, 0.3).unwrap();
        let w = model.weights();
        let b = model.bias();
        for i in 0..x.rows() {
            let manual = b + w[0] * x[(i, 0)] + w[1] * x[(i, 1)];
            assert!((manual - model.predict(x.row(i))).abs() < 1e-9);
        }
    }
}
