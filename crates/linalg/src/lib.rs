#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Dense linear algebra and statistics primitives for the TESLA reproduction.
//!
//! The paper trains (1 + N_a + N_d)·L independent ridge regressions
//! (§3.2, "Training methodology") whose analytical solutions are obtained
//! via the normal equations. This crate supplies exactly the numerical
//! machinery that entails and nothing more:
//!
//! * [`Matrix`] — a small row-major dense matrix with the handful of
//!   operations the upper crates need (products, transpose, slicing).
//! * [`Cholesky`] — factorization of symmetric positive-definite systems,
//!   used both to solve the ridge normal equations and by the Gaussian
//!   process in `tesla-gp`.
//! * [`Ridge`] / [`fit_ridge`] — closed-form ridge/OLS regression
//!   (`α = 0` reproduces the OLS variant used by the Lazic et al. baseline).
//! * [`stats`] — means/variances/quantiles and the error metrics (MAPE,
//!   RMSE, MAE) used throughout the evaluation section.
//!
//! Everything operates on `f64`. Matrices in this workload are small
//! (hundreds of rows, tens of columns), so the implementation favours
//! clarity and numerical robustness (jittered Cholesky) over blocking.
//!
//! # Example: closed-form ridge fit
//!
//! ```
//! use tesla_linalg::{fit_ridge, Matrix};
//!
//! // y = 2·x + 1, recovered through the normal equations.
//! let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]])?;
//! let ridge = fit_ridge(&x, &[1.0, 3.0, 5.0, 7.0], 1e-6)?;
//! assert!((ridge.predict(&[4.0]) - 9.0).abs() < 1e-3);
//! # Ok::<(), tesla_linalg::LinalgError>(())
//! ```

pub mod cholesky;
pub mod matrix;
pub mod ridge;
pub mod stats;
pub mod vector;

pub use cholesky::Cholesky;
pub use matrix::Matrix;
pub use ridge::{fit_ridge, Ridge};

/// Errors produced by the numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Matrix dimensions are incompatible for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Dimensions of the left operand.
        lhs: (usize, usize),
        /// Dimensions of the right operand.
        rhs: (usize, usize),
    },
    /// The matrix is not positive definite (even after jitter), so a
    /// Cholesky factorization does not exist.
    NotPositiveDefinite,
    /// An operation that requires a non-empty input received an empty one.
    Empty(&'static str),
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: lhs {}x{}, rhs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotPositiveDefinite => {
                write!(f, "matrix is not positive definite")
            }
            LinalgError::Empty(what) => write!(f, "empty input: {what}"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
