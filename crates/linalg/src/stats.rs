//! Descriptive statistics and the error metrics used in the paper's
//! evaluation (§5.1): MAPE is the headline modeling metric (Tables 3–4);
//! MAE/RMSE are kept for diagnostics.

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; 0.0 for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Linear-interpolated quantile, `q` in `[0, 1]`. Returns NaN for empty input.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Mean absolute percentage error in percent:
/// `100/n * Σ |pred - true| / |true|`.
///
/// Pairs whose ground truth is (near) zero are skipped, matching the usual
/// convention (and avoiding the division blow-up the paper's min-max
/// normalization sidesteps).
pub fn mape(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "mape: length mismatch");
    let mut acc = 0.0;
    let mut n = 0usize;
    for (t, p) in truth.iter().zip(pred) {
        if t.abs() > 1e-9 {
            acc += ((p - t) / t).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        100.0 * acc / n as f64
    }
}

/// Mean absolute error.
pub fn mae(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "mae: length mismatch");
    if truth.is_empty() {
        return 0.0;
    }
    truth
        .iter()
        .zip(pred)
        .map(|(t, p)| (p - t).abs())
        .sum::<f64>()
        / truth.len() as f64
}

/// Root mean squared error.
pub fn rmse(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "rmse: length mismatch");
    if truth.is_empty() {
        return 0.0;
    }
    (truth
        .iter()
        .zip(pred)
        .map(|(t, p)| (p - t) * (p - t))
        .sum::<f64>()
        / truth.len() as f64)
        .sqrt()
}

/// Pearson correlation coefficient; NaN-free (returns 0.0 when either
/// series is constant).
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson: length mismatch");
    let sa = std_dev(a);
    let sb = std_dev(b);
    if sa < 1e-12 || sb < 1e-12 || a.len() < 2 {
        return 0.0;
    }
    let ma = mean(a);
    let mb = mean(b);
    let cov = a
        .iter()
        .zip(b)
        .map(|(x, y)| (x - ma) * (y - mb))
        .sum::<f64>()
        / a.len() as f64;
    cov / (sa * sb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_known_values() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_stats() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
    }

    #[test]
    fn quantile_median_and_extremes() {
        let xs = [3.0, 1.0, 2.0];
        assert_eq!(quantile(&xs, 0.5), 2.0);
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 3.0);
        assert!(quantile(&[], 0.5).is_nan());
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((quantile(&xs, 0.25) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn mape_known_value() {
        // |9-10|/10 + |22-20|/20 = 0.1 + 0.1 -> 10%
        let m = mape(&[10.0, 20.0], &[9.0, 22.0]);
        assert!((m - 10.0).abs() < 1e-9);
    }

    #[test]
    fn mape_skips_zero_truth() {
        let m = mape(&[0.0, 10.0], &[5.0, 11.0]);
        assert!((m - 10.0).abs() < 1e-9);
    }

    #[test]
    fn mae_rmse_known_values() {
        let t = [1.0, 2.0, 3.0];
        let p = [2.0, 2.0, 1.0];
        assert!((mae(&t, &p) - 1.0).abs() < 1e-12);
        assert!((rmse(&t, &p) - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn perfect_prediction_zero_error() {
        let t = [1.5, -2.0, 3.25];
        assert_eq!(mape(&t, &t), 0.0);
        assert_eq!(mae(&t, &t), 0.0);
        assert_eq!(rmse(&t, &t), 0.0);
    }

    #[test]
    fn pearson_perfectly_correlated() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [-1.0, -2.0, -3.0, -4.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_series_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }
}
