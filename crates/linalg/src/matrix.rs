//! Row-major dense matrix with the operations the TESLA stack needs.

// analysis:allow-file(panic-free-control-path): dense numeric kernel;
// every index is loop-bounded by lengths validated at the call
// boundary, and debug_asserts guard the shape contracts.
// analysis:allow-file(no-alloc-in-decide-steady-state): work buffers
// are sized by model dimensions fixed at fit time; a fresh surrogate
// per decision is the paper's design, and zero-alloc steady-state
// scoring is tracked as ROADMAP work.
use crate::{LinalgError, Result};
use rayon::prelude::*;

/// A dense, row-major `f64` matrix.
///
/// Sizes in this workload are modest (design matrices of a few thousand
/// rows and a few dozen columns; GP Gram matrices of a few hundred rows),
/// so storage is a single `Vec<f64>` and products use a cache-friendly
/// i-k-j loop, parallelized over rows with rayon once the work is large
/// enough to amortize the fork/join.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Below this many multiply-adds, `matmul` stays sequential: rayon's
/// fork/join overhead would dominate.
const PAR_FLOP_THRESHOLD: usize = 64 * 64 * 64;

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of rows. All rows must share a length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Err(LinalgError::Empty("from_rows"));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(LinalgError::DimensionMismatch {
                    op: "from_rows",
                    lhs: (1, cols),
                    rhs: (1, r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow of the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow of row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy of column `j`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        debug_assert!(j < self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let flops = self.rows * self.cols * rhs.cols;
        if flops >= PAR_FLOP_THRESHOLD {
            let cols = self.cols;
            let rcols = rhs.cols;
            out.data
                .par_chunks_mut(rcols)
                .enumerate()
                .for_each(|(i, orow)| {
                    let arow = &self.data[i * cols..(i + 1) * cols];
                    for (k, &a) in arow.iter().enumerate() {
                        let brow = &rhs.data[k * rcols..(k + 1) * rcols];
                        for (o, &b) in orow.iter_mut().zip(brow) {
                            *o += a * b;
                        }
                    }
                });
        } else {
            for i in 0..self.rows {
                for k in 0..self.cols {
                    let a = self[(i, k)];
                    if a == 0.0 {
                        continue;
                    }
                    let brow = rhs.row(k);
                    let orow = out.row_mut(i);
                    for (o, &b) in orow.iter_mut().zip(brow) {
                        *o += a * b;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|i| crate::vector::dot(self.row(i), v))
            .collect())
    }

    /// Computes the Gram matrix `selfᵀ * self` (symmetric, `cols x cols`),
    /// exploiting symmetry: only the upper triangle is computed.
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut g = Matrix::zeros(n, n);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..n {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                for j in i..n {
                    g[(i, j)] += ri * row[j];
                }
            }
        }
        for i in 0..n {
            for j in (i + 1)..n {
                g[(j, i)] = g[(i, j)];
            }
        }
        g
    }

    /// Element-wise addition. Errors on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "add",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Scales every element by `s` in place.
    pub fn scale_mut(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Adds `v` to every diagonal element in place (`self += v * I`).
    pub fn add_diagonal(&mut self, v: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += v;
        }
    }

    /// Maximum absolute element, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// True when all elements are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_neutral_for_matmul() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_small_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c[(0, 0)], 58.0);
        assert_eq!(c[(0, 1)], 64.0);
        assert_eq!(c[(1, 0)], 139.0);
        assert_eq!(c[(1, 1)], 154.0);
    }

    #[test]
    fn matmul_dimension_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn parallel_and_sequential_matmul_agree() {
        // Force both code paths on the same operands and compare.
        let n = 80; // 80^3 > threshold
        let mut a = Matrix::zeros(n, n);
        let mut b = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = ((i * 31 + j * 7) % 13) as f64 - 6.0;
                b[(i, j)] = ((i * 17 + j * 3) % 11) as f64 - 5.0;
            }
        }
        let big = a.matmul(&b).unwrap();
        // Sequential reference.
        let mut reference = Matrix::zeros(n, n);
        for i in 0..n {
            for k in 0..n {
                for j in 0..n {
                    reference[(i, j)] += a[(i, k)] * b[(k, j)];
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                assert!((big[(i, j)] - reference[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_swaps_indices() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], a[(1, 2)]);
    }

    #[test]
    fn gram_matches_explicit_transpose_product() {
        let a = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let g = a.gram();
        let g2 = a.transpose().matmul(&a).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn matvec_known_result() {
        let a = Matrix::from_vec(2, 3, vec![1., 0., 2., 0., 3., 0.]).unwrap();
        let y = a.matvec(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(y, vec![7.0, 6.0]);
    }

    #[test]
    fn matvec_wrong_length_errors() {
        let a = Matrix::zeros(2, 3);
        assert!(a.matvec(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn from_rows_ragged_errors() {
        let rows = vec![vec![1.0, 2.0], vec![3.0]];
        assert!(Matrix::from_rows(&rows).is_err());
    }

    #[test]
    fn from_rows_empty_errors() {
        let rows: Vec<Vec<f64>> = vec![];
        assert!(matches!(
            Matrix::from_rows(&rows),
            Err(LinalgError::Empty(_))
        ));
    }

    #[test]
    fn add_diagonal_only_touches_diagonal() {
        let mut a = Matrix::zeros(3, 3);
        a.add_diagonal(2.5);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 2.5 } else { 0.0 };
                assert_eq!(a[(i, j)], expect);
            }
        }
    }

    #[test]
    fn col_extracts_column() {
        let a = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        assert_eq!(a.col(1), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn max_abs_and_is_finite() {
        let a = Matrix::from_vec(1, 3, vec![-3.0, 2.0, 1.0]).unwrap();
        assert_eq!(a.max_abs(), 3.0);
        assert!(a.is_finite());
        let b = Matrix::from_vec(1, 1, vec![f64::NAN]).unwrap();
        assert!(!b.is_finite());
    }
}
