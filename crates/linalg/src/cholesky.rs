//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! Used by the ridge normal equations (`XᵀX + αI`) and by the fixed-noise
//! Gaussian process (`K + diag(σ²)`). Both systems are SPD by
//! construction, but finite precision can push near-singular Gram/Gram-like
//! matrices slightly indefinite, so [`Cholesky::decompose_jittered`]
//! retries with exponentially growing diagonal jitter — the same trick
//! GPyTorch applies (the paper's GP backend).

// analysis:allow-file(panic-free-control-path): dense numeric kernel;
// every index is loop-bounded by lengths validated at the call
// boundary, and debug_asserts guard the shape contracts.
// analysis:allow-file(no-alloc-in-decide-steady-state): work buffers
// are sized by model dimensions fixed at fit time; a fresh surrogate
// per decision is the paper's design, and zero-alloc steady-state
// scoring is tracked as ROADMAP work.
use crate::{matrix::Matrix, LinalgError, Result};

/// Lower-triangular Cholesky factor `L` with `L Lᵀ = A`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
    /// Jitter that was added to the diagonal to achieve positive
    /// definiteness (0.0 when the matrix factored cleanly).
    jitter: f64,
}

impl Cholesky {
    /// Factors an SPD matrix. Fails with [`LinalgError::NotPositiveDefinite`]
    /// if a non-positive pivot is encountered.
    pub fn decompose(a: &Matrix) -> Result<Self> {
        Self::decompose_with_jitter(a, 0.0)
    }

    /// Factors `a + jitter * I`, retrying with `jitter * 10` (starting from
    /// `initial`) until success or `max_tries` escalations.
    pub fn decompose_jittered(a: &Matrix, initial: f64, max_tries: usize) -> Result<Self> {
        match Self::decompose_with_jitter(a, 0.0) {
            Ok(c) => return Ok(c),
            Err(LinalgError::NotPositiveDefinite) => {}
            Err(e) => return Err(e),
        }
        let mut jitter = initial.max(1e-12);
        for _ in 0..max_tries {
            match Self::decompose_with_jitter(a, jitter) {
                Ok(c) => return Ok(c),
                Err(LinalgError::NotPositiveDefinite) => jitter *= 10.0,
                Err(e) => return Err(e),
            }
        }
        Err(LinalgError::NotPositiveDefinite)
    }

    fn decompose_with_jitter(a: &Matrix, jitter: f64) -> Result<Self> {
        let (n, m) = a.shape();
        if n != m {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky",
                lhs: a.shape(),
                rhs: a.shape(),
            });
        }
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                if i == j {
                    sum += jitter;
                }
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l, jitter })
    }

    /// The lower-triangular factor.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Jitter added to reach positive definiteness.
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `A x = b` via forward/back substitution.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        let mut y = self.forward_substitute(b);
        // Back substitution: Lᵀ x = y.
        for i in (0..n).rev() {
            let mut sum = y[i];
            for (k, &yk) in y.iter().enumerate().skip(i + 1) {
                sum -= self.l[(k, i)] * yk;
            }
            y[i] = sum / self.l[(i, i)];
        }
        Ok(y)
    }

    /// Solves `L y = b` (forward substitution only). Needed by the GP for
    /// whitening residuals.
    pub fn forward_substitute(&self, b: &[f64]) -> Vec<f64> {
        let mut y = b.to_vec();
        self.forward_substitute_in_place(&mut y);
        y
    }

    /// Forward substitution writing over `b` in place. All forward-solve
    /// entry points funnel through this routine so the batched path is
    /// bit-identical to the per-vector one.
    fn forward_substitute_in_place(&self, b: &mut [f64]) {
        let n = self.dim();
        debug_assert_eq!(b.len(), n);
        for i in 0..n {
            let row = self.l.row(i);
            let mut sum = b[i];
            for (k, &bk) in b.iter().enumerate().take(i) {
                sum -= row[k] * bk;
            }
            b[i] = sum / row[i];
        }
    }

    /// Solves `L Y = B` for many right-hand sides at once.
    ///
    /// `rhs` holds `n_rhs` vectors of length `dim()` back to back
    /// (vector-major, each contiguous); the result uses the same layout.
    /// One call whitens an entire query grid — the GP posterior uses this
    /// so a decision's grid costs one batched solve instead of a solve
    /// (and an allocation) per query point.
    pub fn forward_substitute_batch(&self, rhs: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if n == 0 || !rhs.len().is_multiple_of(n) {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky forward_substitute_batch",
                lhs: (n, n),
                rhs: (rhs.len(), 1),
            });
        }
        let mut out = rhs.to_vec();
        for chunk in out.chunks_mut(n) {
            self.forward_substitute_in_place(chunk);
        }
        Ok(out)
    }

    /// Computes `L z` exploiting the lower-triangular structure (half the
    /// multiplies of a dense matvec). Used by the GP posterior sampler.
    pub fn lower_matvec(&self, z: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if z.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky lower_matvec",
                lhs: (n, n),
                rhs: (z.len(), 1),
            });
        }
        let mut out = vec![0.0; n];
        for (i, o) in out.iter_mut().enumerate() {
            let row = self.l.row(i);
            let mut sum = 0.0;
            for (k, &zk) in z.iter().enumerate().take(i + 1) {
                sum += row[k] * zk;
            }
            *o = sum;
        }
        Ok(out)
    }

    /// Extends the factorization of an `n x n` SPD matrix `A` to the
    /// `(n+1) x (n+1)` matrix obtained by appending one symmetric
    /// row/column: `col` is the new off-diagonal column (length `n`) and
    /// `diag` the new diagonal entry.
    ///
    /// Only the new bottom row of `L` is computed — `O(n^2)` instead of
    /// the `O(n^3)` full refactorization — and because the leading
    /// `n x n` block of the factor of the extended matrix *is* the
    /// existing factor, the result is bit-identical to
    /// [`Cholesky::decompose`] of the extended matrix. The stored jitter
    /// is applied to `diag` so the update stays consistent with a factor
    /// produced by [`Cholesky::decompose_jittered`].
    ///
    /// Fails with [`LinalgError::NotPositiveDefinite`] when the appended
    /// row would make the matrix (numerically) indefinite; the caller
    /// should fall back to a full jittered refactorization.
    pub fn append_row(&mut self, col: &[f64], diag: f64) -> Result<()> {
        let n = self.dim();
        if col.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky append_row",
                lhs: (n, n),
                rhs: (col.len(), 1),
            });
        }
        let w = self.forward_substitute(col);
        let mut d = diag + self.jitter;
        for &wk in &w {
            d -= wk * wk;
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(LinalgError::NotPositiveDefinite);
        }
        let mut grown = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            grown.row_mut(i)[..n].copy_from_slice(self.l.row(i));
        }
        let last = grown.row_mut(n);
        last[..n].copy_from_slice(&w);
        last[n] = d.sqrt();
        self.l = grown;
        Ok(())
    }

    /// Solves `A X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky solve_matrix",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve(&col)?;
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// `log det(A) = 2 * Σ log L_ii`, used by the GP marginal likelihood.
    pub fn log_det(&self) -> f64 {
        let n = self.dim();
        let mut s = 0.0;
        for i in 0..n {
            s += self.l[(i, i)].ln();
        }
        2.0 * s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = M Mᵀ + I for a fixed M: guaranteed SPD.
        Matrix::from_vec(3, 3, vec![5.0, 2.0, 1.0, 2.0, 6.0, 2.0, 1.0, 2.0, 4.0]).unwrap()
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd3();
        let c = Cholesky::decompose(&a).unwrap();
        let l = c.factor();
        let lt = l.transpose();
        let r = l.matmul(&lt).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((r[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
        assert_eq!(c.jitter(), 0.0);
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd3();
        let x_true = vec![1.0, -2.0, 3.0];
        let b = a.matvec(&x_true).unwrap();
        let c = Cholesky::decompose(&a).unwrap();
        let x = c.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn solve_matrix_matches_columnwise_solve() {
        let a = spd3();
        let b = Matrix::from_vec(3, 2, vec![1., 0., 0., 1., 1., 1.]).unwrap();
        let c = Cholesky::decompose(&a).unwrap();
        let x = c.solve_matrix(&b).unwrap();
        for j in 0..2 {
            let col = c.solve(&b.col(j)).unwrap();
            for i in 0..3 {
                assert!((x[(i, j)] - col[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn log_det_matches_known_value() {
        // det of diag(2, 3, 4) = 24.
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 2.0;
        a[(1, 1)] = 3.0;
        a[(2, 2)] = 4.0;
        let c = Cholesky::decompose(&a).unwrap();
        assert!((c.log_det() - 24.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        assert!(matches!(
            Cholesky::decompose(&a),
            Err(LinalgError::NotPositiveDefinite)
        ));
    }

    #[test]
    fn jitter_rescues_semidefinite_matrix() {
        // Rank-1 PSD matrix: [1 1; 1 1].
        let a = Matrix::from_vec(2, 2, vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        let c = Cholesky::decompose_jittered(&a, 1e-10, 12).unwrap();
        assert!(c.jitter() > 0.0);
        // Solutions remain near a least-squares answer.
        let x = c.solve(&[2.0, 2.0]).unwrap();
        assert!((x[0] + x[1] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(Cholesky::decompose(&a).is_err());
    }

    #[test]
    fn append_row_matches_full_decompose() {
        // Factor the 2x2 leading block, append the third row/column of
        // spd3, and compare against factoring spd3 directly.
        let a = spd3();
        let mut lead = Matrix::zeros(2, 2);
        for i in 0..2 {
            for j in 0..2 {
                lead[(i, j)] = a[(i, j)];
            }
        }
        let mut c = Cholesky::decompose(&lead).unwrap();
        c.append_row(&[a[(2, 0)], a[(2, 1)]], a[(2, 2)]).unwrap();
        let full = Cholesky::decompose(&a).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(c.factor()[(i, j)], full.factor()[(i, j)]);
            }
        }
        assert_eq!(c.dim(), 3);
    }

    #[test]
    fn append_row_rejects_indefinite_extension() {
        let a = spd3();
        let mut c = Cholesky::decompose(&a).unwrap();
        // A huge off-diagonal column makes the Schur complement negative.
        assert!(matches!(
            c.append_row(&[100.0, 100.0, 100.0], 1.0),
            Err(LinalgError::NotPositiveDefinite)
        ));
        // The factor is untouched by a failed append.
        assert_eq!(c.dim(), 3);
    }

    #[test]
    fn append_row_wrong_length_errors() {
        let mut c = Cholesky::decompose(&spd3()).unwrap();
        assert!(c.append_row(&[1.0], 5.0).is_err());
    }

    #[test]
    fn forward_substitute_batch_matches_per_vector() {
        let a = spd3();
        let c = Cholesky::decompose(&a).unwrap();
        let rhs = [1.0, 2.0, 3.0, -1.0, 0.5, 4.0];
        let batch = c.forward_substitute_batch(&rhs).unwrap();
        let one = c.forward_substitute(&rhs[0..3]);
        let two = c.forward_substitute(&rhs[3..6]);
        assert_eq!(&batch[0..3], one.as_slice());
        assert_eq!(&batch[3..6], two.as_slice());
        // Ragged batch length rejected.
        assert!(c.forward_substitute_batch(&rhs[..4]).is_err());
    }

    #[test]
    fn lower_matvec_matches_dense() {
        let c = Cholesky::decompose(&spd3()).unwrap();
        let z = [0.3, -1.2, 2.0];
        let dense = c.factor().matvec(&z).unwrap();
        let tri = c.lower_matvec(&z).unwrap();
        for (d, t) in dense.iter().zip(&tri) {
            assert!((d - t).abs() < 1e-15);
        }
        assert!(c.lower_matvec(&[1.0]).is_err());
    }

    #[test]
    fn forward_substitute_consistent_with_solve() {
        let a = spd3();
        let c = Cholesky::decompose(&a).unwrap();
        let b = [1.0, 2.0, 3.0];
        // L y = b, then Lᵀ x = y should equal solve(b).
        let y = c.forward_substitute(&b);
        // Verify L y = b.
        let l = c.factor();
        let ly = l.matvec(&y).unwrap();
        for (v, e) in ly.iter().zip(&b) {
            assert!((v - e).abs() < 1e-12);
        }
    }
}
