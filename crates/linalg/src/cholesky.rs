//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! Used by the ridge normal equations (`XᵀX + αI`) and by the fixed-noise
//! Gaussian process (`K + diag(σ²)`). Both systems are SPD by
//! construction, but finite precision can push near-singular Gram/Gram-like
//! matrices slightly indefinite, so [`Cholesky::decompose_jittered`]
//! retries with exponentially growing diagonal jitter — the same trick
//! GPyTorch applies (the paper's GP backend).

use crate::{matrix::Matrix, LinalgError, Result};

/// Lower-triangular Cholesky factor `L` with `L Lᵀ = A`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
    /// Jitter that was added to the diagonal to achieve positive
    /// definiteness (0.0 when the matrix factored cleanly).
    jitter: f64,
}

impl Cholesky {
    /// Factors an SPD matrix. Fails with [`LinalgError::NotPositiveDefinite`]
    /// if a non-positive pivot is encountered.
    pub fn decompose(a: &Matrix) -> Result<Self> {
        Self::decompose_with_jitter(a, 0.0)
    }

    /// Factors `a + jitter * I`, retrying with `jitter * 10` (starting from
    /// `initial`) until success or `max_tries` escalations.
    pub fn decompose_jittered(a: &Matrix, initial: f64, max_tries: usize) -> Result<Self> {
        match Self::decompose_with_jitter(a, 0.0) {
            Ok(c) => return Ok(c),
            Err(LinalgError::NotPositiveDefinite) => {}
            Err(e) => return Err(e),
        }
        let mut jitter = initial.max(1e-12);
        for _ in 0..max_tries {
            match Self::decompose_with_jitter(a, jitter) {
                Ok(c) => return Ok(c),
                Err(LinalgError::NotPositiveDefinite) => jitter *= 10.0,
                Err(e) => return Err(e),
            }
        }
        Err(LinalgError::NotPositiveDefinite)
    }

    fn decompose_with_jitter(a: &Matrix, jitter: f64) -> Result<Self> {
        let (n, m) = a.shape();
        if n != m {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky",
                lhs: a.shape(),
                rhs: a.shape(),
            });
        }
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                if i == j {
                    sum += jitter;
                }
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l, jitter })
    }

    /// The lower-triangular factor.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Jitter added to reach positive definiteness.
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `A x = b` via forward/back substitution.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        let mut y = self.forward_substitute(b);
        // Back substitution: Lᵀ x = y.
        for i in (0..n).rev() {
            let mut sum = y[i];
            for (k, &yk) in y.iter().enumerate().skip(i + 1) {
                sum -= self.l[(k, i)] * yk;
            }
            y[i] = sum / self.l[(i, i)];
        }
        Ok(y)
    }

    /// Solves `L y = b` (forward substitution only). Needed by the GP for
    /// whitening residuals.
    pub fn forward_substitute(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        debug_assert_eq!(b.len(), n);
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for (k, &yk) in y.iter().enumerate().take(i) {
                sum -= self.l[(i, k)] * yk;
            }
            y[i] = sum / self.l[(i, i)];
        }
        y
    }

    /// Solves `A X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky solve_matrix",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve(&col)?;
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// `log det(A) = 2 * Σ log L_ii`, used by the GP marginal likelihood.
    pub fn log_det(&self) -> f64 {
        let n = self.dim();
        let mut s = 0.0;
        for i in 0..n {
            s += self.l[(i, i)].ln();
        }
        2.0 * s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = M Mᵀ + I for a fixed M: guaranteed SPD.
        Matrix::from_vec(3, 3, vec![5.0, 2.0, 1.0, 2.0, 6.0, 2.0, 1.0, 2.0, 4.0]).unwrap()
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd3();
        let c = Cholesky::decompose(&a).unwrap();
        let l = c.factor();
        let lt = l.transpose();
        let r = l.matmul(&lt).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((r[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
        assert_eq!(c.jitter(), 0.0);
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd3();
        let x_true = vec![1.0, -2.0, 3.0];
        let b = a.matvec(&x_true).unwrap();
        let c = Cholesky::decompose(&a).unwrap();
        let x = c.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn solve_matrix_matches_columnwise_solve() {
        let a = spd3();
        let b = Matrix::from_vec(3, 2, vec![1., 0., 0., 1., 1., 1.]).unwrap();
        let c = Cholesky::decompose(&a).unwrap();
        let x = c.solve_matrix(&b).unwrap();
        for j in 0..2 {
            let col = c.solve(&b.col(j)).unwrap();
            for i in 0..3 {
                assert!((x[(i, j)] - col[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn log_det_matches_known_value() {
        // det of diag(2, 3, 4) = 24.
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 2.0;
        a[(1, 1)] = 3.0;
        a[(2, 2)] = 4.0;
        let c = Cholesky::decompose(&a).unwrap();
        assert!((c.log_det() - 24.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        assert!(matches!(
            Cholesky::decompose(&a),
            Err(LinalgError::NotPositiveDefinite)
        ));
    }

    #[test]
    fn jitter_rescues_semidefinite_matrix() {
        // Rank-1 PSD matrix: [1 1; 1 1].
        let a = Matrix::from_vec(2, 2, vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        let c = Cholesky::decompose_jittered(&a, 1e-10, 12).unwrap();
        assert!(c.jitter() > 0.0);
        // Solutions remain near a least-squares answer.
        let x = c.solve(&[2.0, 2.0]).unwrap();
        assert!((x[0] + x[1] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(Cholesky::decompose(&a).is_err());
    }

    #[test]
    fn forward_substitute_consistent_with_solve() {
        let a = spd3();
        let c = Cholesky::decompose(&a).unwrap();
        let b = [1.0, 2.0, 3.0];
        // L y = b, then Lᵀ x = y should equal solve(b).
        let y = c.forward_substitute(&b);
        // Verify L y = b.
        let l = c.factor();
        let ly = l.matvec(&y).unwrap();
        for (v, e) in ly.iter().zip(&b) {
            assert!((v - e).abs() < 1e-12);
        }
    }
}
