//! Free functions on `&[f64]` slices: dot products, norms, and the small
//! BLAS-1 style helpers shared by the regression and GP code.

// analysis:allow-file(panic-free-control-path): dense numeric kernel;
// every index is loop-bounded by lengths validated at the call
// boundary, and debug_asserts guard the shape contracts.
/// Dot product of two equal-length slices.
///
/// Uses four partial accumulators so LLVM can vectorize without needing
/// `-ffast-math`-style reassociation permission.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let chunks = a.len() / 4;
    let mut acc = [0.0f64; 4];
    for c in 0..chunks {
        let i = c * 4;
        acc[0] += a[i] * b[i];
        acc[1] += a[i + 1] * b[i + 1];
        acc[2] += a[i + 2] * b[i + 2];
        acc[3] += a[i + 3] * b[i + 3];
    }
    let mut tail = 0.0;
    for i in chunks * 4..a.len() {
        tail += a[i] * b[i];
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Euclidean norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x` in place.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Element-wise difference `a - b` as a new vector.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Scales a slice in place.
#[inline]
pub fn scale(a: &mut [f64], s: f64) {
    for v in a {
        *v *= s;
    }
}

/// Maximum element of a non-empty slice (NaN-ignoring).
pub fn max(a: &[f64]) -> f64 {
    a.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Minimum element of a non-empty slice (NaN-ignoring).
pub fn min(a: &[f64]) -> f64 {
    a.iter().copied().fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive_on_odd_lengths() {
        for n in 0..20 {
            let a: Vec<f64> = (0..n).map(|i| i as f64 + 0.5).collect();
            let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
            let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot(&a, &b) - naive).abs() < 1e-12, "n={n}");
        }
    }

    #[test]
    fn norm2_of_unit_axes() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 10.0, 10.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 14.0, 16.0]);
    }

    #[test]
    fn sub_and_scale() {
        let mut d = sub(&[5.0, 7.0], &[2.0, 3.0]);
        scale(&mut d, 2.0);
        assert_eq!(d, vec![6.0, 8.0]);
    }

    #[test]
    fn min_max_basic() {
        let v = [2.0, -1.0, 7.0];
        assert_eq!(max(&v), 7.0);
        assert_eq!(min(&v), -1.0);
    }
}
