//! Fleet-level invariants: worker-count determinism, single-zone
//! equivalence, budget-arbitration safety, and snapshot/resume
//! bit-identity.

use std::sync::Arc;
use tesla_core::dataset::{generate_sweep_trace, DatasetConfig};
use tesla_core::{
    run_supervised_episode, Controller, EpisodeConfig, LazicController, Supervisor,
    SupervisorConfig,
};
use tesla_fleet::{Fleet, FleetCheckpointPolicy, FleetConfig, FleetReport, FleetTopology};
use tesla_historian::MetricStore;
use tesla_telemetry::TsdbStore;
use tesla_units::{Kilowatts, ZoneId};

fn sweep_trace() -> tesla_forecast::Trace {
    generate_sweep_trace(&DatasetConfig {
        days: 0.25,
        seed: 42,
        ..Default::default()
    })
    .expect("sweep trace")
}

fn lazic_controllers(trace: &tesla_forecast::Trace, n: usize) -> Vec<Box<dyn Controller + Send>> {
    (0..n)
        .map(|_| {
            Box::new(LazicController::new(trace, Default::default()).expect("lazic fit"))
                as Box<dyn Controller + Send>
        })
        .collect()
}

/// A small-but-stateful TESLA config: resume crosses pending
/// predictions, the error monitor, the smoothing buffer, and online
/// retrains, so the snapshot test exercises the full state surface.
fn small_tesla_config() -> tesla_core::TeslaConfig {
    tesla_core::TeslaConfig {
        model: tesla_forecast::ModelConfig {
            horizon: 6,
            ..Default::default()
        },
        bo: tesla_bo::BoConfig {
            n_init: 4,
            n_iter: 1,
            n_mc: 16,
            n_grid: 11,
            ..Default::default()
        },
        n_bootstrap: 32,
        retrain_every: Some(5),
        retrain_min_history: 15,
        seed: 7,
        ..Default::default()
    }
}

fn small_config(n_zones: usize, minutes: usize, workers: usize) -> FleetConfig {
    FleetConfig {
        topology: FleetTopology::row(n_zones, Kilowatts::new(125.0), 0.4).unwrap(),
        zone: EpisodeConfig {
            minutes,
            warmup_minutes: 5,
            seed: 9,
            ..Default::default()
        },
        workers,
        ..Default::default()
    }
}

fn run_small(n_zones: usize, minutes: usize, workers: usize) -> FleetReport {
    let trace = sweep_trace();
    let fleet = Fleet::new(
        small_config(n_zones, minutes, workers),
        lazic_controllers(&trace, n_zones),
        None,
    )
    .expect("fleet");
    fleet.run(minutes, None).expect("run")
}

/// Satellite: a fleet episode with 1 worker and with N workers produces
/// bit-identical per-zone set-point sequences (same seeds).
#[test]
fn worker_count_does_not_change_zone_trajectories() {
    let serial = run_small(4, 6, 1);
    for workers in [2, 8] {
        let parallel = run_small(4, 6, workers);
        for (a, b) in serial.zones.iter().zip(&parallel.zones) {
            assert_eq!(a.setpoints, b.setpoints);
            assert_eq!(a.cold_aisle_max, b.cold_aisle_max);
            assert_eq!(a.acu_power, b.acu_power);
        }
        assert_eq!(
            serial.site_peak_kw.value().to_bits(),
            parallel.site_peak_kw.value().to_bits()
        );
    }
}

/// Satellite: a one-zone fleet (no bleed edges, infinite budget) is
/// bit-identical to the plain single-zone supervised episode.
#[test]
fn one_zone_fleet_matches_the_single_zone_episode() {
    let trace = sweep_trace();
    let zone_cfg = EpisodeConfig {
        minutes: 6,
        warmup_minutes: 5,
        seed: 9,
        ..Default::default()
    };

    let mut solo = LazicController::new(&trace, Default::default()).expect("lazic fit");
    let mut supervisor = Supervisor::new(SupervisorConfig::default());
    let single = run_supervised_episode(&mut solo, &mut supervisor, &zone_cfg).expect("episode");

    let config = FleetConfig {
        topology: FleetTopology::row(1, Kilowatts::new(125.0), 0.0).unwrap(),
        zone: zone_cfg,
        ..Default::default()
    };
    let report = Fleet::new(config, lazic_controllers(&trace, 1), None)
        .expect("fleet")
        .run(6, None)
        .expect("run");

    assert_eq!(single.setpoints, report.zones[0].setpoints);
    assert_eq!(single.cold_aisle_max, report.zones[0].cold_aisle_max);
    assert_eq!(single.acu_power, report.zones[0].acu_power);
    assert_eq!(
        single.cooling_energy_kwh.to_bits(),
        report.zones[0].cooling_energy_kwh.to_bits()
    );
}

/// A tight site budget activates arbitration, raises set-points only
/// upward, and introduces no thermal-safety violations the unarbitrated
/// fleet didn't have.
#[test]
fn budget_arbitration_relaxes_without_new_violations() {
    let trace = sweep_trace();
    let minutes = 8;

    let free = Fleet::new(
        small_config(2, minutes, 1),
        lazic_controllers(&trace, 2),
        None,
    )
    .expect("fleet")
    .run(minutes, None)
    .expect("run");
    assert_eq!(free.budget_exceeded_minutes, 0);

    let mut capped_cfg = small_config(2, minutes, 1);
    capped_cfg.site_budget_kw = Kilowatts::new(free.site_peak_kw.value() * 0.5);
    let capped = Fleet::new(capped_cfg, lazic_controllers(&trace, 2), None)
        .expect("fleet")
        .run(minutes, None)
        .expect("run");

    assert!(capped.budget_exceeded_minutes > 0, "budget must bind");
    assert!(capped.relaxations > 0, "arbitration must engage");
    // Relaxation only ever raises the executed set-point (minute 0 has
    // no site reading yet, so compare from minute 1 on).
    for (a, b) in free.zones.iter().zip(&capped.zones) {
        for (sa, sb) in a.setpoints.iter().zip(&b.setpoints).skip(1) {
            assert!(sb >= sa, "arbitrated {sb} below unarbitrated {sa}");
        }
    }
    assert!(capped.violation_minutes() <= free.violation_minutes());
}

/// Satellite: fleet snapshots restore to a bit-identical continuation,
/// and the historian carries zone-prefixed series.
#[test]
fn snapshot_resume_is_bit_identical() {
    let trace = sweep_trace();
    let minutes = 8;
    let dir = std::env::temp_dir().join(format!(
        "tesla_fleet_resume_{}_{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    let policy = FleetCheckpointPolicy {
        dir: dir.clone(),
        every_minutes: 4,
        keep: 2,
    };

    let controllers =
        || tesla_fleet::shared_tesla_controllers(&trace, &small_tesla_config(), 2).expect("fit");

    // Uninterrupted reference run.
    let full = Fleet::new(small_config(2, minutes, 1), controllers(), None)
        .expect("fleet")
        .run(minutes, None)
        .expect("run");

    // Crash after 5 minutes (snapshot landed at minute 4).
    let mut crashed = Fleet::new(small_config(2, minutes, 1), controllers(), None).expect("fleet");
    for _ in 0..5 {
        crashed.step_minute().expect("step");
        if crashed.minute().is_multiple_of(policy.every_minutes) {
            crashed.write_snapshot(&policy).expect("snapshot");
        }
    }
    drop(crashed);

    let store: Arc<dyn MetricStore> = Arc::new(TsdbStore::new());
    let resumed = Fleet::resume(
        small_config(2, minutes, 1),
        controllers(),
        Some(Arc::clone(&store)),
        &policy,
    )
    .expect("resume");
    assert_eq!(resumed.minute(), 4, "restored at the snapshot cursor");
    let report = resumed.run(minutes, None).expect("run");

    for (a, b) in full.zones.iter().zip(&report.zones) {
        assert_eq!(a.setpoints, b.setpoints);
        assert_eq!(a.cold_aisle_max, b.cold_aisle_max);
    }
    // Zone-prefixed historian series from the replay + continuation.
    let z1 = ZoneId::new(1);
    assert_eq!(store.len(&z1.series("setpoint_c")), minutes);
    assert!(store.last(&z1.series("acu.power_kw")).unwrap() > 0.0);
    assert_eq!(store.len("site.power_kw"), minutes);

    let _ = std::fs::remove_dir_all(&dir);
}

/// With no snapshot on disk, resume is a cold start at cursor 0.
#[test]
fn resume_without_snapshots_cold_starts() {
    let trace = sweep_trace();
    let dir = std::env::temp_dir().join(format!("tesla_fleet_cold_{}", std::process::id()));
    let policy = FleetCheckpointPolicy {
        dir: dir.clone(),
        every_minutes: 4,
        keep: 2,
    };
    let fleet = Fleet::resume(
        small_config(1, 4, 1),
        lazic_controllers(&trace, 1),
        None,
        &policy,
    )
    .expect("resume");
    assert_eq!(fleet.minute(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Neighbour bleed couples zone trajectories: an asymmetric-load pair
/// with a bleed edge diverges from the same pair with the edge removed,
/// while an uncoupled fleet's zones match independent episodes.
#[test]
fn bleed_edges_couple_zone_trajectories() {
    let trace = sweep_trace();
    let minutes = 6;

    let mut coupled_cfg = small_config(2, minutes, 1);
    coupled_cfg.topology = FleetTopology::row(2, Kilowatts::new(125.0), 5.0).unwrap();
    let coupled = Fleet::new(coupled_cfg, lazic_controllers(&trace, 2), None)
        .expect("fleet")
        .run(minutes, None)
        .expect("run");

    let mut uncoupled_cfg = small_config(2, minutes, 1);
    uncoupled_cfg.topology = FleetTopology::row(2, Kilowatts::new(125.0), 0.0).unwrap();
    let uncoupled = Fleet::new(uncoupled_cfg, lazic_controllers(&trace, 2), None)
        .expect("fleet")
        .run(minutes, None)
        .expect("run");

    // Zones 0 and 1 run different seeds, so their hot aisles differ and
    // a strong bleed edge must perturb the thermal trajectory.
    assert_ne!(
        coupled.zones[0].cold_aisle_max,
        uncoupled.zones[0].cold_aisle_max
    );

    // With the edge removed, each zone must exactly reproduce a solo
    // single-zone episode run at the zone-derived seed.
    let z1_cfg = EpisodeConfig {
        seed: tesla_fleet::zone_seed(9, ZoneId::new(1)),
        minutes,
        warmup_minutes: 5,
        ..Default::default()
    };
    let mut solo = LazicController::new(&trace, Default::default()).expect("lazic fit");
    let mut supervisor = Supervisor::new(SupervisorConfig::default());
    let single = run_supervised_episode(&mut solo, &mut supervisor, &z1_cfg).expect("episode");
    assert_eq!(single.setpoints, uncoupled.zones[1].setpoints);
    assert_eq!(single.cold_aisle_max, uncoupled.zones[1].cold_aisle_max);
}
