//! A fixed-size work-stealing scheduler for per-zone stepping.
//!
//! The fleet runner fans each phase of the control minute (decide,
//! advance) across a fixed worker pool. The work items are zone indices;
//! zone state lives in `Mutex`-wrapped actors owned by the caller, so the
//! scheduler only moves *indices*. Zones are dealt round-robin into one
//! sharded run queue per worker; a worker drains its own shard from the
//! front and, when empty, steals from the other shards' backs. No new
//! work is produced mid-phase, so "every shard empty" is the termination
//! condition — no condition variables, no unsafe, no external crates.
//!
//! Determinism: every zone's task is independent (its own plant, RNG,
//! controller) and its result is written to its own slot, so the schedule
//! — which worker runs which zone, in what order — cannot change any
//! result. One worker and sixteen workers produce bit-identical per-zone
//! outputs; the scheduler only trades wall-clock for cores.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Runs `task` once per item index in `0..n` across `workers` threads,
/// returning the results in index order. `workers <= 1` runs serially on
/// the caller's thread (the determinism baseline).
///
/// Panics in `task` propagate: the scoped-thread join unwinds the caller.
pub fn run_sharded<R, F>(workers: usize, n: usize, task: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if workers <= 1 || n <= 1 {
        return (0..n).map(task).collect();
    }
    let workers = workers.min(n);
    let shards: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            // Round-robin deal: shard w owns zones w, w+workers, ...
            Mutex::new((w..n).step_by(workers).collect())
        })
        .collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let shards = &shards;
            let slots = &slots;
            let task = &task;
            scope.spawn(move || {
                let mut steals = 0u64;
                loop {
                    // Own shard first (front: cache-friendly dealt order),
                    // then sweep the others stealing from the back.
                    let mut next = shards[w].lock().expect("shard lock").pop_front();
                    if next.is_none() {
                        for v in 1..workers {
                            let victim = (w + v) % workers;
                            if let Some(stolen) =
                                shards[victim].lock().expect("shard lock").pop_back()
                            {
                                steals += 1;
                                next = Some(stolen);
                                break;
                            }
                        }
                    }
                    let Some(idx) = next else { break };
                    *slots[idx].lock().expect("slot lock") = Some(task(idx));
                }
                if steals > 0 {
                    tesla_obs::counter!("tesla_fleet_steals_total").add(steals);
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("every zone index is dealt to exactly one shard")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_index_order() {
        for workers in [0, 1, 2, 7, 64] {
            let out = run_sharded(workers, 100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let count = AtomicUsize::new(0);
        let out = run_sharded(4, 37, |i| {
            count.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(count.load(Ordering::Relaxed), 37);
        assert_eq!(out.len(), 37);
    }

    #[test]
    fn uneven_loads_are_stolen_not_serialized() {
        // One slow zone must not pin the other 15 behind it on the same
        // shard: with stealing, total wall time stays near the slow task.
        let start = std::time::Instant::now();
        run_sharded(4, 16, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(80));
            } else {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        });
        // Serial would be 80 + 15*5 = 155 ms; stolen-balanced stays
        // close to the 80 ms straggler. Generous bound for slow CI.
        assert!(start.elapsed() < std::time::Duration::from_millis(150));
    }

    #[test]
    fn empty_and_single_item_sets_work() {
        assert_eq!(run_sharded(8, 0, |i| i), Vec::<usize>::new());
        assert_eq!(run_sharded(8, 1, |i| i + 1), vec![1]);
    }
}
