#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Fleet-scale multi-zone control: N single-pod control planes stepped
//! in lock-step under a site power-budget coordinator.
//!
//! The single-zone stack (testbed → supervised controller → degradation
//! ladder) scales one room. A site runs many rooms — pods — that are
//! *almost* independent: each has its own ACU, sensors, and workload,
//! but hot-aisle air bleeds between neighbours and the whole hall shares
//! one electrical feed. This crate adds exactly those two couplings and
//! nothing else:
//!
//! * [`FleetTopology`] — the pods and the inter-pod bleed graph (the
//!   8-pod / 1 MW [`FleetTopology::reference_site`] is the default);
//! * [`ZoneActor`] — one pod's plant + controller + supervisor +
//!   episode state, owned together so a scheduler worker can step a
//!   zone without touching shared state;
//! * [`scheduler::run_sharded`] — a fixed-size work-stealing scheduler
//!   (std threads, sharded run queues, no unsafe, no external crates)
//!   fanning the per-zone phases across cores;
//! * [`FleetCoordinator`] — the site power-budget arbiter: proportional
//!   set-point relaxation when the site exceeds its budget, with the
//!   thermal-safety envelope always winning over the budget;
//! * [`Fleet`] — the lock-step minute loop (decide ∥ → arbitrate →
//!   advance ∥ → bleed), fleet snapshots (per-zone checkpoints + the
//!   coordinator state), and bit-identical resume.
//!
//! Determinism is load-bearing: zone trajectories are bit-identical for
//! any worker count (results land in per-zone slots; the only cross-zone
//! phases are serial), a one-zone fleet is bit-identical to the
//! single-zone supervised episode, and a resumed fleet is bit-identical
//! to an uninterrupted one.
//!
//! Shared services: every zone's controller is built from one fitted DC
//! time-series model (cloned, per-zone RNG seeds — the offline fit
//! happens once per fleet, not once per zone), the GP pairwise-distance
//! and hyper-grid caches inside each optimizer do the same work per zone
//! they did per episode, and the historian is one `Arc<dyn MetricStore>`
//! with zone-prefixed series (`z7.setpoint_c`).
//!
//! # Example: a two-pod site under a tight power budget
//!
//! ```
//! use tesla_core::EpisodeConfig;
//! use tesla_fleet::{Fleet, FleetConfig, FleetTopology};
//! use tesla_units::{Celsius, Kilowatts};
//!
//! let config = FleetConfig {
//!     topology: FleetTopology::row(2, Kilowatts::new(125.0), 0.2)?,
//!     zone: EpisodeConfig { minutes: 3, warmup_minutes: 2, ..Default::default() },
//!     site_budget_kw: Kilowatts::new(5.0), // force arbitration
//!     ..Default::default()
//! };
//! let controllers = (0..2)
//!     .map(|_| {
//!         Box::new(tesla_core::FixedController::new(Celsius::new(23.0)))
//!             as Box<dyn tesla_core::Controller + Send>
//!     })
//!     .collect();
//! let report = Fleet::new(config, controllers, None)?.run(3, None)?;
//! assert_eq!(report.zones.len(), 2);
//! assert_eq!(report.minutes, 3);
//! # Ok::<(), tesla_fleet::FleetError>(())
//! ```

pub mod actor;
pub mod coordinator;
pub mod fleet;
pub mod scheduler;
pub mod topology;

pub use actor::{zone_seed, ZoneActor};
pub use coordinator::{CoordinatorConfig, FleetCoordinator, ZoneDecision};
pub use fleet::{Fleet, FleetCheckpointPolicy, FleetConfig, FleetReport};
pub use topology::{BleedEdge, FleetTopology, PodSpec};

use tesla_core::{Controller, CoreError, TeslaConfig, TeslaController};
use tesla_forecast::{DcTimeSeriesModel, Trace};
use tesla_units::ZoneId;

/// Errors from the fleet layer.
#[derive(Debug)]
pub enum FleetError {
    /// Control-layer failure in one zone.
    Core(CoreError),
    /// Simulator failure in one pod.
    Sim(tesla_sim::SimError),
    /// Snapshot store failure.
    Checkpoint(tesla_core::CheckpointError),
    /// Fleet configuration failure.
    Config(String),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Core(e) => write!(f, "zone control: {e}"),
            FleetError::Sim(e) => write!(f, "pod simulator: {e}"),
            FleetError::Checkpoint(e) => write!(f, "fleet snapshot: {e}"),
            FleetError::Config(m) => write!(f, "fleet config: {m}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<CoreError> for FleetError {
    fn from(e: CoreError) -> Self {
        FleetError::Core(e)
    }
}
impl From<tesla_sim::SimError> for FleetError {
    fn from(e: tesla_sim::SimError) -> Self {
        FleetError::Sim(e)
    }
}
impl From<tesla_core::CheckpointError> for FleetError {
    fn from(e: tesla_core::CheckpointError) -> Self {
        FleetError::Checkpoint(e)
    }
}

/// Builds one TESLA controller per zone from a *single* offline model
/// fit — the fleet's shared modeling service. The fit (the expensive
/// part) runs once; each zone gets a clone of the fitted model and its
/// own decision RNG stream derived from `config.seed` (zone 0 keeps the
/// base seed, matching [`zone_seed`]).
pub fn shared_tesla_controllers(
    train: &Trace,
    config: &TeslaConfig,
    n_zones: usize,
) -> Result<Vec<Box<dyn Controller + Send>>, FleetError> {
    let model = DcTimeSeriesModel::fit(train, config.model.clone())
        .map_err(|e| FleetError::Core(CoreError::Forecast(e)))?;
    let mut out: Vec<Box<dyn Controller + Send>> = Vec::with_capacity(n_zones);
    for i in 0..n_zones {
        let mut zone_cfg = config.clone();
        zone_cfg.seed = zone_seed(config.seed, ZoneId::new(i));
        out.push(Box::new(TeslaController::with_model(
            model.clone(),
            zone_cfg,
        )?));
    }
    Ok(out)
}
