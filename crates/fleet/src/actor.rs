//! The per-zone actor: one pod's plant, controller, supervisor, and
//! episode state, owned together so a scheduler worker can lock the zone
//! and run a whole decide or advance step without touching shared state.

use std::sync::Arc;
use tesla_core::{
    Controller, EpisodeConfig, EvalResult, MinuteOutcome, StatusBoard, Supervisor,
    SupervisorConfig, ZoneEpisode,
};
use tesla_historian::MetricStore;
use tesla_sim::{MultiZoneConfig, MultiZoneTestbed};
use tesla_units::{Celsius, ZoneId};

use crate::coordinator::ZoneDecision;
use crate::FleetError;

/// Derives zone `z`'s episode seed from the fleet's base seed. Zone 0
/// keeps the base seed, which is what makes a one-zone fleet
/// bit-identical to the single-zone supervised episode.
pub fn zone_seed(base: u64, zone: ZoneId) -> u64 {
    base ^ (zone.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// One zone of the fleet: a single-cell pod plus its control stack.
pub struct ZoneActor {
    zone: ZoneId,
    episode: ZoneEpisode<MultiZoneTestbed>,
    controller: Box<dyn Controller + Send>,
    supervisor: Supervisor,
    status: Arc<StatusBoard>,
    historian: Option<Arc<dyn MetricStore>>,
    last_observed_cold_max: Celsius,
    config: EpisodeConfig,
}

impl ZoneActor {
    /// Builds the zone's pod (a one-cell [`MultiZoneTestbed`] seeded with
    /// the zone-derived seed so fleet trajectories are reproducible and
    /// zone 0 matches the plain testbed), wraps it in episode state, and
    /// resets the control stack. `config.seed` must already be the
    /// zone-derived seed (see [`zone_seed`]).
    pub fn new(
        zone: ZoneId,
        config: EpisodeConfig,
        mut controller: Box<dyn Controller + Send>,
        supervisor_config: SupervisorConfig,
        historian: Option<Arc<dyn MetricStore>>,
    ) -> Result<Self, FleetError> {
        let pod = MultiZoneTestbed::with_zone_seeds(
            MultiZoneConfig {
                zones: vec![config.sim.clone()],
                coupling_kw_per_k: 0.0,
            },
            &[config.seed],
        )?;
        controller.reset();
        let mut supervisor = Supervisor::new(supervisor_config);
        supervisor.reset();
        let status = Arc::new(StatusBoard::new());
        supervisor.attach_status_board(Arc::clone(&status));
        Ok(ZoneActor {
            zone,
            episode: ZoneEpisode::new(pod, &config),
            controller,
            supervisor,
            status,
            historian,
            last_observed_cold_max: Celsius::new(f64::NEG_INFINITY),
            config,
        })
    }

    /// The zone's identity.
    pub fn zone(&self) -> ZoneId {
        self.zone
    }

    /// The zone's status board (zone-scoped `STATUS` readback).
    pub fn status_board(&self) -> Arc<StatusBoard> {
        Arc::clone(&self.status)
    }

    /// The zone's supervisor (rung inspection, tests).
    pub fn supervisor(&self) -> &Supervisor {
        &self.supervisor
    }

    /// Executed set-points so far, °C (one per metered minute).
    // lint:allow(no-raw-f64-in-public-api): bulk series mirroring EvalResult's raw trace
    pub fn setpoints(&self) -> &[f64] {
        self.episode.setpoints()
    }

    /// This zone's episode configuration (zone-derived seed included).
    pub fn config(&self) -> &EpisodeConfig {
        &self.config
    }

    /// Serialized controller decision state (fleet checkpoints).
    pub fn controller_state(&self) -> Option<Vec<u8>> {
        self.controller.save_state()
    }

    /// The controller's display name (checkpoint fingerprints).
    pub fn controller_name(&self) -> String {
        self.controller.name().to_string()
    }

    /// Supervisor ladder state (fleet checkpoints).
    pub fn supervisor_state(&self) -> tesla_core::SupervisorState {
        self.supervisor.state()
    }

    /// Installs resume state at the replay cursor: ladder state always,
    /// controller decision state when the checkpoint carried one.
    pub fn install_resume_state(
        &mut self,
        supervisor: tesla_core::SupervisorState,
        controller: Option<&[u8]>,
    ) {
        self.supervisor.restore_state(supervisor);
        if let Some(bytes) = controller {
            self.controller.load_state(bytes);
        }
    }

    /// Runs the warm-up minutes (physics settle, trace fills).
    pub fn warmup(&mut self) -> Result<(), FleetError> {
        self.episode.warmup()?;
        Ok(())
    }

    /// Phase 1 of the fleet minute: one supervised decision over this
    /// zone's own trace, packaged with the rung and thermal head-room
    /// the coordinator needs for arbitration.
    pub fn decide(&mut self) -> ZoneDecision {
        let timer = std::time::Instant::now();
        let proposed = self
            .episode
            .decide(&mut self.supervisor, self.controller.as_mut());
        tesla_obs::histogram!("tesla_fleet_zone_decide_seconds").observe_duration(timer.elapsed());
        ZoneDecision {
            zone: self.zone,
            proposed,
            rung: self.supervisor.rung(),
            cold_aisle_max: self.last_observed_cold_max,
        }
    }

    /// Phase 3 of the fleet minute: execute the arbitrated set-point and
    /// step the pod's physics. Returns the minute's outcome for site
    /// aggregation (power sums, bleed boundary state).
    pub fn advance(
        &mut self,
        minute: usize,
        setpoint: Celsius,
        replaying: bool,
    ) -> Result<MinuteOutcome, FleetError> {
        let timer = std::time::Instant::now();
        let outcome = self
            .episode
            .advance(minute, setpoint, &mut self.supervisor, replaying)?;
        tesla_obs::histogram!("tesla_fleet_zone_advance_seconds").observe_duration(timer.elapsed());
        self.last_observed_cold_max = outcome.observed_cold_aisle_max;
        if let Some(store) = &self.historian {
            let t = (minute as f64) * 60.0;
            store.insert(&self.zone.series("setpoint_c"), t, outcome.executed.value());
            store.insert(
                &self.zone.series("cold_aisle_max_c"),
                t,
                outcome.true_cold_aisle_max.value(),
            );
            store.insert(
                &self.zone.series("acu.power_kw"),
                t,
                outcome.acu_power_kw.value(),
            );
            store.insert(
                &self.zone.series("rung"),
                t,
                f64::from(self.supervisor.rung().index()),
            );
        }
        Ok(outcome)
    }

    /// The replay variant of decide+advance for fleet resume: forces the
    /// recorded executed set-point and runs only the controller's
    /// deterministic replay hook.
    pub fn replay_minute(
        &mut self,
        minute: usize,
        recorded: Celsius,
    ) -> Result<MinuteOutcome, FleetError> {
        let sp = self
            .episode
            .replay_decision(minute, self.controller.as_mut(), recorded.value());
        self.advance(minute, sp, true)
    }

    /// Hot-aisle boundary state for the bleed exchange (°C), with the
    /// pod's hot-aisle heat capacity (kJ/K).
    // lint:allow(no-raw-f64-in-public-api): kJ/K capacity has no newtype
    pub fn hot_aisle(&self) -> (Celsius, f64) {
        let plant = self.episode.plant();
        (
            plant.hot_aisle_temp(0).unwrap_or(Celsius::new(f64::NAN)),
            plant.hot_aisle_capacity_kj_per_k(0).unwrap_or(f64::NAN),
        )
    }

    /// Deposits (or withdraws, negative) bleed energy into the pod's hot
    /// aisle.
    // lint:allow(no-raw-f64-in-public-api): kJ energy packet mirrors the sim accessor
    pub fn add_hot_aisle_energy_kj(&mut self, energy_kj: f64) -> Result<(), FleetError> {
        self.episode
            .plant_mut()
            .add_hot_aisle_energy_kj(0, energy_kj)?;
        Ok(())
    }

    /// Seals the zone's episode into its [`EvalResult`].
    pub fn finish(self) -> EvalResult {
        self.episode
            .finish(self.controller.name(), &self.supervisor)
    }
}
