//! The site power-budget coordinator.
//!
//! Each control minute, every zone's supervised controller proposes a
//! set-point for its own pod; the coordinator then arbitrates the
//! *site-level* electrical budget. When last minute's site draw (IT +
//! cooling) exceeds the budget, it relaxes set-points — raises them,
//! which cuts compressor duty — proportionally to the overshoot. The
//! safety envelope always wins over the budget:
//!
//! * only zones on the [`Rung::Normal`] ladder rung are relaxed — a zone
//!   holding its last safe set-point or pinned at `S_min` is already in
//!   a thermal incident and is never pushed warmer for power reasons;
//! * only zones whose observed cold-aisle max sits below
//!   `d_allowed − safety_margin` are eligible — relaxation must not
//!   convert a power overshoot into a thermal one. A zone's total
//!   relaxation is further capped at its *observed headroom* below
//!   that ceiling, clamped down immediately as the zone heats up (even
//!   while the site is still over budget), so relaxation granted
//!   during a cool stretch can never stay pinned into a violation;
//! * the per-zone relaxation is rate-limited per minute and capped in
//!   total, and every arbitrated set-point is clamped to the ACU spec
//!   range before it reaches the register write.
//!
//! When the site is back under budget the relaxation decays toward zero,
//! returning authority to the per-zone optimizers.

use tesla_core::Rung;
use tesla_units::{Celsius, DegC, Kilowatts, ZoneId, SETPOINT_RANGE};

/// Arbitration-policy knobs.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Largest per-minute *increase* of a zone's relaxation (°C/min).
    pub relax_step: DegC,
    /// Cap on a zone's total relaxation above its proposed set-point
    /// (further bounded, per minute, by the zone's observed cold-aisle
    /// headroom below `d_allowed − safety_margin`).
    pub max_relax: DegC,
    /// Head-room below `d_allowed` a zone must have to be eligible.
    pub safety_margin: DegC,
    /// Per-minute decay of the relaxation while under budget (°C/min).
    pub decay_step: DegC,
    /// Overshoot (as a fraction of the budget) at which the full
    /// `relax_step` is applied; smaller overshoots scale linearly.
    // lint:allow(no-raw-f64-in-public-api): dimensionless fraction
    pub full_step_overshoot_frac: f64,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            relax_step: DegC::new(0.5),
            max_relax: DegC::new(3.0),
            safety_margin: DegC::new(1.0),
            decay_step: DegC::new(0.25),
            full_step_overshoot_frac: 0.1,
        }
    }
}

/// One zone's input to the arbitration round.
#[derive(Debug, Clone, Copy)]
pub struct ZoneDecision {
    /// The zone the decision belongs to.
    pub zone: ZoneId,
    /// The set-point the zone's supervised controller proposed.
    pub proposed: Celsius,
    /// The zone's degradation-ladder rung at decision time.
    pub rung: Rung,
    /// Last minute's observed (sanitized) cold-aisle max;
    /// `-inf` before the first metered minute.
    pub cold_aisle_max: Celsius,
}

/// The site coordinator: owns the budget and the per-zone relaxation
/// state, and arbitrates once per control minute.
#[derive(Debug, Clone)]
pub struct FleetCoordinator {
    config: CoordinatorConfig,
    budget_kw: Kilowatts,
    d_allowed: Celsius,
    relax: Vec<f64>,
    budget_exceeded_minutes: u64,
    relaxations: u64,
}

impl FleetCoordinator {
    /// Builds a coordinator for `n_zones` pods under `budget_kw`, with
    /// eligibility judged against the episode's `d_allowed` limit.
    pub fn new(
        config: CoordinatorConfig,
        n_zones: usize,
        budget_kw: Kilowatts,
        d_allowed: Celsius,
    ) -> Self {
        FleetCoordinator {
            config,
            budget_kw,
            d_allowed,
            relax: vec![0.0; n_zones],
            budget_exceeded_minutes: 0,
            relaxations: 0,
        }
    }

    /// The configured site power budget.
    pub fn budget_kw(&self) -> Kilowatts {
        self.budget_kw
    }

    /// Minutes the site spent over budget so far.
    pub fn budget_exceeded_minutes(&self) -> u64 {
        self.budget_exceeded_minutes
    }

    /// Total zone-minutes of relaxation applied so far.
    pub fn relaxations(&self) -> u64 {
        self.relaxations
    }

    /// Current relaxation of `zone` above its proposed set-point.
    pub fn relax_of(&self, zone: ZoneId) -> DegC {
        DegC::new(self.relax.get(zone.index()).copied().unwrap_or(0.0))
    }

    /// One arbitration round: updates the relaxation state from last
    /// minute's site draw, then returns the set-point each zone must
    /// execute this minute (same order as `decisions`).
    pub fn arbitrate(
        &mut self,
        last_site_power: Kilowatts,
        decisions: &[ZoneDecision],
    ) -> Vec<Celsius> {
        let over_kw = last_site_power.value() - self.budget_kw.value();
        if over_kw > 0.0 {
            self.budget_exceeded_minutes += 1;
            tesla_obs::counter!("tesla_fleet_budget_exceeded_total").inc();
            // Proportional response: full step at (and beyond) the
            // configured overshoot fraction, linearly less below it.
            let frac = (over_kw
                / self.budget_kw.value().max(1e-9)
                / self.config.full_step_overshoot_frac.max(1e-9))
            .min(1.0);
            let step = self.config.relax_step.value() * frac;
            let ceiling = self.d_allowed.value() - self.config.safety_margin.value();
            for d in decisions {
                let r = &mut self.relax[d.zone.index()];
                // A zone's relaxation may never exceed the thermal
                // headroom it has demonstrably shown: cold-aisle
                // response to a raised set-point lags by minutes, so a
                // relaxation granted during a cool stretch must shrink
                // in lock-step as the workload heats the zone — not
                // stay pinned until the zone violates. The cap clamps
                // *down* immediately (the thermal envelope is never
                // traded for the electrical one); growth stays
                // rate-limited by `step`.
                let headroom = (ceiling - d.cold_aisle_max.value()).max(0.0);
                let cap = headroom.min(self.config.max_relax.value());
                let eligible = d.rung == Rung::Normal && d.cold_aisle_max.value() < ceiling;
                let was = *r;
                *r = if eligible {
                    (*r + step).min(cap)
                } else {
                    r.min(cap)
                };
                if *r > was {
                    self.relaxations += 1;
                    tesla_obs::counter!("tesla_fleet_relaxations_total").inc();
                }
            }
        } else {
            for r in &mut self.relax {
                *r = (*r - self.config.decay_step.value()).max(0.0);
            }
        }
        tesla_obs::gauge!("tesla_fleet_relaxed_celsius").set(self.relax.iter().sum::<f64>());

        decisions
            .iter()
            .map(|d| {
                // Non-normal rungs pass through untouched: the ladder's
                // set-point (hold-last-safe or S_min) is a safety action
                // the budget may not override.
                if d.rung == Rung::Normal {
                    SETPOINT_RANGE.clamp(Celsius::new(
                        d.proposed.value() + self.relax[d.zone.index()],
                    ))
                } else {
                    d.proposed
                }
            })
            .collect()
    }

    /// Serializes the coordinator's mutable state (relaxations and
    /// counters) for fleet checkpoints.
    pub fn encode_state(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 * (3 + self.relax.len()));
        out.extend_from_slice(&(self.relax.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.budget_exceeded_minutes.to_le_bytes());
        out.extend_from_slice(&self.relaxations.to_le_bytes());
        for r in &self.relax {
            out.extend_from_slice(&r.to_le_bytes());
        }
        out
    }

    /// Restores state written by [`FleetCoordinator::encode_state`].
    /// Fails (returns `false`, state untouched) on a short buffer or a
    /// zone-count mismatch.
    pub fn restore_state(&mut self, bytes: &[u8]) -> bool {
        let word = |i: usize| -> Option<[u8; 8]> {
            bytes.get(i * 8..(i + 1) * 8).map(|s| {
                let mut w = [0u8; 8];
                w.copy_from_slice(s);
                w
            })
        };
        let Some(n) = word(0).map(u64::from_le_bytes) else {
            return false;
        };
        if n as usize != self.relax.len() || bytes.len() != 8 * (3 + n as usize) {
            return false;
        }
        let (Some(exceeded), Some(relaxations)) = (
            word(1).map(u64::from_le_bytes),
            word(2).map(u64::from_le_bytes),
        ) else {
            return false;
        };
        let mut relax = Vec::with_capacity(n as usize);
        for i in 0..n as usize {
            match word(3 + i).map(f64::from_le_bytes) {
                Some(r) if r.is_finite() && r >= 0.0 => relax.push(r),
                _ => return false,
            }
        }
        self.budget_exceeded_minutes = exceeded;
        self.relaxations = relaxations;
        self.relax = relax;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decisions(rungs: &[Rung], cold: f64) -> Vec<ZoneDecision> {
        rungs
            .iter()
            .enumerate()
            .map(|(i, &rung)| ZoneDecision {
                zone: ZoneId::new(i),
                proposed: Celsius::new(24.0),
                rung,
                cold_aisle_max: Celsius::new(cold),
            })
            .collect()
    }

    fn coordinator(n: usize) -> FleetCoordinator {
        FleetCoordinator::new(
            CoordinatorConfig::default(),
            n,
            Kilowatts::new(100.0),
            Celsius::new(22.0),
        )
    }

    #[test]
    fn under_budget_passes_proposals_through() {
        let mut c = coordinator(2);
        let out = c.arbitrate(Kilowatts::new(90.0), &decisions(&[Rung::Normal; 2], 19.0));
        assert_eq!(out, vec![Celsius::new(24.0); 2]);
        assert_eq!(c.budget_exceeded_minutes(), 0);
    }

    #[test]
    fn overshoot_relaxes_only_safe_normal_zones() {
        let mut c = coordinator(3);
        let d = decisions(&[Rung::Normal, Rung::HoldLastSafe, Rung::Normal], 19.0);
        let mut d = d;
        // Zone 2 is thermally marginal: inside the safety margin.
        d[2].cold_aisle_max = Celsius::new(21.5);
        let out = c.arbitrate(Kilowatts::new(120.0), &d);
        // 20% overshoot >= 10% full-step threshold -> the full 0.5 step.
        assert_eq!(out[0], Celsius::new(24.5));
        // Held zone and marginal zone are untouched.
        assert_eq!(out[1], Celsius::new(24.0));
        assert_eq!(out[2], Celsius::new(24.0));
        assert_eq!(c.budget_exceeded_minutes(), 1);
        assert_eq!(c.relaxations(), 1);
    }

    #[test]
    fn relaxation_is_rate_limited_capped_and_decays() {
        let mut c = coordinator(1);
        // Cold enough (headroom 6.0) that max_relax is the binding cap.
        let d = decisions(&[Rung::Normal], 15.0);
        for _ in 0..20 {
            c.arbitrate(Kilowatts::new(150.0), &d);
        }
        // Capped at max_relax = 3.0 despite 20 over-budget minutes.
        assert!((c.relax_of(ZoneId::new(0)).value() - 3.0).abs() < 1e-12);
        let out = c.arbitrate(Kilowatts::new(150.0), &d);
        assert_eq!(out[0], Celsius::new(27.0));
        // Two under-budget minutes decay 2 * 0.25.
        c.arbitrate(Kilowatts::new(50.0), &d);
        c.arbitrate(Kilowatts::new(50.0), &d);
        assert!((c.relax_of(ZoneId::new(0)).value() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn headroom_caps_and_rescinds_relaxation_while_over_budget() {
        let mut c = coordinator(1);
        // Headroom 1.2 below the 21.0 ceiling binds before max_relax.
        let mut d = decisions(&[Rung::Normal], 19.8);
        for _ in 0..10 {
            c.arbitrate(Kilowatts::new(150.0), &d);
        }
        assert!((c.relax_of(ZoneId::new(0)).value() - 1.2).abs() < 1e-12);
        // The zone heats up while the site is still over budget: the
        // relaxation clamps down to the remaining headroom at once.
        d[0].cold_aisle_max = Celsius::new(20.6);
        c.arbitrate(Kilowatts::new(150.0), &d);
        assert!((c.relax_of(ZoneId::new(0)).value() - 0.4).abs() < 1e-12);
        // Past the ceiling (margin band / violation): shed entirely.
        d[0].cold_aisle_max = Celsius::new(21.5);
        let out = c.arbitrate(Kilowatts::new(150.0), &d);
        assert_eq!(c.relax_of(ZoneId::new(0)).value(), 0.0);
        assert_eq!(out[0], Celsius::new(24.0));
    }

    #[test]
    fn small_overshoot_scales_the_step_linearly() {
        let mut c = coordinator(1);
        let d = decisions(&[Rung::Normal], 19.0);
        // 5% overshoot -> half of the 0.5 step.
        c.arbitrate(Kilowatts::new(105.0), &d);
        assert!((c.relax_of(ZoneId::new(0)).value() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn arbitrated_setpoints_stay_inside_the_spec_range() {
        let mut c = coordinator(1);
        let mut d = decisions(&[Rung::Normal], 19.0);
        d[0].proposed = Celsius::new(34.5);
        for _ in 0..10 {
            let out = c.arbitrate(Kilowatts::new(200.0), &d);
            assert!(SETPOINT_RANGE.contains(out[0]));
        }
    }

    #[test]
    fn state_round_trips_and_rejects_garbage() {
        let mut c = coordinator(3);
        let d = decisions(&[Rung::Normal; 3], 19.0);
        c.arbitrate(Kilowatts::new(150.0), &d);
        c.arbitrate(Kilowatts::new(150.0), &d);
        let bytes = c.encode_state();
        let mut fresh = coordinator(3);
        assert!(fresh.restore_state(&bytes));
        assert_eq!(fresh.budget_exceeded_minutes(), 2);
        assert_eq!(fresh.relax_of(ZoneId::new(1)), c.relax_of(ZoneId::new(1)));
        let mut wrong_size = coordinator(2);
        assert!(!wrong_size.restore_state(&bytes));
        assert!(!fresh.restore_state(&bytes[..bytes.len() - 1]));
        assert!(!fresh.restore_state(&[]));
    }
}
