//! Site topology: pods, their rated IT capacity, and the inter-pod
//! thermal-bleed graph.
//!
//! A *pod* is one containment cell — servers, one ACU, its own sensor
//! array — modeled as a single-cell [`tesla_sim::MultiZoneTestbed`].
//! Pods in the same hall are not thermally independent: hot-aisle air
//! leaks through containment seams and shared plenums, so the topology
//! carries an undirected edge list with a bleed conductance per edge.
//! The fleet runner turns each edge into a symmetric, energy-conserving
//! heat exchange between the two pods' hot aisles every control minute.

use crate::FleetError;
use tesla_units::{Kilowatts, ZoneId};

/// One pod of the site: a zone identifier plus its rated IT capacity
/// (used for documentation and for sizing the default site budget — the
/// simulated load comes from the per-zone workload profile).
#[derive(Debug, Clone, PartialEq)]
pub struct PodSpec {
    /// The pod's fleet-wide zone identity.
    pub zone: ZoneId,
    /// Rated IT capacity of the pod.
    pub rated_it_kw: Kilowatts,
}

/// An undirected thermal-bleed edge between two pods.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BleedEdge {
    /// First endpoint (always the lower zone index).
    pub a: ZoneId,
    /// Second endpoint (always the higher zone index).
    pub b: ZoneId,
    /// Bleed conductance between the two hot aisles, kW per kelvin of
    /// hot-aisle temperature difference.
    // lint:allow(no-raw-f64-in-public-api): kW/K conductance has no newtype; see ThermalParams
    pub kw_per_k: f64,
}

/// The site's pod set and bleed graph.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetTopology {
    pods: Vec<PodSpec>,
    edges: Vec<BleedEdge>,
}

impl FleetTopology {
    /// Builds a topology from explicit pods and edges, validating that
    /// edge endpoints are distinct in-range zones, conductances are
    /// finite and non-negative, and no edge is listed twice.
    pub fn new(pods: Vec<PodSpec>, edges: Vec<BleedEdge>) -> Result<Self, FleetError> {
        if pods.is_empty() {
            return Err(FleetError::Config("a fleet needs at least one pod".into()));
        }
        for (i, pod) in pods.iter().enumerate() {
            if pod.zone.index() != i {
                return Err(FleetError::Config(format!(
                    "pod {i} carries zone id {}; pods must be listed in zone order",
                    pod.zone
                )));
            }
        }
        let n = pods.len();
        let mut seen = std::collections::BTreeSet::new();
        for e in &edges {
            if e.a >= e.b {
                return Err(FleetError::Config(format!(
                    "edge {}-{} must list the lower zone first and may not self-couple",
                    e.a, e.b
                )));
            }
            if e.b.index() >= n {
                return Err(FleetError::Config(format!(
                    "edge {}-{} references a zone outside the {n}-pod site",
                    e.a, e.b
                )));
            }
            if !e.kw_per_k.is_finite() || e.kw_per_k < 0.0 {
                return Err(FleetError::Config(format!(
                    "edge {}-{} has non-finite or negative conductance {}",
                    e.a, e.b, e.kw_per_k
                )));
            }
            if !seen.insert((e.a, e.b)) {
                return Err(FleetError::Config(format!(
                    "edge {}-{} is listed twice",
                    e.a, e.b
                )));
            }
        }
        Ok(FleetTopology { pods, edges })
    }

    /// A row of `n` identical pods with adjacent-neighbour bleed — the
    /// general shape scaling benchmarks use.
    pub fn row(n: usize, rated_it_kw: Kilowatts, bleed_kw_per_k: f64) -> Result<Self, FleetError> {
        let pods = (0..n)
            .map(|i| PodSpec {
                zone: ZoneId::new(i),
                rated_it_kw,
            })
            .collect();
        let edges = (1..n)
            .map(|i| BleedEdge {
                a: ZoneId::new(i - 1),
                b: ZoneId::new(i),
                kw_per_k: bleed_kw_per_k,
            })
            .collect();
        FleetTopology::new(pods, edges)
    }

    /// The reference site: 8 pods of 125 kW rated IT capacity (a 1 MW
    /// hall) in a row with 0.4 kW/K adjacent-neighbour bleed — the same
    /// shape as the published 8-pod/1 MW simulated-site configurations
    /// this layer reproduces.
    pub fn reference_site() -> Self {
        FleetTopology::row(8, Kilowatts::new(125.0), 0.4)
            .expect("the reference topology is statically valid")
    }

    /// Number of pods on the site.
    pub fn n_zones(&self) -> usize {
        self.pods.len()
    }

    /// The pods, in zone order.
    pub fn pods(&self) -> &[PodSpec] {
        &self.pods
    }

    /// The undirected bleed edges.
    pub fn edges(&self) -> &[BleedEdge] {
        &self.edges
    }

    /// Total rated IT capacity of the site.
    pub fn rated_it_kw(&self) -> Kilowatts {
        Kilowatts::new(self.pods.iter().map(|p| p.rated_it_kw.value()).sum())
    }

    /// The bleed neighbours of `zone` with their conductances.
    // lint:allow(no-raw-f64-in-public-api): kW/K conductance has no newtype
    pub fn neighbors(&self, zone: ZoneId) -> Vec<(ZoneId, f64)> {
        let mut out = Vec::new();
        for e in &self.edges {
            if e.a == zone {
                out.push((e.b, e.kw_per_k));
            } else if e.b == zone {
                out.push((e.a, e.kw_per_k));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_site_is_eight_pods_one_megawatt() {
        let t = FleetTopology::reference_site();
        assert_eq!(t.n_zones(), 8);
        assert_eq!(t.edges().len(), 7);
        assert!((t.rated_it_kw().value() - 1000.0).abs() < 1e-9);
        assert_eq!(t.neighbors(ZoneId::new(0)).len(), 1);
        assert_eq!(t.neighbors(ZoneId::new(3)).len(), 2);
    }

    #[test]
    fn validation_rejects_bad_edges() {
        let pods = |n: usize| {
            (0..n)
                .map(|i| PodSpec {
                    zone: ZoneId::new(i),
                    rated_it_kw: Kilowatts::new(125.0),
                })
                .collect::<Vec<_>>()
        };
        let edge = |a: usize, b: usize, g: f64| BleedEdge {
            a: ZoneId::new(a),
            b: ZoneId::new(b),
            kw_per_k: g,
        };
        assert!(FleetTopology::new(vec![], vec![]).is_err());
        assert!(FleetTopology::new(pods(2), vec![edge(1, 1, 0.1)]).is_err());
        assert!(FleetTopology::new(pods(2), vec![edge(1, 0, 0.1)]).is_err());
        assert!(FleetTopology::new(pods(2), vec![edge(0, 2, 0.1)]).is_err());
        assert!(FleetTopology::new(pods(2), vec![edge(0, 1, f64::NAN)]).is_err());
        assert!(FleetTopology::new(pods(2), vec![edge(0, 1, 0.1), edge(0, 1, 0.2)]).is_err());
        assert!(FleetTopology::new(pods(2), vec![edge(0, 1, 0.1)]).is_ok());
    }
}
