//! The fleet runner: N zone actors stepped in lock-step control minutes
//! under the site coordinator.
//!
//! One fleet control minute has four phases:
//!
//! 1. **decide** (parallel) — every zone runs its supervised decision
//!    over its own sanitized trace;
//! 2. **arbitrate** (serial) — the [`FleetCoordinator`] turns proposals
//!    into executable set-points under the site power budget;
//! 3. **advance** (parallel) — every zone executes its arbitrated
//!    set-point and steps its pod's physics one sampling period;
//! 4. **bleed** (serial) — hot-aisle heat is exchanged pairwise along
//!    the topology's edges from a single temperature snapshot, so the
//!    exchange is symmetric, energy-conserving, and independent of edge
//!    order.
//!
//! The parallel phases run zone-local state only and write results into
//! per-zone slots, so the fleet trajectory is bit-identical for any
//! worker count; the serial phases are the only cross-zone couplings and
//! they are deterministic by construction.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use tesla_core::{
    Checkpoint, CheckpointStore, Controller, EpisodeConfig, EvalResult, StatusBoard,
    SupervisorConfig,
};
use tesla_historian::MetricStore;
use tesla_units::{Celsius, KilowattHours, Kilowatts, ZoneId};

use crate::actor::{zone_seed, ZoneActor};
use crate::coordinator::{CoordinatorConfig, FleetCoordinator};
use crate::scheduler::run_sharded;
use crate::topology::FleetTopology;
use crate::FleetError;

/// Everything needed to stand up a fleet.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The site's pods and bleed graph.
    pub topology: FleetTopology,
    /// Per-zone episode template. `zone.seed` is the fleet's base seed;
    /// each zone runs with the [`zone_seed`]-derived variant (zone 0
    /// keeps the base).
    pub zone: EpisodeConfig,
    /// Per-zone supervisor (degradation-ladder) settings.
    pub supervisor: SupervisorConfig,
    /// Site electrical budget (IT + cooling). Infinite disables
    /// arbitration entirely.
    pub site_budget_kw: Kilowatts,
    /// Coordinator arbitration-policy knobs.
    pub coordinator: CoordinatorConfig,
    /// Scheduler worker threads for the parallel phases (`<= 1` steps
    /// zones serially on the caller's thread).
    pub workers: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            topology: FleetTopology::reference_site(),
            zone: EpisodeConfig::default(),
            supervisor: SupervisorConfig::default(),
            site_budget_kw: Kilowatts::new(f64::INFINITY),
            coordinator: CoordinatorConfig::default(),
            workers: 1,
        }
    }
}

/// Periodic fleet snapshots: per-zone control-plane checkpoints plus the
/// coordinator's arbitration state, written under one root directory.
#[derive(Debug, Clone)]
pub struct FleetCheckpointPolicy {
    /// Snapshot root; zone `z` checkpoints live in `<dir>/z<z>/`.
    pub dir: PathBuf,
    /// Snapshot every this-many metered minutes.
    pub every_minutes: usize,
    /// Checkpoints retained per zone.
    pub keep: usize,
}

/// What a finished (or aborted-and-sealed) fleet episode produced.
#[derive(Debug)]
pub struct FleetReport {
    /// Per-zone episode results, in zone order.
    pub zones: Vec<EvalResult>,
    /// Highest one-minute site draw observed.
    pub site_peak_kw: Kilowatts,
    /// Total site electrical energy over the metered episode.
    pub site_energy_kwh: KilowattHours,
    /// Minutes the site spent over budget.
    pub budget_exceeded_minutes: u64,
    /// Zone-minutes of coordinator relaxation applied.
    pub relaxations: u64,
    /// Metered minutes completed.
    pub minutes: usize,
}

impl FleetReport {
    /// Total thermal-safety violation minutes across all zones (scored
    /// on ground truth, like the single-zone TSV metric).
    pub fn violation_minutes(&self) -> u64 {
        self.zones
            .iter()
            .map(|z| (z.tsv_percent / 100.0 * self.minutes as f64).round() as u64)
            .sum()
    }
}

/// The fleet: zone actors, the coordinator, and the shared services
/// (historian, scheduler) stepping them in lock-step control minutes.
pub struct Fleet {
    config: FleetConfig,
    actors: Vec<Mutex<ZoneActor>>,
    coordinator: FleetCoordinator,
    historian: Option<Arc<dyn MetricStore>>,
    minute: usize,
    last_site_power: Kilowatts,
    site_peak_kw: f64,
    site_energy_kwh: f64,
}

impl Fleet {
    /// Builds and warms up the fleet: one actor per pod (zone-derived
    /// seeds), one controller per zone (build them against a shared
    /// fitted model — see [`crate::shared_tesla_controllers`] — so the
    /// expensive offline fit happens once), and the coordinator sized to
    /// the topology. Warm-up runs across the scheduler.
    pub fn new(
        config: FleetConfig,
        controllers: Vec<Box<dyn Controller + Send>>,
        historian: Option<Arc<dyn MetricStore>>,
    ) -> Result<Self, FleetError> {
        let n = config.topology.n_zones();
        if controllers.len() != n {
            return Err(FleetError::Config(format!(
                "{} controllers supplied for a {n}-zone site",
                controllers.len()
            )));
        }
        let coordinator = FleetCoordinator::new(
            config.coordinator.clone(),
            n,
            config.site_budget_kw,
            config.zone.d_allowed,
        );
        let mut actors = Vec::with_capacity(n);
        for (i, controller) in controllers.into_iter().enumerate() {
            let zone = ZoneId::new(i);
            let mut zone_cfg = config.zone.clone();
            zone_cfg.seed = zone_seed(config.zone.seed, zone);
            actors.push(Mutex::new(ZoneActor::new(
                zone,
                zone_cfg,
                controller,
                config.supervisor.clone(),
                historian.clone(),
            )?));
        }
        let mut fleet = Fleet {
            config,
            actors,
            coordinator,
            historian,
            minute: 0,
            last_site_power: Kilowatts::new(0.0),
            site_peak_kw: 0.0,
            site_energy_kwh: 0.0,
        };
        fleet.for_each_zone(|actor| actor.warmup())?;
        Ok(fleet)
    }

    /// Number of zones on the site.
    pub fn n_zones(&self) -> usize {
        self.actors.len()
    }

    /// Metered minutes completed so far.
    pub fn minute(&self) -> usize {
        self.minute
    }

    /// Last minute's site electrical draw (IT + cooling).
    pub fn site_power_kw(&self) -> Kilowatts {
        self.last_site_power
    }

    /// The coordinator (budget/relaxation inspection).
    pub fn coordinator(&self) -> &FleetCoordinator {
        &self.coordinator
    }

    /// Each zone's status board, for zone-scoped `STATUS` readback
    /// through the network service.
    pub fn status_boards(&self) -> Vec<(ZoneId, Arc<StatusBoard>)> {
        self.actors
            .iter()
            .map(|a| {
                let actor = a.lock().expect("zone lock");
                (actor.zone(), actor.status_board())
            })
            .collect()
    }

    /// Executed set-points of `zone` so far, °C.
    // lint:allow(no-raw-f64-in-public-api): bulk series mirroring EvalResult's raw trace
    pub fn zone_setpoints(&self, zone: ZoneId) -> Vec<f64> {
        self.actors[zone.index()]
            .lock()
            .expect("zone lock")
            .setpoints()
            .to_vec()
    }

    fn for_each_zone(
        &mut self,
        f: impl Fn(&mut ZoneActor) -> Result<(), FleetError> + Sync,
    ) -> Result<(), FleetError> {
        let workers = self.config.workers;
        let actors = &self.actors;
        run_sharded(workers, actors.len(), |i| {
            f(&mut actors[i].lock().expect("zone lock"))
        })
        .into_iter()
        .collect()
    }

    /// Advances the whole site one control minute (phases 1–4).
    pub fn step_minute(&mut self) -> Result<(), FleetError> {
        let minute = self.minute;
        let whole = Instant::now();
        let workers = self.config.workers;
        let actors = &self.actors;

        let decisions = run_sharded(workers, actors.len(), |i| {
            actors[i].lock().expect("zone lock").decide()
        });

        let arb = Instant::now();
        let finals = self.coordinator.arbitrate(self.last_site_power, &decisions);
        tesla_obs::histogram!("tesla_fleet_coordinator_seconds").observe_duration(arb.elapsed());

        self.execute_minute(minute, &finals, false)?;
        tesla_obs::histogram!("tesla_fleet_minute_seconds").observe_duration(whole.elapsed());
        Ok(())
    }

    /// Phases 3–4 plus the site-power rollup, shared by the live and
    /// replay paths (replay forces recorded set-points and skips the
    /// supervisor's minute close, exactly like single-zone resume).
    fn execute_minute(
        &mut self,
        minute: usize,
        setpoints: &[Celsius],
        replaying: bool,
    ) -> Result<(), FleetError> {
        let workers = self.config.workers;
        let actors = &self.actors;
        let outcomes: Vec<_> = run_sharded(workers, actors.len(), |i| {
            let mut actor = actors[i].lock().expect("zone lock");
            if replaying {
                actor.replay_minute(minute, setpoints[i])
            } else {
                actor.advance(minute, setpoints[i], false)
            }
        })
        .into_iter()
        .collect::<Result<_, _>>()?;

        self.exchange_bleed()?;

        let n_servers = self.config.zone.sim.n_servers as f64;
        let site_kw: f64 = outcomes
            .iter()
            .map(|o| o.acu_power_kw.value() + o.avg_server_power_kw.value() * n_servers)
            .sum();
        self.last_site_power = Kilowatts::new(site_kw);
        self.site_peak_kw = self.site_peak_kw.max(site_kw);
        self.site_energy_kwh += site_kw / 60.0;
        tesla_obs::gauge!("tesla_fleet_site_power_kw").set(site_kw);
        if let Some(store) = &self.historian {
            store.insert("site.power_kw", minute as f64 * 60.0, site_kw);
        }
        self.minute = minute + 1;
        Ok(())
    }

    /// Phase 4: pairwise hot-aisle heat exchange along the topology's
    /// edges. All temperatures are snapshotted first, so each edge moves
    /// `g · (T_a − T_b) · 60 s` kilojoules from the warmer to the cooler
    /// pod regardless of edge order — the exchange is symmetric under
    /// zone swap and conserves `Σ C·T` exactly (up to float rounding).
    fn exchange_bleed(&mut self) -> Result<(), FleetError> {
        if self.config.topology.edges().is_empty() {
            return Ok(());
        }
        let temps: Vec<Celsius> = self
            .actors
            .iter()
            .map(|a| a.lock().expect("zone lock").hot_aisle().0)
            .collect();
        let dt_s = self.config.zone.sim.sample_period_s;
        for e in self.config.topology.edges() {
            let (a, b) = (e.a.index(), e.b.index());
            let energy_kj = e.kw_per_k * (temps[a].value() - temps[b].value()) * dt_s;
            if energy_kj == 0.0 {
                continue;
            }
            self.actors[a]
                .lock()
                .expect("zone lock")
                .add_hot_aisle_energy_kj(-energy_kj)?;
            self.actors[b]
                .lock()
                .expect("zone lock")
                .add_hot_aisle_energy_kj(energy_kj)?;
        }
        Ok(())
    }

    /// Runs metered minutes until `minutes`, starting from the current
    /// cursor (0 for a fresh fleet, the restored cursor after
    /// [`Fleet::resume`]), snapshotting per `policy`.
    pub fn run(
        mut self,
        minutes: usize,
        policy: Option<&FleetCheckpointPolicy>,
    ) -> Result<FleetReport, FleetError> {
        while self.minute < minutes {
            self.step_minute()?;
            if let Some(p) = policy {
                if p.every_minutes > 0 && self.minute.is_multiple_of(p.every_minutes) {
                    self.write_snapshot(p)?;
                }
            }
        }
        self.into_report()
    }

    /// Seals every zone's episode and the site rollup into the report.
    pub fn into_report(self) -> Result<FleetReport, FleetError> {
        let minutes = self.minute;
        let zones = self
            .actors
            .into_iter()
            .map(|a| a.into_inner().expect("zone lock").finish())
            .collect();
        Ok(FleetReport {
            zones,
            site_peak_kw: Kilowatts::new(self.site_peak_kw),
            site_energy_kwh: KilowattHours::new(self.site_energy_kwh),
            budget_exceeded_minutes: self.coordinator.budget_exceeded_minutes(),
            relaxations: self.coordinator.relaxations(),
            minutes,
        })
    }

    fn zone_dir(root: &Path, zone: ZoneId) -> PathBuf {
        root.join(format!("{zone}"))
    }

    fn site_state_path(root: &Path, cursor: usize) -> PathBuf {
        root.join(format!("site_{cursor:08}.state"))
    }

    /// Writes one consistent fleet snapshot at the current cursor:
    /// per-zone control-plane checkpoints (reusing the single-zone
    /// versioned CRC-framed format) plus the coordinator's state. The
    /// site file is written *after* every zone checkpoint lands, so a
    /// snapshot is only considered restorable once it is complete.
    pub fn write_snapshot(&self, policy: &FleetCheckpointPolicy) -> Result<(), FleetError> {
        let timer = Instant::now();
        let cursor = self.minute;
        for cell in &self.actors {
            let actor = cell.lock().expect("zone lock");
            let cfg = actor.config();
            let store = CheckpointStore::open(
                Self::zone_dir(&policy.dir, actor.zone()),
                policy.keep.max(1),
            )?;
            store.write(&Checkpoint {
                seed: cfg.seed,
                minutes: cfg.minutes as u64,
                warmup_minutes: cfg.warmup_minutes as u64,
                controller: actor.controller_name(),
                cursor: cursor as u64,
                setpoints: actor.setpoints().to_vec(),
                supervisor: actor.supervisor_state(),
                controller_state: actor.controller_state(),
            })?;
        }
        let path = Self::site_state_path(&policy.dir, cursor);
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.coordinator.encode_state())
            .and_then(|()| std::fs::rename(&tmp, &path))
            .map_err(|e| FleetError::Config(format!("site snapshot {}: {e}", path.display())))?;
        // Retention for site files mirrors the per-zone keep-N.
        let mut site_files: Vec<PathBuf> = std::fs::read_dir(&policy.dir)
            .map_err(|e| FleetError::Config(format!("snapshot dir: {e}")))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| {
                p.extension().is_some_and(|x| x == "state")
                    && p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("site_"))
            })
            .collect();
        site_files.sort();
        while site_files.len() > policy.keep.max(1) {
            let _ = std::fs::remove_file(site_files.remove(0));
        }
        tesla_obs::histogram!("tesla_fleet_snapshot_seconds").observe_duration(timer.elapsed());
        Ok(())
    }

    /// Restores the newest complete snapshot under `policy.dir`: the
    /// highest cursor for which *every* zone holds a valid,
    /// fingerprint-matching checkpoint and the coordinator state file
    /// survived. The fleet is rebuilt, every zone replays its recorded
    /// set-points through the full four-phase minute (so inter-pod bleed
    /// is reproduced exactly), and the control-plane states are installed
    /// at the cursor — continuation is bit-identical to an uninterrupted
    /// run. Returns the fleet at cursor 0 when no complete snapshot
    /// exists.
    pub fn resume(
        config: FleetConfig,
        controllers: Vec<Box<dyn Controller + Send>>,
        historian: Option<Arc<dyn MetricStore>>,
        policy: &FleetCheckpointPolicy,
    ) -> Result<Self, FleetError> {
        let mut fleet = Fleet::new(config, controllers, historian)?;
        let n = fleet.n_zones();

        // Gather each zone's valid checkpoints by cursor.
        let mut by_zone: Vec<std::collections::BTreeMap<usize, Checkpoint>> = Vec::new();
        for i in 0..n {
            let zone = ZoneId::new(i);
            let dir = Self::zone_dir(&policy.dir, zone);
            let mut found = std::collections::BTreeMap::new();
            if dir.is_dir() {
                let (cfg, name) = {
                    let actor = fleet.actors[i].lock().expect("zone lock");
                    (actor.config().clone(), actor.controller_name())
                };
                let store = CheckpointStore::open(&dir, policy.keep.max(1))?;
                for path in store.list()? {
                    let Ok(bytes) = std::fs::read(&path) else {
                        continue;
                    };
                    let Ok(ckpt) = Checkpoint::decode(&bytes) else {
                        continue;
                    };
                    if ckpt.matches(
                        cfg.seed,
                        cfg.minutes as u64,
                        cfg.warmup_minutes as u64,
                        &name,
                    ) {
                        found.insert(ckpt.cursor as usize, ckpt);
                    }
                }
            }
            by_zone.push(found);
        }

        // The restore cursor: highest cursor present in all zones with a
        // readable coordinator state alongside.
        let candidates: Vec<usize> = by_zone
            .first()
            .map(|m| m.keys().rev().copied().collect())
            .unwrap_or_default();
        let cursor = candidates.into_iter().find(|c| {
            by_zone.iter().all(|m| m.contains_key(c))
                && Self::site_state_path(&policy.dir, *c).is_file()
        });
        let Some(cursor) = cursor else {
            return Ok(fleet); // cold start
        };

        let recorded: Vec<Vec<f64>> = by_zone
            .iter()
            .map(|m| m[&cursor].setpoints.clone())
            .collect();
        for m in 0..cursor {
            let sps: Vec<Celsius> = recorded.iter().map(|z| Celsius::new(z[m])).collect();
            fleet.execute_minute(m, &sps, true)?;
        }
        for (i, found) in by_zone.into_iter().enumerate() {
            let ckpt = &found[&cursor];
            fleet.actors[i]
                .lock()
                .expect("zone lock")
                .install_resume_state(ckpt.supervisor.clone(), ckpt.controller_state.as_deref());
        }
        let site_bytes = std::fs::read(Self::site_state_path(&policy.dir, cursor))
            .map_err(|e| FleetError::Config(format!("site state: {e}")))?;
        if !fleet.coordinator.restore_state(&site_bytes) {
            return Err(FleetError::Config(
                "coordinator state does not match the fleet".into(),
            ));
        }
        tesla_obs::counter!("tesla_fleet_resumes_total").inc();
        Ok(fleet)
    }
}
