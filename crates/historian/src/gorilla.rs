//! Gorilla-style block compression: delta-of-delta timestamps and
//! XOR-encoded values, bit-packed.
//!
//! The scheme follows Facebook's Gorilla paper (VLDB 2015) with one
//! twist: timestamps here are `f64` seconds, not integers, so the
//! delta-of-delta runs over a *total-order key* of the float's bit
//! pattern (sign-magnitude flipped into lexicographic order). For the
//! regularly-spaced timestamps the collector produces, consecutive key
//! deltas are identical within an exponent band, so the common case is
//! still the 1-bit `dod == 0` path — and the round-trip is bit-exact for
//! every finite `f64`, which integer-millisecond truncation could never
//! guarantee.
//!
//! Values use the classic XOR encoding: a repeat costs 1 bit; a value
//! whose meaningful bits fit the previous leading/trailing-zero window
//! costs 2 bits + the window; otherwise 2 bits + 5 bits of leading-zero
//! count + 6 bits of length + the meaningful bits. All 2^64 bit patterns
//! round-trip exactly; the *writer* (see `engine`) refuses NaN/±inf so a
//! stored stream is always finite.

// analysis:allow-file(panic-free-control-path): bit-packing indices
// are bounded by the buffer lengths the encoder itself maintains.
use crate::HistorianError;

/// Append-only bit buffer.
#[derive(Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits used in the final byte (0 when byte-aligned).
    used: u8,
}

impl BitWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a single bit.
    pub fn push_bit(&mut self, bit: bool) {
        if self.used == 0 {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.len() - 1;
            self.bytes[last] |= 1 << (7 - self.used);
        }
        self.used = (self.used + 1) % 8;
    }

    /// Appends the low `n` bits of `v`, most-significant first.
    pub fn push_bits(&mut self, v: u64, n: u8) {
        debug_assert!(n <= 64);
        for i in (0..n).rev() {
            self.push_bit((v >> i) & 1 == 1);
        }
    }

    /// The packed bytes (final partial byte zero-padded).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.used == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.used as usize
        }
    }
}

/// Sequential reader over a [`BitWriter`]'s output.
#[derive(Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// A reader positioned at the first bit of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Reads one bit, or errors at end of input.
    pub fn read_bit(&mut self) -> Result<bool, HistorianError> {
        let byte = self.pos / 8;
        if byte >= self.bytes.len() {
            return Err(HistorianError::Corrupt("bit stream truncated".into()));
        }
        let bit = (self.bytes[byte] >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    /// Reads `n` bits into the low bits of a `u64`.
    pub fn read_bits(&mut self, n: u8) -> Result<u64, HistorianError> {
        debug_assert!(n <= 64);
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | self.read_bit()? as u64;
        }
        Ok(v)
    }
}

/// Maps a finite `f64` to a `u64` that preserves numeric order: positive
/// floats get the sign bit set, negative floats are bit-flipped. For a
/// nondecreasing timestamp column, keys are nondecreasing, so key deltas
/// fit in a `u64` and delta-of-delta stays small.
fn total_order_key(t: f64) -> u64 {
    let b = t.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | 0x8000_0000_0000_0000
    }
}

/// Inverse of [`total_order_key`].
fn from_total_order_key(k: u64) -> f64 {
    if k >> 63 == 1 {
        f64::from_bits(k & 0x7FFF_FFFF_FFFF_FFFF)
    } else {
        f64::from_bits(!k)
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Writes one delta-of-delta with the Gorilla bucket prefix codes.
fn push_dod(w: &mut BitWriter, dod: i64) {
    let z = zigzag(dod);
    if dod == 0 {
        w.push_bit(false);
    } else if z < (1 << 7) {
        w.push_bits(0b10, 2);
        w.push_bits(z, 7);
    } else if z < (1 << 9) {
        w.push_bits(0b110, 3);
        w.push_bits(z, 9);
    } else if z < (1 << 12) {
        w.push_bits(0b1110, 4);
        w.push_bits(z, 12);
    } else {
        w.push_bits(0b1111, 4);
        w.push_bits(z, 64);
    }
}

fn read_dod(r: &mut BitReader) -> Result<i64, HistorianError> {
    if !r.read_bit()? {
        return Ok(0);
    }
    if !r.read_bit()? {
        return Ok(unzigzag(r.read_bits(7)?));
    }
    if !r.read_bit()? {
        return Ok(unzigzag(r.read_bits(9)?));
    }
    if !r.read_bit()? {
        return Ok(unzigzag(r.read_bits(12)?));
    }
    Ok(unzigzag(r.read_bits(64)?))
}

/// Compresses parallel `(times, values)` columns into one self-describing
/// byte block: `u32` sample count, then the bit-packed streams (first
/// sample raw, then delta-of-delta keys interleaved with XOR'd values).
///
/// Panics (debug) when the columns disagree in length; the caller (the
/// engine's seal path) maintains that invariant.
pub fn compress(times: &[f64], values: &[f64]) -> Vec<u8> {
    debug_assert_eq!(times.len(), values.len());
    let n = times.len() as u32;
    let mut w = BitWriter::new();
    w.push_bits(n as u64, 32);
    if times.is_empty() {
        return w.into_bytes();
    }

    // First sample: both columns raw.
    let mut prev_key = total_order_key(times[0]);
    w.push_bits(prev_key, 64);
    let mut prev_bits = values[0].to_bits();
    w.push_bits(prev_bits, 64);
    let mut prev_delta: i64 = 0;
    // Previous value window; 65 marks "no window yet" so the first XOR
    // always writes an explicit window.
    let mut prev_leading: u32 = 65;
    let mut prev_trailing: u32 = 65;

    for i in 1..times.len() {
        // Timestamp: delta-of-delta over total-order keys.
        let key = total_order_key(times[i]);
        let delta = key.wrapping_sub(prev_key) as i64;
        push_dod(&mut w, delta.wrapping_sub(prev_delta));
        prev_key = key;
        prev_delta = delta;

        // Value: XOR against the previous value.
        let bits = values[i].to_bits();
        let xor = bits ^ prev_bits;
        prev_bits = bits;
        if xor == 0 {
            w.push_bit(false);
            continue;
        }
        w.push_bit(true);
        let leading = xor.leading_zeros().min(31);
        let trailing = xor.trailing_zeros();
        if prev_leading <= leading && prev_trailing <= trailing {
            // Fits the previous window: reuse it.
            w.push_bit(false);
            let len = 64 - prev_leading - prev_trailing;
            w.push_bits(xor >> prev_trailing, len as u8);
        } else {
            // New window: 5 bits leading, 6 bits (length − 1), payload.
            w.push_bit(true);
            let len = 64 - leading - trailing;
            w.push_bits(leading as u64, 5);
            w.push_bits((len - 1) as u64, 6);
            w.push_bits(xor >> trailing, len as u8);
            prev_leading = leading;
            prev_trailing = trailing;
        }
    }
    w.into_bytes()
}

/// Decompresses a block produced by [`compress`]. Errors on truncation
/// or an impossible stream rather than panicking: sealed blocks travel
/// through the WAL and recovery path, so corrupt input must be a typed
/// failure.
pub fn decompress(bytes: &[u8]) -> Result<(Vec<f64>, Vec<f64>), HistorianError> {
    let mut r = BitReader::new(bytes);
    let n = r.read_bits(32)? as usize;
    let mut times = Vec::with_capacity(n);
    let mut values = Vec::with_capacity(n);
    if n == 0 {
        return Ok((times, values));
    }

    let mut prev_key = r.read_bits(64)?;
    times.push(from_total_order_key(prev_key));
    let mut prev_bits = r.read_bits(64)?;
    values.push(f64::from_bits(prev_bits));
    let mut prev_delta: i64 = 0;
    let mut prev_leading: u32 = 65;
    let mut prev_trailing: u32 = 65;

    for _ in 1..n {
        let dod = read_dod(&mut r)?;
        prev_delta = prev_delta.wrapping_add(dod);
        prev_key = prev_key.wrapping_add(prev_delta as u64);
        times.push(from_total_order_key(prev_key));

        if !r.read_bit()? {
            values.push(f64::from_bits(prev_bits));
            continue;
        }
        if !r.read_bit()? {
            if prev_leading > 64 {
                return Err(HistorianError::Corrupt(
                    "XOR window reuse before any window was defined".into(),
                ));
            }
            let len = 64 - prev_leading - prev_trailing;
            let payload = r.read_bits(len as u8)?;
            prev_bits ^= payload << prev_trailing;
        } else {
            let leading = r.read_bits(5)? as u32;
            let len = r.read_bits(6)? as u32 + 1;
            if leading + len > 64 {
                return Err(HistorianError::Corrupt("XOR window exceeds 64 bits".into()));
            }
            let trailing = 64 - leading - len;
            let payload = r.read_bits(len as u8)?;
            prev_bits ^= payload << trailing;
            prev_leading = leading;
            prev_trailing = trailing;
        }
        values.push(f64::from_bits(prev_bits));
    }
    Ok((times, values))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(times: &[f64], values: &[f64]) {
        let block = compress(times, values);
        let (t, v) = decompress(&block).unwrap();
        assert_eq!(t.len(), times.len());
        for (a, b) in t.iter().zip(times) {
            assert_eq!(a.to_bits(), b.to_bits(), "timestamp mismatch");
        }
        for (a, b) in v.iter().zip(values) {
            assert_eq!(a.to_bits(), b.to_bits(), "value mismatch");
        }
    }

    #[test]
    fn empty_block() {
        roundtrip(&[], &[]);
    }

    #[test]
    fn single_sample() {
        roundtrip(&[60.0], &[23.1]);
    }

    #[test]
    fn regular_timestamps_and_smooth_values() {
        let times: Vec<f64> = (0..500).map(|i| i as f64 * 60.0).collect();
        let values: Vec<f64> = (0..500).map(|i| 22.0 + (i as f64 * 0.01).sin()).collect();
        roundtrip(&times, &values);
    }

    #[test]
    fn constant_run_compresses_to_about_a_bit_per_sample() {
        let times: Vec<f64> = (0..4096).map(|i| i as f64).collect();
        let values = vec![21.5; 4096];
        let block = compress(&times, &values);
        // 20 bytes of header samples + ~2 bits/sample stream.
        assert!(
            block.len() < 4096 / 2,
            "constant run took {} bytes",
            block.len()
        );
        roundtrip(&times, &values);
    }

    #[test]
    fn alternating_signs_roundtrip() {
        let times: Vec<f64> = (0..64).map(|i| i as f64 * 0.5).collect();
        let values: Vec<f64> = (0..64)
            .map(|i| if i % 2 == 0 { 1.25 } else { -1.25 })
            .collect();
        roundtrip(&times, &values);
    }

    #[test]
    fn negative_and_subnormal_values() {
        let times = [0.0, 1.0, 2.0, 3.0, 4.0];
        let values = [-0.0, f64::MIN_POSITIVE / 4.0, -1e-300, 1e300, 0.0];
        roundtrip(&times, &values);
    }

    #[test]
    fn irregular_timestamps_roundtrip() {
        let times = [0.0, 0.125, 59.99, 60.0, 1e6, 1e6 + 1e-9];
        let values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        roundtrip(&times, &values);
    }

    #[test]
    fn truncated_stream_is_an_error_not_a_panic() {
        let times: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let values: Vec<f64> = (0..10).map(|i| i as f64 * 1.1).collect();
        let block = compress(&times, &values);
        for cut in 0..block.len() {
            let _ = decompress(&block[..cut]); // must not panic
        }
        assert!(decompress(&block[..4]).is_err());
    }

    #[test]
    fn total_order_key_is_monotonic() {
        let samples = [-1e9, -1.0, -1e-300, -0.0, 0.0, 1e-300, 1.0, 60.0, 1e18];
        for w in samples.windows(2) {
            assert!(total_order_key(w[0]) <= total_order_key(w[1]));
            assert_eq!(from_total_order_key(total_order_key(w[0])), w[0]);
        }
    }
}
