//! # tesla-historian — embedded time-series storage for the TESLA stack
//!
//! The paper's testbed keeps all sensor and power telemetry in InfluxDB
//! and fits the forecaster from those historical series (§3, §4.1). This
//! crate is the production-shaped stand-in: an embedded storage engine
//! with a sharded ingest path, Gorilla-style compressed blocks, a
//! CRC-framed write-ahead log with crash recovery, retention +
//! downsampling, and a query layer that serves the forecast lag windows.
//! Recorded supervised episodes replay bit-identically from disk.
//!
//! Layers, bottom up:
//! 1. [`gorilla`] — delta-of-delta timestamps and XOR-encoded values,
//!    bit-packed with an exact round-trip.
//! 2. [`wal`] — length+CRC framed records in rotating segments; recovery
//!    truncates torn tails so a crash loses at most one unflushed record.
//! 3. [`engine`] — the [`Historian`]: series hash to shards, appends land
//!    in an active block, sealed blocks compress, retention downsamples
//!    and expires.
//! 4. [`MetricStore`] — the object-safe trait the rest of the workspace
//!    writes and queries through, so `TsdbStore` and [`Historian`] are
//!    interchangeable behind `Arc<dyn MetricStore>`.
//!
//! ```
//! use tesla_historian::{Historian, HistorianConfig, MetricStore};
//!
//! let h = Historian::in_memory(HistorianConfig::default());
//! h.insert("acu.power_kw", 0.0, 2.5);
//! h.insert("acu.power_kw", 60.0, 2.75);
//! assert_eq!(h.last("acu.power_kw"), Some(2.75));
//! assert_eq!(h.last_n("acu.power_kw", 2), vec![2.5, 2.75]);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod gorilla;
pub mod wal;

pub use engine::{Historian, HistorianConfig, RetentionPolicy, StorageStats};
pub use wal::{FsyncPolicy, RecoveryStats, WalConfig};

/// Errors from the storage engine.
#[derive(Debug)]
pub enum HistorianError {
    /// An operating-system I/O failure (WAL or segment files).
    Io(std::io::Error),
    /// On-disk or in-flight data failed validation (CRC mismatch is
    /// handled by truncation; this is for CRC-valid but malformed
    /// payloads and truncated compressed blocks).
    Corrupt(String),
}

impl std::fmt::Display for HistorianError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HistorianError::Io(e) => write!(f, "historian I/O error: {e}"),
            HistorianError::Corrupt(what) => write!(f, "historian corruption: {what}"),
        }
    }
}

impl std::error::Error for HistorianError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HistorianError::Io(e) => Some(e),
            HistorianError::Corrupt(_) => None,
        }
    }
}

impl From<std::io::Error> for HistorianError {
    fn from(e: std::io::Error) -> Self {
        HistorianError::Io(e)
    }
}

/// The storage interface the TESLA stack writes and queries through.
///
/// Both `tesla-telemetry::TsdbStore` (the in-RAM stand-in) and
/// [`Historian`] implement it, so the collector, runtime, and forecast
/// window builders take `Arc<dyn MetricStore>` and run unchanged against
/// either backend. Semantics every implementation must honor:
///
/// - Queries on an unknown metric return empty/`None`/0 — never an error.
/// - `range` is the half-open window `t0 <= time < t1`; a NaN bound or
///   an empty/reversed interval yields an empty result, never a panic.
/// - `last_n` returns samples oldest-first.
pub trait MetricStore: Send + Sync {
    /// Appends a sample to `metric` (creating the series on first use).
    fn insert(&self, metric: &str, time_s: f64, value: f64);

    /// Appends many time-ordered samples to `metric` in one call.
    /// Implementations override this when batching amortizes locking.
    fn insert_batch(&self, metric: &str, samples: &[(f64, f64)]) {
        for &(t, v) in samples {
            self.insert(metric, t, v);
        }
    }

    /// Appends several per-metric sample runs in one call — the entry
    /// point the network ingest path drains batches through (see
    /// `docs/SERVICE.md`). Each run is `(metric, time-ordered samples)`.
    /// Implementations override this when they can amortize locking or
    /// WAL framing across runs; the default just replays `insert_batch`
    /// per run.
    fn insert_runs(&self, runs: &[(String, Vec<(f64, f64)>)]) {
        for (metric, samples) in runs {
            self.insert_batch(metric, samples);
        }
    }

    /// The most recent `n` values of `metric`, oldest first. Empty when
    /// the metric does not exist.
    fn last_n(&self, metric: &str, n: usize) -> Vec<f64>;

    /// The most recent value of `metric`.
    fn last(&self, metric: &str) -> Option<f64> {
        self.last_n(metric, 1).pop()
    }

    /// Values of `metric` with `t0 <= time < t1`. Empty for NaN bounds
    /// or an empty/reversed interval.
    fn range(&self, metric: &str, t0: f64, t1: f64) -> Vec<f64>;

    /// Full copy of a metric's series (values only).
    fn values(&self, metric: &str) -> Vec<f64>;

    /// Number of samples stored for `metric` (0 when absent).
    fn len(&self, metric: &str) -> usize;

    /// Sorted list of all metric names.
    fn metric_names(&self) -> Vec<String>;

    /// True when the store holds no metrics at all.
    fn is_empty(&self) -> bool {
        self.metric_names().is_empty()
    }

    /// Mean of the most recent `n` values of `metric` (`None` when the
    /// metric is absent or empty).
    fn mean_last_n(&self, metric: &str, n: usize) -> Option<f64> {
        let vals = self.last_n(metric, n);
        if vals.is_empty() {
            return None;
        }
        Some(vals.iter().sum::<f64>() / vals.len() as f64)
    }

    /// Time-window aggregate: `(mean, min, max)` of `metric` over
    /// `t0 <= time < t1`. `None` when no samples fall in the window.
    fn aggregate_range(&self, metric: &str, t0: f64, t1: f64) -> Option<(f64, f64, f64)> {
        let vals = self.range(metric, t0, t1);
        if vals.is_empty() {
            return None;
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Some((mean, min, max))
    }

    /// Aligned multi-series fetch: the most recent `n` values of every
    /// metric in `metrics`, oldest first, one `Vec` per metric in input
    /// order — the shape the forecast lag-window builder consumes.
    fn last_n_many(&self, metrics: &[&str], n: usize) -> Vec<Vec<f64>> {
        metrics.iter().map(|m| self.last_n(m, n)).collect()
    }
}
