//! The [`Historian`] storage engine: sharded ingest, Gorilla-compressed
//! sealed blocks, WAL durability, retention + downsampling, and the
//! query layer behind [`MetricStore`].
//!
//! Write path: a series name hashes (FNV-1a) to one of N shards; the
//! shard mutex guards a name → series map. Appends land in the series'
//! active (uncompressed) block; once it reaches `block_len` samples it
//! is sealed — compressed with [`crate::gorilla`] — and retention runs.
//! With a WAL attached, every append batch is framed and logged before
//! it is applied, so [`Historian::open`] can rebuild the full in-memory
//! state from disk after a crash.
//!
//! Retention: sealed blocks whose newest sample is older than
//! `raw_horizon_s` (relative to the series' newest sample) are folded
//! into `bucket_s`-wide averages; downsampled points older than
//! `downsample_horizon_s` are dropped entirely.

// analysis:allow-file(panic-free-control-path): poisoned-shard
// expects are deliberate fail-fast (a poisoned shard means a writer
// died mid-update); sealed-block indices are guarded by the
// non-empty checks above them.
use crate::gorilla;
use crate::wal::{self, FsyncPolicy, RecoveryStats, WalConfig, WalRecord, WalWriter};
use crate::{HistorianError, MetricStore};
use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Raw-to-downsampled-to-dropped ageing policy, applied per series with
/// "now" taken as the series' newest sample time (so simulated clocks
/// work without wall-clock coupling).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetentionPolicy {
    /// Sealed raw blocks older than this are downsampled.
    pub raw_horizon_s: f64,
    /// Downsampled points older than this are dropped.
    pub downsample_horizon_s: f64,
    /// Downsample bucket width (the paper's stack stores 1-min rollups).
    pub bucket_s: f64,
}

impl RetentionPolicy {
    /// Keep raw samples for `raw_horizon_s`, 1-minute averages for
    /// `downsample_horizon_s`.
    pub fn new(raw_horizon_s: f64, downsample_horizon_s: f64) -> Self {
        RetentionPolicy {
            raw_horizon_s,
            downsample_horizon_s,
            bucket_s: 60.0,
        }
    }
}

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct HistorianConfig {
    /// Number of ingest shards (series hash here; power of two not
    /// required).
    pub shards: usize,
    /// Samples per block before it seals and compresses.
    pub block_len: usize,
    /// Optional ageing policy; `None` keeps raw samples forever.
    pub retention: Option<RetentionPolicy>,
    /// WAL segment rotation threshold (bytes), when a WAL is attached.
    pub segment_bytes: u64,
    /// WAL fsync cadence, when a WAL is attached.
    pub fsync: FsyncPolicy,
}

impl Default for HistorianConfig {
    fn default() -> Self {
        HistorianConfig {
            shards: 16,
            block_len: 4096,
            retention: None,
            segment_bytes: 4 * 1024 * 1024,
            fsync: FsyncPolicy::EveryN(256),
        }
    }
}

/// A compressed, immutable run of samples.
/// Aggregate storage accounting across every shard and series, from
/// [`Historian::storage_stats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StorageStats {
    /// Number of series across all shards.
    pub series: usize,
    /// Samples held in sealed (Gorilla-compressed) blocks.
    pub sealed_samples: u64,
    /// Total compressed bytes across all sealed blocks.
    pub sealed_bytes: u64,
    /// Samples still in uncompressed active blocks.
    pub active_samples: u64,
    /// Downsampled points, including pending buckets.
    pub downsampled: u64,
}

impl StorageStats {
    /// Compressed bytes per sealed sample; `None` before the first seal.
    pub fn bytes_per_sample(&self) -> Option<f64> {
        if self.sealed_samples == 0 {
            return None;
        }
        Some(self.sealed_bytes as f64 / self.sealed_samples as f64)
    }
}

#[derive(Debug)]
struct SealedBlock {
    first_t: f64,
    last_t: f64,
    count: u32,
    bytes: Vec<u8>,
}

/// One metric's storage: downsampled history, sealed blocks, and the
/// active append block, oldest to newest.
#[derive(Debug, Default)]
struct Series {
    down_times: Vec<f64>,
    down_values: Vec<f64>,
    /// Pending downsample bucket carried across retention rounds:
    /// `(bucket_start_t, sum, count)`. Flushed when a newer bucket
    /// starts, so a bucket split across two seals still averages once.
    agg: Option<(f64, f64, u32)>,
    sealed: VecDeque<SealedBlock>,
    active_times: Vec<f64>,
    active_values: Vec<f64>,
}

impl Series {
    fn total_len(&self) -> usize {
        self.down_times.len()
            + usize::from(self.agg.is_some())
            + self.sealed.iter().map(|b| b.count as usize).sum::<usize>()
            + self.active_times.len()
    }

    /// Decompressed copy of every sample, oldest first: downsampled
    /// points (incl. the pending bucket), sealed blocks, active block.
    fn all_samples(&self) -> (Vec<f64>, Vec<f64>) {
        let mut times = self.down_times.clone();
        let mut values = self.down_values.clone();
        if let Some((t, sum, n)) = self.agg {
            times.push(t);
            values.push(sum / n as f64);
        }
        for block in &self.sealed {
            match gorilla::decompress(&block.bytes) {
                Ok((ts, vs)) => {
                    times.extend_from_slice(&ts);
                    values.extend_from_slice(&vs);
                }
                Err(_) => debug_assert!(false, "self-compressed block failed to decompress"),
            }
        }
        times.extend_from_slice(&self.active_times);
        values.extend_from_slice(&self.active_values);
        (times, values)
    }

    /// The most recent `n` values, oldest first, decompressing only the
    /// newest blocks needed to satisfy `n`.
    fn last_n(&self, n: usize) -> Vec<f64> {
        if n == 0 {
            return Vec::new();
        }
        let tail = self.active_values.len().min(n);
        let mut newest_first: Vec<f64> = self.active_values[self.active_values.len() - tail..]
            .iter()
            .rev()
            .copied()
            .collect();
        for block in self.sealed.iter().rev() {
            if newest_first.len() >= n {
                break;
            }
            if let Ok((_, vs)) = gorilla::decompress(&block.bytes) {
                newest_first.extend(vs.iter().rev());
            }
        }
        if newest_first.len() < n {
            if let Some((_, sum, cnt)) = self.agg {
                newest_first.push(sum / cnt as f64);
            }
            newest_first.extend(self.down_values.iter().rev());
        }
        newest_first.truncate(n);
        newest_first.reverse();
        newest_first
    }

    fn last(&self) -> Option<f64> {
        if let Some(v) = self.active_values.last() {
            return Some(*v);
        }
        if let Some(block) = self.sealed.back() {
            if let Ok((_, vs)) = gorilla::decompress(&block.bytes) {
                return vs.last().copied();
            }
        }
        if let Some((_, sum, n)) = self.agg {
            return Some(sum / n as f64);
        }
        self.down_values.last().copied()
    }

    fn newest_time(&self) -> Option<f64> {
        self.active_times
            .last()
            .copied()
            .or_else(|| self.sealed.back().map(|b| b.last_t))
            .or(self.agg.map(|(t, _, _)| t))
            .or_else(|| self.down_times.last().copied())
    }
}

#[derive(Debug, Default)]
struct Shard {
    series: HashMap<String, Series>,
    wal: Option<WalWriter>,
}

/// FNV-1a, the workspace's stock dependency-free string hash.
fn shard_index(name: &str, shards: usize) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// The embedded time-series engine. See the [crate docs](crate) for the
/// layer map and `docs/HISTORIAN.md` for formats and knobs.
#[derive(Debug)]
pub struct Historian {
    cfg: HistorianConfig,
    shards: Vec<Mutex<Shard>>,
    /// WAL root (None when running purely in memory).
    dir: Option<PathBuf>,
}

impl Historian {
    /// A volatile engine: no WAL, state dies with the process. Ingest,
    /// compression, retention, and queries all behave identically to the
    /// durable form.
    pub fn in_memory(cfg: HistorianConfig) -> Self {
        let shards = (0..cfg.shards.max(1)).map(|_| Mutex::default()).collect();
        Historian {
            cfg,
            shards,
            dir: None,
        }
    }

    /// Opens (or creates) a durable engine rooted at `dir`, replaying
    /// each shard's WAL to rebuild in-memory state. Torn tails are
    /// truncated by [`wal::recover`]; the stats aggregate every shard.
    pub fn open(
        dir: impl Into<PathBuf>,
        cfg: HistorianConfig,
    ) -> Result<(Self, RecoveryStats), HistorianError> {
        let dir = dir.into();
        let shard_count = cfg.shards.max(1);
        let mut shards = Vec::with_capacity(shard_count);
        let mut total = RecoveryStats::default();
        for i in 0..shard_count {
            let shard_dir = dir.join(format!("shard-{i:03}"));
            let mut shard = Shard::default();
            let stats = wal::recover(&shard_dir, |record| {
                let WalRecord::Samples { series, samples } = record;
                // Replay through the normal apply path (no WAL attached
                // yet) so seals and retention match the original run.
                Self::apply_batch(&mut shard, &cfg, &series, &samples);
            })?;
            total.records += stats.records;
            total.samples += stats.samples;
            total.segments += stats.segments;
            total.truncated_bytes += stats.truncated_bytes;
            let wal_cfg = WalConfig {
                dir: shard_dir,
                segment_bytes: cfg.segment_bytes,
                fsync: cfg.fsync,
            };
            shard.wal = Some(WalWriter::open(wal_cfg, stats.next_seq)?);
            shards.push(Mutex::new(shard));
        }
        Ok((
            Historian {
                cfg,
                shards,
                dir: Some(dir),
            },
            total,
        ))
    }

    /// The WAL root directory (`None` for an in-memory engine).
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Appends a time-ordered batch of samples to one series: one WAL
    /// record, one shard-lock acquisition. This is the fast path the
    /// ≥1M samples/s ingest target is met through.
    ///
    /// Non-finite times/values are dropped (the Gorilla writer excludes
    /// NaN/±inf by contract) and out-of-order times are dropped to keep
    /// the time column sorted for binary search.
    // lint:allow(lock-order): the WAL write happens under the shard
    // lock on purpose — it is what serializes WAL order with in-memory
    // apply order, the invariant replay correctness depends on.
    pub fn append_batch(&self, metric: &str, samples: &[(f64, f64)]) {
        let mut shard = self.lock_shard(metric);
        if let Some(wal) = shard.wal.as_mut() {
            let record = WalRecord::Samples {
                series: metric.to_string(),
                samples: samples.to_vec(),
            };
            if let Err(e) = wal.append(&record) {
                tesla_obs::counter!("historian_wal_write_errors_total").inc();
                debug_assert!(false, "WAL append failed: {e}");
            }
        }
        Self::apply_batch(&mut shard, &self.cfg, metric, samples);
    }

    /// Appends several `(metric, samples)` runs in one call — the
    /// batch entry point the network ingest writers drain through.
    /// Runs are grouped by shard so each touched shard is locked once
    /// per call (instead of once per run), which is what keeps WAL
    /// framing and lock traffic amortized when one network batch
    /// carries many small per-metric runs.
    // lint:allow(lock-order): same single-shard-lock discipline as
    // `append_batch`; the WAL write stays under the shard lock so WAL
    // order equals apply order.
    pub fn append_runs(&self, runs: &[(String, Vec<(f64, f64)>)]) {
        if runs.is_empty() {
            return;
        }
        // (shard, run-index) sorted by shard: consecutive entries share
        // a lock acquisition.
        let mut order: Vec<(usize, usize)> = runs
            .iter()
            .enumerate()
            .map(|(i, (metric, _))| (shard_index(metric, self.shards.len()), i))
            .collect();
        order.sort_unstable();
        let mut i = 0;
        while i < order.len() {
            let s = order[i].0;
            let mut shard = self.shards[s].lock().expect("historian shard poisoned");
            while i < order.len() && order[i].0 == s {
                let (metric, samples) = &runs[order[i].1];
                if let Some(wal) = shard.wal.as_mut() {
                    let record = WalRecord::Samples {
                        series: metric.to_string(),
                        samples: samples.to_vec(),
                    };
                    if let Err(e) = wal.append(&record) {
                        tesla_obs::counter!("historian_wal_write_errors_total").inc();
                        debug_assert!(false, "WAL append failed: {e}");
                    }
                }
                Self::apply_batch(&mut shard, &self.cfg, metric, samples);
                i += 1;
            }
        }
    }

    /// Applies a batch to in-memory state (shared by ingest and WAL
    /// replay; the caller holds the shard lock).
    fn apply_batch(shard: &mut Shard, cfg: &HistorianConfig, metric: &str, samples: &[(f64, f64)]) {
        if !shard.series.contains_key(metric) {
            shard.series.insert(metric.to_string(), Series::default());
        }
        let series = shard.series.get_mut(metric).expect("inserted above");
        let mut accepted = 0u64;
        for &(t, v) in samples {
            if !t.is_finite() || !v.is_finite() {
                tesla_obs::counter!("historian_nonfinite_dropped_total").inc();
                continue;
            }
            if series.newest_time().is_some_and(|last| t < last) {
                tesla_obs::counter!("historian_out_of_order_dropped_total").inc();
                continue;
            }
            series.active_times.push(t);
            series.active_values.push(v);
            accepted += 1;
            if series.active_times.len() >= cfg.block_len {
                Self::seal_active(series);
                if let Some(policy) = cfg.retention {
                    Self::enforce_retention(series, policy);
                }
            }
        }
        if accepted > 0 {
            tesla_obs::counter!("historian_samples_ingested_total").add(accepted);
        }
    }

    /// Compresses the active block into a sealed one.
    fn seal_active(series: &mut Series) {
        let timer = tesla_obs::Timer::start(tesla_obs::histogram!("historian_seal_seconds"));
        let bytes = gorilla::compress(&series.active_times, &series.active_values);
        tesla_obs::counter!("historian_blocks_sealed_total").inc();
        tesla_obs::counter!("historian_compressed_bytes_total").add(bytes.len() as u64);
        series.sealed.push_back(SealedBlock {
            first_t: series.active_times[0],
            last_t: *series
                .active_times
                .last()
                .expect("active block is non-empty"),
            count: series.active_times.len() as u32,
            bytes,
        });
        series.active_times.clear();
        series.active_values.clear();
        drop(timer);
    }

    /// Ages the series: expired sealed blocks fold into bucket averages;
    /// expired bucket averages drop. "Now" is the series' newest time.
    fn enforce_retention(series: &mut Series, policy: RetentionPolicy) {
        let Some(now) = series.newest_time() else {
            return;
        };
        let raw_cutoff = now - policy.raw_horizon_s;
        while series.sealed.front().is_some_and(|b| b.last_t < raw_cutoff) {
            let block = series.sealed.pop_front().expect("front checked above");
            let (times, values) = match gorilla::decompress(&block.bytes) {
                Ok(tv) => tv,
                Err(_) => {
                    debug_assert!(false, "self-compressed block failed to decompress");
                    continue;
                }
            };
            debug_assert!(block.first_t <= block.last_t);
            tesla_obs::counter!("historian_retention_dropped_samples_total")
                .add(times.len() as u64);
            for (t, v) in times.iter().zip(&values) {
                let key = (t / policy.bucket_s).floor() * policy.bucket_s;
                match &mut series.agg {
                    Some((cur, sum, n)) if *cur == key => {
                        *sum += v;
                        *n += 1;
                    }
                    Some((cur, sum, n)) => {
                        let (done_t, done_mean) = (*cur, *sum / *n as f64);
                        series.down_times.push(done_t);
                        series.down_values.push(done_mean);
                        (*cur, *sum, *n) = (key, *v, 1);
                    }
                    None => series.agg = Some((key, *v, 1)),
                }
            }
        }
        let down_cutoff = now - policy.downsample_horizon_s;
        let drop_n = series.down_times.partition_point(|&t| t < down_cutoff);
        if drop_n > 0 {
            series.down_times.drain(..drop_n);
            series.down_values.drain(..drop_n);
        }
    }

    /// Flushes and fsyncs every shard's WAL (no-op in memory).
    // lint:allow(lock-order): fsync under the shard lock is deliberate;
    // releasing it mid-flush would let appends interleave and break the
    // durability point the caller is promised. Only the explicit flush
    // path (checkpoint/shutdown) pays this, never the ingest fast path.
    pub fn flush(&self) -> Result<(), HistorianError> {
        let timer = tesla_obs::Timer::start(tesla_obs::histogram!("historian_flush_seconds"));
        for shard in &self.shards {
            let mut shard = shard.lock().expect("historian shard poisoned");
            if let Some(wal) = shard.wal.as_mut() {
                wal.sync()?;
            }
        }
        drop(timer);
        Ok(())
    }

    /// Full `(times, values)` copy of one series, oldest first —
    /// downsampled points, then sealed blocks, then the active block.
    /// `None` when the metric does not exist.
    pub fn series_samples(&self, metric: &str) -> Option<(Vec<f64>, Vec<f64>)> {
        let shard = self.lock_shard(metric);
        shard.series.get(metric).map(|s| s.all_samples())
    }

    /// Seals every non-empty active block so the whole store is
    /// compressed; used by benchmarks to measure bytes/sample over the
    /// complete dataset and before long idle periods to cap the
    /// uncompressed footprint.
    pub fn seal_all(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().expect("historian shard poisoned");
            for series in shard.series.values_mut() {
                if !series.active_times.is_empty() {
                    Self::seal_active(series);
                }
            }
        }
    }

    /// Aggregate storage accounting across every shard and series.
    pub fn storage_stats(&self) -> StorageStats {
        let mut stats = StorageStats::default();
        for shard in &self.shards {
            let shard = shard.lock().expect("historian shard poisoned");
            for series in shard.series.values() {
                stats.series += 1;
                for block in &series.sealed {
                    stats.sealed_samples += u64::from(block.count);
                    stats.sealed_bytes += block.bytes.len() as u64;
                }
                stats.active_samples += series.active_times.len() as u64;
                stats.downsampled +=
                    series.down_times.len() as u64 + u64::from(series.agg.is_some());
            }
        }
        stats
    }

    fn lock_shard(&self, metric: &str) -> std::sync::MutexGuard<'_, Shard> {
        self.shards[shard_index(metric, self.shards.len())]
            .lock()
            .expect("historian shard poisoned")
    }
}

impl MetricStore for Historian {
    fn insert(&self, metric: &str, time_s: f64, value: f64) {
        self.append_batch(metric, &[(time_s, value)]);
    }

    fn insert_batch(&self, metric: &str, samples: &[(f64, f64)]) {
        self.append_batch(metric, samples);
    }

    fn insert_runs(&self, runs: &[(String, Vec<(f64, f64)>)]) {
        self.append_runs(runs);
    }

    fn last_n(&self, metric: &str, n: usize) -> Vec<f64> {
        let shard = self.lock_shard(metric);
        shard
            .series
            .get(metric)
            // analysis:resolve(Series::last_n)
            .map(|s| s.last_n(n))
            .unwrap_or_default()
    }

    fn last(&self, metric: &str) -> Option<f64> {
        let shard = self.lock_shard(metric);
        shard.series.get(metric).and_then(|s| s.last())
    }

    fn range(&self, metric: &str, t0: f64, t1: f64) -> Vec<f64> {
        // Half-open [t0, t1); NaN bounds and empty/reversed intervals
        // yield empty (the TsdbStore semantics, post range-fix).
        if t0.is_nan() || t1.is_nan() || t0 >= t1 {
            return Vec::new();
        }
        let (times, values) = match self.series_samples(metric) {
            Some(tv) => tv,
            None => return Vec::new(),
        };
        let lo = times.partition_point(|&t| t < t0);
        let hi = times.partition_point(|&t| t < t1);
        values[lo..hi].to_vec()
    }

    fn values(&self, metric: &str) -> Vec<f64> {
        self.series_samples(metric)
            .map(|(_, v)| v)
            .unwrap_or_default()
    }

    fn len(&self, metric: &str) -> usize {
        let shard = self.lock_shard(metric);
        shard.series.get(metric).map(|s| s.total_len()).unwrap_or(0)
    }

    fn metric_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("historian shard poisoned");
            names.extend(shard.series.keys().cloned());
        }
        names.sort();
        names
    }

    fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| {
            s.lock()
                .expect("historian shard poisoned")
                .series
                .is_empty()
        })
    }

    fn last_n_many(&self, metrics: &[&str], n: usize) -> Vec<Vec<f64>> {
        metrics.iter().map(|m| self.last_n(m, n)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> HistorianConfig {
        HistorianConfig {
            shards: 4,
            block_len: 8,
            ..HistorianConfig::default()
        }
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tesla_hist_{name}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn insert_and_query_matches_tsdb_semantics() {
        let h = Historian::in_memory(small_cfg());
        h.insert("acu.power", 0.0, 2.0);
        h.insert("acu.power", 60.0, 2.5);
        assert_eq!(h.last("acu.power"), Some(2.5));
        assert_eq!(h.last_n("acu.power", 2), vec![2.0, 2.5]);
        assert_eq!(h.len("acu.power"), 2);
        assert_eq!(h.last("nope"), None);
        assert!(h.range("nope", 0.0, 100.0).is_empty());
        assert_eq!(h.len("nope"), 0);
    }

    #[test]
    fn queries_span_sealed_and_active_blocks() {
        let h = Historian::in_memory(small_cfg());
        for i in 0..30 {
            h.insert("m", i as f64 * 60.0, i as f64);
        }
        // block_len=8 → 3 sealed blocks (24 samples) + 6 active.
        assert_eq!(h.len("m"), 30);
        assert_eq!(h.values("m"), (0..30).map(|i| i as f64).collect::<Vec<_>>());
        assert_eq!(
            h.last_n("m", 10),
            (20..30).map(|i| i as f64).collect::<Vec<_>>()
        );
        assert_eq!(h.range("m", 120.0, 300.0), vec![2.0, 3.0, 4.0]);
        assert_eq!(h.last("m"), Some(29.0));
    }

    #[test]
    fn range_edge_cases_are_empty_not_panic() {
        let h = Historian::in_memory(small_cfg());
        for i in 0..10 {
            h.insert("m", i as f64, i as f64);
        }
        assert!(h.range("m", f64::NAN, 5.0).is_empty());
        assert!(h.range("m", 0.0, f64::NAN).is_empty());
        assert!(h.range("m", 5.0, 5.0).is_empty());
        assert!(h.range("m", 7.0, 3.0).is_empty());
        // Exact boundaries: half-open [t0, t1).
        assert_eq!(h.range("m", 3.0, 7.0), vec![3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn nonfinite_and_out_of_order_samples_are_dropped() {
        let h = Historian::in_memory(small_cfg());
        h.append_batch(
            "m",
            &[
                (0.0, 1.0),
                (60.0, f64::NAN),
                (f64::INFINITY, 2.0),
                (120.0, 4.0),
                (30.0, 3.0), // out of order: older than the last accepted time
            ],
        );
        assert_eq!(h.values("m"), vec![1.0, 4.0]);
    }

    #[test]
    fn retention_downsamples_then_drops() {
        let cfg = HistorianConfig {
            shards: 1,
            block_len: 10,
            retention: Some(RetentionPolicy {
                raw_horizon_s: 100.0,
                downsample_horizon_s: 1000.0,
                bucket_s: 60.0,
            }),
            ..HistorianConfig::default()
        };
        let h = Historian::in_memory(cfg);
        // 10s cadence for 2000s: raw kept ≈100s, minute averages ≈1000s.
        let total = 200usize;
        for i in 0..total {
            h.insert("m", i as f64 * 10.0, i as f64);
        }
        let len = h.len("m");
        // Far fewer points than ingested, far more than zero.
        assert!(len < total / 2, "retention failed to shrink: {len}");
        assert!(len > 10, "retention dropped too much: {len}");
        // Newest raw samples are untouched.
        assert_eq!(h.last("m"), Some((total - 1) as f64));
        // Downsampled points are 60s-bucket means of a linear ramp, so
        // the whole series must stay strictly increasing.
        let vals = h.values("m");
        assert!(
            vals.windows(2).all(|w| w[0] < w[1]),
            "not increasing: {vals:?}"
        );
    }

    #[test]
    fn open_recovers_state_from_wal() {
        let dir = tmp_dir("recover");
        let cfg = small_cfg();
        {
            let (h, stats) = Historian::open(&dir, cfg.clone()).unwrap();
            assert_eq!(stats.records, 0);
            for i in 0..50 {
                h.insert("a.temp_c", i as f64 * 60.0, 20.0 + (i % 5) as f64 * 0.1);
            }
            h.append_batch("b.power_kw", &[(0.0, 2.0), (60.0, 2.5), (120.0, 2.25)]);
            h.flush().unwrap();
        }
        let (h2, stats) = Historian::open(&dir, cfg).unwrap();
        assert_eq!(stats.samples, 53);
        assert_eq!(h2.len("a.temp_c"), 50);
        assert_eq!(h2.len("b.power_kw"), 3);
        assert_eq!(h2.last("b.power_kw"), Some(2.25));
        let (times, values) = h2.series_samples("a.temp_c").unwrap();
        assert_eq!(times.len(), 50);
        assert_eq!(times[49], 49.0 * 60.0);
        assert_eq!(values[1], 20.1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopened_historian_appends_to_fresh_segments() {
        let dir = tmp_dir("reopen");
        let cfg = small_cfg();
        {
            let (h, _) = Historian::open(&dir, cfg.clone()).unwrap();
            h.insert("m", 0.0, 1.0);
            h.flush().unwrap();
        }
        {
            let (h, _) = Historian::open(&dir, cfg.clone()).unwrap();
            h.insert("m", 60.0, 2.0);
            h.flush().unwrap();
        }
        let (h, stats) = Historian::open(&dir, cfg).unwrap();
        assert_eq!(stats.records, 2);
        assert_eq!(h.values("m"), vec![1.0, 2.0]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_shard_ingest() {
        let h = std::sync::Arc::new(Historian::in_memory(HistorianConfig::default()));
        let mut handles = Vec::new();
        for w in 0..4 {
            let h = std::sync::Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                for i in 0..2000 {
                    h.insert(&format!("m{w}"), i as f64, i as f64);
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        for w in 0..4 {
            assert_eq!(h.len(&format!("m{w}")), 2000);
            assert_eq!(h.last(&format!("m{w}")), Some(1999.0));
        }
        assert_eq!(h.metric_names().len(), 4);
    }

    #[test]
    fn metric_names_sorted_and_is_empty() {
        let h = Historian::in_memory(small_cfg());
        assert!(MetricStore::is_empty(&h));
        h.insert("b", 0.0, 1.0);
        h.insert("a", 0.0, 1.0);
        assert_eq!(h.metric_names(), vec!["a".to_string(), "b".to_string()]);
        assert!(!MetricStore::is_empty(&h));
    }

    #[test]
    fn append_runs_matches_per_run_appends_and_survives_replay() {
        let dir = std::env::temp_dir().join(format!("tesla-hist-runs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (h, _) = Historian::open(&dir, small_cfg()).unwrap();
            let runs: Vec<(String, Vec<(f64, f64)>)> = vec![
                ("rack.inlet".into(), vec![(0.0, 21.0), (60.0, 21.5)]),
                ("rack.outlet".into(), vec![(0.0, 30.0)]),
                // Same metric appearing in two runs of one call must
                // stay time-ordered.
                ("rack.inlet".into(), vec![(120.0, 22.0)]),
            ];
            h.append_runs(&runs);
            assert_eq!(h.last_n("rack.inlet", 3), vec![21.0, 21.5, 22.0]);
            assert_eq!(h.last("rack.outlet"), Some(30.0));
            h.flush().unwrap();
        }
        // WAL replay sees exactly what append_runs framed.
        let (h, stats) = Historian::open(&dir, small_cfg()).unwrap();
        assert!(stats.samples >= 4, "{stats:?}");
        assert_eq!(h.last_n("rack.inlet", 3), vec![21.0, 21.5, 22.0]);
        assert_eq!(h.last("rack.outlet"), Some(30.0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn insert_runs_default_impl_loops_insert_batch() {
        let h = Historian::in_memory(small_cfg());
        let store: &dyn MetricStore = &h;
        store.insert_runs(&[
            ("a".into(), vec![(0.0, 1.0), (1.0, 2.0)]),
            ("b".into(), vec![(0.0, 9.0)]),
        ]);
        assert_eq!(store.last_n("a", 2), vec![1.0, 2.0]);
        assert_eq!(store.last("b"), Some(9.0));
    }

    #[test]
    fn trait_object_usability() {
        let h: std::sync::Arc<dyn MetricStore> =
            std::sync::Arc::new(Historian::in_memory(small_cfg()));
        h.insert("m", 0.0, 1.0);
        h.insert("m", 60.0, 3.0);
        assert_eq!(h.mean_last_n("m", 2), Some(2.0));
        let (mean, min, max) = h.aggregate_range("m", 0.0, 100.0).unwrap();
        assert_eq!((mean, min, max), (2.0, 1.0, 3.0));
        let windows = h.last_n_many(&["m", "absent"], 2);
        assert_eq!(windows, vec![vec![1.0, 3.0], vec![]]);
    }
}
