//! Binary write-ahead log: CRC-framed records, segment rotation, an
//! fsync-policy knob, and crash recovery that truncates torn tails.
//!
//! ## On-disk layout
//!
//! A WAL directory holds numbered segments, `wal-<seq:08>.log`. Every
//! record is framed as
//!
//! ```text
//! ┌────────────┬────────────┬──────────────────┐
//! │ len  (u32) │ crc32(u32) │ payload (len B)  │   little-endian
//! └────────────┴────────────┴──────────────────┘
//! ```
//!
//! where the CRC (IEEE 802.3 polynomial) covers the payload only. A
//! `Samples` payload is
//!
//! ```text
//! kind=1 (u8) · name_len (u16) · name (UTF-8) · count (u32) ·
//! count × (time f64 · value f64)
//! ```
//!
//! Recovery walks segments in sequence order and replays every frame
//! whose length and CRC check out. The first bad frame is treated as a
//! torn tail from a crash mid-write: the segment is truncated at the
//! last good offset and recovery stops there, so at most the one
//! unflushed record is lost. All decoding goes through the CRC-checked
//! `read_frame` path — the `no-unchecked-wal-read` xtask lint keeps it
//! that way.

// analysis:allow-file(panic-free-control-path): poisoned-lock and
// framing-invariant expects are deliberate fail-fast; crashing beats
// appending corrupt frames the next recovery would replay.
use crate::HistorianError;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// CRC32 (IEEE) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 == 1 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 (IEEE 802.3) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// When the WAL calls `fsync`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// After every record — maximum durability, slowest ingest.
    Always,
    /// After every `n` records (and on rotation/flush).
    EveryN(u32),
    /// Only on rotation and explicit [`WalWriter::sync`] — the OS page
    /// cache decides; a power loss can cost the unsynced suffix.
    OnRotateOnly,
}

/// WAL tuning knobs.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding the segments (created on open).
    pub dir: PathBuf,
    /// Rotate to a fresh segment once the current one exceeds this size.
    pub segment_bytes: u64,
    /// Fsync cadence.
    pub fsync: FsyncPolicy,
}

impl WalConfig {
    /// Defaults: 4 MiB segments, fsync every 256 records.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        WalConfig {
            dir: dir.into(),
            segment_bytes: 4 * 1024 * 1024,
            fsync: FsyncPolicy::EveryN(256),
        }
    }
}

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A batch of samples for one series.
    Samples {
        /// Metric name.
        series: String,
        /// `(time_s, value)` pairs, time-ordered.
        samples: Vec<(f64, f64)>,
    },
}

impl WalRecord {
    /// Serializes the record payload (the part the CRC covers).
    fn encode(&self) -> Vec<u8> {
        match self {
            WalRecord::Samples { series, samples } => {
                let name = series.as_bytes();
                let mut out = Vec::with_capacity(7 + name.len() + samples.len() * 16);
                out.push(1u8);
                out.extend_from_slice(&(name.len() as u16).to_le_bytes());
                out.extend_from_slice(name);
                out.extend_from_slice(&(samples.len() as u32).to_le_bytes());
                for (t, v) in samples {
                    out.extend_from_slice(&t.to_le_bytes());
                    out.extend_from_slice(&v.to_le_bytes());
                }
                out
            }
        }
    }

    /// Decodes a payload that has already passed the frame CRC check.
    /// Only [`read_frame`] may call this — corrupt-but-CRC-valid input
    /// still gets typed errors, never a panic.
    fn decode(payload: &[u8]) -> Result<WalRecord, HistorianError> {
        let corrupt = |w: &str| HistorianError::Corrupt(format!("WAL payload: {w}"));
        let kind = *payload.first().ok_or_else(|| corrupt("empty"))?;
        if kind != 1 {
            return Err(corrupt(&format!("unknown record kind {kind}")));
        }
        let mut at = 1usize;
        let take = |at: &mut usize, n: usize| -> Result<&[u8], HistorianError> {
            let s = payload
                .get(*at..*at + n)
                .ok_or_else(|| corrupt("truncated"))?;
            *at += n;
            Ok(s)
        };
        // lint:allow(no-unchecked-wal-read): inside the CRC-checked frame decoder
        let name_len = u16::from_le_bytes(take(&mut at, 2)?.try_into().expect("2 bytes")) as usize;
        let name = std::str::from_utf8(take(&mut at, name_len)?)
            .map_err(|_| corrupt("non-UTF-8 series name"))?
            .to_string();
        // lint:allow(no-unchecked-wal-read): inside the CRC-checked frame decoder
        let count = u32::from_le_bytes(take(&mut at, 4)?.try_into().expect("4 bytes")) as usize;
        // Sanity: the payload must be exactly as long as `count` demands.
        if payload.len() != at + count * 16 {
            return Err(corrupt("sample count disagrees with payload length"));
        }
        let mut samples = Vec::with_capacity(count);
        for _ in 0..count {
            // lint:allow(no-unchecked-wal-read): inside the CRC-checked frame decoder
            let t = f64::from_le_bytes(take(&mut at, 8)?.try_into().expect("8 bytes"));
            // lint:allow(no-unchecked-wal-read): inside the CRC-checked frame decoder
            let v = f64::from_le_bytes(take(&mut at, 8)?.try_into().expect("8 bytes"));
            samples.push((t, v));
        }
        Ok(WalRecord::Samples {
            series: name,
            samples,
        })
    }
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:08}.log"))
}

/// Sorted `(seq, path)` list of the segments present in `dir`.
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, HistorianError> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(HistorianError::Io(e)),
    };
    for entry in entries {
        let entry = entry.map_err(HistorianError::Io)?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(seq) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".log"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push((seq, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

/// Reads the next frame from `file`, verifying length and CRC. Returns
/// `Ok(None)` at a clean end of file; `Err(Torn)` on a short or
/// corrupt frame (the recovery path turns that into a truncation).
fn read_frame(file: &mut File) -> Result<Option<WalRecord>, FrameError> {
    let mut head = [0u8; 8];
    match read_exact_or_eof(file, &mut head)? {
        ReadOutcome::CleanEof => return Ok(None),
        ReadOutcome::Short => return Err(FrameError::Torn),
        ReadOutcome::Full => {}
    }
    // lint:allow(no-unchecked-wal-read): this IS the CRC-checked frame reader
    let len = u32::from_le_bytes(head[0..4].try_into().expect("4 bytes")) as usize;
    // lint:allow(no-unchecked-wal-read): this IS the CRC-checked frame reader
    let crc = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes"));
    // An absurd length means the length field itself is torn garbage.
    if len > 64 * 1024 * 1024 {
        return Err(FrameError::Torn);
    }
    let mut payload = vec![0u8; len];
    match read_exact_or_eof(file, &mut payload)? {
        ReadOutcome::Full => {}
        ReadOutcome::CleanEof | ReadOutcome::Short => return Err(FrameError::Torn),
    }
    if crc32(&payload) != crc {
        return Err(FrameError::Torn);
    }
    WalRecord::decode(&payload)
        .map(Some)
        .map_err(FrameError::Decode)
}

enum ReadOutcome {
    Full,
    CleanEof,
    Short,
}

fn read_exact_or_eof(file: &mut File, buf: &mut [u8]) -> Result<ReadOutcome, FrameError> {
    let mut got = 0usize;
    while got < buf.len() {
        // lint:allow(no-unchecked-wal-read): byte transport for the CRC-checked frame reader
        let n = file.read(&mut buf[got..]).map_err(FrameError::Io)?;
        if n == 0 {
            return Ok(if got == 0 {
                ReadOutcome::CleanEof
            } else {
                ReadOutcome::Short
            });
        }
        got += n;
    }
    Ok(ReadOutcome::Full)
}

enum FrameError {
    /// Short read or CRC mismatch: a torn tail, recoverable by truncation.
    Torn,
    /// CRC-valid but semantically invalid payload: real corruption.
    Decode(HistorianError),
    /// I/O failure reading the segment.
    Io(std::io::Error),
}

/// Result of [`recover`].
#[derive(Debug, Default)]
pub struct RecoveryStats {
    /// Records replayed successfully.
    pub records: u64,
    /// Samples contained in those records.
    pub samples: u64,
    /// Segments visited.
    pub segments: u64,
    /// Bytes chopped off a torn tail (0 for a clean log).
    pub truncated_bytes: u64,
    /// The next segment sequence number a writer should use.
    pub next_seq: u64,
}

/// Replays every intact record under `dir` into `apply`, truncating a
/// torn tail in place. Returns the stats a caller needs to resume
/// writing (next segment sequence, loss accounting).
pub fn recover(
    dir: &Path,
    mut apply: impl FnMut(WalRecord),
) -> Result<RecoveryStats, HistorianError> {
    let timer = tesla_obs::Timer::start(tesla_obs::histogram!("historian_recovery_seconds"));
    let mut stats = RecoveryStats::default();
    let segments = list_segments(dir)?;
    for (seq, path) in &segments {
        stats.segments += 1;
        stats.next_seq = seq + 1;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(HistorianError::Io)?;
        loop {
            let good_offset = file.stream_position().map_err(HistorianError::Io)?;
            match read_frame(&mut file) {
                Ok(Some(record)) => {
                    stats.records += 1;
                    let WalRecord::Samples { samples, .. } = &record;
                    stats.samples += samples.len() as u64;
                    apply(record);
                }
                Ok(None) => break,
                Err(FrameError::Torn) => {
                    // Crash mid-write: drop the tail and stop replaying —
                    // nothing after a torn frame can be trusted.
                    let end = file.seek(SeekFrom::End(0)).map_err(HistorianError::Io)?;
                    stats.truncated_bytes += end - good_offset;
                    file.set_len(good_offset).map_err(HistorianError::Io)?;
                    tesla_obs::counter!("historian_wal_truncations_total").inc();
                    drop(timer);
                    tesla_obs::counter!("historian_wal_recovered_records_total").add(stats.records);
                    return Ok(stats);
                }
                Err(FrameError::Decode(e)) => return Err(e),
                Err(FrameError::Io(e)) => return Err(HistorianError::Io(e)),
            }
        }
    }
    drop(timer);
    tesla_obs::counter!("historian_wal_recovered_records_total").add(stats.records);
    Ok(stats)
}

/// Appends CRC-framed records to the current segment, rotating and
/// fsyncing per the configured policy.
#[derive(Debug)]
pub struct WalWriter {
    cfg: WalConfig,
    out: BufWriter<File>,
    seq: u64,
    segment_len: u64,
    records_since_sync: u32,
}

impl WalWriter {
    /// Opens a writer on a fresh segment numbered `next_seq` (use
    /// [`recover`]'s `next_seq`, or 0 for an empty directory).
    pub fn open(cfg: WalConfig, next_seq: u64) -> Result<Self, HistorianError> {
        std::fs::create_dir_all(&cfg.dir).map_err(HistorianError::Io)?;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(&cfg.dir, next_seq))
            .map_err(HistorianError::Io)?;
        Ok(WalWriter {
            cfg,
            out: BufWriter::new(file),
            seq: next_seq,
            segment_len: 0,
            records_since_sync: 0,
        })
    }

    /// Appends one record (frame = length, CRC, payload).
    pub fn append(&mut self, record: &WalRecord) -> Result<(), HistorianError> {
        let payload = record.encode();
        let frame_len = 8 + payload.len() as u64;
        if self.segment_len > 0 && self.segment_len + frame_len > self.cfg.segment_bytes {
            self.rotate()?;
        }
        self.out
            .write_all(&(payload.len() as u32).to_le_bytes())
            .map_err(HistorianError::Io)?;
        self.out
            .write_all(&crc32(&payload).to_le_bytes())
            .map_err(HistorianError::Io)?;
        self.out.write_all(&payload).map_err(HistorianError::Io)?;
        self.segment_len += frame_len;
        self.records_since_sync += 1;
        tesla_obs::counter!("historian_wal_records_total").inc();
        match self.cfg.fsync {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                if self.records_since_sync >= n.max(1) {
                    self.sync()?;
                }
            }
            FsyncPolicy::OnRotateOnly => {}
        }
        Ok(())
    }

    /// Flushes buffers and fsyncs the current segment.
    ///
    /// Transient I/O errors (interrupted syscalls, momentary resource
    /// exhaustion) are retried on the unified jittered-backoff policy;
    /// persistent failures still surface after the attempts run out.
    pub fn sync(&mut self) -> Result<(), HistorianError> {
        let policy = tesla_backoff::BackoffPolicy {
            base_ms: 1,
            factor: 2,
            max_delay_ms: 64,
            max_attempts: 3,
            jitter: 0.25,
            seed: 0x5A7C ^ self.seq,
        };
        let out = &mut self.out;
        policy
            .run(
                |_| {
                    out.flush()?;
                    out.get_ref().sync_data()
                },
                |e| {
                    matches!(
                        e.kind(),
                        std::io::ErrorKind::Interrupted
                            | std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                    )
                },
                |_| tesla_obs::counter!("historian_wal_sync_retries_total").inc(),
            )
            .map_err(HistorianError::Io)?;
        self.records_since_sync = 0;
        Ok(())
    }

    /// Closes the current segment (synced) and starts the next one.
    fn rotate(&mut self) -> Result<(), HistorianError> {
        self.sync()?;
        self.seq += 1;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(&self.cfg.dir, self.seq))
            .map_err(HistorianError::Io)?;
        self.out = BufWriter::new(file);
        self.segment_len = 0;
        tesla_obs::counter!("historian_wal_rotations_total").inc();
        Ok(())
    }

    /// Current segment sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tesla_wal_{name}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_record(series: &str, n: usize) -> WalRecord {
        WalRecord::Samples {
            series: series.to_string(),
            samples: (0..n).map(|i| (i as f64 * 60.0, 20.0 + i as f64)).collect(),
        }
    }

    #[test]
    fn crc32_known_vector() {
        // CRC-32/IEEE of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_and_recover_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let mut w = WalWriter::open(WalConfig::new(&dir), 0).unwrap();
        for i in 0..10 {
            w.append(&sample_record(&format!("m{i}"), 3)).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let mut seen = Vec::new();
        let stats = recover(&dir, |r| seen.push(r)).unwrap();
        assert_eq!(stats.records, 10);
        assert_eq!(stats.samples, 30);
        assert_eq!(stats.truncated_bytes, 0);
        assert_eq!(seen[4], sample_record("m4", 3));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_produces_multiple_segments() {
        let dir = tmp_dir("rotate");
        let cfg = WalConfig {
            segment_bytes: 256,
            ..WalConfig::new(&dir)
        };
        let mut w = WalWriter::open(cfg, 0).unwrap();
        for _ in 0..50 {
            w.append(&sample_record("m", 4)).unwrap();
        }
        w.sync().unwrap();
        assert!(w.seq() > 0, "segments must have rotated");
        drop(w);
        let segs = list_segments(&dir).unwrap();
        assert!(segs.len() > 1);
        let mut n = 0u64;
        let stats = recover(&dir, |_| n += 1).unwrap();
        assert_eq!(n, 50);
        assert_eq!(stats.next_seq, segs.last().unwrap().0 + 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_loses_only_the_last_record() {
        let dir = tmp_dir("torn");
        let mut w = WalWriter::open(WalConfig::new(&dir), 0).unwrap();
        for i in 0..8 {
            w.append(&sample_record(&format!("m{i}"), 2)).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        // Chop mid-record: the file ends inside record 7's frame.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);

        let mut seen = Vec::new();
        let stats = recover(&dir, |r| seen.push(r)).unwrap();
        assert_eq!(stats.records, 7, "only the torn record may be lost");
        assert!(stats.truncated_bytes > 0);
        // Recovery is idempotent: a second pass sees a clean log.
        let stats2 = recover(&dir, |_| {}).unwrap();
        assert_eq!(stats2.records, 7);
        assert_eq!(stats2.truncated_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bitflip_in_payload_fails_crc_and_truncates() {
        let dir = tmp_dir("bitflip");
        let mut w = WalWriter::open(WalConfig::new(&dir), 0).unwrap();
        for i in 0..4 {
            w.append(&sample_record(&format!("m{i}"), 2)).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let at = bytes.len() - 10; // inside the last record's payload
        bytes[at] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let stats = recover(&dir, |_| {}).unwrap();
        assert_eq!(stats.records, 3);
        assert!(stats.truncated_bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_directory_recovers_to_nothing() {
        let dir = tmp_dir("empty");
        let stats = recover(&dir, |_| panic!("no records expected")).unwrap();
        assert_eq!(stats.records, 0);
        assert_eq!(stats.next_seq, 0);
    }
}
