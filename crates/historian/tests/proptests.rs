//! Property tests for the historian: Gorilla round-trips must be
//! bit-identical on adversarial finite streams, WAL recovery after an
//! arbitrary truncation must keep exactly the complete-frame prefix,
//! and a WAL-backed engine must rebuild bit-identical series on reopen.

use proptest::prelude::*;
use tesla_historian::wal::{self, WalConfig, WalRecord, WalWriter};
use tesla_historian::{gorilla, Historian, HistorianConfig, MetricStore};

/// Derives an adversarial but finite `(times, values)` stream from raw
/// generator words. `mode` selects the stream shape the ISSUE calls out:
/// constant runs, alternating signs, raw bit patterns, quantized walks.
fn stream_from(bits: &[u64], mode: u8) -> (Vec<f64>, Vec<f64>) {
    let mut times = Vec::with_capacity(bits.len());
    let mut values = Vec::with_capacity(bits.len());
    let mut t = 0.0f64;
    let mut prev = 21.5f64;
    for (i, &b) in bits.iter().enumerate() {
        t += match mode % 3 {
            0 => 60.0,                              // the collector's cadence
            1 => ((b >> 32) % 1_000) as f64 / 10.0, // jittered 0–99.9 s
            _ => (b >> 40) as f64 * 1e-3,           // wild but finite
        };
        times.push(t);
        let v = match (mode / 3) % 4 {
            0 => prev, // constant run
            1 => {
                // Alternating signs around a tiny magnitude.
                let mag = 1.5 + (b % 8) as f64 * 0.125;
                if i % 2 == 0 {
                    mag
                } else {
                    -mag
                }
            }
            2 => {
                // Raw bit patterns; non-finite folded back to finite.
                let raw = f64::from_bits(b);
                if raw.is_finite() {
                    raw
                } else {
                    f64::from_bits(b & 0x000F_FFFF_FFFF_FFFF)
                }
            }
            _ => ((b % 500) as f64) / 10.0 - 25.0, // 0.1-quantized sensor walk
        };
        prev = v;
        values.push(v);
    }
    (times, values)
}

fn assert_bit_identical(label: &str, got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len(), "{label}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{label}: sample {i} differs ({g} vs {w})"
        );
    }
}

fn unique_dir(tag: &str, case: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tesla_hist_prop_{tag}_{case}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Gorilla compress→decompress is bit-identical for every stream
    /// shape, including empty and single-sample blocks.
    #[test]
    fn gorilla_round_trip_is_bit_identical(
        bits in proptest::collection::vec(0u64..=u64::MAX, 0..300),
        mode in 0u8..12,
    ) {
        let (times, values) = stream_from(&bits, mode);
        let block = gorilla::compress(&times, &values);
        let (t2, v2) = gorilla::decompress(&block).expect("self-compressed block");
        assert_bit_identical("times", &t2, &times);
        assert_bit_identical("values", &v2, &values);
    }

    /// Truncating a WAL segment at ANY byte offset recovers exactly the
    /// records whose frames are fully contained before the cut — never
    /// fewer, never a panic, and a second recovery sees a clean log.
    #[test]
    fn wal_recovery_keeps_complete_frame_prefix(
        sizes in proptest::collection::vec(1usize..20, 1..12),
        cut_frac in 0.0f64..=1.0,
        case in 0u64..u64::MAX,
    ) {
        let dir = unique_dir("cut", case);
        let records: Vec<WalRecord> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| WalRecord::Samples {
                series: format!("m{i}"),
                samples: (0..n).map(|k| (k as f64 * 60.0, k as f64 + i as f64)).collect(),
            })
            .collect();
        // One big segment so the cut point is easy to reason about.
        let cfg = WalConfig { segment_bytes: u64::MAX, ..WalConfig::new(&dir) };
        let mut w = WalWriter::open(cfg, 0).unwrap();
        for r in &records {
            w.append(r).unwrap();
        }
        w.sync().unwrap();
        drop(w);

        let (_, path) = wal::list_segments(&dir).unwrap().pop().unwrap();
        let full = std::fs::metadata(&path).unwrap().len();
        let cut = (full as f64 * cut_frac) as u64;
        std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(cut)
            .unwrap();

        // Frame length = 8-byte header + payload; payload = 1 kind +
        // 2 name-len + name + 4 count + 16 per sample.
        let mut expected = 0usize;
        let mut offset = 0u64;
        for (i, &n) in sizes.iter().enumerate() {
            offset += 8 + 7 + format!("m{i}").len() as u64 + 16 * n as u64;
            if offset <= cut {
                expected += 1;
            } else {
                break;
            }
        }

        let mut seen = Vec::new();
        let stats = wal::recover(&dir, |r| seen.push(r)).unwrap();
        prop_assert_eq!(seen.len(), expected);
        prop_assert_eq!(&seen[..], &records[..expected]);
        // Recovery truncated the torn tail: a second pass is clean.
        let stats2 = wal::recover(&dir, |_| {}).unwrap();
        prop_assert_eq!(stats2.records, stats.records);
        prop_assert_eq!(stats2.truncated_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A WAL-backed engine reopened from disk serves bit-identical
    /// series, across sealed-block boundaries.
    #[test]
    fn reopened_engine_is_bit_identical(
        bits in proptest::collection::vec(0u64..=u64::MAX, 1..200),
        mode in 0u8..12,
        case in 0u64..u64::MAX,
    ) {
        let (times, values) = stream_from(&bits, mode);
        let dir = unique_dir("reopen", case);
        let cfg = HistorianConfig { shards: 2, block_len: 16, ..HistorianConfig::default() };
        {
            let (h, _) = Historian::open(&dir, cfg.clone()).unwrap();
            let samples: Vec<(f64, f64)> =
                times.iter().copied().zip(values.iter().copied()).collect();
            h.append_batch("prop.series", &samples);
            h.flush().unwrap();
        }
        let (h2, _) = Historian::open(&dir, cfg).unwrap();
        let (t2, v2) = h2.series_samples("prop.series").expect("series survives reopen");
        // The engine drops out-of-order times (mode-dependent), so
        // compare against what the first engine accepted: a filtered,
        // monotone subsequence.
        let mut want_t = Vec::new();
        let mut want_v = Vec::new();
        for (t, v) in times.iter().zip(&values) {
            if want_t.last().is_none_or(|&last| *t >= last) {
                want_t.push(*t);
                want_v.push(*v);
            }
        }
        assert_bit_identical("times", &t2, &want_t);
        assert_bit_identical("values", &v2, &want_v);
        prop_assert_eq!(h2.last_n("prop.series", 5), want_v[want_v.len().saturating_sub(5)..].to_vec());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
