//! TLP/1 — the TESLA line protocol.
//!
//! Newline-delimited, pipelined, text protocol; the normative
//! specification (grammar, framing, error codes, versioning) lives in
//! `docs/SERVICE.md` and its examples are replayed against a live
//! server by `tests/service_doc.rs`. This module is the wire codec:
//! an incremental, allocation-conscious [`Parser`] that turns raw bytes
//! into [`Event`]s, and the response encoders the server writes with.
//!
//! The parser is *incremental*: [`Parser::feed`] consumes whatever
//! complete lines `input` holds (leaving a torn trailing line in
//! place), so the reactor can hand it bytes exactly as they arrive off
//! a socket. Errors split into recoverable command errors (the
//! connection stays usable) and framing errors (`fatal()`), after
//! which the stream can no longer be trusted and must close — the
//! distinction every framing decision in `docs/SERVICE.md` hangs off.

use tesla_units::ZoneId;

/// Protocol version this build speaks (the `HELLO tlp/<n>` token).
pub const PROTOCOL_VERSION: u32 = 1;

/// Hard cap on a single protocol line, bytes, excluding the newline.
/// A longer line is a framing error: the sender has lost the plot (or
/// was never speaking TLP) and resynchronisation is impossible.
pub const MAX_LINE_BYTES: usize = 4096;

/// Longest accepted metric name, bytes.
pub const MAX_METRIC_BYTES: usize = 128;

/// Default cap on samples per `PUSH`/`PUSHC` batch.
pub const DEFAULT_MAX_BATCH_SAMPLES: usize = 4096;

/// Default cap on `QUERY LASTN` / `QUERY RANGE` response samples.
pub const DEFAULT_MAX_QUERY_SAMPLES: usize = 65_536;

/// A parsed telemetry batch: consecutive same-metric samples are
/// grouped into runs, which is exactly the shape
/// `tesla_historian::MetricStore::insert_runs` drains.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// `(metric, time-ordered samples)` runs, in arrival order.
    pub runs: Vec<(String, Vec<(f64, f64)>)>,
    /// Total samples across all runs.
    pub samples: usize,
}

/// A historian read request.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Latest sample of a metric.
    Last(String),
    /// Latest `n` samples, oldest first.
    LastN(String, usize),
    /// Samples with `t0 <= time < t1`, oldest first.
    Range(String, f64, f64),
}

/// One complete request decoded off the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// `HELLO tlp/<v>` with a version we speak.
    Hello,
    /// `PING` liveness probe.
    Ping,
    /// A completed `PUSH`/`PUSHC` batch.
    Push(Batch),
    /// A `QUERY …` read.
    Query(Query),
    /// `STATUS [zone]` — supervisor snapshot as JSON; `None` is the
    /// site-level board, `Some(z)` a fleet zone's board.
    Status(Option<ZoneId>),
    /// `SETPOINT [zone]` — executed set-point readback, zone-scoped
    /// like [`Event::Status`].
    Setpoint(Option<ZoneId>),
    /// `METRICS` — Prometheus exposition of the server's own metrics.
    Metrics,
}

/// Everything that can go wrong decoding a request.
///
/// `code()`/`slug()` are the wire form (`ERR <code> <slug>`); `fatal()`
/// says whether framing is lost and the connection must close.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolError {
    /// First token of a request line is not a known command.
    UnknownCommand,
    /// Known command, unusable arguments (wrong count, bad number,
    /// zero-length batch, over-cap query size…).
    BadArgument,
    /// `HELLO` named a protocol version this build does not speak.
    UnsupportedVersion,
    /// A sample or value line inside a batch failed to parse — the
    /// batch byte stream can no longer be framed. Fatal.
    MalformedSample,
    /// A line exceeded [`MAX_LINE_BYTES`]. Fatal.
    LineTooLong,
    /// A `PUSH`/`PUSHC` header announced more samples than the server
    /// accepts per batch. Fatal (the oversized body is already in
    /// flight behind the header).
    BatchTooLarge,
}

impl ProtocolError {
    /// Numeric wire code (HTTP-flavoured for operator familiarity).
    pub fn code(&self) -> u16 {
        match self {
            ProtocolError::UnknownCommand => 400,
            ProtocolError::BadArgument => 400,
            ProtocolError::UnsupportedVersion => 505,
            ProtocolError::MalformedSample => 422,
            ProtocolError::LineTooLong => 431,
            ProtocolError::BatchTooLarge => 413,
        }
    }

    /// Stable machine-readable slug (the second `ERR` token).
    pub fn slug(&self) -> &'static str {
        match self {
            ProtocolError::UnknownCommand => "unknown-command",
            ProtocolError::BadArgument => "bad-argument",
            ProtocolError::UnsupportedVersion => "unsupported-version",
            ProtocolError::MalformedSample => "malformed-sample",
            ProtocolError::LineTooLong => "line-too-long",
            ProtocolError::BatchTooLarge => "batch-too-large",
        }
    }

    /// Whether the error desynchronises framing (connection must
    /// close after the `ERR` line is flushed).
    pub fn fatal(&self) -> bool {
        matches!(
            self,
            ProtocolError::MalformedSample
                | ProtocolError::LineTooLong
                | ProtocolError::BatchTooLarge
        )
    }
}

/// Is `name` a legal metric name? (`[A-Za-z0-9_.:-]`, 1..=128 bytes —
/// the same alphabet the historian and Prometheus exposition accept.)
pub fn valid_metric(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_METRIC_BYTES
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b':' | b'-'))
}

/// Parser state across `feed` calls.
#[derive(Debug)]
enum State {
    /// Expecting a request line.
    Idle,
    /// Inside a `PUSH <n>` body: `remaining` sample lines to go.
    Push {
        remaining: usize,
        runs: Vec<(String, Vec<(f64, f64)>)>,
        samples: usize,
    },
    /// Inside a `PUSHC <n> <metric> <t0> <dt>` body: `remaining`
    /// values to go, next value stamped `t_next`.
    PushC {
        metric: String,
        remaining: usize,
        t_next: f64,
        dt: f64,
        samples: Vec<(f64, f64)>,
    },
}

/// Incremental TLP/1 request decoder.
#[derive(Debug)]
pub struct Parser {
    state: State,
    max_batch_samples: usize,
}

impl Default for Parser {
    fn default() -> Self {
        Parser::new(DEFAULT_MAX_BATCH_SAMPLES)
    }
}

impl Parser {
    /// A parser enforcing `max_batch_samples` per `PUSH`/`PUSHC`.
    pub fn new(max_batch_samples: usize) -> Self {
        Parser {
            state: State::Idle,
            max_batch_samples: max_batch_samples.max(1),
        }
    }

    /// Consumes every complete line in `input`, appending decoded
    /// requests to `events`. A trailing torn line stays in `input` for
    /// the next call. On error the consumed prefix stays consumed;
    /// when `fatal()` the caller must close after flushing the `ERR`.
    pub fn feed(
        &mut self,
        input: &mut Vec<u8>,
        events: &mut Vec<Event>,
    ) -> Result<(), ProtocolError> {
        let mut consumed = 0;
        let result = self.feed_inner(input, &mut consumed, events);
        if consumed > 0 {
            input.drain(..consumed);
        }
        result
    }

    fn feed_inner(
        &mut self,
        input: &[u8],
        consumed: &mut usize,
        events: &mut Vec<Event>,
    ) -> Result<(), ProtocolError> {
        loop {
            let rest = &input[*consumed..];
            let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
                // Torn line: wait for more bytes — unless it is already
                // too long to ever be a legal line.
                if rest.len() > MAX_LINE_BYTES {
                    return Err(ProtocolError::LineTooLong);
                }
                return Ok(());
            };
            if nl > MAX_LINE_BYTES {
                return Err(ProtocolError::LineTooLong);
            }
            let mut line = &rest[..nl];
            if line.last() == Some(&b'\r') {
                line = &line[..line.len() - 1];
            }
            *consumed += nl + 1;
            self.take_line(line, events)?;
        }
    }

    /// Decodes one complete line in the current state.
    fn take_line(&mut self, line: &[u8], events: &mut Vec<Event>) -> Result<(), ProtocolError> {
        match &mut self.state {
            State::Idle => {
                if line.is_empty() {
                    return Ok(()); // bare keep-alive newline
                }
                let line = std::str::from_utf8(line).map_err(|_| ProtocolError::UnknownCommand)?;
                self.take_request_line(line, events)
            }
            State::Push {
                remaining,
                runs,
                samples,
            } => {
                let line = std::str::from_utf8(line).map_err(|_| ProtocolError::MalformedSample)?;
                let mut it = line.split_ascii_whitespace();
                let (Some(metric), Some(t), Some(v), None) =
                    (it.next(), it.next(), it.next(), it.next())
                else {
                    return Err(ProtocolError::MalformedSample);
                };
                if !valid_metric(metric) {
                    return Err(ProtocolError::MalformedSample);
                }
                let t = parse_finite(t).ok_or(ProtocolError::MalformedSample)?;
                let v = parse_finite(v).ok_or(ProtocolError::MalformedSample)?;
                match runs.last_mut() {
                    Some((m, run)) if m == metric => run.push((t, v)),
                    _ => runs.push((metric.to_string(), vec![(t, v)])),
                }
                *samples += 1;
                *remaining -= 1;
                if *remaining == 0 {
                    let batch = Batch {
                        runs: std::mem::take(runs),
                        samples: *samples,
                    };
                    self.state = State::Idle;
                    events.push(Event::Push(batch));
                }
                Ok(())
            }
            State::PushC {
                metric,
                remaining,
                t_next,
                dt,
                samples,
            } => {
                let line = std::str::from_utf8(line).map_err(|_| ProtocolError::MalformedSample)?;
                for tok in line.split_ascii_whitespace() {
                    if *remaining == 0 {
                        return Err(ProtocolError::MalformedSample); // extra values
                    }
                    let v = parse_finite(tok).ok_or(ProtocolError::MalformedSample)?;
                    samples.push((*t_next, v));
                    *t_next += *dt;
                    *remaining -= 1;
                }
                if *remaining == 0 {
                    let n = samples.len();
                    let batch = Batch {
                        runs: vec![(std::mem::take(metric), std::mem::take(samples))],
                        samples: n,
                    };
                    self.state = State::Idle;
                    events.push(Event::Push(batch));
                }
                Ok(())
            }
        }
    }

    /// Decodes a request line (parser in `Idle`).
    fn take_request_line(
        &mut self,
        line: &str,
        events: &mut Vec<Event>,
    ) -> Result<(), ProtocolError> {
        let mut it = line.split_ascii_whitespace();
        let cmd = it.next().ok_or(ProtocolError::UnknownCommand)?;
        match cmd {
            "HELLO" => {
                let (Some(ver), None) = (it.next(), it.next()) else {
                    return Err(ProtocolError::BadArgument);
                };
                let Some(num) = ver.strip_prefix("tlp/") else {
                    return Err(ProtocolError::BadArgument);
                };
                match num.parse::<u32>() {
                    Ok(v) if v == PROTOCOL_VERSION => {
                        events.push(Event::Hello);
                        Ok(())
                    }
                    Ok(_) => Err(ProtocolError::UnsupportedVersion),
                    Err(_) => Err(ProtocolError::BadArgument),
                }
            }
            "PING" => match it.next() {
                None => {
                    events.push(Event::Ping);
                    Ok(())
                }
                Some(_) => Err(ProtocolError::BadArgument),
            },
            "PUSH" => {
                let (Some(n), None) = (it.next(), it.next()) else {
                    return Err(ProtocolError::BadArgument);
                };
                let n: usize = n.parse().map_err(|_| ProtocolError::BadArgument)?;
                if n == 0 {
                    return Err(ProtocolError::BadArgument);
                }
                if n > self.max_batch_samples {
                    return Err(ProtocolError::BatchTooLarge);
                }
                self.state = State::Push {
                    remaining: n,
                    runs: Vec::new(),
                    samples: 0,
                };
                Ok(())
            }
            "PUSHC" => {
                let (Some(n), Some(metric), Some(t0), Some(dt), None) =
                    (it.next(), it.next(), it.next(), it.next(), it.next())
                else {
                    return Err(ProtocolError::BadArgument);
                };
                let n: usize = n.parse().map_err(|_| ProtocolError::BadArgument)?;
                if n == 0 || !valid_metric(metric) {
                    return Err(ProtocolError::BadArgument);
                }
                if n > self.max_batch_samples {
                    return Err(ProtocolError::BatchTooLarge);
                }
                let t0 = parse_finite(t0).ok_or(ProtocolError::BadArgument)?;
                let dt = parse_finite(dt).ok_or(ProtocolError::BadArgument)?;
                if dt < 0.0 {
                    return Err(ProtocolError::BadArgument);
                }
                self.state = State::PushC {
                    metric: metric.to_string(),
                    remaining: n,
                    t_next: t0,
                    dt,
                    samples: Vec::with_capacity(n),
                };
                Ok(())
            }
            "QUERY" => {
                let kind = it.next().ok_or(ProtocolError::BadArgument)?;
                let metric = it.next().ok_or(ProtocolError::BadArgument)?;
                if !valid_metric(metric) {
                    return Err(ProtocolError::BadArgument);
                }
                let query = match kind {
                    "LAST" => {
                        if it.next().is_some() {
                            return Err(ProtocolError::BadArgument);
                        }
                        Query::Last(metric.to_string())
                    }
                    "LASTN" => {
                        let (Some(n), None) = (it.next(), it.next()) else {
                            return Err(ProtocolError::BadArgument);
                        };
                        let n: usize = n.parse().map_err(|_| ProtocolError::BadArgument)?;
                        if n == 0 {
                            return Err(ProtocolError::BadArgument);
                        }
                        Query::LastN(metric.to_string(), n)
                    }
                    "RANGE" => {
                        let (Some(t0), Some(t1), None) = (it.next(), it.next(), it.next()) else {
                            return Err(ProtocolError::BadArgument);
                        };
                        let t0 = parse_finite(t0).ok_or(ProtocolError::BadArgument)?;
                        let t1 = parse_finite(t1).ok_or(ProtocolError::BadArgument)?;
                        Query::Range(metric.to_string(), t0, t1)
                    }
                    _ => return Err(ProtocolError::BadArgument),
                };
                events.push(Event::Query(query));
                Ok(())
            }
            "STATUS" => {
                events.push(Event::Status(parse_zone_arg(&mut it)?));
                Ok(())
            }
            "SETPOINT" => {
                events.push(Event::Setpoint(parse_zone_arg(&mut it)?));
                Ok(())
            }
            "METRICS" => {
                events.push(Event::Metrics);
                Ok(())
            }
            _ => Err(ProtocolError::UnknownCommand),
        }
    }
}

/// Parses the optional zone argument of `STATUS`/`SETPOINT`: absent
/// means the site board; present it must be a `z<index>` zone id and
/// the last token on the line.
fn parse_zone_arg(
    it: &mut std::str::SplitAsciiWhitespace<'_>,
) -> Result<Option<ZoneId>, ProtocolError> {
    match (it.next(), it.next()) {
        (None, _) => Ok(None),
        (Some(tok), None) => tok
            .parse::<ZoneId>()
            .map(Some)
            .map_err(|_| ProtocolError::BadArgument),
        (Some(_), Some(_)) => Err(ProtocolError::BadArgument),
    }
}

/// Parses a finite `f64` (rejects NaN/±inf, which have no place on
/// this wire).
fn parse_finite(s: &str) -> Option<f64> {
    match s.parse::<f64>() {
        Ok(v) if v.is_finite() => Some(v),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Response encoders — the only code that writes server->client bytes,
// so the wire format lives in exactly one place per frame kind.
// ---------------------------------------------------------------------

/// `OK <accepted> q=<queue_depth>` — `PUSH`/`PUSHC` acknowledgement.
pub fn encode_push_ok(out: &mut Vec<u8>, accepted: usize, queue_depth: usize) {
    out.extend_from_slice(format!("OK {accepted} q={queue_depth}\n").as_bytes());
}

/// `OK <count>` + one `<value>` line per sample, oldest first (the
/// `MetricStore` read API the server fronts is value-oriented).
pub fn encode_samples(out: &mut Vec<u8>, values: &[f64]) {
    out.extend_from_slice(format!("OK {}\n", values.len()).as_bytes());
    for v in values {
        out.extend_from_slice(format!("{v}\n").as_bytes());
    }
}

/// `OK <n>` + a single data line (STATUS/SETPOINT single-line bodies).
pub fn encode_single_line(out: &mut Vec<u8>, body: &str) {
    out.extend_from_slice(b"OK 1\n");
    out.extend_from_slice(body.as_bytes());
    out.push(b'\n');
}

/// `OK <nbytes>` + exactly that many raw bytes (METRICS byte-counted
/// framing; the body is not line-structured).
pub fn encode_bytes_block(out: &mut Vec<u8>, body: &[u8]) {
    out.extend_from_slice(format!("OK {}\n", body.len()).as_bytes());
    out.extend_from_slice(body);
}

/// `ERR <code> <slug>` line.
pub fn encode_err(out: &mut Vec<u8>, err: ProtocolError) {
    out.extend_from_slice(format!("ERR {} {}\n", err.code(), err.slug()).as_bytes());
}

/// `ERR <code> <slug>` from explicit parts (for server-level errors
/// that are not parse errors, e.g. `404 status-unavailable`).
pub fn encode_err_parts(out: &mut Vec<u8>, code: u16, slug: &str) {
    out.extend_from_slice(format!("ERR {code} {slug}\n").as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_str(p: &mut Parser, s: &str) -> Result<Vec<Event>, ProtocolError> {
        let mut input = s.as_bytes().to_vec();
        let mut events = Vec::new();
        p.feed(&mut input, &mut events)?;
        Ok(events)
    }

    #[test]
    fn hello_ping_and_simple_queries() {
        let mut p = Parser::default();
        let events =
            feed_str(&mut p, "HELLO tlp/1\nPING\nQUERY LAST rack.inlet\nSTATUS\n").unwrap();
        assert_eq!(
            events,
            vec![
                Event::Hello,
                Event::Ping,
                Event::Query(Query::Last("rack.inlet".into())),
                Event::Status(None),
            ]
        );
    }

    #[test]
    fn zone_scoped_status_and_setpoint() {
        let mut p = Parser::default();
        let events = feed_str(&mut p, "STATUS z7\nSETPOINT z0\nSTATUS\n").unwrap();
        assert_eq!(
            events,
            vec![
                Event::Status(Some(ZoneId::new(7))),
                Event::Setpoint(Some(ZoneId::new(0))),
                Event::Status(None),
            ]
        );
        for bad in [
            "STATUS 7\n",
            "STATUS zx\n",
            "STATUS z1 z2\n",
            "SETPOINT -1\n",
        ] {
            assert_eq!(
                feed_str(&mut Parser::default(), bad).unwrap_err(),
                ProtocolError::BadArgument,
                "wire {bad:?}"
            );
        }
    }

    #[test]
    fn push_groups_consecutive_metrics_into_runs() {
        let mut p = Parser::default();
        let events = feed_str(&mut p, "PUSH 3\nm1 0 1.5\nm1 60 1.75\nm2 0 9\n").unwrap();
        let Event::Push(batch) = &events[0] else {
            panic!("expected push, got {events:?}");
        };
        assert_eq!(batch.samples, 3);
        assert_eq!(batch.runs.len(), 2);
        assert_eq!(batch.runs[0], ("m1".into(), vec![(0.0, 1.5), (60.0, 1.75)]));
        assert_eq!(batch.runs[1], ("m2".into(), vec![(0.0, 9.0)]));
    }

    #[test]
    fn pushc_stamps_times_from_t0_and_dt() {
        let mut p = Parser::default();
        let events = feed_str(&mut p, "PUSHC 4 m 100 0.5\n1 2\n3\n4\n").unwrap();
        let Event::Push(batch) = &events[0] else {
            panic!("expected push");
        };
        assert_eq!(
            batch.runs[0].1,
            vec![(100.0, 1.0), (100.5, 2.0), (101.0, 3.0), (101.5, 4.0)]
        );
    }

    #[test]
    fn torn_frames_resume_cleanly() {
        let mut p = Parser::default();
        let mut events = Vec::new();
        let mut input = b"PUSH 2\nm 0 ".to_vec();
        p.feed(&mut input, &mut events).unwrap();
        assert!(events.is_empty());
        assert_eq!(input, b"m 0 "); // torn tail retained
        input.extend_from_slice(b"1\nm 1 2\nPING\n");
        p.feed(&mut input, &mut events).unwrap();
        assert!(input.is_empty());
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], Event::Push(_)));
        assert_eq!(events[1], Event::Ping);
    }

    #[test]
    fn error_taxonomy() {
        for (wire, want) in [
            ("NONSENSE\n", ProtocolError::UnknownCommand),
            ("HELLO tlp/2\n", ProtocolError::UnsupportedVersion),
            ("HELLO http/1\n", ProtocolError::BadArgument),
            ("PUSH 0\n", ProtocolError::BadArgument),
            ("PUSH 999999\n", ProtocolError::BatchTooLarge),
            ("PUSH 1\nm 0\n", ProtocolError::MalformedSample),
            ("PUSH 1\nm zero 1\n", ProtocolError::MalformedSample),
            ("PUSH 1\nm 0 nan\n", ProtocolError::MalformedSample),
            ("PUSHC 2 m 0 -1\n", ProtocolError::BadArgument),
            ("QUERY LASTN m 0\n", ProtocolError::BadArgument),
            ("QUERY RANGE m 0\n", ProtocolError::BadArgument),
        ] {
            let got = feed_str(&mut Parser::default(), wire).unwrap_err();
            assert_eq!(got, want, "wire {wire:?}");
        }
    }

    #[test]
    fn fatality_split_matches_spec() {
        assert!(!ProtocolError::UnknownCommand.fatal());
        assert!(!ProtocolError::BadArgument.fatal());
        assert!(!ProtocolError::UnsupportedVersion.fatal());
        assert!(ProtocolError::MalformedSample.fatal());
        assert!(ProtocolError::LineTooLong.fatal());
        assert!(ProtocolError::BatchTooLarge.fatal());
    }

    #[test]
    fn oversized_line_rejected_even_without_newline() {
        let mut p = Parser::default();
        let mut input = vec![b'A'; MAX_LINE_BYTES + 2];
        let mut events = Vec::new();
        assert_eq!(
            p.feed(&mut input, &mut events),
            Err(ProtocolError::LineTooLong)
        );
    }

    #[test]
    fn metric_name_validation() {
        assert!(valid_metric("rack01.inlet_c"));
        assert!(valid_metric("a:b-c"));
        assert!(!valid_metric(""));
        assert!(!valid_metric("has space"));
        assert!(!valid_metric("émetric"));
        assert!(!valid_metric(&"x".repeat(MAX_METRIC_BYTES + 1)));
    }
}
