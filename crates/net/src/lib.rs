#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Network-facing control service for the TESLA reproduction.
//!
//! The paper's deployed TESLA is a networked service: Telegraf pushes
//! rack telemetry into InfluxDB, and the controller plus dashboards
//! attach over the network. This crate closes that gap for the
//! reproduction with **TLP/1**, a dependency-free, newline-delimited
//! text protocol served by the `tesla-reactor` event loop:
//!
//! * **Ingest** — `PUSH`/`PUSHC` batches stream into a WAL-backed
//!   [`tesla_historian::MetricStore`] through a bounded, drop-oldest
//!   [`ingest::IngestQueue`], so reactor threads never wait on the WAL
//!   and overload sheds the *stale* backlog, not fresh readings.
//! * **Query/control** — `QUERY LAST|LASTN|RANGE` read the historian,
//!   `STATUS`/`SETPOINT` read the supervisor's
//!   [`tesla_core::status::StatusBoard`], `METRICS` exposes the
//!   server's own Prometheus text.
//!
//! The wire protocol is specified normatively in `docs/SERVICE.md`;
//! the spec's conversation examples are replayed against a live
//! server by `tests/service_doc.rs`, so the document cannot drift from
//! the implementation. Operational metrics (`tesla_net_*`) are
//! catalogued in `docs/OBSERVABILITY.md`.

pub mod ingest;
pub mod protocol;
pub mod server;

pub use ingest::{IngestPipeline, IngestQueue, PushOutcome};
pub use protocol::{Batch, Event, Parser, ProtocolError, Query, PROTOCOL_VERSION};
pub use server::{NetConfig, NetServer};
