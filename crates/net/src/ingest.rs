//! Bounded ingest queue between reactor threads and historian writers.
//!
//! The reactor must never block, and the historian must never be
//! written from a reactor thread (a WAL fsync stall would freeze every
//! connection on that shard). The [`IngestQueue`] decouples them:
//! handlers [`push`](IngestQueue::push) parsed batches without ever
//! waiting — when the queue is full the *oldest* queued batches are
//! dropped to make room — and dedicated writer threads drain batches
//! into `MetricStore::insert_runs`, which is where WAL latency is
//! allowed to live.
//!
//! Drop-oldest (rather than reject-newest) is deliberate and matches
//! the telemetry queue in `tesla-core`'s runtime: under sustained
//! overload the freshest thermal readings are the ones a safety
//! controller can still act on; the stale backlog is the part that has
//! lost its value. The drop is observable three ways: the
//! `tesla_net_samples_dropped_total` counter, the `q=<depth>` token on
//! every `PUSH` acknowledgement, and `tesla_net_ingest_queue_depth_samples`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

use tesla_historian::MetricStore;

use crate::protocol::Batch;

/// Outcome of enqueueing one batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushOutcome {
    /// Samples accepted into the queue (always the whole batch).
    pub accepted: usize,
    /// Samples evicted from older queued batches to make room.
    pub dropped: usize,
    /// Queue depth in samples after the push.
    pub depth: usize,
}

#[derive(Debug, Default)]
struct QueueInner {
    batches: VecDeque<Batch>,
    samples: usize,
    closed: bool,
}

/// Bounded, never-blocking, drop-oldest batch queue.
#[derive(Debug)]
pub struct IngestQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    capacity_samples: usize,
    /// Mirror of `inner.samples` readable without the lock (for the
    /// `q=` ack token and the depth gauge).
    depth_samples: AtomicUsize,
    dropped_total: AtomicU64,
}

impl IngestQueue {
    /// A queue holding at most `capacity_samples` samples (counted
    /// across queued batches). Capacity is clamped to at least one
    /// batch's worth so a single batch always fits.
    pub fn new(capacity_samples: usize) -> Self {
        IngestQueue {
            inner: Mutex::new(QueueInner::default()),
            ready: Condvar::new(),
            capacity_samples: capacity_samples.max(1),
            depth_samples: AtomicUsize::new(0),
            dropped_total: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueInner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Enqueues `batch`, evicting oldest batches as needed. Never
    /// blocks, never refuses the incoming batch (freshest data wins).
    pub fn push(&self, batch: Batch) -> PushOutcome {
        let accepted = batch.samples;
        let mut dropped = 0usize;
        let depth;
        {
            let mut q = self.lock();
            while q.samples + accepted > self.capacity_samples {
                match q.batches.pop_front() {
                    Some(old) => {
                        q.samples -= old.samples;
                        dropped += old.samples;
                    }
                    None => break, // incoming batch alone exceeds capacity; take it anyway
                }
            }
            q.samples += accepted;
            q.batches.push_back(batch);
            depth = q.samples;
        }
        self.depth_samples.store(depth, Ordering::Relaxed);
        if dropped > 0 {
            self.dropped_total
                .fetch_add(dropped as u64, Ordering::Relaxed);
        }
        self.ready.notify_one();
        PushOutcome {
            accepted,
            dropped,
            depth,
        }
    }

    /// Blocks until a batch is available (writer threads only — never
    /// call from a reactor thread). Returns `None` once the queue is
    /// closed *and* drained.
    pub fn pop(&self) -> Option<Batch> {
        let mut q = self.lock();
        loop {
            if let Some(batch) = q.batches.pop_front() {
                q.samples -= batch.samples;
                self.depth_samples.store(q.samples, Ordering::Relaxed);
                return Some(batch);
            }
            if q.closed {
                return None;
            }
            // Pop runs only on the dedicated `net-writer-*` threads, never
            // on a reactor shard.
            // lint:allow(no-blocking-io-in-reactor): writer-thread condvar wait
            q = match self.ready.wait(q) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    /// Non-blocking pop (tests and shutdown drains).
    pub fn try_pop(&self) -> Option<Batch> {
        let mut q = self.lock();
        let batch = q.batches.pop_front()?;
        q.samples -= batch.samples;
        self.depth_samples.store(q.samples, Ordering::Relaxed);
        Some(batch)
    }

    /// Marks the queue closed; blocked `pop`s return `None` once
    /// drained, and writers exit.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Current depth in samples (lock-free).
    pub fn depth_samples(&self) -> usize {
        self.depth_samples.load(Ordering::Relaxed)
    }

    /// Total samples evicted by the drop-oldest policy so far.
    pub fn dropped_samples(&self) -> u64 {
        self.dropped_total.load(Ordering::Relaxed)
    }

    /// The configured capacity, samples.
    pub fn capacity_samples(&self) -> usize {
        self.capacity_samples
    }
}

/// Writer threads draining an [`IngestQueue`] into a [`MetricStore`].
#[derive(Debug)]
pub struct IngestPipeline {
    queue: Arc<IngestQueue>,
    writers: Vec<thread::JoinHandle<()>>,
    written_total: Arc<AtomicU64>,
}

impl IngestPipeline {
    /// Spawns `writer_threads` writers draining `queue` into `store`
    /// via `insert_runs`.
    ///
    /// Named `spawn_writers` rather than `spawn` so the name-based call
    /// graph in tesla-analysis does not alias it with
    /// `std::thread`/scope `spawn` call sites.
    pub fn spawn_writers(
        queue: Arc<IngestQueue>,
        store: Arc<dyn MetricStore>,
        writer_threads: usize,
    ) -> Self {
        let written_total = Arc::new(AtomicU64::new(0));
        let writers = (0..writer_threads.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                let store = Arc::clone(&store);
                let written = Arc::clone(&written_total);
                thread::Builder::new()
                    .name(format!("net-ingest-writer-{i}"))
                    .spawn(move || {
                        while let Some(batch) = queue.pop() {
                            store.insert_runs(&batch.runs);
                            written.fetch_add(batch.samples as u64, Ordering::Relaxed);
                            tesla_obs::gauge!("tesla_net_ingest_queue_depth_samples")
                                .set(queue.depth_samples() as f64);
                        }
                    })
                    .expect("spawn ingest writer")
            })
            .collect();
        IngestPipeline {
            queue,
            writers,
            written_total,
        }
    }

    /// Samples written through to the store so far.
    pub fn written_samples(&self) -> u64 {
        self.written_total.load(Ordering::Relaxed)
    }

    /// Closes the queue and joins the writers (drains what is queued).
    pub fn shutdown(mut self) {
        self.queue.close();
        for w in self.writers.drain(..) {
            // Shutdown runs on the caller's thread and joins `net-writer-*`.
            // lint:allow(no-blocking-io-in-reactor): caller-thread shutdown join
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(metric: &str, n: usize, t0: f64) -> Batch {
        let samples: Vec<(f64, f64)> = (0..n).map(|i| (t0 + i as f64, i as f64)).collect();
        Batch {
            runs: vec![(metric.to_string(), samples)],
            samples: n,
        }
    }

    #[test]
    fn saturated_queue_drops_oldest_batches_deterministically() {
        // Capacity 10 samples, no writers attached: pushes saturate it.
        let q = IngestQueue::new(10);
        assert_eq!(
            q.push(batch("a", 4, 0.0)),
            PushOutcome {
                accepted: 4,
                dropped: 0,
                depth: 4
            }
        );
        assert_eq!(
            q.push(batch("b", 4, 0.0)),
            PushOutcome {
                accepted: 4,
                dropped: 0,
                depth: 8
            }
        );
        // 8 + 4 > 10: exactly one oldest batch (a, 4 samples) must go.
        assert_eq!(
            q.push(batch("c", 4, 0.0)),
            PushOutcome {
                accepted: 4,
                dropped: 4,
                depth: 8
            }
        );
        assert_eq!(q.dropped_samples(), 4);
        // Survivors are b then c — oldest-first order preserved.
        assert_eq!(q.try_pop().unwrap().runs[0].0, "b");
        assert_eq!(q.try_pop().unwrap().runs[0].0, "c");
        assert!(q.try_pop().is_none());
        assert_eq!(q.depth_samples(), 0);
    }

    #[test]
    fn oversized_batch_evicts_everything_but_is_still_taken() {
        let q = IngestQueue::new(4);
        q.push(batch("old", 3, 0.0));
        let out = q.push(batch("huge", 9, 0.0));
        assert_eq!(out.dropped, 3);
        assert_eq!(out.depth, 9); // over capacity, by design: freshest wins
        assert_eq!(q.try_pop().unwrap().runs[0].0, "huge");
    }

    #[test]
    fn push_never_blocks_under_sustained_overload() {
        let q = IngestQueue::new(8);
        let mut dropped = 0;
        for i in 0..1000 {
            dropped += q.push(batch("m", 4, i as f64 * 10.0)).dropped;
        }
        // Exactly two batches fit; everything older was evicted.
        assert_eq!(dropped, 998 * 4);
        assert_eq!(q.depth_samples(), 8);
        // The two survivors are the two freshest.
        assert_eq!(q.try_pop().unwrap().runs[0].1[0].0, 9980.0);
        assert_eq!(q.try_pop().unwrap().runs[0].1[0].0, 9990.0);
    }

    #[test]
    fn pipeline_drains_into_store_and_shutdown_flushes() {
        let store = Arc::new(tesla_historian::Historian::in_memory(
            tesla_historian::HistorianConfig::default(),
        ));
        let q = Arc::new(IngestQueue::new(1 << 20));
        let pipeline = IngestPipeline::spawn_writers(
            Arc::clone(&q),
            Arc::clone(&store) as Arc<dyn MetricStore>,
            2,
        );
        for i in 0..100 {
            q.push(batch("m", 10, i as f64 * 10.0));
        }
        pipeline.shutdown();
        assert_eq!(store.len("m"), 1000);
    }
}
