//! The TLP/1 server: reactor wiring, request dispatch, observability.
//!
//! [`NetServer::bind`] assembles the full serving path:
//!
//! ```text
//! clients ──► tesla-reactor shards ──► TlpHandler (parse + dispatch)
//!                                         │            │
//!                              PUSH/PUSHC ▼            ▼ QUERY/STATUS/…
//!                                   IngestQueue     MetricStore reads /
//!                                 (drop-oldest)     StatusBoard snapshot
//!                                         │
//!                                writer threads ──► MetricStore::insert_runs
//!                                                   (WAL-backed historian)
//! ```
//!
//! Reactor threads never touch the WAL: `PUSH` handling ends at the
//! never-blocking [`IngestQueue`], and everything a handler reads
//! (historian shards, the status board) is lock-held only for copies.

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use tesla_core::status::{StatusBoard, ZoneStatusRegistry};
use tesla_historian::MetricStore;
use tesla_obs::{counter, gauge, histogram};
use tesla_reactor::{Action, Handler, Hooks, Reactor, ReactorConfig};

use crate::ingest::{IngestPipeline, IngestQueue};
use crate::protocol::{
    encode_bytes_block, encode_err, encode_err_parts, encode_push_ok, encode_samples,
    encode_single_line, Event, Parser, Query, DEFAULT_MAX_BATCH_SAMPLES, DEFAULT_MAX_QUERY_SAMPLES,
    PROTOCOL_VERSION,
};

/// Sizing and policy knobs for a [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Event-loop configuration (shards, connection caps, buffers).
    pub reactor: ReactorConfig,
    /// Samples accepted per `PUSH`/`PUSHC` batch.
    pub max_batch_samples: usize,
    /// Samples a single `QUERY LASTN`/`QUERY RANGE` may return.
    pub max_query_samples: usize,
    /// Ingest queue bound, samples (drop-oldest beyond it).
    pub ingest_capacity_samples: usize,
    /// Threads draining the ingest queue into the store.
    pub writer_threads: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            reactor: ReactorConfig::default(),
            max_batch_samples: DEFAULT_MAX_BATCH_SAMPLES,
            max_query_samples: DEFAULT_MAX_QUERY_SAMPLES,
            ingest_capacity_samples: 1 << 20,
            writer_threads: 1,
        }
    }
}

/// Reactor hooks that surface connection/byte traffic as
/// `tesla_net_*` metrics.
struct NetHooks {
    active: AtomicUsize,
}

impl Hooks for NetHooks {
    fn on_accept(&self) {
        counter!("tesla_net_connections_total").inc();
        let now = self.active.fetch_add(1, Ordering::Relaxed) + 1;
        gauge!("tesla_net_active_connections").set(now as f64);
    }

    fn on_conn_close(&self) {
        counter!("tesla_net_disconnects_total").inc();
        let now = self
            .active
            .fetch_sub(1, Ordering::Relaxed)
            .saturating_sub(1);
        gauge!("tesla_net_active_connections").set(now as f64);
    }

    fn on_rejected(&self) {
        counter!("tesla_net_rejected_connections_total").inc();
    }

    fn on_accept_retry(&self) {
        counter!("tesla_net_accept_retries_total").inc();
    }

    fn on_bytes_read(&self, n: usize) {
        counter!("tesla_net_bytes_read_total").add(n as u64);
    }

    fn on_bytes_written(&self, n: usize) {
        counter!("tesla_net_bytes_written_total").add(n as u64);
    }
}

/// Per-connection protocol driver: incremental parse, dispatch,
/// response encode. One lives inside each reactor connection.
struct TlpHandler {
    parser: Parser,
    queue: Arc<IngestQueue>,
    store: Arc<dyn MetricStore>,
    registry: Arc<ZoneStatusRegistry>,
    max_query_samples: usize,
    events: Vec<Event>,
}

impl TlpHandler {
    /// Answers one decoded request into `output`.
    fn respond(&mut self, event: Event, output: &mut Vec<u8>) {
        let started = Instant::now();
        counter!("tesla_net_requests_total").inc();
        match event {
            Event::Hello => {
                output.extend_from_slice(format!("OK tlp/{PROTOCOL_VERSION}\n").as_bytes());
            }
            Event::Ping => output.extend_from_slice(b"PONG\n"),
            Event::Push(batch) => {
                counter!("tesla_net_samples_ingested_total").add(batch.samples as u64);
                let outcome = self.queue.push(batch);
                if outcome.dropped > 0 {
                    counter!("tesla_net_samples_dropped_total").add(outcome.dropped as u64);
                }
                gauge!("tesla_net_ingest_queue_depth_samples").set(outcome.depth as f64);
                encode_push_ok(output, outcome.accepted, outcome.depth);
            }
            Event::Query(query) => match query {
                Query::Last(metric) => encode_samples(output, &self.store.last_n(&metric, 1)),
                Query::LastN(metric, n) => {
                    if n > self.max_query_samples {
                        encode_err_parts(output, 413, "query-too-large");
                    } else {
                        encode_samples(output, &self.store.last_n(&metric, n));
                    }
                }
                Query::Range(metric, t0, t1) => {
                    let values = self.store.range(&metric, t0, t1);
                    if values.len() > self.max_query_samples {
                        encode_err_parts(output, 413, "query-too-large");
                    } else {
                        encode_samples(output, &values);
                    }
                }
            },
            Event::Status(zone) => match self.registry.resolve(zone) {
                None => encode_err_parts(output, 404, "unknown-zone"),
                Some(board) => match board.snapshot() {
                    Some(snap) => encode_single_line(output, &snap.to_json()),
                    None => encode_err_parts(output, 404, "status-unavailable"),
                },
            },
            Event::Setpoint(zone) => match self.registry.resolve(zone) {
                None => encode_err_parts(output, 404, "unknown-zone"),
                Some(board) => match board.snapshot() {
                    Some(snap) => {
                        encode_single_line(output, &format!("{}", snap.setpoint.value()));
                    }
                    None => encode_err_parts(output, 404, "status-unavailable"),
                },
            },
            Event::Metrics => {
                let body = tesla_obs::export::render_prometheus(tesla_obs::global());
                encode_bytes_block(output, body.as_bytes());
            }
        }
        histogram!("tesla_net_request_seconds").observe_duration(started.elapsed());
    }
}

impl Handler for TlpHandler {
    fn on_bytes(&mut self, input: &mut Vec<u8>, output: &mut Vec<u8>) -> Action {
        loop {
            let fed = self.parser.feed(input, &mut self.events);
            // Requests decoded before any error must be answered first —
            // responses stay aligned with pipelined request order.
            let events = std::mem::take(&mut self.events);
            for event in events {
                self.respond(event, output);
            }
            match fed {
                Ok(()) => return Action::Continue,
                Err(err) => {
                    counter!("tesla_net_protocol_errors_total").inc();
                    encode_err(output, err);
                    if err.fatal() {
                        return Action::Close;
                    }
                    // Recoverable: the offending line is consumed;
                    // keep decoding what follows it.
                }
            }
        }
    }
}

/// A running TLP/1 service: reactor + ingest pipeline.
pub struct NetServer {
    reactor: Reactor,
    pipeline: Option<IngestPipeline>,
    queue: Arc<IngestQueue>,
}

impl NetServer {
    /// Binds `addr` and serves TLP/1 with `store` behind the ingest
    /// queue and `status` behind `STATUS`/`SETPOINT` (the single-zone
    /// deployment: zone-scoped requests all answer `unknown-zone`).
    pub fn bind(
        addr: &str,
        cfg: NetConfig,
        store: Arc<dyn MetricStore>,
        status: Arc<StatusBoard>,
    ) -> io::Result<NetServer> {
        NetServer::bind_with_zones(
            addr,
            cfg,
            store,
            Arc::new(ZoneStatusRegistry::with_site(status)),
        )
    }

    /// Binds `addr` and serves TLP/1 with a zone-addressable status
    /// surface: `STATUS`/`SETPOINT` hit the registry's site board,
    /// `STATUS z<i>`/`SETPOINT z<i>` the registered zone boards (a
    /// fleet registers one per [`tesla_units::ZoneId`]).
    pub fn bind_with_zones(
        addr: &str,
        cfg: NetConfig,
        store: Arc<dyn MetricStore>,
        registry: Arc<ZoneStatusRegistry>,
    ) -> io::Result<NetServer> {
        let queue = Arc::new(IngestQueue::new(cfg.ingest_capacity_samples));
        let pipeline = IngestPipeline::spawn_writers(
            Arc::clone(&queue),
            Arc::clone(&store),
            cfg.writer_threads,
        );
        let max_batch = cfg.max_batch_samples;
        let max_query = cfg.max_query_samples;
        let factory_queue = Arc::clone(&queue);
        let reactor = Reactor::bind(
            addr,
            cfg.reactor,
            Arc::new(move || {
                Box::new(TlpHandler {
                    parser: Parser::new(max_batch),
                    queue: Arc::clone(&factory_queue),
                    store: Arc::clone(&store),
                    registry: Arc::clone(&registry),
                    max_query_samples: max_query,
                    events: Vec::new(),
                }) as Box<dyn Handler>
            }),
            Arc::new(NetHooks {
                active: AtomicUsize::new(0),
            }),
        )?;
        Ok(NetServer {
            reactor,
            pipeline: Some(pipeline),
            queue,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.reactor.local_addr()
    }

    /// Connections currently open.
    pub fn connections(&self) -> usize {
        self.reactor.connections()
    }

    /// The ingest queue (depth/drop introspection for benches/tests).
    pub fn queue(&self) -> &Arc<IngestQueue> {
        &self.queue
    }

    /// Samples the writer threads have committed to the store so far.
    pub fn written_samples(&self) -> u64 {
        self.pipeline.as_ref().map_or(0, |p| p.written_samples())
    }

    /// Stops accepting, drops connections, drains the ingest queue
    /// into the store, and joins all threads.
    pub fn stop(mut self) {
        self.reactor.stop();
        if let Some(pipeline) = self.pipeline.take() {
            pipeline.shutdown();
        }
    }
}
