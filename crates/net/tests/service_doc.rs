//! Replays every ` ```tlp ` conversation block in `docs/SERVICE.md`
//! against a live server, so the protocol spec cannot drift from the
//! implementation.
//!
//! Block grammar (see SERVICE.md's intro):
//! * `C: <line>`  — sent to the server verbatim (plus `\n`).
//! * `S: <line>`  — asserted against the next response line;
//!   `<angle-bracket>` tokens are wildcards for values that
//!   legitimately vary (queue depths, byte counts).
//! * `S: …`       — a byte-counted body follows: its length is the
//!   wildcard in the previous `OK <nbytes>` line; the harness reads
//!   exactly that many bytes.
//! * `S: (the server closes the connection)` — asserts EOF.
//! * `# …`        — commentary, ignored.
//!
//! Blocks run in document order against one shared server+store (the
//! query examples read what the push examples wrote); each block gets
//! a fresh connection, and the harness waits for acked batches to
//! drain into the store between blocks.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use tesla_core::status::{StatusBoard, StatusSnapshot, ZoneStatusRegistry};
use tesla_core::supervisor::Rung;
use tesla_historian::{Historian, HistorianConfig, MetricStore};
use tesla_net::{NetConfig, NetServer};
use tesla_units::{Celsius, ZoneId};

const DOC: &str = include_str!("../../../docs/SERVICE.md");

const CLOSES: &str = "(the server closes the connection)";

/// Extracts the contents of every ```tlp fenced block, in order.
fn tlp_blocks(doc: &str) -> Vec<Vec<String>> {
    let mut blocks = Vec::new();
    let mut current: Option<Vec<String>> = None;
    for line in doc.lines() {
        let trimmed = line.trim();
        match &mut current {
            None if trimmed == "```tlp" => current = Some(Vec::new()),
            None => {}
            Some(lines) => {
                if trimmed == "```" {
                    blocks.push(current.take().unwrap());
                } else {
                    lines.push(line.to_string());
                }
            }
        }
    }
    assert!(current.is_none(), "unterminated ```tlp block in SERVICE.md");
    blocks
}

/// Token-wise match of `actual` against `expected`, where any
/// `<name>` span inside an expected token is a wildcard. `q=<depth>`
/// matches `q=512`; `<nbytes>` matches `1847`.
fn line_matches(expected: &str, actual: &str) -> bool {
    let exp: Vec<&str> = expected.split_ascii_whitespace().collect();
    let act: Vec<&str> = actual.split_ascii_whitespace().collect();
    if exp.len() != act.len() {
        return false;
    }
    exp.iter().zip(&act).all(|(e, a)| token_matches(e, a))
}

fn token_matches(expected: &str, actual: &str) -> bool {
    match (expected.find('<'), expected.rfind('>')) {
        (Some(open), Some(close)) if open < close => {
            let (prefix, suffix) = (&expected[..open], &expected[close + 1..]);
            actual.len() > prefix.len() + suffix.len()
                && actual.starts_with(prefix)
                && actual.ends_with(suffix)
        }
        _ => expected == actual,
    }
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(server: &NetServer) -> Client {
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { stream, reader }
    }

    fn recv_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        line.trim_end_matches(['\n', '\r']).to_string()
    }
}

/// Replays one block; returns the samples acked by its pushes.
fn replay_block(server: &NetServer, block: &[String]) -> u64 {
    let mut c = Client::connect(server);
    let mut acked: u64 = 0;
    let mut last_ok_count: usize = 0;
    for (i, raw) in block.iter().enumerate() {
        let line = raw.trim_start();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(send) = line.strip_prefix("C: ") {
            c.stream.write_all(send.as_bytes()).unwrap();
            c.stream.write_all(b"\n").unwrap();
        } else if let Some(expect) = line.strip_prefix("S: ") {
            if expect == CLOSES {
                let mut rest = String::new();
                c.reader.read_to_string(&mut rest).unwrap();
                assert!(
                    rest.is_empty(),
                    "SERVICE.md block line {i}: expected EOF, got {rest:?}"
                );
            } else if expect == "…" {
                // Byte-counted body: length came off the wire in the
                // previous `OK <nbytes>` line.
                let mut body = vec![0u8; last_ok_count];
                c.reader.read_exact(&mut body).unwrap();
                assert!(
                    !body.is_empty() && body.ends_with(b"\n"),
                    "byte-counted body should be newline-terminated text"
                );
            } else {
                let got = c.recv_line();
                assert!(
                    line_matches(expect, &got),
                    "SERVICE.md block line {i}: expected {expect:?}, got {got:?}"
                );
                if let Some(count) = got
                    .strip_prefix("OK ")
                    .and_then(|r| r.split_ascii_whitespace().next())
                    .and_then(|n| n.parse::<usize>().ok())
                {
                    last_ok_count = count;
                    if got.contains(" q=") {
                        acked += count as u64;
                    }
                }
            }
        } else {
            panic!("SERVICE.md tlp block line {i} is neither C:/S:/#: {raw:?}");
        }
    }
    acked
}

#[test]
fn service_md_examples_replay_against_a_live_server() {
    let blocks = tlp_blocks(DOC);
    assert!(
        blocks.len() >= 6,
        "SERVICE.md should hold the documented conversation blocks, found {}",
        blocks.len()
    );

    let store = Arc::new(Historian::in_memory(HistorianConfig::default()));
    let board = Arc::new(StatusBoard::new());
    // The STATUS/SETPOINT examples document this exact snapshot.
    board.publish(StatusSnapshot {
        minute: 41,
        rung: Rung::Normal,
        setpoint: Celsius::new(23.25),
        cold_aisle_max: Celsius::new(25.5),
        safe_mode_minutes: 0,
        hold_minutes: 0,
        watchdog_trips: 0,
        write_failures: 0,
        decision_timeouts: 0,
        events_dropped: 0,
    });
    // The zone-scoped examples address z3 of a fleet registry (and z9,
    // deliberately never registered).
    let registry = Arc::new(ZoneStatusRegistry::with_site(board));
    let z3 = Arc::new(StatusBoard::new());
    z3.publish(StatusSnapshot {
        minute: 12,
        rung: Rung::Normal,
        setpoint: Celsius::new(24.5),
        cold_aisle_max: Celsius::new(22.0),
        safe_mode_minutes: 0,
        hold_minutes: 0,
        watchdog_trips: 0,
        write_failures: 0,
        decision_timeouts: 0,
        events_dropped: 0,
    });
    registry.register(ZoneId::new(3), z3);
    let server = NetServer::bind_with_zones(
        "127.0.0.1:0",
        NetConfig::default(),
        Arc::clone(&store) as Arc<dyn MetricStore>,
        registry,
    )
    .unwrap();

    let mut expected_written = 0u64;
    for block in &blocks {
        expected_written += replay_block(&server, block);
        // Acked batches drain asynchronously; later blocks query what
        // earlier blocks pushed, so wait for the writers to catch up.
        for _ in 0..1000 {
            if server.written_samples() >= expected_written {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(
            server.written_samples() >= expected_written,
            "ingest queue failed to drain between SERVICE.md blocks"
        );
    }
    server.stop();
}

#[test]
fn wildcard_matcher_is_strict_where_it_should_be() {
    assert!(line_matches("OK 3 q=<depth>", "OK 3 q=512"));
    assert!(!line_matches("OK 3 q=<depth>", "OK 2 q=512"));
    assert!(!line_matches("OK 3 q=<depth>", "OK 3 q="));
    assert!(!line_matches("OK 3 q=<depth>", "OK 3"));
    assert!(line_matches("OK <nbytes>", "OK 1847"));
    assert!(!line_matches("PONG", "ERR 400 unknown-command"));
}
