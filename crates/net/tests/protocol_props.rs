//! Property tests for the TLP/1 parser: arbitrary bytes never panic or
//! over-buffer, well-formed batches round-trip regardless of how the
//! byte stream is torn into fragments, and oversized batches are
//! rejected at the header with the right (fatal) error.

use proptest::prelude::*;
use tesla_net::protocol::{
    valid_metric, Batch, Event, Parser, ProtocolError, MAX_LINE_BYTES, MAX_METRIC_BYTES,
};

/// Derives a finite sample value from one generator word: a mix of
/// magnitudes (including zero and negatives) a telemetry wire carries.
fn finite_from(bits: u64) -> f64 {
    match bits % 4 {
        0 => 0.0,
        1 => ((bits >> 8) % 2_000_000) as f64 / 1_000.0 - 1_000.0,
        2 => -1.5 * ((bits >> 16) % 97) as f64,
        _ => ((bits >> 24) % 1_000) as f64 * 1e-3 + 21.0,
    }
}

/// Feeds `wire` to a fresh parser in fragments at the given cut points,
/// collecting events until an error or end of input. Returns the
/// events, the first error (if any), and whatever stayed buffered.
fn feed_fragmented(wire: &[u8], cuts: &[usize]) -> (Vec<Event>, Option<ProtocolError>, Vec<u8>) {
    let mut parser = Parser::default();
    let mut events = Vec::new();
    let mut buffered = Vec::new();
    let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (wire.len() + 1)).collect();
    bounds.push(wire.len());
    bounds.sort_unstable();
    let mut start = 0;
    for b in bounds {
        buffered.extend_from_slice(&wire[start..b]);
        start = b;
        if let Err(e) = parser.feed(&mut buffered, &mut events) {
            return (events, Some(e), buffered);
        }
    }
    (events, None, buffered)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A well-formed PUSH batch parses to exactly its runs no matter
    /// how the bytes are torn into fragments.
    #[test]
    fn push_round_trips_across_arbitrary_tears(
        words in proptest::collection::vec(0u64..=u64::MAX, 1..60),
        cuts in proptest::collection::vec(0usize..4096, 0..8),
    ) {
        let mut wire = format!("PUSH {}\n", words.len());
        let mut want_runs: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
        for (i, &w) in words.iter().enumerate() {
            let metric = format!("m{}", w % 5);
            let (t, v) = (i as f64 * 0.5, finite_from(w >> 3));
            wire.push_str(&format!("{metric} {t} {v}\n"));
            match want_runs.last_mut() {
                Some((name, run)) if *name == metric => run.push((t, v)),
                _ => want_runs.push((metric, vec![(t, v)])),
            }
        }
        let (events, err, leftover) = feed_fragmented(wire.as_bytes(), &cuts);
        prop_assert_eq!(err, None);
        prop_assert!(leftover.is_empty());
        prop_assert_eq!(events.len(), 1);
        let Event::Push(Batch { runs, samples: n }) = &events[0] else {
            panic!("expected a push event, got {events:?}");
        };
        prop_assert_eq!(*n, words.len());
        prop_assert_eq!(runs, &want_runs);
    }

    /// PUSHC round-trips with times reconstructed from (t0, dt),
    /// independent of how many values share a line and of tearing.
    #[test]
    fn pushc_round_trips_across_arbitrary_tears(
        words in proptest::collection::vec(0u64..=u64::MAX, 1..80),
        t0 in -1e6f64..1e6,
        dt_tenths in 0u32..1000,
        per_line in 1usize..9,
        cuts in proptest::collection::vec(0usize..4096, 0..8),
    ) {
        let values: Vec<f64> = words.iter().map(|&w| finite_from(w)).collect();
        let dt = dt_tenths as f64 / 10.0;
        let mut wire = format!("PUSHC {} m.x {t0} {dt}\n", values.len());
        for chunk in values.chunks(per_line) {
            let line: Vec<String> = chunk.iter().map(|v| format!("{v}")).collect();
            wire.push_str(&line.join(" "));
            wire.push('\n');
        }
        let (events, err, leftover) = feed_fragmented(wire.as_bytes(), &cuts);
        prop_assert_eq!(err, None);
        prop_assert!(leftover.is_empty());
        prop_assert_eq!(events.len(), 1);
        let Event::Push(batch) = &events[0] else { panic!("expected push") };
        prop_assert_eq!(batch.runs.len(), 1);
        let got = &batch.runs[0].1;
        prop_assert_eq!(got.len(), values.len());
        for (i, (t, v)) in got.iter().enumerate() {
            prop_assert_eq!(*v, values[i]);
            let want_t = t0 + i as f64 * dt;
            prop_assert!((t - want_t).abs() <= 1e-9 * want_t.abs().max(1.0));
        }
    }

    /// Arbitrary byte soup never panics and never buffers more than
    /// one maximum-length line beyond what it consumed.
    #[test]
    fn malformed_input_never_panics_or_overbuffers(
        bytes in proptest::collection::vec(0u8..=255, 0..2000),
        cuts in proptest::collection::vec(0usize..2048, 0..6),
    ) {
        let (_events, err, leftover) = feed_fragmented(&bytes, &cuts);
        if err.is_none() {
            prop_assert!(leftover.len() <= MAX_LINE_BYTES + 1);
        }
    }

    /// Oversized batches are rejected at the header with the fatal
    /// batch-too-large error — the body is never buffered.
    #[test]
    fn oversized_batch_headers_reject(
        n in 4097usize..1_000_000,
        columnar in proptest::bool::ANY,
    ) {
        let wire = if columnar {
            format!("PUSHC {n} m 0 1\n")
        } else {
            format!("PUSH {n}\n")
        };
        let mut parser = Parser::default();
        let mut input = wire.into_bytes();
        let mut events = Vec::new();
        let err = parser.feed(&mut input, &mut events).unwrap_err();
        prop_assert_eq!(err, ProtocolError::BatchTooLarge);
        prop_assert!(err.fatal());
        prop_assert!(events.is_empty());
    }

    /// Metric-name validation matches its documented alphabet exactly.
    #[test]
    fn metric_alphabet_is_exact(
        chars in proptest::collection::vec(32u8..127, 0..140),
    ) {
        let name = String::from_utf8(chars).unwrap();
        let want = !name.is_empty()
            && name.len() <= MAX_METRIC_BYTES
            && name.bytes().all(|b| b.is_ascii_alphanumeric()
                || matches!(b, b'_' | b'.' | b':' | b'-'));
        prop_assert_eq!(valid_metric(&name), want);
    }
}
