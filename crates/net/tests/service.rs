//! End-to-end tests: a live [`tesla_net::NetServer`] over loopback,
//! driven by plain blocking clients.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use tesla_core::status::{StatusBoard, StatusSnapshot, ZoneStatusRegistry};
use tesla_core::supervisor::Rung;
use tesla_historian::{Historian, HistorianConfig, MetricStore};
use tesla_net::{NetConfig, NetServer};
use tesla_units::{Celsius, ZoneId};

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(server: &NetServer) -> Client {
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { stream, reader }
    }

    fn send(&mut self, text: &str) {
        self.stream.write_all(text.as_bytes()).unwrap();
    }

    fn recv_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        line.trim_end_matches('\n').to_string()
    }

    /// Sends one request and returns its (single-line) response.
    fn round_trip(&mut self, request: &str) -> String {
        self.send(request);
        self.recv_line()
    }
}

fn in_memory_server() -> (NetServer, Arc<Historian>) {
    let store = Arc::new(Historian::in_memory(HistorianConfig::default()));
    let server = NetServer::bind(
        "127.0.0.1:0",
        NetConfig::default(),
        Arc::clone(&store) as Arc<dyn MetricStore>,
        Arc::new(StatusBoard::new()),
    )
    .unwrap();
    (server, store)
}

#[test]
fn hello_ping_and_version_negotiation() {
    let (server, _store) = in_memory_server();
    let mut c = Client::connect(&server);
    assert_eq!(c.round_trip("HELLO tlp/1\n"), "OK tlp/1");
    assert_eq!(c.round_trip("PING\n"), "PONG");
    assert_eq!(c.round_trip("HELLO tlp/9\n"), "ERR 505 unsupported-version");
    // Non-fatal: the connection still works.
    assert_eq!(c.round_trip("PING\n"), "PONG");
    server.stop();
}

#[test]
fn push_lands_in_store_and_queries_read_it_back() {
    let (server, store) = in_memory_server();
    let mut c = Client::connect(&server);
    let ack = c.round_trip("PUSH 3\nrack.inlet 0 21.5\nrack.inlet 60 22\nrack.outlet 0 30\n");
    assert!(ack.starts_with("OK 3 q="), "{ack}");

    // The queue drains asynchronously; poll the store.
    for _ in 0..500 {
        if store.len("rack.inlet") == 2 && store.len("rack.outlet") == 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(store.last_n("rack.inlet", 2), vec![21.5, 22.0]);

    assert_eq!(c.round_trip("QUERY LAST rack.inlet\n"), "OK 1");
    assert_eq!(c.recv_line(), "22");
    c.send("QUERY LASTN rack.inlet 2\n");
    assert_eq!(c.recv_line(), "OK 2");
    assert_eq!(c.recv_line(), "21.5");
    assert_eq!(c.recv_line(), "22");
    c.send("QUERY RANGE rack.inlet 0 50\n");
    assert_eq!(c.recv_line(), "OK 1");
    assert_eq!(c.recv_line(), "21.5");
    assert_eq!(c.round_trip("QUERY LAST absent.metric\n"), "OK 0");
    server.stop();
}

#[test]
fn pushc_columnar_form_round_trips() {
    let (server, store) = in_memory_server();
    let mut c = Client::connect(&server);
    let ack = c.round_trip("PUSHC 4 cw.kw 1000 60\n250.5 251\n252 250\n");
    assert!(ack.starts_with("OK 4 q="), "{ack}");
    for _ in 0..500 {
        if store.len("cw.kw") == 4 {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(store.last_n("cw.kw", 4), vec![250.5, 251.0, 252.0, 250.0]);
    server.stop();
}

#[test]
fn status_and_setpoint_serve_supervisor_snapshots() {
    let store = Arc::new(Historian::in_memory(HistorianConfig::default()));
    let board = Arc::new(StatusBoard::new());
    let server = NetServer::bind(
        "127.0.0.1:0",
        NetConfig::default(),
        store as Arc<dyn MetricStore>,
        Arc::clone(&board),
    )
    .unwrap();
    let mut c = Client::connect(&server);
    // Nothing published yet.
    assert_eq!(c.round_trip("STATUS\n"), "ERR 404 status-unavailable");
    assert_eq!(c.round_trip("SETPOINT\n"), "ERR 404 status-unavailable");

    board.publish(StatusSnapshot {
        minute: 41,
        rung: Rung::Normal,
        setpoint: Celsius::new(23.25),
        cold_aisle_max: Celsius::new(25.5),
        safe_mode_minutes: 0,
        hold_minutes: 0,
        watchdog_trips: 0,
        write_failures: 0,
        decision_timeouts: 0,
        events_dropped: 0,
    });
    c.send("STATUS\n");
    assert_eq!(c.recv_line(), "OK 1");
    let body = c.recv_line();
    assert!(body.contains("\"minute\":41"), "{body}");
    assert!(body.contains("\"setpoint_c\":23.25"), "{body}");
    c.send("SETPOINT\n");
    assert_eq!(c.recv_line(), "OK 1");
    assert_eq!(c.recv_line(), "23.25");
    server.stop();
}

#[test]
fn zone_scoped_status_resolves_registered_boards() {
    let store = Arc::new(Historian::in_memory(HistorianConfig::default()));
    let registry = Arc::new(ZoneStatusRegistry::new());
    let z3 = Arc::new(StatusBoard::new());
    registry.register(ZoneId::new(3), Arc::clone(&z3));
    let server = NetServer::bind_with_zones(
        "127.0.0.1:0",
        NetConfig::default(),
        store as Arc<dyn MetricStore>,
        Arc::clone(&registry),
    )
    .unwrap();
    let mut c = Client::connect(&server);

    // Registered but unpublished zone vs. never-registered zone.
    assert_eq!(c.round_trip("STATUS z3\n"), "ERR 404 status-unavailable");
    assert_eq!(c.round_trip("STATUS z9\n"), "ERR 404 unknown-zone");
    assert_eq!(c.round_trip("SETPOINT z9\n"), "ERR 404 unknown-zone");
    // A malformed zone token is a recoverable protocol error.
    assert_eq!(c.round_trip("STATUS pod3\n"), "ERR 400 bad-argument");

    z3.publish(StatusSnapshot {
        minute: 12,
        rung: Rung::Normal,
        setpoint: Celsius::new(24.5),
        cold_aisle_max: Celsius::new(22.0),
        safe_mode_minutes: 0,
        hold_minutes: 0,
        watchdog_trips: 0,
        write_failures: 0,
        decision_timeouts: 0,
        events_dropped: 0,
    });
    c.send("STATUS z3\n");
    assert_eq!(c.recv_line(), "OK 1");
    let body = c.recv_line();
    assert!(body.contains("\"minute\":12"), "{body}");
    c.send("SETPOINT z3\n");
    assert_eq!(c.recv_line(), "OK 1");
    assert_eq!(c.recv_line(), "24.5");

    // The zone-less form still answers from the (empty) site board.
    assert_eq!(c.round_trip("STATUS\n"), "ERR 404 status-unavailable");
    server.stop();
}

#[test]
fn metrics_endpoint_returns_prometheus_block() {
    let (server, _store) = in_memory_server();
    let mut c = Client::connect(&server);
    c.send("METRICS\n");
    let header = c.recv_line();
    let nbytes: usize = header.strip_prefix("OK ").unwrap().parse().unwrap();
    let mut body = vec![0u8; nbytes];
    c.reader.read_exact(&mut body).unwrap();
    let text = String::from_utf8(body).unwrap();
    assert!(
        text.contains("tesla_net_requests_total"),
        "exposition should include the server's own request counter"
    );
    server.stop();
}

#[test]
fn fatal_protocol_error_closes_connection_after_err_line() {
    let (server, _store) = in_memory_server();
    let mut c = Client::connect(&server);
    // Malformed sample inside a batch: framing is lost.
    c.send("PUSH 2\nnot a sample line at all\n");
    assert_eq!(c.recv_line(), "ERR 422 malformed-sample");
    // Server closes: next read hits EOF.
    let mut rest = String::new();
    c.reader.read_to_string(&mut rest).unwrap();
    assert!(rest.is_empty());
    server.stop();
}

#[test]
fn recoverable_errors_keep_the_connection_and_pipelining_order() {
    let (server, _store) = in_memory_server();
    let mut c = Client::connect(&server);
    // Three pipelined requests, the middle one bad: responses must
    // come back in request order.
    c.send("PING\nWHATEVER\nPING\n");
    assert_eq!(c.recv_line(), "PONG");
    assert_eq!(c.recv_line(), "ERR 400 unknown-command");
    assert_eq!(c.recv_line(), "PONG");
    server.stop();
}

#[test]
fn oversized_query_rejected_cleanly() {
    let (server, _store) = in_memory_server();
    let mut c = Client::connect(&server);
    assert_eq!(
        c.round_trip("QUERY LASTN m 999999999\n"),
        "ERR 413 query-too-large"
    );
    assert_eq!(c.round_trip("PING\n"), "PONG");
    server.stop();
}

#[test]
fn drop_oldest_backpressure_is_visible_in_acks() {
    // Tiny queue, zero writer drain speed (writers exist but the
    // capacity is smaller than two batches) — the second push must
    // report a non-zero queue and pushes keep succeeding.
    let store = Arc::new(Historian::in_memory(HistorianConfig::default()));
    let cfg = NetConfig {
        ingest_capacity_samples: 8,
        ..NetConfig::default()
    };
    let server = NetServer::bind(
        "127.0.0.1:0",
        cfg,
        store as Arc<dyn MetricStore>,
        Arc::new(StatusBoard::new()),
    )
    .unwrap();
    let mut c = Client::connect(&server);
    for _ in 0..50 {
        let ack = c.round_trip("PUSHC 8 m 0 1\n1 2 3 4 5 6 7 8\n");
        assert!(ack.starts_with("OK 8 q="), "{ack}");
    }
    // Dropping happened (the writer can't keep up with 50 back-to-back
    // full-capacity batches) or the writer drained everything; either
    // way the server never stalled and never errored. Check the
    // explicit counter exposed through the queue.
    let _ = server.queue().dropped_samples();
    server.stop();
}
