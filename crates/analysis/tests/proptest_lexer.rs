//! Property tests for the analysis lexer: concatenating the text of
//! every lexed token must reproduce the input modulo whitespace —
//! comments and string bodies are carried verbatim inside their tokens,
//! so nothing the parser or the allow-annotation scanner relies on can
//! be silently dropped.

use proptest::prelude::*;
use tesla_analysis::lexer::lex;

/// Derives one plausible Rust source atom from a raw generator word.
/// Atoms are later joined with arbitrary (possibly empty) separators,
/// so adjacent atoms may merge into different tokens than the ones
/// listed here — the round-trip property must hold anyway.
fn atom_from(w: u64) -> String {
    const PUNCTS: [&str; 25] = [
        "::", "->", "=>", "..", "{", "}", "(", ")", "[", "]", ";", ",", ".", "&", "*", "+", "-",
        "<", ">", "=", "#", "!", "?", "|", "@",
    ];
    const WORDS: [&str; 8] = ["fn", "let", "impl", "decide", "shard", "x", "wal_sync", "r"];
    match w % 16 {
        0 => WORDS[(w >> 8) as usize % WORDS.len()].to_string(),
        1 => format!("{}", (w >> 8) % 1_000_000),
        2 => "0x1F".to_string(),
        3 => "1_000u64".to_string(),
        4 => "1.5e-3".to_string(),
        5 => format!("\"s{} b\"", (w >> 8) % 100),
        6 => "\"a\\\"b\"".to_string(),
        7 => "r#\"raw \"str\" body\"#".to_string(),
        8 => ["'x'", "'\\n'", "'\\''"][(w >> 8) as usize % 3].to_string(),
        9 => "'static".to_string(),
        10 => format!("'l{}", (w >> 8) % 10),
        11 | 12 => PUNCTS[(w >> 8) as usize % PUNCTS.len()].to_string(),
        13 => format!("// note {}\n", (w >> 8) % 100),
        14 => format!("/* blk {} */", (w >> 8) % 100),
        _ => "/* outer /* inner */ tail */".to_string(),
    }
}

/// Derives a separator (possibly empty) from a raw generator word.
fn sep_from(w: u64) -> &'static str {
    ["", " ", "\n", "\t", "  ", " \n "][(w >> 4) as usize % 6]
}

fn strip_ws(s: &str) -> String {
    s.chars().filter(|c| !c.is_whitespace()).collect()
}

fn soup(words: &[u64]) -> String {
    let mut src = String::new();
    for &w in words {
        src.push_str(&atom_from(w));
        src.push_str(sep_from(w));
    }
    src
}

/// Derives arbitrary (non-atom-shaped) text, including lone quotes and
/// unterminated comment openers, from raw words.
fn junk_from(words: &[u64]) -> String {
    const BYTES: [char; 20] = [
        'a', 'Z', '0', '9', '_', '"', '\'', '/', '*', '\\', '#', '{', '(', '$', '~', '`', '\u{e9}',
        '\u{4e2d}', ' ', '\n',
    ];
    words
        .iter()
        .map(|&w| BYTES[w as usize % BYTES.len()])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Token-soup round trip: for any sequence of plausible source
    /// atoms under arbitrary spacing, the concatenated token texts
    /// equal the input modulo whitespace.
    #[test]
    fn token_soup_round_trips(words in proptest::collection::vec(0u64..u64::MAX, 0..40)) {
        let src = soup(&words);
        let tokens = lex(&src);
        let joined: String = tokens.iter().map(|t| t.text.as_str()).collect();
        prop_assert_eq!(strip_ws(&joined), strip_ws(&src));
    }

    /// Total robustness: the lexer never panics and still round-trips
    /// on arbitrary byte soup (unterminated strings and comments are
    /// carried to end-of-input inside a single token).
    #[test]
    fn arbitrary_input_round_trips(words in proptest::collection::vec(0u64..u64::MAX, 0..200)) {
        let src = junk_from(&words);
        let tokens = lex(&src);
        let joined: String = tokens.iter().map(|t| t.text.as_str()).collect();
        prop_assert_eq!(strip_ws(&joined), strip_ws(&src));
    }

    /// Line numbers are monotonically non-decreasing and within range.
    #[test]
    fn line_numbers_are_monotone(words in proptest::collection::vec(0u64..u64::MAX, 0..30)) {
        let src = soup(&words);
        let total_lines = src.lines().count().max(1) as u32;
        let tokens = lex(&src);
        let mut prev = 1u32;
        for t in &tokens {
            prop_assert!(t.line >= prev, "line went backwards at {:?}", t);
            prop_assert!(t.line <= total_lines, "line out of range at {:?}", t);
            prev = t.line;
        }
    }
}
