//! Interprocedural rules over the workspace call graph.
//!
//! Every finding carries a *witness*: the shortest call chain from a
//! declared root to the offending site, with `file:line` for each hop,
//! so a reviewer can audit the path without re-running the engine.

use crate::callgraph::{CallGraph, Site, SiteKind};
use crate::lexer::{Token, TokenKind};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Panic sites reachable from control roots.
pub const RULE_PANIC: &str = "panic-free-control-path";
/// Heap allocation reachable from `decide()` outside setup fns.
pub const RULE_ALLOC: &str = "no-alloc-in-decide-steady-state";
/// Lock-order inversions and locks held across blocking I/O.
pub const RULE_LOCK: &str = "lock-order";
/// Blocking calls reachable inside the deadline-bounded decision path.
pub const RULE_BLOCKING: &str = "no-blocking-in-deadline-path";

/// A lock class: method sites named `lock`/`read`/`write` whose file
/// path contains `file_substr` and receiver text contains `recv_substr`.
#[derive(Debug, Clone)]
pub struct LockClass {
    /// Human-readable class name, e.g. `historian.shard`.
    pub name: String,
    /// Substring the source file path must contain.
    pub file_substr: String,
    /// Substring the receiver expression must contain.
    pub recv_substr: String,
}

/// Lock-order rule configuration.
#[derive(Debug, Clone, Default)]
pub struct LockOrderConfig {
    /// Known lock classes.
    pub classes: Vec<LockClass>,
    /// Declared global order, outermost first. Acquiring `order[j]`
    /// while holding `order[i]` is legal iff `i < j`.
    pub order: Vec<String>,
}

/// Full rule configuration, supplied by the driver.
#[derive(Debug, Clone, Default)]
pub struct RuleConfig {
    /// Roots for [`RULE_PANIC`] (`Type::method` or bare fn names).
    pub panic_roots: Vec<String>,
    /// Roots for [`RULE_ALLOC`].
    pub alloc_roots: Vec<String>,
    /// Roots for [`RULE_BLOCKING`].
    pub blocking_roots: Vec<String>,
    /// Lock classes and declared order for [`RULE_LOCK`].
    pub lock: LockOrderConfig,
}

/// One analysis finding.
#[derive(Debug, Clone)]
pub struct AnalysisFinding {
    /// Rule name.
    pub rule: &'static str,
    /// Repo-relative file of the offending site.
    pub file: String,
    /// 1-based line of the offending site.
    pub line: u32,
    /// What was found.
    pub message: String,
    /// Root-to-site call chain with per-hop `file:line`.
    pub witness: String,
    /// Whether an allow annotation covers this finding.
    pub allowed: bool,
}

/// Returns a description if `site` can panic.
pub fn panic_site(site: &Site) -> Option<String> {
    match site.kind {
        SiteKind::Macro => match site.name.as_str() {
            "panic!" | "unreachable!" | "todo!" | "unimplemented!" => Some(site.name.clone()),
            _ => None,
        },
        SiteKind::Method => match site.name.as_str() {
            "unwrap" | "expect" => Some(format!(".{}()", site.name)),
            _ => None,
        },
        SiteKind::Index => Some(format!("indexing `{}[..]` without get()", site.receiver)),
        SiteKind::Path => None,
    }
}

/// Returns a description if `site` heap-allocates.
pub fn alloc_site(site: &Site) -> Option<String> {
    match site.kind {
        SiteKind::Macro => match site.name.as_str() {
            "vec!" | "format!" => Some(site.name.clone()),
            _ => None,
        },
        SiteKind::Method => match site.name.as_str() {
            "to_string" | "to_vec" | "to_owned" | "collect" | "push" | "push_back" | "insert"
            | "extend" => Some(format!(".{}() may allocate", site.name)),
            _ => None,
        },
        SiteKind::Path => {
            if site.segments.len() >= 2 {
                let ty = &site.segments[site.segments.len() - 2];
                let m = site.name.as_str();
                let hit = matches!(
                    (ty.as_str(), m),
                    ("Vec", "new")
                        | ("Vec", "with_capacity")
                        | ("Vec", "from")
                        | ("Box", "new")
                        | ("String", "new")
                        | ("String", "from")
                        | ("String", "with_capacity")
                        | ("HashMap", "new")
                        | ("HashMap", "with_capacity")
                        | ("VecDeque", "new")
                        | ("VecDeque", "with_capacity")
                        | ("BTreeMap", "new")
                );
                if hit {
                    return Some(format!("{ty}::{m}"));
                }
            }
            None
        }
        SiteKind::Index => None,
    }
}

/// Returns a description if `site` can block (filesystem, sync flush,
/// sleeps, unbounded channel receives, joins).
pub fn blocking_site(site: &Site) -> Option<String> {
    match site.kind {
        SiteKind::Method => match site.name.as_str() {
            "sync_all" | "sync_data" | "flush" | "sync" => {
                Some(format!(".{}() synchronous I/O", site.name))
            }
            "recv" => Some(".recv() unbounded blocking receive".to_string()),
            "wait" | "join" => Some(format!(".{}() blocks the caller", site.name)),
            "open" | "create" if site.receiver.contains("OpenOptions") => {
                Some(format!(".{}() filesystem call", site.name))
            }
            _ => None,
        },
        SiteKind::Path => {
            if site.segments.iter().any(|s| s == "fs") {
                return Some(format!("fs::{} filesystem call", site.name));
            }
            if site.segments.len() >= 2 {
                let ty = &site.segments[site.segments.len() - 2];
                let m = site.name.as_str();
                match (ty.as_str(), m) {
                    ("File", "open") | ("File", "create") | ("OpenOptions", "new") => {
                        return Some(format!("{ty}::{m} filesystem call"));
                    }
                    ("thread", "sleep") => return Some("thread::sleep".to_string()),
                    _ => {}
                }
            }
            None
        }
        _ => None,
    }
}

/// Predecessor link recorded during BFS: caller fn id plus the call
/// site's file index and line.
type Pred = (usize, usize, u32);

/// BFS over call edges from `roots`. Returns, for every reachable fn,
/// the predecessor hop (None for roots). `skip(fn_id)` prunes traversal
/// *into* a fn (it is not visited at all).
pub fn reach(
    graph: &CallGraph,
    roots: &[usize],
    skip: &dyn Fn(usize) -> bool,
) -> HashMap<usize, Option<Pred>> {
    let mut pred: HashMap<usize, Option<Pred>> = HashMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &r in roots {
        if !skip(r) && !pred.contains_key(&r) {
            pred.insert(r, None);
            queue.push_back(r);
        }
    }
    while let Some(f) = queue.pop_front() {
        for (sx, callees) in &graph.fns[f].edges {
            let site = &graph.fns[f].sites[*sx];
            for &c in callees {
                if c == f || pred.contains_key(&c) || skip(c) {
                    continue;
                }
                pred.insert(c, Some((f, graph.fns[f].def.file, site.line)));
                queue.push_back(c);
            }
        }
    }
    pred
}

/// Renders the witness chain `root -> … -> fn_id` using `paths[file]`
/// for hop locations (the terminal site is appended by the caller).
pub fn witness_chain(
    graph: &CallGraph,
    pred: &HashMap<usize, Option<Pred>>,
    fn_id: usize,
    paths: &[String],
) -> String {
    let mut hops: Vec<String> = Vec::new();
    let mut cur = fn_id;
    loop {
        match pred.get(&cur) {
            Some(Some((caller, file, line))) => {
                hops.push(format!(
                    "{} [{}:{}]",
                    graph.fns[cur].def.qualified(),
                    paths[*file],
                    line
                ));
                cur = *caller;
            }
            _ => {
                hops.push(graph.fns[cur].def.qualified());
                break;
            }
        }
    }
    hops.reverse();
    hops.join(" -> ")
}

/// Per-fn transitive summary used by the lock-order rule.
#[derive(Debug, Clone, Default, PartialEq)]
struct FnSummary {
    /// Lock classes this fn (or anything it calls) may acquire.
    locks: BTreeSet<usize>,
    /// Whether this fn (or anything it calls) may perform blocking I/O.
    io: bool,
}

/// A lock acquisition inside one fn body.
struct Acquisition {
    class: usize,
    line: u32,
    tok: usize,
    /// Token index (exclusive) up to which the guard is held.
    extent_end: usize,
}

/// Finds the token index (exclusive) up to which the guard acquired at
/// `site_tok` is held. Let-bound guards live to the end of the
/// enclosing block (or an explicit `drop(name)`); temporaries live to
/// the end of the statement.
fn guard_extent(tokens: &[Token], site_tok: usize, body_end: usize) -> usize {
    // Find the statement start: first token after the previous
    // `;`/`{`/`}` punct.
    let mut stmt_start = site_tok;
    let mut k = site_tok;
    while k > 0 {
        k -= 1;
        let t = &tokens[k];
        if t.kind == TokenKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}") {
            break;
        }
        if t.kind != TokenKind::Comment {
            stmt_start = k;
        }
    }
    // `if let Ok(g) = x.read()` / `while let ...`: the guard is bound
    // inside the conditional's block(s) and cannot outlive the if/else
    // chain, so a read-then-write upgrade after the chain is legal.
    let head = &tokens[stmt_start];
    if head.kind == TokenKind::Ident
        && matches!(head.text.as_str(), "if" | "while")
        && tokens[stmt_start..site_tok]
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "let")
    {
        return conditional_extent(tokens, site_tok, body_end);
    }
    let is_let = tokens[stmt_start].kind == TokenKind::Ident && tokens[stmt_start].text == "let";
    // Name bound by `let [mut] name`.
    let bound: Option<&str> = if is_let {
        let mut b = stmt_start + 1;
        if tokens.get(b).is_some_and(|t| t.text == "mut") {
            b += 1;
        }
        tokens
            .get(b)
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
    } else {
        None
    };

    let mut depth = 0i32;
    let mut i = site_tok;
    while i < body_end {
        let t = &tokens[i];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth < 0 {
                        return i; // enclosing block closed
                    }
                    if !is_let && depth == 0 && i > site_tok {
                        // conservative: a temporary's statement cannot
                        // outlive the block it appears in
                    }
                }
                ";" if !is_let && depth == 0 => return i,
                _ => {}
            }
        }
        // Explicit drop(name) releases a let-bound guard early.
        if let Some(name) = bound {
            if depth >= 0
                && t.kind == TokenKind::Ident
                && t.text == "drop"
                && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
                && tokens.get(i + 2).is_some_and(|n| n.text == name)
                && tokens.get(i + 3).is_some_and(|n| n.is_punct(')'))
            {
                return i;
            }
        }
        i += 1;
    }
    body_end
}

/// Extent of a guard bound by `if let`/`while let`: the close of the
/// conditional's block chain (walking `else` / `else if` arms).
fn conditional_extent(tokens: &[Token], site_tok: usize, body_end: usize) -> usize {
    let mut i = site_tok;
    while i < body_end && !tokens[i].is_punct('{') {
        i += 1;
    }
    loop {
        let mut depth = 0i32;
        while i < body_end {
            if tokens[i].is_punct('{') {
                depth += 1;
            } else if tokens[i].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            i += 1;
        }
        let mut j = i + 1;
        while tokens.get(j).is_some_and(|t| t.kind == TokenKind::Comment) {
            j += 1;
        }
        if tokens
            .get(j)
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text == "else")
        {
            let mut k = j + 1;
            while k < body_end && !tokens[k].is_punct('{') {
                k += 1;
            }
            i = k;
            continue;
        }
        return i.min(body_end);
    }
}

/// Runs the lock-order rule over every non-test fn. `paths[f]` is the
/// repo-relative path of file `f`; `files[f]` its tokens.
pub fn lock_order_findings(
    graph: &CallGraph,
    cfg: &LockOrderConfig,
    paths: &[String],
    files: &[Vec<Token>],
) -> Vec<AnalysisFinding> {
    let order_idx = |cls: usize| cfg.order.iter().position(|o| *o == cfg.classes[cls].name);
    let classify = |f: usize, site: &Site| -> Option<usize> {
        if site.kind != SiteKind::Method || !matches!(site.name.as_str(), "lock" | "read" | "write")
        {
            return None;
        }
        let path = &paths[graph.fns[f].def.file];
        cfg.classes
            .iter()
            .position(|c| path.contains(&c.file_substr) && site.receiver.contains(&c.recv_substr))
    };

    // Guard-returning fns acquire the class of their own lock site.
    let mut guard_fn_class: HashMap<usize, usize> = HashMap::new();
    for (f, node) in graph.fns.iter().enumerate() {
        if node.def.returns_guard() {
            if let Some(cls) = node.sites.iter().find_map(|s| classify(f, s)) {
                guard_fn_class.insert(f, cls);
            }
        }
    }

    // Fixpoint transitive summaries.
    let mut summaries: Vec<FnSummary> = graph
        .fns
        .iter()
        .enumerate()
        .map(|(f, node)| {
            let mut s = FnSummary::default();
            for site in &node.sites {
                if let Some(cls) = classify(f, site) {
                    s.locks.insert(cls);
                }
                if blocking_site(site).is_some() {
                    s.io = true;
                }
            }
            s
        })
        .collect();
    loop {
        let mut changed = false;
        for f in 0..graph.fns.len() {
            let mut s = summaries[f].clone();
            for (_, callees) in &graph.fns[f].edges {
                for &c in callees {
                    s.io |= summaries[c].io;
                    s.locks.extend(summaries[c].locks.iter().copied());
                }
            }
            if s != summaries[f] {
                summaries[f] = s;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut out: Vec<AnalysisFinding> = Vec::new();
    for (f, node) in graph.fns.iter().enumerate() {
        if node.def.returns_guard() {
            // A guard-returning accessor holds its lock at return by
            // design; its callers are where extents are analyzed.
            continue;
        }
        let file = node.def.file;
        let tokens = &files[file];
        let body_end = node.def.body.1;
        let fn_loc = format!(
            "{} [{}:{}]",
            node.def.qualified(),
            paths[file],
            node.def.line
        );

        let mut acqs: Vec<Acquisition> = Vec::new();
        for (sx, site) in node.sites.iter().enumerate() {
            let cls = classify(f, site).or_else(|| {
                node.edges
                    .iter()
                    .find(|(ex, _)| *ex == sx)
                    .and_then(|(_, callees)| {
                        callees.iter().find_map(|c| guard_fn_class.get(c).copied())
                    })
            });
            if let Some(class) = cls {
                acqs.push(Acquisition {
                    class,
                    line: site.line,
                    tok: site.tok,
                    extent_end: guard_extent(tokens, site.tok, body_end),
                });
            }
        }
        if acqs.is_empty() {
            continue;
        }

        for a in &acqs {
            let a_name = &cfg.classes[a.class].name;
            // Nested direct acquisitions within the extent.
            for b in &acqs {
                if b.tok <= a.tok || b.tok >= a.extent_end {
                    continue;
                }
                let b_name = &cfg.classes[b.class].name;
                if a.class == b.class {
                    out.push(AnalysisFinding {
                        rule: RULE_LOCK,
                        file: paths[file].clone(),
                        line: b.line,
                        message: format!(
                            "lock class `{a_name}` acquired at line {} is still held while \
                             re-acquiring the same class",
                            a.line
                        ),
                        witness: format!(
                            "{fn_loc}: acquire {a_name} [{}:{}] -> acquire {b_name} [{}:{}]",
                            paths[file], a.line, paths[file], b.line
                        ),
                        allowed: false,
                    });
                } else if let (Some(ai), Some(bi)) = (order_idx(a.class), order_idx(b.class)) {
                    if ai > bi {
                        out.push(AnalysisFinding {
                            rule: RULE_LOCK,
                            file: paths[file].clone(),
                            line: b.line,
                            message: format!(
                                "lock order inversion: `{b_name}` acquired while holding \
                                 `{a_name}` (declared order requires {b_name} before {a_name})"
                            ),
                            witness: format!(
                                "{fn_loc}: acquire {a_name} [{}:{}] -> acquire {b_name} [{}:{}]",
                                paths[file], a.line, paths[file], b.line
                            ),
                            allowed: false,
                        });
                    }
                }
            }
            // Blocking I/O and transitive lock/io calls within the extent.
            for (sx, site) in node.sites.iter().enumerate() {
                if site.tok <= a.tok || site.tok >= a.extent_end {
                    continue;
                }
                if let Some(desc) = blocking_site(site) {
                    out.push(AnalysisFinding {
                        rule: RULE_LOCK,
                        file: paths[file].clone(),
                        line: site.line,
                        message: format!("lock class `{a_name}` held across {desc}"),
                        witness: format!(
                            "{fn_loc}: acquire {a_name} [{}:{}] -> {desc} [{}:{}]",
                            paths[file], a.line, paths[file], site.line
                        ),
                        allowed: false,
                    });
                    continue;
                }
                if let Some((_, callees)) = node.edges.iter().find(|(ex, _)| *ex == sx) {
                    for &c in callees {
                        if guard_fn_class.contains_key(&c) {
                            continue; // handled as an acquisition above
                        }
                        let callee_name = graph.fns[c].def.qualified();
                        if summaries[c].io {
                            out.push(AnalysisFinding {
                                rule: RULE_LOCK,
                                file: paths[file].clone(),
                                line: site.line,
                                message: format!(
                                    "lock class `{a_name}` held across call to `{callee_name}` \
                                     which may perform blocking I/O"
                                ),
                                witness: format!(
                                    "{fn_loc}: acquire {a_name} [{}:{}] -> {callee_name} [{}:{}]",
                                    paths[file], a.line, paths[file], site.line
                                ),
                                allowed: false,
                            });
                        }
                        for &cls in &summaries[c].locks {
                            if cls == a.class {
                                continue; // recursion through helpers; direct nesting covered above
                            }
                            if let (Some(ai), Some(bi)) = (order_idx(a.class), order_idx(cls)) {
                                if ai > bi {
                                    let b_name = &cfg.classes[cls].name;
                                    out.push(AnalysisFinding {
                                        rule: RULE_LOCK,
                                        file: paths[file].clone(),
                                        line: site.line,
                                        message: format!(
                                            "lock order inversion: call to `{callee_name}` may \
                                             acquire `{b_name}` while `{a_name}` is held"
                                        ),
                                        witness: format!(
                                            "{fn_loc}: acquire {a_name} [{}:{}] -> {callee_name} \
                                             [{}:{}] -> acquire {b_name}",
                                            paths[file], a.line, paths[file], site.line
                                        ),
                                        allowed: false,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_fns;

    fn graph(src: &str) -> (CallGraph, Vec<Vec<Token>>) {
        let tokens = lex(src);
        let defs = parse_fns(&tokens, 0);
        let files = vec![tokens];
        let g = CallGraph::build(&files, defs);
        (g, files)
    }

    fn lock_cfg() -> LockOrderConfig {
        LockOrderConfig {
            classes: vec![
                LockClass {
                    name: "a.lock".into(),
                    file_substr: "".into(),
                    recv_substr: "a_mutex".into(),
                },
                LockClass {
                    name: "b.lock".into(),
                    file_substr: "".into(),
                    recv_substr: "b_mutex".into(),
                },
            ],
            order: vec!["a.lock".into(), "b.lock".into()],
        }
    }

    #[test]
    fn panic_reachable_from_root_with_witness() {
        let (g, _) = graph(
            "fn root() { middle(); }\n\
             fn middle() { leaf(); }\n\
             fn leaf(x: Option<u8>) { x.unwrap(); }",
        );
        let paths = vec!["src/a.rs".to_string()];
        let roots = g.roots("root");
        let pred = reach(&g, &roots, &|_| false);
        let leaf = g.roots("leaf")[0];
        assert!(pred.contains_key(&leaf));
        let site = g.fns[leaf]
            .sites
            .iter()
            .find(|s| panic_site(s).is_some())
            .unwrap();
        assert_eq!(site.name, "unwrap");
        let chain = witness_chain(&g, &pred, leaf, &paths);
        assert_eq!(chain, "root -> middle [src/a.rs:1] -> leaf [src/a.rs:2]");
    }

    #[test]
    fn unreachable_panic_not_in_reach_set() {
        let (g, _) =
            graph("fn root() { safe(); }\nfn safe() {}\nfn dead(x: Option<u8>) { x.unwrap(); }");
        let pred = reach(&g, &g.roots("root"), &|_| false);
        assert!(!pred.contains_key(&g.roots("dead")[0]));
    }

    #[test]
    fn skip_prunes_traversal() {
        let (g, _) =
            graph("fn root() { setup(); }\nfn setup() { helper(); }\nfn helper() { vec![1]; }");
        let setup = g.roots("setup")[0];
        let pred = reach(&g, &g.roots("root"), &|f| f == setup);
        assert!(!pred.contains_key(&g.roots("helper")[0]));
    }

    #[test]
    fn alloc_patterns_match() {
        let (g, _) =
            graph("fn f() { let v = Vec::with_capacity(8); let s = format!(\"x\"); q.push(1); }");
        let descs: Vec<String> = g.fns[0].sites.iter().filter_map(alloc_site).collect();
        assert!(descs.iter().any(|d| d == "Vec::with_capacity"));
        assert!(descs.iter().any(|d| d == "format!"));
        assert!(descs.iter().any(|d| d.contains("push")));
    }

    #[test]
    fn blocking_patterns_match_but_not_bounded_recv() {
        let (g, _) =
            graph("fn f() { std::fs::read(\"x\"); rx.recv(); rx.recv_timeout(d); w.flush(); }");
        let descs: Vec<String> = g.fns[0].sites.iter().filter_map(blocking_site).collect();
        assert!(descs.iter().any(|d| d.contains("fs::read")));
        assert!(descs.iter().any(|d| d.contains(".recv()")));
        assert!(descs.iter().any(|d| d.contains(".flush()")));
        assert_eq!(
            descs.iter().filter(|d| d.contains("recv")).count(),
            1,
            "recv_timeout is bounded and must not be flagged"
        );
    }

    #[test]
    fn lock_inversion_detected() {
        let (g, files) = graph(
            "fn bad() {\n\
                 let gb = b_mutex.lock();\n\
                 let ga = a_mutex.lock();\n\
             }",
        );
        let paths = vec!["src/locks.rs".to_string()];
        let f = lock_order_findings(&g, &lock_cfg(), &paths, &files);
        assert!(
            f.iter().any(|x| x.message.contains("inversion")),
            "expected inversion, got: {f:?}"
        );
    }

    #[test]
    fn declared_order_is_clean() {
        let (g, files) = graph(
            "fn good() {\n\
                 let ga = a_mutex.lock();\n\
                 let gb = b_mutex.lock();\n\
             }",
        );
        let paths = vec!["src/locks.rs".to_string()];
        let f = lock_order_findings(&g, &lock_cfg(), &paths, &files);
        assert!(f.is_empty(), "declared order must be clean, got: {f:?}");
    }

    #[test]
    fn drop_releases_guard_before_next_acquire() {
        let (g, files) = graph(
            "fn ok() {\n\
                 let gb = b_mutex.lock();\n\
                 drop(gb);\n\
                 let ga = a_mutex.lock();\n\
             }",
        );
        let paths = vec!["src/locks.rs".to_string()];
        let f = lock_order_findings(&g, &lock_cfg(), &paths, &files);
        assert!(f.is_empty(), "drop() must end the extent, got: {f:?}");
    }

    #[test]
    fn if_let_upgrade_pattern_is_legal() {
        // Read-then-write upgrade: the `if let` guard dies with the
        // conditional's block chain, so re-acquiring the same class
        // afterwards is not a nesting violation.
        let (g, files) = graph(
            "fn upgrade() {\n\
                 if let Ok(m) = a_mutex.read() {\n\
                     return;\n\
                 } else {\n\
                     noop();\n\
                 }\n\
                 let mut m = a_mutex.write();\n\
             }\n\
             fn noop() {}",
        );
        let paths = vec!["src/locks.rs".to_string()];
        let f = lock_order_findings(&g, &lock_cfg(), &paths, &files);
        assert!(
            f.is_empty(),
            "if-let guard must end with the chain, got: {f:?}"
        );
    }

    #[test]
    fn if_let_guard_held_inside_block_still_flagged() {
        // Inside the conditional's body the guard IS held: nesting the
        // other class in the wrong order there must still be caught.
        let (g, files) = graph(
            "fn bad() {\n\
                 if let Ok(m) = b_mutex.lock() {\n\
                     let ga = a_mutex.lock();\n\
                 }\n\
             }",
        );
        let paths = vec!["src/locks.rs".to_string()];
        let f = lock_order_findings(&g, &lock_cfg(), &paths, &files);
        assert!(
            f.iter().any(|x| x.message.contains("inversion")),
            "nested acquire inside if-let body must be flagged, got: {f:?}"
        );
    }

    #[test]
    fn block_scope_ends_guard() {
        let (g, files) = graph(
            "fn ok() {\n\
                 { let gb = b_mutex.lock(); }\n\
                 let ga = a_mutex.lock();\n\
             }",
        );
        let paths = vec!["src/locks.rs".to_string()];
        let f = lock_order_findings(&g, &lock_cfg(), &paths, &files);
        assert!(f.is_empty(), "block close must end the extent, got: {f:?}");
    }

    #[test]
    fn lock_held_across_io_detected() {
        let (g, files) = graph(
            "fn flushes() {\n\
                 let ga = a_mutex.lock();\n\
                 file.sync_all();\n\
             }",
        );
        let paths = vec!["src/locks.rs".to_string()];
        let f = lock_order_findings(&g, &lock_cfg(), &paths, &files);
        assert!(
            f.iter().any(|x| x.message.contains("held across")),
            "expected held-across-io, got: {f:?}"
        );
    }

    #[test]
    fn transitive_io_under_lock_detected() {
        let (g, files) = graph(
            "fn do_io() { std::fs::write(\"p\", b\"x\"); }\n\
             fn locks_then_calls() {\n\
                 let ga = a_mutex.lock();\n\
                 do_io();\n\
             }",
        );
        let paths = vec!["src/locks.rs".to_string()];
        let f = lock_order_findings(&g, &lock_cfg(), &paths, &files);
        assert!(
            f.iter().any(|x| x.message.contains("do_io")),
            "expected transitive io finding, got: {f:?}"
        );
    }

    #[test]
    fn same_class_nesting_detected() {
        let (g, files) = graph(
            "fn double() {\n\
                 let g1 = a_mutex.lock();\n\
                 let g2 = a_mutex.lock();\n\
             }",
        );
        let paths = vec!["src/locks.rs".to_string()];
        let f = lock_order_findings(&g, &lock_cfg(), &paths, &files);
        assert!(
            f.iter().any(|x| x.message.contains("same class")),
            "expected same-class nesting, got: {f:?}"
        );
    }
}
