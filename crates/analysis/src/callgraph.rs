//! Call-site extraction and workspace call-graph construction.
//!
//! Resolution is deliberately conservative: a method call resolves to
//! *every* workspace function with that name (except a set of generic
//! names like `push`/`get` that would connect unrelated types), a path
//! call `Type::method` resolves to the matching impl when one exists,
//! and anything unresolved is kept as an *external site* that the rules
//! match against their pattern tables.

use crate::lexer::{Token, TokenKind};
use crate::parser::FnDef;
use std::collections::HashMap;

/// Rust keywords that can precede `(`/`[` without being calls/indexing.
const KEYWORDS: [&str; 22] = [
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "let", "mut", "ref", "move", "fn", "impl", "use", "pub", "where", "unsafe", "dyn",
];

/// Method names too generic to resolve by name across the workspace —
/// resolving `.push(…)` to every `push` in the repo would connect
/// unrelated types and drown the graph in false edges. Calls to these
/// stay external sites, matched by the rule pattern tables instead.
pub const GENERIC_METHODS: [&str; 31] = [
    "new",
    "default",
    "clone",
    "push",
    "push_back",
    "push_front",
    "pop",
    "insert",
    "get",
    "len",
    "is_empty",
    "iter",
    "into_iter",
    "next",
    "read",
    "write",
    "lock",
    "flush",
    "sync",
    "recv",
    "send",
    "clear",
    "extend",
    "remove",
    "contains",
    "value",
    "min",
    "max",
    "last",
    "values",
    "keys",
];

/// How a call site is spelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// `path::to::fn(…)` or `Type::method(…)`.
    Path,
    /// `.method(…)`.
    Method,
    /// `name!(…)` / `name![…]` / `name!{…}`.
    Macro,
    /// `expr[…]` indexing (a potential panic site, not a call).
    Index,
}

/// One call or indexing site inside a function body.
#[derive(Debug, Clone)]
pub struct Site {
    /// Site spelling.
    pub kind: SiteKind,
    /// Last path segment / method name / macro name (with `!`).
    pub name: String,
    /// Full path segments for `Path` sites (`["Vec", "with_capacity"]`).
    pub segments: Vec<String>,
    /// Receiver text for `Method` sites (`self . shards [ h ]`).
    pub receiver: String,
    /// 1-based source line.
    pub line: u32,
    /// Token index of the site's name token (site order within the fn).
    pub tok: usize,
}

/// Extracts calls/indexing from `def`'s body tokens, skipping nested fn
/// bodies and comments.
pub fn extract_sites(tokens: &[Token], def: &FnDef) -> Vec<Site> {
    let (start, end) = def.body;
    let mut out = Vec::new();
    if end <= start + 1 {
        return out;
    }
    let in_nested = |i: usize| def.nested.iter().any(|&(s, e)| i >= s && i < e);
    // Indices of non-comment tokens, for prev/next neighbor lookups.
    let idx: Vec<usize> = (start..end)
        .filter(|&i| tokens[i].kind != TokenKind::Comment)
        .collect();
    let tok = |k: Option<&usize>| -> Option<&Token> { k.map(|&i| &tokens[i]) };

    let mut p = 0usize;
    while p < idx.len() {
        let i = idx[p];
        if in_nested(i) {
            p += 1;
            continue;
        }
        let t = &tokens[i];
        let prev = if p > 0 { tok(idx.get(p - 1)) } else { None };

        // Indexing: `[` after an ident/number/`]`/`)`.
        if t.is_punct('[') {
            let indexable = match prev {
                Some(pt) => match pt.kind {
                    TokenKind::Ident => !KEYWORDS.contains(&pt.text.as_str()),
                    TokenKind::Number => true,
                    TokenKind::Punct => pt.text == "]" || pt.text == ")",
                    _ => false,
                },
                None => false,
            };
            if indexable {
                out.push(Site {
                    kind: SiteKind::Index,
                    name: "[]".to_string(),
                    segments: Vec::new(),
                    receiver: prev.map(|t| t.text.clone()).unwrap_or_default(),
                    line: t.line,
                    tok: i,
                });
            }
            p += 1;
            continue;
        }

        if t.kind != TokenKind::Ident || KEYWORDS.contains(&t.text.as_str()) {
            p += 1;
            continue;
        }

        // Macro call: ident `!` ( `(` | `[` | `{` ).
        if tok(idx.get(p + 1)).is_some_and(|n| n.is_punct('!'))
            && tok(idx.get(p + 2))
                .is_some_and(|n| n.is_punct('(') || n.is_punct('[') || n.is_punct('{'))
        {
            out.push(Site {
                kind: SiteKind::Macro,
                name: format!("{}!", t.text),
                segments: Vec::new(),
                receiver: String::new(),
                line: t.line,
                tok: i,
            });
            p += 3;
            continue;
        }

        // Method call: `.` ident turbofish? `(`.
        if prev.is_some_and(|pt| pt.is_punct('.')) {
            let (after, _skipped) = skip_turbofish(&idx, p + 1, tokens);
            if tok(idx.get(after)).is_some_and(|n| n.is_punct('(')) {
                out.push(Site {
                    kind: SiteKind::Method,
                    name: t.text.clone(),
                    segments: Vec::new(),
                    receiver: receiver_text(&idx, p, tokens),
                    line: t.line,
                    tok: i,
                });
            }
            p += 1;
            continue;
        }

        // Path call: ident (`::` ident)* turbofish? `(`.
        let mut segments = vec![t.text.clone()];
        let mut q = p + 1;
        loop {
            if tok(idx.get(q)).is_some_and(|n| n.is_punct(':'))
                && tok(idx.get(q + 1)).is_some_and(|n| n.is_punct(':'))
            {
                if let Some(nt) = tok(idx.get(q + 2)) {
                    if nt.kind == TokenKind::Ident {
                        segments.push(nt.text.clone());
                        q += 3;
                        continue;
                    }
                    if nt.is_punct('<') {
                        // turbofish handled below
                        q += 2;
                        break;
                    }
                }
            }
            break;
        }
        let (after, _) = skip_angles(&idx, q, tokens);
        // `path::to::macro!(…)`: the macro name was consumed as the
        // last path segment.
        if tok(idx.get(after)).is_some_and(|n| n.is_punct('!'))
            && tok(idx.get(after + 1))
                .is_some_and(|n| n.is_punct('(') || n.is_punct('[') || n.is_punct('{'))
        {
            let name = segments.last().cloned().unwrap_or_default();
            out.push(Site {
                kind: SiteKind::Macro,
                name: format!("{name}!"),
                segments,
                receiver: String::new(),
                line: t.line,
                tok: i,
            });
            p = after + 2;
            continue;
        }
        if tok(idx.get(after)).is_some_and(|n| n.is_punct('(')) {
            // A bare CamelCase single segment is a tuple-struct or enum
            // constructor (`Some(`, `Ok(`), not a fn call — still pushed;
            // it simply resolves to nothing and matches no pattern.
            let name = segments.last().cloned().unwrap_or_default();
            out.push(Site {
                kind: SiteKind::Path,
                name,
                segments,
                receiver: String::new(),
                line: t.line,
                tok: i,
            });
        }
        // Advance past the whole path so inner segments are not
        // re-scanned as fresh sites.
        p = after.max(p + 1);
    }
    out
}

/// If `idx[p]` starts `::<…>`, returns the position after the closing
/// `>`; otherwise returns `p` unchanged.
fn skip_turbofish(idx: &[usize], p: usize, tokens: &[Token]) -> (usize, bool) {
    if idx.get(p).is_some_and(|&i| tokens[i].is_punct(':'))
        && idx.get(p + 1).is_some_and(|&i| tokens[i].is_punct(':'))
        && idx.get(p + 2).is_some_and(|&i| tokens[i].is_punct('<'))
    {
        let (after, ok) = skip_angles(idx, p + 2, tokens);
        return (after, ok);
    }
    (p, false)
}

/// If `idx[p]` is `<`, returns the position after its matching `>`.
fn skip_angles(idx: &[usize], p: usize, tokens: &[Token]) -> (usize, bool) {
    if !idx.get(p).is_some_and(|&i| tokens[i].is_punct('<')) {
        return (p, false);
    }
    let mut depth = 0i32;
    let mut q = p;
    while let Some(&i) = idx.get(q) {
        if tokens[i].is_punct('<') {
            depth += 1;
        } else if tokens[i].is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return (q + 1, true);
            }
        } else if tokens[i].is_punct(';') || tokens[i].is_punct('{') {
            break; // not a generic-argument list after all
        }
        q += 1;
        if q > p + 64 {
            break;
        }
    }
    (p, false)
}

/// Up to eight tokens of receiver text before the `.` of a method call:
/// `self . shards [ h ] . lock` -> "self . shards [ h ]".
fn receiver_text(idx: &[usize], name_pos: usize, tokens: &[Token]) -> String {
    // name_pos is the method-name position in idx; idx[name_pos - 1] is `.`.
    let mut parts: Vec<&str> = Vec::new();
    let mut q = name_pos.wrapping_sub(1);
    let mut taken = 0;
    while q > 0 && taken < 8 {
        q -= 1;
        let t = &tokens[idx[q]];
        let keep = match t.kind {
            TokenKind::Ident => !KEYWORDS.contains(&t.text.as_str()),
            TokenKind::Number => true,
            TokenKind::Punct => matches!(t.text.as_str(), "." | "[" | "]" | ")" | "(" | ":"),
            _ => false,
        };
        if !keep {
            break;
        }
        parts.push(&t.text);
        taken += 1;
    }
    parts.reverse();
    parts.join(" ")
}

/// Scans a token stream for `analysis:resolve(Type::method)` comments.
/// A pin forces name resolution of a matching call site on its own
/// line (trailing comment) or the next line (comment above) to the
/// named workspace fn, bypassing the ambiguous by-name fallback.
fn resolution_pins(tokens: &[Token]) -> HashMap<u32, String> {
    let mut pins = HashMap::new();
    for t in tokens {
        if t.kind != TokenKind::Comment {
            continue;
        }
        if let Some(ix) = t.text.find("analysis:resolve(") {
            let rest = &t.text[ix + "analysis:resolve(".len()..];
            if let Some(end) = rest.find(')') {
                pins.insert(t.line, rest[..end].trim().to_string());
            }
        }
    }
    pins
}

/// A function node plus its extracted sites.
#[derive(Debug)]
pub struct FnNode {
    /// The parsed definition.
    pub def: FnDef,
    /// All call/index sites in the body.
    pub sites: Vec<Site>,
    /// Resolved workspace call edges: (site index, callee fn ids).
    pub edges: Vec<(usize, Vec<usize>)>,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All non-test functions, indexed by fn id.
    pub fns: Vec<FnNode>,
    /// name -> fn ids (methods and free fns).
    pub by_name: HashMap<String, Vec<usize>>,
    /// "Type::name" -> fn ids.
    pub by_qualified: HashMap<String, Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph from parsed files. `files[f]` is the token
    /// stream of file `f`; `defs` are all its fns.
    pub fn build(files: &[Vec<Token>], defs: Vec<FnDef>) -> CallGraph {
        let mut g = CallGraph::default();
        for def in defs {
            if def.is_test {
                continue;
            }
            let sites = extract_sites(&files[def.file], &def);
            let id = g.fns.len();
            g.by_name.entry(def.name.clone()).or_default().push(id);
            g.by_qualified.entry(def.qualified()).or_default().push(id);
            g.fns.push(FnNode {
                def,
                sites,
                edges: Vec::new(),
            });
        }
        // `analysis:resolve(Type::method)` pins, per file.
        let pins: Vec<HashMap<u32, String>> =
            files.iter().map(|toks| resolution_pins(toks)).collect();
        // Resolve sites to edges.
        for fx in 0..g.fns.len() {
            let file = g.fns[fx].def.file;
            let mut edges = Vec::new();
            for (sx, site) in g.fns[fx].sites.iter().enumerate() {
                let callees = match g.pinned_target(&pins[file], site) {
                    Some(ids) => ids,
                    None => g.resolve(site),
                };
                if !callees.is_empty() {
                    edges.push((sx, callees));
                }
            }
            g.fns[fx].edges = edges;
        }
        g
    }

    /// Resolves a site through an `analysis:resolve(...)` pin on the
    /// site's line or the line above, when the pinned name's final
    /// segment matches the site name. Returns `None` when no pin
    /// applies (fall back to normal resolution).
    fn pinned_target(&self, pins: &HashMap<u32, String>, site: &Site) -> Option<Vec<usize>> {
        let pin = pins
            .get(&site.line)
            .or_else(|| pins.get(&site.line.saturating_sub(1)))?;
        let last = pin.rsplit("::").next().unwrap_or(pin);
        if site.name.trim_end_matches('!') != last {
            return None;
        }
        Some(
            self.by_qualified
                .get(pin)
                .or_else(|| self.by_name.get(pin))
                .cloned()
                .unwrap_or_default(),
        )
    }

    /// Workspace fns a site may call (empty = external).
    pub fn resolve(&self, site: &Site) -> Vec<usize> {
        match site.kind {
            SiteKind::Index => Vec::new(),
            SiteKind::Macro => self.by_name.get(&site.name).cloned().unwrap_or_default(),
            SiteKind::Method => {
                if GENERIC_METHODS.contains(&site.name.as_str()) {
                    return Vec::new();
                }
                self.by_name
                    .get(&site.name)
                    .map(|ids| {
                        ids.iter()
                            .copied()
                            .filter(|&id| !self.fns[id].def.name.ends_with('!'))
                            .collect()
                    })
                    .unwrap_or_default()
            }
            SiteKind::Path => {
                if site.segments.len() >= 2 {
                    // `Type::method`: prefer the exact impl.
                    let ty = &site.segments[site.segments.len() - 2];
                    let qualified = format!("{ty}::{}", site.name);
                    if let Some(ids) = self.by_qualified.get(&qualified) {
                        return ids.clone();
                    }
                    // `module::free_fn` (or an unknown type's method):
                    // fall back to name lookup unless the name is generic.
                    if GENERIC_METHODS.contains(&site.name.as_str()) {
                        return Vec::new();
                    }
                    return self.by_name.get(&site.name).cloned().unwrap_or_default();
                }
                // Single segment: a free fn; skip constructors
                // (CamelCase) and generic names.
                let name = &site.name;
                if name.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                    || GENERIC_METHODS.contains(&name.as_str())
                {
                    return Vec::new();
                }
                self.by_name
                    .get(name)
                    .map(|ids| {
                        ids.iter()
                            .copied()
                            .filter(|&id| self.fns[id].def.impl_type.is_none())
                            .collect()
                    })
                    .unwrap_or_default()
            }
        }
    }

    /// Fn ids matching a root spec: `Type::method` or a bare fn name.
    pub fn roots(&self, spec: &str) -> Vec<usize> {
        if let Some(ids) = self.by_qualified.get(spec) {
            return ids.clone();
        }
        self.by_name.get(spec).cloned().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_fns;

    fn graph(src: &str) -> CallGraph {
        let tokens = lex(src);
        let defs = parse_fns(&tokens, 0);
        CallGraph::build(&[tokens], defs)
    }

    fn sites_of(src: &str) -> Vec<Site> {
        let tokens = lex(src);
        let defs = parse_fns(&tokens, 0);
        extract_sites(&tokens, &defs[0])
    }

    #[test]
    fn extracts_path_method_macro_index() {
        let sites = sites_of(
            "fn f(v: &[f64]) {\n\
                 helper();\n\
                 tesla_obs::counter!(\"x_total\").inc();\n\
                 let a = Vec::with_capacity(4);\n\
                 let b = v[0];\n\
                 s.push(1.0);\n\
             }",
        );
        let names: Vec<(&SiteKind, &str)> =
            sites.iter().map(|s| (&s.kind, s.name.as_str())).collect();
        assert!(names.contains(&(&SiteKind::Path, "helper")));
        assert!(names.contains(&(&SiteKind::Macro, "counter!")));
        assert!(names.contains(&(&SiteKind::Path, "with_capacity")));
        assert!(names.contains(&(&SiteKind::Index, "[]")));
        assert!(names.contains(&(&SiteKind::Method, "push")));
        let wc = sites.iter().find(|s| s.name == "with_capacity").unwrap();
        assert_eq!(wc.segments, vec!["Vec", "with_capacity"]);
    }

    #[test]
    fn keywords_are_not_calls_or_indexing() {
        let sites = sites_of("fn f(x: bool) { if (x) { return; } let [a, b] = [1, 2]; }");
        assert!(sites
            .iter()
            .all(|s| s.name != "if" && s.kind != SiteKind::Index));
    }

    #[test]
    fn turbofish_method_call() {
        let sites = sites_of("fn f(v: &[u8]) { let x = v.iter().collect::<Vec<_>>(); }");
        assert!(sites.iter().any(|s| s.name == "collect"));
    }

    #[test]
    fn attribute_bracket_is_not_indexing() {
        let tokens = lex("fn f() { #[allow(dead_code)] let x = 1; }");
        let defs = parse_fns(&tokens, 0);
        let sites = extract_sites(&tokens, &defs[0]);
        assert!(sites.iter().all(|s| s.kind != SiteKind::Index));
    }

    #[test]
    fn resolves_method_to_impl_and_skips_generic_names() {
        let g = graph(
            "impl Buffer { fn record(&mut self) {} fn push(&mut self) {} }\n\
             fn caller(b: &mut Buffer) { b.record(); b.push(); }",
        );
        let caller = g.roots("caller")[0];
        let record = g.roots("Buffer::record")[0];
        let resolved: Vec<usize> = g.fns[caller]
            .edges
            .iter()
            .flat_map(|(_, ids)| ids.clone())
            .collect();
        assert!(resolved.contains(&record));
        // `push` is generic: not resolved even though Buffer::push exists.
        let push = g.roots("Buffer::push")[0];
        assert!(!resolved.contains(&push));
    }

    #[test]
    fn resolution_pin_overrides_ambiguous_method_fallback() {
        // `.append(` matches both impls by name; the pin on the line
        // above forces the edge to InMemory::append only.
        let g = graph(
            "impl Wal { fn append(&mut self) {} }\n\
             impl InMemory { fn append(&mut self) {} }\n\
             fn caller(s: &mut InMemory) {\n\
                 // analysis:resolve(InMemory::append)\n\
                 s.append();\n\
             }",
        );
        let caller = g.roots("caller")[0];
        let resolved: Vec<usize> = g.fns[caller]
            .edges
            .iter()
            .flat_map(|(_, ids)| ids.clone())
            .collect();
        assert_eq!(resolved, g.roots("InMemory::append"));
        assert!(!resolved.contains(&g.roots("Wal::append")[0]));
    }

    #[test]
    fn resolution_pin_ignores_non_matching_names() {
        // A pin only applies to sites whose name matches its final
        // segment; other calls on the pinned line resolve normally.
        let g = graph(
            "impl Wal { fn append(&mut self) {} }\n\
             impl InMemory { fn append(&mut self) {} }\n\
             fn other() {}\n\
             fn caller(s: &mut InMemory) {\n\
                 // analysis:resolve(InMemory::append)\n\
                 s.append(other());\n\
             }",
        );
        let caller = g.roots("caller")[0];
        let resolved: Vec<usize> = g.fns[caller]
            .edges
            .iter()
            .flat_map(|(_, ids)| ids.clone())
            .collect();
        assert!(resolved.contains(&g.roots("InMemory::append")[0]));
        assert!(resolved.contains(&g.roots("other")[0]));
    }

    #[test]
    fn resolves_qualified_path_to_exact_impl() {
        let g = graph(
            "impl A { fn go(&self) {} }\nimpl B { fn go(&self) {} }\n\
             fn caller() { A::go(); }",
        );
        let caller = g.roots("caller")[0];
        let a_go = g.roots("A::go")[0];
        let b_go = g.roots("B::go")[0];
        let resolved: Vec<usize> = g.fns[caller]
            .edges
            .iter()
            .flat_map(|(_, ids)| ids.clone())
            .collect();
        assert!(resolved.contains(&a_go));
        assert!(!resolved.contains(&b_go));
    }

    #[test]
    fn macro_call_resolves_to_macro_rules_def() {
        let g = graph(
            "macro_rules! counter { ($n:expr) => { registry().counter($n) }; }\n\
             fn registry() {}\nfn f() { counter!(\"a_total\"); }",
        );
        let f = g.roots("f")[0];
        let mac = g.roots("counter!")[0];
        let resolved: Vec<usize> = g.fns[f]
            .edges
            .iter()
            .flat_map(|(_, ids)| ids.clone())
            .collect();
        assert!(resolved.contains(&mac));
    }

    #[test]
    fn test_fns_are_excluded() {
        let g = graph("#[cfg(test)]\nmod tests { fn helper() { x.unwrap(); } }\nfn live() {}");
        assert_eq!(g.fns.len(), 1);
        assert_eq!(g.fns[0].def.name, "live");
    }
}
