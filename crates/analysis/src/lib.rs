//! Dependency-free call-graph static analysis for the TESLA workspace.
//!
//! The engine lexes every workspace source file into tokens
//! ([`lexer`]), parses function items without building a full AST
//! ([`parser`]), resolves a conservative workspace-wide call graph
//! ([`callgraph`]), and runs interprocedural rules ([`rules`]) that
//! prove reachability properties from declared roots: panic-freedom on
//! the control path, no steady-state heap allocation under `decide()`,
//! a global lock acquisition order, and no blocking calls inside the
//! deadline-bounded decision path.
//!
//! ```
//! use tesla_analysis::{RuleConfig, Workspace, RULE_PANIC};
//!
//! let src = "fn decide() { helper(); }\n\
//!            fn helper(x: Option<u8>) { x.unwrap(); }\n";
//! let ws = Workspace::from_sources(vec![("src/lib.rs".to_string(), src.to_string())]);
//! let cfg = RuleConfig {
//!     panic_roots: vec!["decide".to_string()],
//!     ..RuleConfig::default()
//! };
//! let findings = ws.analyze(&cfg);
//! assert!(findings
//!     .iter()
//!     .any(|f| f.rule == RULE_PANIC && f.witness.contains("decide -> helper")));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod lexer;
pub mod parser;
pub mod rules;

use callgraph::CallGraph;
use lexer::Token;
use parser::FnDef;
use std::collections::{HashMap, HashSet};

pub use rules::{
    AnalysisFinding, LockClass, LockOrderConfig, RuleConfig, RULE_ALLOC, RULE_BLOCKING, RULE_LOCK,
    RULE_PANIC,
};

/// A scanned workspace: token streams, source lines, and the resolved
/// call graph.
pub struct Workspace {
    /// Repo-relative path per file.
    pub paths: Vec<String>,
    /// Source lines per file (for annotation checks).
    pub lines: Vec<Vec<String>>,
    /// Token stream per file.
    pub tokens: Vec<Vec<Token>>,
    /// The resolved call graph over all non-test fns.
    pub graph: CallGraph,
}

/// Per-fn annotations harvested from the comment/attribute block above
/// the definition.
#[derive(Debug, Default, Clone)]
struct FnAnnotations {
    /// `// analysis:setup: reason` — excluded from the alloc traversal.
    setup: bool,
    /// Rules named by `// lint:allow(<rule>): reason` above the fn.
    allowed: Vec<String>,
}

impl Workspace {
    /// Lexes and parses `(path, content)` pairs — in parallel across
    /// files — and builds the call graph.
    pub fn from_sources(sources: Vec<(String, String)>) -> Workspace {
        let n = sources.len();
        let nthreads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
            .min(n.max(1));
        let chunk = n.div_ceil(nthreads.max(1)).max(1);

        type Parsed = (Vec<String>, Vec<Token>, Vec<FnDef>);
        let mut parsed: Vec<Parsed> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (c, slice) in sources.chunks(chunk).enumerate() {
                let base = c * chunk;
                handles.push(scope.spawn(move || {
                    slice
                        .iter()
                        .enumerate()
                        .map(|(j, (_, content))| {
                            let lines: Vec<String> =
                                content.lines().map(|l| l.to_string()).collect();
                            let tokens = lexer::lex(content);
                            let defs = parser::parse_fns(&tokens, base + j);
                            (lines, tokens, defs)
                        })
                        .collect::<Vec<Parsed>>()
                }));
            }
            for h in handles {
                parsed.extend(h.join().expect("analysis worker thread panicked"));
            }
        });

        let paths: Vec<String> = sources.into_iter().map(|(p, _)| p).collect();
        let mut lines = Vec::with_capacity(n);
        let mut tokens = Vec::with_capacity(n);
        let mut defs = Vec::new();
        for (l, t, d) in parsed {
            lines.push(l);
            tokens.push(t);
            defs.extend(d);
        }
        let graph = CallGraph::build(&tokens, defs);
        Workspace {
            paths,
            lines,
            tokens,
            graph,
        }
    }

    /// Runs all four rules and returns deduplicated findings, sorted by
    /// rule, file, line. Allow annotations set `allowed` but never
    /// remove findings from the report.
    pub fn analyze(&self, cfg: &RuleConfig) -> Vec<AnalysisFinding> {
        let annos: Vec<FnAnnotations> = (0..self.graph.fns.len())
            .map(|f| self.fn_annotations(&self.graph.fns[f].def))
            .collect();
        let setup: HashSet<usize> = annos
            .iter()
            .enumerate()
            .filter(|(_, a)| a.setup)
            .map(|(f, _)| f)
            .collect();

        let mut out: Vec<AnalysisFinding> = Vec::new();
        out.extend(self.traversal_rule(
            RULE_PANIC,
            &cfg.panic_roots,
            &rules::panic_site,
            &|_| false,
            &annos,
        ));
        out.extend(self.traversal_rule(
            RULE_ALLOC,
            &cfg.alloc_roots,
            &rules::alloc_site,
            &|f| setup.contains(&f),
            &annos,
        ));
        out.extend(self.traversal_rule(
            RULE_BLOCKING,
            &cfg.blocking_roots,
            &rules::blocking_site,
            &|_| false,
            &annos,
        ));
        for mut f in rules::lock_order_findings(&self.graph, &cfg.lock, &self.paths, &self.tokens) {
            f.allowed = self.finding_allowed(&f, &annos);
            out.push(f);
        }

        // Dedup (multiple roots can reach the same site).
        let mut seen: HashSet<(String, String, u32, String)> = HashSet::new();
        out.retain(|f| {
            seen.insert((
                f.rule.to_string(),
                f.file.clone(),
                f.line,
                f.message.clone(),
            ))
        });
        out.sort_by(|a, b| {
            (a.rule, &a.file, a.line, &a.message).cmp(&(b.rule, &b.file, b.line, &b.message))
        });
        out
    }

    fn traversal_rule(
        &self,
        rule: &'static str,
        roots: &[String],
        matcher: &dyn Fn(&callgraph::Site) -> Option<String>,
        skip: &dyn Fn(usize) -> bool,
        annos: &[FnAnnotations],
    ) -> Vec<AnalysisFinding> {
        let mut root_ids: Vec<usize> = Vec::new();
        for spec in roots {
            root_ids.extend(self.graph.roots(spec));
        }
        let pred = rules::reach(&self.graph, &root_ids, skip);
        let mut out = Vec::new();
        for (&f, _) in pred.iter() {
            let node = &self.graph.fns[f];
            let file = node.def.file;
            for site in &node.sites {
                let Some(desc) = matcher(site) else { continue };
                let chain = rules::witness_chain(&self.graph, &pred, f, &self.paths);
                let witness = format!("{chain} -> {desc} [{}:{}]", self.paths[file], site.line);
                let mut finding = AnalysisFinding {
                    rule,
                    file: self.paths[file].clone(),
                    line: site.line,
                    message: desc,
                    witness,
                    allowed: false,
                };
                finding.allowed = self.site_allowed(file, site.line, rule)
                    || annos[f].allowed.iter().any(|r| r == rule)
                    || self.file_allows(file, rule);
                out.push(finding);
            }
        }
        out
    }

    /// `lint:allow(<rule>)` on the finding line or the line above.
    fn site_allowed(&self, file: usize, line: u32, rule: &str) -> bool {
        let needle = format!("lint:allow({rule})");
        let lines = &self.lines[file];
        let i = line as usize;
        let on_line = i >= 1 && lines.get(i - 1).is_some_and(|l| l.contains(&needle));
        let above = i >= 2 && lines.get(i - 2).is_some_and(|l| l.contains(&needle));
        on_line || above
    }

    /// `// analysis:allow-file(<rule>): reason` on any comment line.
    fn file_allows(&self, file: usize, rule: &str) -> bool {
        let needle = format!("analysis:allow-file({rule})");
        self.lines[file]
            .iter()
            .any(|l| l.trim_start().starts_with("//") && l.contains(&needle))
    }

    /// Scans comment/attribute lines directly above a fn definition.
    fn fn_annotations(&self, def: &FnDef) -> FnAnnotations {
        let mut out = FnAnnotations::default();
        let lines = &self.lines[def.file];
        let mut i = def.line as usize; // def.line is 1-based; start above it
        while i >= 2 {
            i -= 1;
            let l = lines[i - 1].trim_start();
            if !(l.starts_with("//") || l.starts_with("#[") || l.starts_with("pub")) {
                break;
            }
            if l.starts_with("//") {
                if l.contains("analysis:setup") {
                    out.setup = true;
                }
                if let Some(pos) = l.find("lint:allow(") {
                    let rest = &l[pos + "lint:allow(".len()..];
                    if let Some(end) = rest.find(')') {
                        out.allowed.push(rest[..end].to_string());
                    }
                }
            }
        }
        out
    }

    /// Allow status for a finding produced outside the traversal path
    /// (lock rule): site-level, enclosing-fn-level, or file-level.
    fn finding_allowed(&self, f: &AnalysisFinding, annos: &[FnAnnotations]) -> bool {
        let Some(file) = self.paths.iter().position(|p| *p == f.file) else {
            return false;
        };
        if self.site_allowed(file, f.line, f.rule) || self.file_allows(file, f.rule) {
            return true;
        }
        // Enclosing fn: the definition with the greatest line <= finding
        // line in the same file.
        let mut best: Option<usize> = None;
        for (id, node) in self.graph.fns.iter().enumerate() {
            if node.def.file == file
                && node.def.line <= f.line
                && best.is_none_or(|b| self.graph.fns[b].def.line < node.def.line)
            {
                best = Some(id);
            }
        }
        best.is_some_and(|id| annos[id].allowed.iter().any(|r| r == f.rule))
    }

    /// Resolved qualified names for a root spec — used by drivers to
    /// report roots that fail to resolve (e.g. after a rename).
    pub fn resolve_root(&self, spec: &str) -> Vec<String> {
        self.graph
            .roots(spec)
            .into_iter()
            .map(|id| self.graph.fns[id].def.qualified())
            .collect()
    }
}

/// Maps fn-annotation lookups used in tests and drivers.
#[derive(Debug, Default)]
pub struct RuleCounts {
    /// Active (non-allowed) findings per rule.
    pub active: HashMap<String, usize>,
    /// Allowed findings per rule.
    pub allowed: HashMap<String, usize>,
}

/// Tallies findings per rule into active/allowed counts.
pub fn count_by_rule(findings: &[AnalysisFinding]) -> RuleCounts {
    let mut c = RuleCounts::default();
    for f in findings {
        let m = if f.allowed {
            &mut c.allowed
        } else {
            &mut c.active
        };
        *m.entry(f.rule.to_string()).or_insert(0) += 1;
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::from_sources(
            files
                .iter()
                .map(|(p, c)| (p.to_string(), c.to_string()))
                .collect(),
        )
    }

    #[test]
    fn cross_file_witness_has_per_hop_locations() {
        let w = ws(&[
            ("crates/a/src/lib.rs", "pub fn root() { crate::mid(); }\n"),
            ("crates/a/src/mid.rs", "pub fn mid() { other::leaf(9); }\n"),
            (
                "crates/b/src/lib.rs",
                "pub fn leaf(i: usize) { let v = [1, 2]; let _ = v[i]; }\n",
            ),
        ]);
        let cfg = RuleConfig {
            panic_roots: vec!["root".into()],
            ..RuleConfig::default()
        };
        let findings = w.analyze(&cfg);
        let f = findings
            .iter()
            .find(|f| f.rule == RULE_PANIC)
            .expect("index site reachable from root");
        assert!(f.witness.contains("root -> mid [crates/a/src/lib.rs:1]"));
        assert!(f.witness.contains("leaf [crates/a/src/mid.rs:1]"));
        assert!(f.witness.contains("crates/b/src/lib.rs:1"));
    }

    #[test]
    fn setup_annotation_prunes_alloc_traversal() {
        let w = ws(&[(
            "src/lib.rs",
            "pub fn decide() { warmup(); steady(); }\n\
             // analysis:setup: one-time model warmup, not steady state\n\
             fn warmup() { let v = Vec::with_capacity(64); }\n\
             fn steady() { let x = 1 + 1; }\n",
        )]);
        let cfg = RuleConfig {
            alloc_roots: vec!["decide".into()],
            ..RuleConfig::default()
        };
        let findings = w.analyze(&cfg);
        assert!(
            findings.iter().all(|f| f.rule != RULE_ALLOC),
            "setup fn must be pruned, got: {findings:?}"
        );
    }

    #[test]
    fn allow_annotations_mark_but_keep_findings() {
        let w = ws(&[(
            "src/lib.rs",
            "pub fn decide(x: Option<u8>) {\n\
                 // lint:allow(panic-free-control-path): invariant upheld by caller\n\
                 x.unwrap();\n\
             }\n",
        )]);
        let cfg = RuleConfig {
            panic_roots: vec!["decide".into()],
            ..RuleConfig::default()
        };
        let findings = w.analyze(&cfg);
        let f = findings.iter().find(|f| f.rule == RULE_PANIC).unwrap();
        assert!(f.allowed);
    }

    #[test]
    fn file_level_allow_covers_whole_file() {
        let w = ws(&[(
            "src/dense.rs",
            "// analysis:allow-file(panic-free-control-path): dense kernel, bounds proven\n\
             pub fn decide(v: &[f64]) { let _ = v[0]; }\n",
        )]);
        let cfg = RuleConfig {
            panic_roots: vec!["decide".into()],
            ..RuleConfig::default()
        };
        let findings = w.analyze(&cfg);
        assert!(findings.iter().all(|f| f.allowed), "got: {findings:?}");
    }

    #[test]
    fn count_by_rule_splits_active_and_allowed() {
        let findings = vec![
            AnalysisFinding {
                rule: RULE_PANIC,
                file: "a.rs".into(),
                line: 1,
                message: "x".into(),
                witness: "w".into(),
                allowed: false,
            },
            AnalysisFinding {
                rule: RULE_PANIC,
                file: "a.rs".into(),
                line: 2,
                message: "y".into(),
                witness: "w".into(),
                allowed: true,
            },
        ];
        let c = count_by_rule(&findings);
        assert_eq!(c.active.get(RULE_PANIC), Some(&1));
        assert_eq!(c.allowed.get(RULE_PANIC), Some(&1));
    }

    #[test]
    fn resolve_root_reports_qualified_names() {
        let w = ws(&[(
            "src/lib.rs",
            "struct C;\nimpl C { pub fn decide(&self) {} }\n",
        )]);
        assert_eq!(w.resolve_root("C::decide"), vec!["C::decide".to_string()]);
        assert!(w.resolve_root("C::step").is_empty());
    }
}
