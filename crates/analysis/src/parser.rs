//! Item extraction: walks a file's token stream and records every `fn`
//! (free, inherent, or trait-impl), every `macro_rules!` definition, and
//! the scopes they live in — enough structure to build a workspace call
//! graph without a real AST.

use crate::lexer::{Token, TokenKind};

/// One function (or `macro_rules!` macro, treated as a callable) found
/// in a file.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare name (`decide`, `optimize_batched`, `counter!` for macros).
    pub name: String,
    /// Self type of the enclosing `impl` block, when there is one.
    pub impl_type: Option<String>,
    /// Index of the owning file in the workspace file list.
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range of the body, including both braces. Empty for
    /// bodyless trait-method declarations.
    pub body: (usize, usize),
    /// Token ranges of nested `fn` bodies inside this body; call
    /// extraction skips them (they are separate [`FnDef`]s).
    pub nested: Vec<(usize, usize)>,
    /// True inside `#[cfg(test)]` scopes or under a `#[test]` attribute.
    pub is_test: bool,
    /// Signature text between `fn` and the body brace (return-type guard
    /// detection for lock-order analysis).
    pub signature: String,
}

impl FnDef {
    /// `Type::name` when inside an impl, else the bare name.
    pub fn qualified(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }

    /// True when the return type names a lock guard (`MutexGuard`,
    /// `RwLockReadGuard`, …) — callers of this fn acquire the lock.
    pub fn returns_guard(&self) -> bool {
        self.signature.contains("Guard")
    }
}

/// What kind of scope a `{` opened.
#[derive(Debug, Clone)]
enum Scope {
    /// `impl Type { … }` — holds the self-type name and test flag.
    Impl(String, bool),
    /// Any other block (`mod`, fn body, expression block, …) with its
    /// test flag.
    Block(bool),
}

/// Parses the token stream of one file into its function definitions.
/// `file` is the caller's index for this file.
pub fn parse_fns(tokens: &[Token], file: usize) -> Vec<FnDef> {
    let mut out: Vec<FnDef> = Vec::new();
    let mut scopes: Vec<Scope> = Vec::new();
    // Pending item context, applied when its `{` arrives.
    let mut pending: Option<Scope> = None;
    // Attribute state for the *next* item.
    let mut next_is_test = false;
    // Open fn definitions waiting for their body to close:
    // (out-index, brace-depth-at-open).
    let mut open_fns: Vec<(usize, usize)> = Vec::new();

    let sig_tokens = |toks: &[Token]| -> String {
        let mut s = String::new();
        for t in toks {
            if t.kind != TokenKind::Comment {
                s.push_str(&t.text);
                s.push(' ');
            }
        }
        s
    };

    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        match t.kind {
            TokenKind::Comment => {
                i += 1;
                continue;
            }
            TokenKind::Punct if t.text == "#" => {
                // Attribute: `#[ … ]` (or inner `#![ … ]`). Scan the
                // bracket group and look for cfg(test) / test markers.
                let mut j = i + 1;
                if j < tokens.len() && tokens[j].is_punct('!') {
                    j += 1;
                }
                if j < tokens.len() && tokens[j].is_punct('[') {
                    let mut depth = 0usize;
                    let start = j;
                    while j < tokens.len() {
                        if tokens[j].is_punct('[') {
                            depth += 1;
                        } else if tokens[j].is_punct(']') {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        j += 1;
                    }
                    let attr = sig_tokens(&tokens[start..=j.min(tokens.len() - 1)]);
                    if attr.contains("cfg ( test")
                        || attr.contains("[ test ]")
                        || attr.contains("cfg_attr ( test")
                    {
                        next_is_test = true;
                    }
                    i = j + 1;
                    continue;
                }
                i += 1;
            }
            TokenKind::Ident => {
                let in_test = next_is_test
                    || scopes
                        .iter()
                        .any(|s| matches!(s, Scope::Impl(_, true) | Scope::Block(true)));
                match t.text.as_str() {
                    "impl" => {
                        // Capture the self type: tokens up to the `{`
                        // (or `;`), taking the path after `for` when
                        // present, else the first path after generics.
                        let mut j = i + 1;
                        let mut angle = 0i32;
                        let mut after_for: Option<usize> = None;
                        while j < tokens.len() {
                            let tj = &tokens[j];
                            if tj.is_punct('{') || tj.is_punct(';') {
                                break;
                            }
                            if tj.is_punct('<') {
                                angle += 1;
                            } else if tj.is_punct('>') {
                                angle -= 1;
                            } else if angle == 0 && tj.is_ident("for") {
                                after_for = Some(j + 1);
                            }
                            j += 1;
                        }
                        let ty_range = match after_for {
                            Some(s) => &tokens[s..j],
                            None => &tokens[i + 1..j],
                        };
                        let ty = self_type_name(ty_range);
                        pending = Some(Scope::Impl(ty, in_test));
                        next_is_test = false;
                        i = j; // land on `{` or `;`
                        continue;
                    }
                    "mod" | "trait" => {
                        pending = Some(Scope::Block(in_test));
                        next_is_test = false;
                        i += 1;
                        continue;
                    }
                    "fn" => {
                        let name = match tokens.get(i + 1) {
                            Some(n) if n.kind == TokenKind::Ident => n.text.clone(),
                            _ => {
                                i += 1;
                                continue;
                            }
                        };
                        // Scan the signature to the body `{` or a `;`
                        // (trait declaration). Braces cannot appear in
                        // the signatures this workspace writes.
                        let mut j = i + 2;
                        let mut paren = 0i32;
                        while j < tokens.len() {
                            let tj = &tokens[j];
                            if tj.is_punct('(') {
                                paren += 1;
                            } else if tj.is_punct(')') {
                                paren -= 1;
                            } else if paren == 0 && (tj.is_punct('{') || tj.is_punct(';')) {
                                break;
                            }
                            j += 1;
                        }
                        let impl_type = scopes.iter().rev().find_map(|s| match s {
                            Scope::Impl(ty, _) => Some(ty.clone()),
                            Scope::Block(_) => None,
                        });
                        let def = FnDef {
                            name,
                            impl_type,
                            file,
                            line: t.line,
                            body: (j, j), // patched when the body closes
                            nested: Vec::new(),
                            is_test: in_test,
                            signature: sig_tokens(&tokens[i..j.min(tokens.len())]),
                        };
                        next_is_test = false;
                        if j < tokens.len() && tokens[j].is_punct('{') {
                            out.push(def);
                            open_fns.push((out.len() - 1, scopes.len()));
                            // The `{` at j is consumed as this fn's body
                            // opener.
                            scopes.push(Scope::Block(in_test));
                            i = j + 1;
                            continue;
                        }
                        // Bodyless declaration: keep it (trait methods
                        // resolve to their impls anyway), empty body.
                        out.push(def);
                        i = j + 1;
                        continue;
                    }
                    "macro_rules" => {
                        // `macro_rules! name { … }` — record as callable
                        // `name!` whose body is the rule block.
                        if let (Some(bang), Some(nm)) = (tokens.get(i + 1), tokens.get(i + 2)) {
                            if bang.is_punct('!') && nm.kind == TokenKind::Ident {
                                let mut j = i + 3;
                                while j < tokens.len() && !tokens[j].is_punct('{') {
                                    j += 1;
                                }
                                out.push(FnDef {
                                    name: format!("{}!", nm.text),
                                    impl_type: None,
                                    file,
                                    line: t.line,
                                    body: (j, j),
                                    nested: Vec::new(),
                                    is_test: in_test,
                                    signature: String::new(),
                                });
                                open_fns.push((out.len() - 1, scopes.len()));
                                scopes.push(Scope::Block(in_test));
                                next_is_test = false;
                                i = j + 1;
                                continue;
                            }
                        }
                        i += 1;
                        continue;
                    }
                    _ => {
                        i += 1;
                        continue;
                    }
                }
            }
            TokenKind::Punct if t.text == "{" => {
                let scope = pending.take().unwrap_or_else(|| {
                    Scope::Block(
                        next_is_test
                            || scopes
                                .iter()
                                .any(|s| matches!(s, Scope::Impl(_, true) | Scope::Block(true))),
                    )
                });
                next_is_test = false;
                scopes.push(scope);
                i += 1;
            }
            TokenKind::Punct if t.text == "}" => {
                scopes.pop();
                // Close any fn whose body opened at this depth.
                if let Some(&(fx, depth)) = open_fns.last() {
                    if scopes.len() == depth {
                        open_fns.pop();
                        let (start, _) = out[fx].body;
                        out[fx].body = (start, i + 1);
                        // Record this span as nested inside the enclosing
                        // open fn, if any.
                        if let Some(&(outer, _)) = open_fns.last() {
                            out[outer].nested.push((start, i + 1));
                        }
                    }
                }
                i += 1;
            }
            TokenKind::Punct if t.text == ";" => {
                // `mod foo;` / `impl … ;` never materialize their scope.
                pending = None;
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }
    out
}

/// Last meaningful path segment of a type: `Foo`, `sim::Testbed` ->
/// `Testbed`, `Vec<f64>` -> `Vec`, `&mut Supervisor` -> `Supervisor`.
fn self_type_name(tokens: &[Token]) -> String {
    let mut last = String::new();
    let mut angle = 0i32;
    for t in tokens {
        match t.kind {
            TokenKind::Punct if t.text == "<" => angle += 1,
            TokenKind::Punct if t.text == ">" => angle -= 1,
            TokenKind::Ident if angle == 0 && t.text != "dyn" && t.text != "mut" => {
                last = t.text.clone();
            }
            _ => {}
        }
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<FnDef> {
        parse_fns(&lex(src), 0)
    }

    #[test]
    fn free_fn_and_method() {
        let defs = parse(
            "fn free() { helper(); }\n\
             impl Foo { pub fn method(&self) -> u32 { 1 } }\n",
        );
        assert_eq!(defs.len(), 2);
        assert_eq!(defs[0].qualified(), "free");
        assert_eq!(defs[1].qualified(), "Foo::method");
        assert!(!defs[0].is_test);
    }

    #[test]
    fn trait_impl_binds_to_self_type() {
        let defs = parse("impl Controller for TeslaController { fn decide(&mut self) {} }");
        assert_eq!(defs[0].qualified(), "TeslaController::decide");
    }

    #[test]
    fn generic_impl_type() {
        let defs = parse("impl<T: Clone> Queue<T> { fn push(&self, t: T) {} }");
        assert_eq!(defs[0].qualified(), "Queue::push");
    }

    #[test]
    fn cfg_test_mod_marks_fns() {
        let defs = parse(
            "fn live() {}\n\
             #[cfg(test)]\nmod tests { fn helper() {} #[test] fn case() {} }\n",
        );
        assert_eq!(defs.len(), 3);
        assert!(!defs[0].is_test);
        assert!(defs[1].is_test);
        assert!(defs[2].is_test);
    }

    #[test]
    fn test_attr_marks_single_fn() {
        let defs = parse("#[test]\nfn case() {}\nfn live() {}");
        assert!(defs[0].is_test);
        assert!(!defs[1].is_test);
    }

    #[test]
    fn nested_fn_ranges_are_recorded() {
        let defs = parse("fn outer() { fn inner() { x(); } inner(); }");
        assert_eq!(defs.len(), 2);
        let outer = defs.iter().find(|d| d.name == "outer").unwrap();
        let inner = defs.iter().find(|d| d.name == "inner").unwrap();
        assert_eq!(outer.nested.len(), 1);
        assert_eq!(outer.nested[0], inner.body);
    }

    #[test]
    fn bodyless_trait_method() {
        let defs = parse("trait C { fn decide(&mut self) -> f64; }\nfn after() {}");
        assert_eq!(defs.len(), 2);
        assert_eq!(defs[0].body.0, defs[0].body.1);
        assert_eq!(defs[1].name, "after");
    }

    #[test]
    fn macro_rules_is_a_callable() {
        let defs = parse("macro_rules! counter { ($n:expr) => { reg().counter($n) }; }");
        assert_eq!(defs[0].name, "counter!");
        assert!(defs[0].body.1 > defs[0].body.0);
    }

    #[test]
    fn guard_returning_signature() {
        let defs =
            parse("impl S { fn lock_shard(&self) -> MutexGuard<'_, Shard> { self.m.lock() } }");
        assert!(defs[0].returns_guard());
    }

    #[test]
    fn where_clause_signature() {
        let defs = parse("fn go<F>(f: F) -> u32 where F: Fn(u32) -> u32 { f(1) }");
        assert_eq!(defs.len(), 1);
        assert_eq!(defs[0].name, "go");
        assert!(defs[0].body.1 > defs[0].body.0);
    }
}
