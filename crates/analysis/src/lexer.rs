//! A minimal Rust lexer: enough fidelity to find items, calls, and
//! panic/alloc/blocking sites, with zero dependencies.
//!
//! The token stream is *lossless modulo whitespace*: concatenating the
//! `text` of every token (comments included) reproduces the input with
//! only whitespace removed. A property test in this crate holds the
//! round-trip invariant over generated token soup.

/// Lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident,
    /// Lifetime such as `'a` (without a closing quote).
    Lifetime,
    /// Numeric literal, including suffix (`1_000u64`, `0x1f`, `1.5e-3`).
    Number,
    /// String literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"` variants.
    Str,
    /// Character or byte literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// Single punctuation character (`::` is two `:` tokens).
    Punct,
    /// Line or block comment, kept so annotations stay visible.
    Comment,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Exact source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Token {
    /// True when this token is the single punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }

    /// True when this token is the identifier/keyword `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }
}

/// Lexes `src` into tokens. Unexpected bytes become one-char `Punct`
/// tokens — the lexer never fails, so a half-written file still yields a
/// usable (if partial) token stream.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.char_indices().collect(),
        src,
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    chars: Vec<(usize, char)>,
    src: &'a str,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    fn byte_at(&self, idx: usize) -> usize {
        self.chars
            .get(idx)
            .map(|&(b, _)| b)
            .unwrap_or(self.src.len())
    }

    /// Consumes chars `[start, end)` (char indices) as one token.
    fn push(&mut self, kind: TokenKind, start: usize, end: usize) {
        let text = self.src[self.byte_at(start)..self.byte_at(end)].to_string();
        let line = self.line;
        self.line += text.matches('\n').count() as u32;
        self.out.push(Token { kind, text, line });
        self.pos = end;
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let start = self.pos;
            match c {
                ' ' | '\t' | '\r' => self.pos += 1,
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                '/' if self.peek(1) == Some('/') => {
                    let mut end = start;
                    while self.peek(end - start).is_some_and(|c| c != '\n') {
                        end += 1;
                    }
                    self.push(TokenKind::Comment, start, end);
                }
                '/' if self.peek(1) == Some('*') => {
                    let mut depth = 0usize;
                    let mut end = start;
                    loop {
                        match (self.peek(end - start), self.peek(end - start + 1)) {
                            (Some('/'), Some('*')) => {
                                depth += 1;
                                end += 2;
                            }
                            (Some('*'), Some('/')) => {
                                depth -= 1;
                                end += 2;
                                if depth == 0 {
                                    break;
                                }
                            }
                            (Some(_), _) => end += 1,
                            (None, _) => break,
                        }
                    }
                    self.push(TokenKind::Comment, start, end);
                }
                '"' => self.lex_string(start),
                'r' | 'b' if self.is_raw_or_byte_literal() => self.lex_prefixed_literal(start),
                '\'' => self.lex_quote(start),
                c if c.is_ascii_digit() => self.lex_number(start),
                c if c.is_alphabetic() || c == '_' => {
                    let mut end = start;
                    while self
                        .peek(end - start)
                        .is_some_and(|c| c.is_alphanumeric() || c == '_')
                    {
                        end += 1;
                    }
                    self.push(TokenKind::Ident, start, end);
                }
                _ => self.push(TokenKind::Punct, start, start + 1),
            }
        }
        self.out
    }

    /// True at an `r`/`b` that starts a raw string, byte string, raw
    /// identifier, or byte char — anything other than a plain identifier.
    fn is_raw_or_byte_literal(&self) -> bool {
        match (self.peek(0), self.peek(1)) {
            (Some('r'), Some('"')) | (Some('b'), Some('"')) | (Some('b'), Some('\'')) => true,
            (Some('r'), Some('#')) => {
                // `r#"…"#` raw string or `r#ident` raw identifier.
                true
            }
            (Some('b'), Some('r')) => matches!(self.peek(2), Some('"') | Some('#')),
            _ => false,
        }
    }

    /// Lexes `r"…"`, `r#…#`, `b"…"`, `br#"…"#`, `b'…'`, `r#ident`.
    fn lex_prefixed_literal(&mut self, start: usize) {
        let mut i = start;
        if self.peek(i - start) == Some('b') {
            i += 1;
        }
        if self.peek(i - start) == Some('\'') {
            // Byte char `b'x'`.
            self.lex_quote_at(start, i);
            return;
        }
        let mut raw = false;
        if self.peek(i - start) == Some('r') {
            raw = true;
            i += 1;
        }
        let mut hashes = 0usize;
        while self.peek(i - start) == Some('#') {
            hashes += 1;
            i += 1;
        }
        if raw && hashes > 0 && self.peek(i - start) != Some('"') {
            // Raw identifier `r#type`.
            let mut end = i;
            while self
                .peek(end - start)
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                end += 1;
            }
            self.push(TokenKind::Ident, start, end);
            return;
        }
        // String body: for raw strings scan to `"` + hashes, otherwise
        // handle escapes.
        debug_assert_eq!(self.peek(i - start), Some('"'));
        i += 1; // past the opening quote
        loop {
            match self.peek(i - start) {
                None => break,
                Some('\\') if !raw => i += 2,
                Some('"') => {
                    let mut h = 0;
                    while h < hashes && self.peek(i - start + 1 + h) == Some('#') {
                        h += 1;
                    }
                    if h == hashes {
                        i += 1 + hashes;
                        break;
                    }
                    i += 1;
                }
                Some(_) => i += 1,
            }
        }
        self.push(TokenKind::Str, start, i);
    }

    /// Lexes a plain `"…"` string starting at char index `start`.
    fn lex_string(&mut self, start: usize) {
        let mut i = start + 1;
        loop {
            match self.peek(i - start) {
                None => break,
                Some('\\') => i += 2,
                Some('"') => {
                    i += 1;
                    break;
                }
                Some(_) => i += 1,
            }
        }
        self.push(TokenKind::Str, start, i);
    }

    /// Disambiguates `'a` (lifetime) from `'a'` / `'\n'` (char literal).
    fn lex_quote(&mut self, start: usize) {
        self.lex_quote_at(start, start);
    }

    /// `quote` is the char index of the `'`; `start` may precede it for
    /// byte chars (`b'x'`).
    fn lex_quote_at(&mut self, start: usize, quote: usize) {
        let after = quote + 1 - start;
        match self.peek(after) {
            Some('\\') => {
                // Escaped char literal: skip quote + backslash + escaped
                // char, then scan to the closing quote (handles `'\u{1F}'`
                // and `'\''`).
                let mut i = quote + 3;
                while self.peek(i - start).is_some_and(|c| c != '\'') {
                    i += 1;
                }
                let end = if self.peek(i - start).is_some() {
                    i + 1
                } else {
                    i
                };
                self.push(TokenKind::Char, start, end);
            }
            Some(c) if c.is_alphanumeric() || c == '_' => {
                if self.peek(after + 1) == Some('\'') {
                    // 'x'
                    self.push(TokenKind::Char, start, quote + 3);
                } else {
                    // Lifetime 'ident
                    let mut i = quote + 1;
                    while self
                        .peek(i - start)
                        .is_some_and(|c| c.is_alphanumeric() || c == '_')
                    {
                        i += 1;
                    }
                    self.push(TokenKind::Lifetime, start, i);
                }
            }
            Some(_) if self.peek(after + 1) == Some('\'') => {
                // Punctuation char like '{'.
                self.push(TokenKind::Char, start, quote + 3);
            }
            _ => self.push(TokenKind::Punct, start, quote + 1),
        }
    }

    /// Numbers: decimal, hex/oct/bin, floats with exponent, suffixes.
    fn lex_number(&mut self, start: usize) {
        let mut i = start;
        let radix_prefix = matches!(
            (self.peek(0), self.peek(1)),
            (Some('0'), Some('x')) | (Some('0'), Some('o')) | (Some('0'), Some('b'))
        );
        if radix_prefix {
            i += 2;
            while self
                .peek(i - start)
                .is_some_and(|c| c.is_ascii_hexdigit() || c == '_')
            {
                i += 1;
            }
        } else {
            while self
                .peek(i - start)
                .is_some_and(|c| c.is_ascii_digit() || c == '_')
            {
                i += 1;
            }
            // Fractional part: `.` followed by a digit (so `0..10` stays
            // three tokens).
            if self.peek(i - start) == Some('.')
                && self.peek(i - start + 1).is_some_and(|c| c.is_ascii_digit())
            {
                i += 1;
                while self
                    .peek(i - start)
                    .is_some_and(|c| c.is_ascii_digit() || c == '_')
                {
                    i += 1;
                }
            }
            // Exponent: e[+-]?digits.
            if matches!(self.peek(i - start), Some('e') | Some('E'))
                && (self.peek(i - start + 1).is_some_and(|c| c.is_ascii_digit())
                    || (matches!(self.peek(i - start + 1), Some('+') | Some('-'))
                        && self.peek(i - start + 2).is_some_and(|c| c.is_ascii_digit())))
            {
                i += 2;
                while self
                    .peek(i - start)
                    .is_some_and(|c| c.is_ascii_digit() || c == '_')
                {
                    i += 1;
                }
            }
        }
        // Type suffix (`u64`, `f32`, `usize`).
        while self
            .peek(i - start)
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            i += 1;
        }
        self.push(TokenKind::Number, start, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        assert_eq!(
            texts("fn foo(x: u64) -> f64 { x as f64 * 1.5e-3 }"),
            vec![
                "fn", "foo", "(", "x", ":", "u64", ")", "-", ">", "f64", "{", "x", "as", "f64",
                "*", "1.5e-3", "}"
            ]
        );
    }

    #[test]
    fn range_is_not_a_float() {
        assert_eq!(texts("0..10"), vec!["0", ".", ".", "10"]);
        assert_eq!(texts("1.5..2.5"), vec!["1.5", ".", ".", "2.5"]);
    }

    #[test]
    fn lifetime_vs_char() {
        assert_eq!(
            texts("'a: 'b, 'x', '\\n'"),
            vec!["'a", ":", "'b", ",", "'x'", ",", "'\\n'"]
        );
        assert_eq!(lex("'a")[0].kind, TokenKind::Lifetime);
        assert_eq!(lex("'a'")[0].kind, TokenKind::Char);
        assert_eq!(lex("'{'")[0].kind, TokenKind::Char);
    }

    #[test]
    fn strings_and_raw_strings() {
        assert_eq!(texts(r#""a { b" + x"#), vec![r#""a { b""#, "+", "x"]);
        assert_eq!(
            texts(r##"r#"raw " str"# y"##),
            vec![r##"r#"raw " str"#"##, "y"]
        );
        assert_eq!(texts(r#"b"bytes" z"#), vec![r#"b"bytes""#, "z"]);
        assert_eq!(lex(r#""esc \" ape""#).len(), 1);
    }

    #[test]
    fn comments_are_tokens() {
        let toks = lex("x // trailing { brace\ny");
        assert_eq!(toks[1].kind, TokenKind::Comment);
        assert_eq!(toks[2].text, "y");
        assert_eq!(toks[2].line, 2);
        let toks = lex("a /* block\n comment */ b");
        assert_eq!(toks[1].kind, TokenKind::Comment);
        assert_eq!(toks[2].line, 2);
    }

    #[test]
    fn nested_block_comment() {
        let toks = lex("a /* outer /* inner */ still */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[2].text, "b");
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n  c");
        assert_eq!(toks.iter().map(|t| t.line).collect::<Vec<_>>(), [1, 2, 3]);
    }

    #[test]
    fn hex_and_suffixes() {
        assert_eq!(
            texts("0xFF_u32 1_000u64 2usize"),
            vec!["0xFF_u32", "1_000u64", "2usize"]
        );
    }

    #[test]
    fn raw_identifier() {
        assert_eq!(texts("r#type x"), vec!["r#type", "x"]);
        assert_eq!(lex("r#type")[0].kind, TokenKind::Ident);
    }

    #[test]
    fn roundtrip_modulo_whitespace() {
        let src = r#"
        impl Foo<'a> {
            /// doc comment { with brace
            pub fn bar(&self, xs: &[f64]) -> Vec<f64> {
                let s = "lit ] with ) stuff";
                xs.iter().map(|x| x * 2.0).collect() // note
            }
        }
        "#;
        let strip = |s: &str| s.chars().filter(|c| !c.is_whitespace()).collect::<String>();
        let joined: String = lex(src).iter().map(|t| t.text.as_str()).collect();
        assert_eq!(strip(&joined), strip(src));
    }
}
