//! Append-only time series with window queries.

/// A single metric's history: parallel `(time, value)` columns, appended
/// in nondecreasing time order.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    times: Vec<f64>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample. Panics (debug) if time goes backwards.
    pub fn push(&mut self, time_s: f64, value: f64) {
        debug_assert!(
            self.times.last().is_none_or(|&t| time_s >= t),
            "time went backwards: {} after {:?}",
            time_s,
            self.times.last()
        );
        self.times.push(time_s);
        self.values.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when no samples are stored.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// All values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// All timestamps.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The most recent `n` values, oldest first. Returns fewer if the
    /// series is shorter than `n`.
    pub fn last_n(&self, n: usize) -> &[f64] {
        let start = self.values.len().saturating_sub(n);
        &self.values[start..]
    }

    /// The most recent value, if any.
    pub fn last(&self) -> Option<f64> {
        self.values.last().copied()
    }

    /// Values with `t0 <= time < t1` (binary search on the time column).
    ///
    /// The window is empty — never a panic — for a NaN bound or an
    /// empty/reversed interval. Without the guard, `t1 = NaN` makes
    /// every `t < t1` comparison false, so `hi = 0` while `lo` can be
    /// positive, and `&values[lo..hi]` is a backwards slice.
    pub fn range(&self, t0: f64, t1: f64) -> &[f64] {
        if t0.is_nan() || t1.is_nan() || t0 >= t1 {
            return &[];
        }
        let lo = self.times.partition_point(|&t| t < t0);
        let hi = self.times.partition_point(|&t| t < t1);
        &self.values[lo..hi]
    }

    /// Trapezoidal integral of the series over its full span, in
    /// value·seconds. The paper computes cooling *energy* from the
    /// instantaneous ACU power trace by numerical integration (§3.2).
    pub fn integrate(&self) -> f64 {
        if self.len() < 2 {
            return 0.0;
        }
        let mut acc = 0.0;
        for i in 1..self.len() {
            let dt = self.times[i] - self.times[i - 1];
            acc += 0.5 * (self.values[i] + self.values[i - 1]) * dt;
        }
        acc
    }
}

/// Trapezoidal integration of an arbitrary `(time, value)` pair of slices,
/// exposed for energy computation over prediction windows.
pub fn trapezoid(times: &[f64], values: &[f64]) -> f64 {
    assert_eq!(times.len(), values.len());
    if times.len() < 2 {
        return 0.0;
    }
    let mut acc = 0.0;
    for i in 1..times.len() {
        acc += 0.5 * (values[i] + values[i - 1]) * (times[i] - times[i - 1]);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(vals: &[f64]) -> TimeSeries {
        let mut s = TimeSeries::new();
        for (i, &v) in vals.iter().enumerate() {
            s.push(i as f64 * 60.0, v);
        }
        s
    }

    #[test]
    fn push_and_len() {
        let s = series(&[1.0, 2.0, 3.0]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.last(), Some(3.0));
    }

    #[test]
    fn last_n_returns_suffix_oldest_first() {
        let s = series(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.last_n(2), &[3.0, 4.0]);
        assert_eq!(s.last_n(10), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.last_n(0), &[] as &[f64]);
    }

    #[test]
    fn range_is_half_open() {
        let s = series(&[10.0, 20.0, 30.0, 40.0]); // times 0, 60, 120, 180
        assert_eq!(s.range(60.0, 180.0), &[20.0, 30.0]);
        assert_eq!(s.range(0.0, 1e9), &[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(s.range(200.0, 300.0), &[] as &[f64]);
    }

    #[test]
    fn range_exact_boundaries_include_start_exclude_end() {
        let s = series(&[10.0, 20.0, 30.0, 40.0]); // times 0, 60, 120, 180
                                                   // A sample exactly at t0 is included; exactly at t1 is not.
        assert_eq!(s.range(0.0, 60.0), &[10.0]);
        assert_eq!(s.range(180.0, 181.0), &[40.0]);
        assert_eq!(s.range(180.0, 180.5), &[40.0]);
        // Degenerate window [t, t) is empty even on a sample time.
        assert_eq!(s.range(60.0, 60.0), &[] as &[f64]);
    }

    #[test]
    fn range_nan_and_reversed_bounds_are_empty_not_panic() {
        let s = series(&[10.0, 20.0, 30.0, 40.0]);
        // Regression: NaN t1 used to produce hi=0 with lo>0 and panic
        // on the backwards slice.
        assert_eq!(s.range(60.0, f64::NAN), &[] as &[f64]);
        assert_eq!(s.range(f64::NAN, 60.0), &[] as &[f64]);
        assert_eq!(s.range(f64::NAN, f64::NAN), &[] as &[f64]);
        assert_eq!(s.range(120.0, 60.0), &[] as &[f64]);
    }

    #[test]
    fn integrate_constant_series() {
        // 2.0 kW for 3 minutes = 360 kW·s.
        let s = series(&[2.0, 2.0, 2.0, 2.0]);
        assert!((s.integrate() - 2.0 * 180.0).abs() < 1e-9);
    }

    #[test]
    fn integrate_ramp() {
        // Ramp 0→2 over 60 s: integral = 60.
        let mut s = TimeSeries::new();
        s.push(0.0, 0.0);
        s.push(60.0, 2.0);
        assert!((s.integrate() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn integrate_needs_two_points() {
        assert_eq!(TimeSeries::new().integrate(), 0.0);
        assert_eq!(series(&[5.0]).integrate(), 0.0);
    }

    #[test]
    fn trapezoid_free_function_matches_series() {
        let s = series(&[1.0, 3.0, 2.0]);
        assert!((trapezoid(s.times(), s.values()) - s.integrate()).abs() < 1e-12);
    }
}
