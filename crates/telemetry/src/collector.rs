//! The Telegraf stand-in: fans a simulator observation out into the store
//! under stable metric names.

// analysis:allow-file(no-alloc-in-decide-steady-state): snapshot
// assembly builds the per-minute observation batch (one Vec per
// sensor column, bounded by zone/ACU counts).
use tesla_historian::MetricStore;
use tesla_sim::Observation;

/// Metric-name helpers. Names are stable across the workspace: the
/// forecaster and controllers query the store with these.
pub mod metric {
    /// ACU instantaneous electrical power, kW.
    pub const ACU_POWER: &str = "acu.power_kw";
    /// ACU energy over the last sampling period, kWh.
    pub const ACU_ENERGY: &str = "acu.energy_kwh";
    /// Executed set-point, °C.
    pub const SETPOINT: &str = "acu.setpoint_c";
    /// Compressor duty.
    pub const DUTY: &str = "acu.duty";
    /// Supply-air temperature, °C.
    pub const SUPPLY: &str = "acu.supply_c";
    /// Fraction of the period spent in cooling interruption.
    pub const INTERRUPTED: &str = "acu.interrupted_frac";
    /// Average per-server power, kW.
    pub const AVG_SERVER_POWER: &str = "server.avg_power_kw";
    /// Max cold-aisle sensor reading, °C.
    pub const COLD_AISLE_MAX: &str = "dc.cold_aisle_max_c";

    /// ACU inlet sensor `n`, °C.
    pub fn acu_inlet(n: usize) -> String {
        format!("acu.inlet_c.{n}")
    }

    /// Rack sensor `n`, °C.
    pub fn dc_temp(n: usize) -> String {
        format!("dc.temp_c.{n}")
    }

    /// Server `n` electrical power, kW.
    pub fn server_power(n: usize) -> String {
        format!("server.power_kw.{n}")
    }

    /// Server `n` CPU utilization.
    pub fn server_cpu(n: usize) -> String {
        format!("server.cpu.{n}")
    }

    /// Server `n` memory utilization.
    pub fn server_mem(n: usize) -> String {
        format!("server.mem.{n}")
    }
}

/// Collects observations into any [`MetricStore`] backend — the in-RAM
/// [`crate::TsdbStore`] or the durable `tesla_historian::Historian`.
#[derive(Debug, Default)]
pub struct Collector;

impl Collector {
    /// Writes every signal of `obs` into `store`, timestamped with the
    /// observation's simulation time.
    pub fn collect(store: &dyn MetricStore, obs: &Observation) {
        let t = obs.time_s;
        store.insert(metric::ACU_POWER, t, obs.acu_power_kw);
        store.insert(metric::ACU_ENERGY, t, obs.acu_energy_kwh);
        store.insert(metric::SETPOINT, t, obs.setpoint);
        store.insert(metric::DUTY, t, obs.duty);
        store.insert(metric::SUPPLY, t, obs.supply_temp);
        store.insert(metric::INTERRUPTED, t, obs.interrupted_frac);
        store.insert(metric::AVG_SERVER_POWER, t, obs.avg_server_power_kw);
        store.insert(metric::COLD_AISLE_MAX, t, obs.cold_aisle_max);
        for (n, v) in obs.acu_inlet_temps.iter().enumerate() {
            store.insert(&metric::acu_inlet(n), t, *v);
        }
        for (n, v) in obs.dc_temps.iter().enumerate() {
            store.insert(&metric::dc_temp(n), t, *v);
        }
        for (n, v) in obs.server_powers_kw.iter().enumerate() {
            store.insert(&metric::server_power(n), t, *v);
        }
        for (n, v) in obs.cpu_utils.iter().enumerate() {
            store.insert(&metric::server_cpu(n), t, *v);
        }
        for (n, v) in obs.mem_utils.iter().enumerate() {
            store.insert(&metric::server_mem(n), t, *v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TsdbStore;
    use tesla_sim::{SimConfig, Testbed};

    #[test]
    fn collect_populates_all_metric_families() {
        let store = TsdbStore::new();
        let mut tb = Testbed::new(SimConfig::default(), 1).unwrap();
        let utils = vec![0.2; 21];
        for _ in 0..3 {
            let obs = tb.step_sample(&utils).unwrap();
            Collector::collect(&store, &obs);
        }
        assert_eq!(store.len(metric::ACU_POWER), 3);
        assert_eq!(store.len(metric::SETPOINT), 3);
        assert_eq!(store.len(&metric::acu_inlet(0)), 3);
        assert_eq!(store.len(&metric::acu_inlet(1)), 3);
        assert_eq!(store.len(&metric::dc_temp(34)), 3);
        assert_eq!(store.len(&metric::server_power(20)), 3);
        assert_eq!(store.len(&metric::server_cpu(0)), 3);
        assert_eq!(store.len(&metric::server_mem(0)), 3);
        // 8 scalars + 2 inlet + 35 dc + 3*21 server families.
        assert_eq!(store.metric_names().len(), 8 + 2 + 35 + 63);
    }

    #[test]
    fn timestamps_come_from_the_observation() {
        let store = TsdbStore::new();
        let mut tb = Testbed::new(SimConfig::default(), 2).unwrap();
        let obs = tb.step_sample(&[0.0; 21]).unwrap();
        Collector::collect(&store, &obs);
        let vals = store.range(metric::ACU_POWER, obs.time_s - 0.5, obs.time_s + 0.5);
        assert_eq!(vals.len(), 1);
    }
}
