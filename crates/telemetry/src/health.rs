//! Per-signal telemetry health: detection, quarantine, imputation.
//!
//! A forecaster fed by real sensors must survive the sensors lying.
//! [`HealthMonitor`] watches each scalar signal of a vector sample for
//! three failure signatures:
//!
//! * **dropout** — the reading is NaN/infinite (a lost Modbus frame);
//! * **range** — the reading leaves the physically plausible band;
//! * **flatline** — the reading is bit-identical for many consecutive
//!   samples (a stuck thermistor; real thermal signals always carry
//!   noise);
//! * **peer deviation** (opt-in) — the reading strays too far from the
//!   median of its healthy peers. This is the only detector that catches
//!   *in-band* lies — a sensor drifting or stuck at a plausible value —
//!   and it only makes sense for signals that form a physical cluster
//!   (e.g. the cold-aisle sensors of one room), so it is disabled unless
//!   [`HealthConfig::peer_deviation`] is set finite and at least three
//!   healthy peers are available for consensus.
//!
//! A signal that trips any detector is *quarantined* for a hold-off
//! period; while quarantined its readings are replaced by an imputed
//! value (the cross-sensor median of currently healthy peers when
//! available, else the signal's last known-good reading) so downstream
//! model windows stay full and finite. Quarantine ends only after the
//! hold-off elapses *and* the raw reading looks sane again.

/// Why a signal was quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthFault {
    /// NaN or infinite reading.
    Dropout,
    /// Reading outside `[min_value, max_value]`.
    OutOfRange,
    /// Reading unchanged for `flatline_window` consecutive samples.
    Flatline,
    /// Reading too far from the healthy-peer median (in-band lie).
    PeerDeviation,
}

/// Detector thresholds.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Lowest plausible reading.
    pub min_value: f64,
    /// Highest plausible reading.
    pub max_value: f64,
    /// Consecutive identical samples (within `flatline_epsilon`) before a
    /// signal counts as flatlined.
    pub flatline_window: usize,
    /// Two readings closer than this count as "identical" for flatline
    /// detection.
    pub flatline_epsilon: f64,
    /// Samples a tripped signal stays quarantined before re-admission is
    /// considered.
    pub quarantine_samples: usize,
    /// Maximum tolerated distance from the healthy-peer median before a
    /// signal counts as lying (°C for temperatures). `INFINITY` disables
    /// the detector; it also stays inert unless at least three healthy
    /// peers exist to form a consensus. Enable only for signals that
    /// physically cluster (one aisle's sensors), not for heterogeneous
    /// families.
    pub peer_deviation: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        // Defaults sized for data-center air temperatures in °C.
        HealthConfig {
            min_value: 5.0,
            max_value: 45.0,
            flatline_window: 15,
            flatline_epsilon: 1e-9,
            quarantine_samples: 10,
            peer_deviation: f64::INFINITY,
        }
    }
}

/// Rolling state for one scalar signal.
#[derive(Debug, Clone)]
struct SignalState {
    /// Last reading accepted as healthy.
    last_good: Option<f64>,
    /// Previous raw reading (for flatline detection).
    prev_raw: Option<f64>,
    /// Consecutive samples the raw reading has been unchanged.
    flat_run: usize,
    /// Remaining quarantine samples (0 = not quarantined).
    quarantine_left: usize,
    /// The fault that caused the current/most recent quarantine.
    fault: Option<HealthFault>,
}

impl SignalState {
    fn new() -> Self {
        SignalState {
            last_good: None,
            prev_raw: None,
            flat_run: 0,
            quarantine_left: 0,
            fault: None,
        }
    }
}

/// What [`HealthMonitor::sanitize`] did to one sample.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SanitizeReport {
    /// Indices whose reading was replaced this sample.
    pub imputed: Vec<usize>,
    /// Indices that *entered* quarantine this sample.
    pub newly_quarantined: Vec<usize>,
    /// Total signals currently quarantined (after this sample).
    pub quarantined_now: usize,
}

impl SanitizeReport {
    /// True when every signal passed untouched.
    pub fn clean(&self) -> bool {
        self.imputed.is_empty() && self.quarantined_now == 0
    }
}

/// Health monitor over a fixed-width vector signal.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    cfg: HealthConfig,
    signals: Vec<SignalState>,
    samples_seen: u64,
}

impl HealthMonitor {
    /// A monitor for `n_signals` parallel scalar signals.
    pub fn new(n_signals: usize, cfg: HealthConfig) -> Self {
        HealthMonitor {
            cfg,
            signals: (0..n_signals).map(|_| SignalState::new()).collect(),
            samples_seen: 0,
        }
    }

    /// Number of monitored signals.
    pub fn width(&self) -> usize {
        self.signals.len()
    }

    /// Samples processed so far.
    pub fn samples_seen(&self) -> u64 {
        self.samples_seen
    }

    /// True when signal `k` is currently quarantined.
    pub fn is_quarantined(&self, k: usize) -> bool {
        self.signals.get(k).is_some_and(|s| s.quarantine_left > 0)
    }

    /// The fault behind signal `k`'s current quarantine, if any.
    pub fn fault(&self, k: usize) -> Option<HealthFault> {
        self.signals
            .get(k)
            .filter(|s| s.quarantine_left > 0)
            .and_then(|s| s.fault)
    }

    /// Indices currently quarantined.
    pub fn quarantined(&self) -> Vec<usize> {
        (0..self.signals.len())
            .filter(|&k| self.is_quarantined(k))
            .collect()
    }

    /// Checks one vector sample in place: detects faults, quarantines
    /// tripped signals, and replaces unhealthy readings with imputed
    /// values. `readings.len()` must equal [`HealthMonitor::width`].
    pub fn sanitize(&mut self, readings: &mut [f64]) -> SanitizeReport {
        assert_eq!(
            readings.len(),
            self.signals.len(),
            "sample width {} != monitor width {}",
            readings.len(),
            self.signals.len()
        );
        self.samples_seen += 1;
        let mut report = SanitizeReport::default();

        // Pass 1: per-signal detection and quarantine bookkeeping on raw
        // values. Signals that look clean in isolation are only promoted
        // to `last_good` after the cross-sensor peer check below —
        // otherwise an in-band liar would poison its own fallback value.
        let mut clean_candidates: Vec<usize> = Vec::new();
        for (k, &raw) in readings.iter().enumerate() {
            let s = &mut self.signals[k];
            // Track the repeat run on the raw stream: after this update,
            // flat_run + 1 is the length of the current identical run.
            match s.prev_raw {
                Some(prev)
                    if raw.is_finite() && (raw - prev).abs() <= self.cfg.flatline_epsilon =>
                {
                    s.flat_run += 1
                }
                _ => s.flat_run = 0,
            }
            s.prev_raw = raw.is_finite().then_some(raw);

            let fault = if !raw.is_finite() {
                Some(HealthFault::Dropout)
            } else if raw < self.cfg.min_value || raw > self.cfg.max_value {
                Some(HealthFault::OutOfRange)
            } else if self.cfg.flatline_window >= 2 && s.flat_run + 1 >= self.cfg.flatline_window {
                Some(HealthFault::Flatline)
            } else {
                None
            };

            match fault {
                Some(f) => {
                    if s.quarantine_left == 0 {
                        report.newly_quarantined.push(k);
                    }
                    s.fault = Some(f);
                    s.quarantine_left = self.cfg.quarantine_samples.max(1);
                }
                None => {
                    if s.quarantine_left > 0 {
                        s.quarantine_left -= 1;
                    }
                    // Re-admission (and first admission) goes through the
                    // peer check below, so a persistent in-band liar is
                    // re-caught the moment its holdoff expires.
                    if s.quarantine_left == 0 {
                        clean_candidates.push(k);
                    }
                }
            }
        }

        // Cross-sensor consistency: a clean-looking signal that strays too
        // far from the median of the *other* clean signals is an in-band
        // lie (slow drift, stuck at a plausible value). Requires at least
        // three peers so a single outlier cannot hijack the consensus.
        if self.cfg.peer_deviation.is_finite() && clean_candidates.len() >= 4 {
            let values: Vec<f64> = clean_candidates.iter().map(|&k| readings[k]).collect();
            for (i, &k) in clean_candidates.iter().enumerate() {
                let mut peers: Vec<f64> = values
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, &v)| v)
                    .collect();
                peers.sort_by(|a, b| a.total_cmp(b));
                let peer_median = peers[peers.len() / 2];
                if (values[i] - peer_median).abs() > self.cfg.peer_deviation {
                    let s = &mut self.signals[k];
                    if s.quarantine_left == 0 {
                        report.newly_quarantined.push(k);
                    }
                    s.fault = Some(HealthFault::PeerDeviation);
                    s.quarantine_left = self.cfg.quarantine_samples.max(1);
                }
            }
        }

        // Survivors of both checks become the new last-good references.
        for &k in &clean_candidates {
            let s = &mut self.signals[k];
            if s.quarantine_left == 0 {
                s.last_good = Some(readings[k]);
            }
        }

        // Cross-sensor median of healthy raw readings, for imputation.
        let mut healthy: Vec<f64> = readings
            .iter()
            .enumerate()
            .filter(|&(k, v)| !self.is_quarantined(k) && v.is_finite())
            .map(|(_, &v)| v)
            .collect();
        let median = if healthy.is_empty() {
            None
        } else {
            healthy.sort_by(|a, b| a.total_cmp(b));
            Some(healthy[healthy.len() / 2])
        };

        // Pass 2: impute quarantined signals.
        for (k, v) in readings.iter_mut().enumerate() {
            if !self.is_quarantined(k) {
                continue;
            }
            let imputed = median.or(self.signals[k].last_good);
            if let Some(value) = imputed {
                *v = value;
                report.imputed.push(k);
            } else if !v.is_finite() {
                // No reference at all (first samples of a dead sensor):
                // fall back to mid-range so windows stay finite.
                *v = 0.5 * (self.cfg.min_value + self.cfg.max_value);
                report.imputed.push(k);
            }
        }

        report.quarantined_now = self.quarantined().len();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor(n: usize) -> HealthMonitor {
        HealthMonitor::new(n, HealthConfig::default())
    }

    #[test]
    fn nominal_readings_pass_untouched() {
        let mut m = monitor(3);
        for i in 0..50 {
            // Small varying jitter: healthy thermals are never constant.
            let base = 20.0 + 0.01 * (i as f64).sin();
            let mut r = vec![base, base + 1.0 + 0.02 * (i as f64).cos(), base + 2.1];
            let snapshot = r.clone();
            let rep = m.sanitize(&mut r);
            assert!(rep.clean(), "nominal trace must not trip detectors");
            assert_eq!(r, snapshot);
        }
        assert!(!m.is_quarantined(0));
        assert!(!m.is_quarantined(1));
        assert!(!m.is_quarantined(2));
    }

    #[test]
    fn nan_dropout_is_quarantined_and_imputed() {
        let mut m = monitor(3);
        let mut r = vec![20.0, 21.0, 22.0];
        m.sanitize(&mut r);
        let mut r = vec![f64::NAN, 21.1, 22.1];
        let rep = m.sanitize(&mut r);
        assert_eq!(rep.newly_quarantined, vec![0]);
        assert_eq!(m.fault(0), Some(HealthFault::Dropout));
        assert!(r[0].is_finite(), "imputed in place");
        // Imputed from the healthy median (21.1 or 22.1).
        assert!(r[0] >= 21.0 && r[0] <= 22.2);
    }

    #[test]
    fn out_of_range_is_quarantined() {
        let mut m = monitor(2);
        let mut r = vec![20.0, 21.0];
        m.sanitize(&mut r);
        let mut r = vec![80.0, 21.2];
        let rep = m.sanitize(&mut r);
        assert_eq!(rep.newly_quarantined, vec![0]);
        assert_eq!(m.fault(0), Some(HealthFault::OutOfRange));
        assert!((r[0] - 21.2).abs() < 1e-9, "imputed from healthy peer");
    }

    #[test]
    fn flatline_detected_after_window() {
        let cfg = HealthConfig {
            flatline_window: 5,
            ..HealthConfig::default()
        };
        let mut m = HealthMonitor::new(2, cfg);
        let mut tripped_at = None;
        for i in 0..12 {
            let mut r = vec![23.0, 20.0 + 0.01 * i as f64];
            let rep = m.sanitize(&mut r);
            if rep.newly_quarantined.contains(&0) && tripped_at.is_none() {
                tripped_at = Some(i);
            }
        }
        assert_eq!(m.fault(0), Some(HealthFault::Flatline));
        // 5 identical samples = 4 repeats; trip on the 5th sample (i=4).
        assert_eq!(tripped_at, Some(4));
    }

    #[test]
    fn quarantine_expires_after_holdoff_and_good_data() {
        let cfg = HealthConfig {
            quarantine_samples: 3,
            ..HealthConfig::default()
        };
        let mut m = HealthMonitor::new(2, cfg);
        let mut r = vec![20.0, 21.0];
        m.sanitize(&mut r);
        let mut r = vec![f64::NAN, 21.1];
        m.sanitize(&mut r);
        assert!(m.is_quarantined(0));
        // Three healthy samples retire the quarantine.
        for i in 0..3 {
            let mut r = vec![20.0 + 0.1 * i as f64, 21.0 + 0.1 * i as f64];
            m.sanitize(&mut r);
        }
        assert!(!m.is_quarantined(0));
        // And fresh readings now pass through.
        let mut r = vec![19.5, 21.4];
        let rep = m.sanitize(&mut r);
        assert!((r[0] - 19.5).abs() < 1e-9);
        assert!(rep.clean());
    }

    #[test]
    fn persistent_fault_keeps_quarantine_alive() {
        let cfg = HealthConfig {
            quarantine_samples: 3,
            ..HealthConfig::default()
        };
        let mut m = HealthMonitor::new(2, cfg);
        for _ in 0..20 {
            let mut r = vec![f64::NAN, 21.0];
            m.sanitize(&mut r);
            assert!(m.is_quarantined(0));
            assert!(r[0].is_finite());
        }
    }

    #[test]
    fn all_signals_dead_still_yields_finite_values() {
        let mut m = monitor(2);
        let mut r = vec![f64::NAN, f64::NAN];
        let rep = m.sanitize(&mut r);
        assert!(r.iter().all(|v| v.is_finite()));
        assert_eq!(rep.quarantined_now, 2);
    }

    #[test]
    fn last_good_used_when_no_healthy_peer() {
        let mut m = monitor(1);
        let mut r = vec![22.5];
        m.sanitize(&mut r);
        let mut r = vec![f64::NAN];
        m.sanitize(&mut r);
        assert!(
            (r[0] - 22.5).abs() < 1e-9,
            "single signal imputes last good"
        );
    }

    fn peer_cfg(threshold: f64) -> HealthConfig {
        HealthConfig {
            peer_deviation: threshold,
            ..HealthConfig::default()
        }
    }

    #[test]
    fn peer_deviation_disabled_by_default() {
        // A wide but in-band spread must pass when the check is off.
        let mut m = monitor(5);
        for i in 0..20 {
            let j = 0.01 * (i as f64).sin();
            let mut r = vec![10.0 + j, 20.0 + j, 30.0 + j, 40.0 + j, 15.0 + j];
            let rep = m.sanitize(&mut r);
            assert!(rep.clean(), "disabled peer check must not quarantine");
        }
    }

    #[test]
    fn in_band_stuck_value_caught_by_peer_check() {
        let mut m = HealthMonitor::new(5, peer_cfg(3.0));
        let mut r = vec![20.0, 20.2, 19.9, 20.1, 20.3];
        assert!(m.sanitize(&mut r).clean());
        // Sensor 0 jumps to a plausible-but-wrong 28 °C (in band, so the
        // range check is blind to it).
        let mut r = vec![28.0, 20.25, 19.95, 20.15, 20.35];
        let rep = m.sanitize(&mut r);
        assert_eq!(rep.newly_quarantined, vec![0]);
        assert_eq!(m.fault(0), Some(HealthFault::PeerDeviation));
        assert!(
            (r[0] - 20.25).abs() < 1.0,
            "imputed from the peer cluster, saw {}",
            r[0]
        );
    }

    #[test]
    fn drift_caught_once_it_leaves_the_cluster() {
        let mut m = HealthMonitor::new(5, peer_cfg(3.0));
        let mut caught_at = None;
        for i in 0..30 {
            let j = 0.02 * (i as f64).sin();
            let drifting = 20.0 + 0.5 * i as f64;
            let mut r = vec![drifting, 20.1 + j, 19.9 + j, 20.2 + j, 20.0 + j];
            let rep = m.sanitize(&mut r);
            if rep.newly_quarantined.contains(&0) && caught_at.is_none() {
                caught_at = Some(i);
            }
            assert!(
                r[0] < 24.0,
                "sanitized drift must stay near the cluster, saw {} at minute {i}",
                r[0]
            );
        }
        // Caught as soon as the drift exceeds the 3 °C threshold (~i=7).
        assert_eq!(caught_at, Some(7));
        assert_eq!(m.fault(0), Some(HealthFault::PeerDeviation));
    }

    #[test]
    fn too_few_peers_disable_peer_check() {
        // With only three clean signals there is no 3-peer consensus, so
        // even a tight threshold must not quarantine anyone.
        let mut m = HealthMonitor::new(3, peer_cfg(1.0));
        for i in 0..10 {
            let j = 0.01 * (i as f64).cos();
            let mut r = vec![15.0 + j, 25.0 + j, 35.0 + j];
            let rep = m.sanitize(&mut r);
            assert!(rep.clean());
        }
    }

    #[test]
    fn deviant_value_never_becomes_last_good() {
        let mut m = HealthMonitor::new(4, peer_cfg(2.0));
        let mut r = vec![20.0, 20.1, 19.9, 20.2];
        m.sanitize(&mut r);
        // Liar reports 30 °C; peers then drop out, forcing last-good
        // imputation — which must replay 20.0, not 30.0.
        let mut r = vec![30.0, 20.15, 19.95, 20.25];
        m.sanitize(&mut r);
        let mut r = vec![30.0, f64::NAN, f64::NAN, f64::NAN];
        m.sanitize(&mut r);
        assert!(
            (r[0] - 20.0).abs() < 1e-9,
            "last_good must predate the lie, saw {}",
            r[0]
        );
    }

    #[test]
    #[should_panic(expected = "sample width")]
    fn width_mismatch_panics() {
        let mut m = monitor(3);
        let mut r = vec![1.0];
        m.sanitize(&mut r);
    }
}
