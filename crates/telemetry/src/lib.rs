#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Observability substrate: the reproduction's InfluxDB + Telegraf.
//!
//! The paper's deployment (§4) runs a Telegraf agent per server collecting
//! power and CPU/memory utilization, plus Modbus pollers for ACU and rack
//! sensor temperatures, all written into InfluxDB; TESLA's main loop is a
//! producer process that pulls windows from InfluxDB and pushes them onto
//! a message queue, and a consumer process that runs the control pipeline.
//!
//! This crate supplies the same interfaces in-memory:
//!
//! * [`series::TimeSeries`] — an append-only (time, value) column pair
//!   with window queries.
//! * [`store::TsdbStore`] — a thread-safe metric-name → series map
//!   ([`parking_lot::RwLock`] inside, shareable via `Arc`). It implements
//!   [`tesla_historian::MetricStore`], the storage trait shared with the
//!   durable `tesla-historian` engine, so either backend can sit behind
//!   the collector and runtime.
//! * [`collector::Collector`] — fans one simulator [`tesla_sim::Observation`]
//!   out into the store under stable metric names.
//! * [`queue::TelemetryQueue`] — a bounded crossbeam channel pairing the
//!   producer and consumer halves of the control loop, with an explicit
//!   drop-oldest policy for slow consumers.
//! * [`health::HealthMonitor`] — per-signal staleness/range/flatline
//!   detection with quarantine and imputation, so forecaster windows
//!   stay full when sensors fail.
//! * [`normalize::MinMaxNormalizer`] — the paper's preprocessing: all
//!   signals min-max normalized to `[0, 1]` before modeling (§5.1).
//!
//! # Example: window queries over ingested telemetry
//!
//! ```
//! use tesla_telemetry::TsdbStore;
//!
//! let store = TsdbStore::new();
//! for t in 0..5 {
//!     store.insert("acu_inlet_c", t as f64 * 60.0, 21.0 + t as f64 * 0.5);
//! }
//! assert_eq!(store.last("acu_inlet_c"), Some(23.0));
//! assert_eq!(store.last_n("acu_inlet_c", 2), vec![22.5, 23.0]);
//! ```

pub mod collector;
pub mod health;
pub mod normalize;
pub mod queue;
pub mod series;
pub mod store;

pub use collector::{metric, Collector};
pub use health::{HealthConfig, HealthFault, HealthMonitor, SanitizeReport};
pub use normalize::MinMaxNormalizer;
pub use queue::TelemetryQueue;
pub use series::TimeSeries;
pub use store::TsdbStore;
pub use tesla_historian::MetricStore;
