//! Bounded producer/consumer queue.
//!
//! §4: "Our main function is implemented using two Python processes, a
//! producer and a consumer that communicate over a message queue." The
//! producer polls the store and pushes snapshots; the consumer runs the
//! TESLA pipeline. Here the queue is a bounded crossbeam channel; the
//! bound provides natural backpressure if the consumer (model + BO) ever
//! runs slower than the sampling period.

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, SendError, Sender, TrySendError};
use std::time::Duration;

/// A bounded message queue between the telemetry producer and the
/// controller consumer.
#[derive(Debug)]
pub struct TelemetryQueue<T> {
    tx: Sender<T>,
    rx: Receiver<T>,
}

impl<T> TelemetryQueue<T> {
    /// Creates a queue holding at most `capacity` in-flight messages.
    pub fn new(capacity: usize) -> Self {
        let (tx, rx) = bounded(capacity.max(1));
        TelemetryQueue { tx, rx }
    }

    /// Clones the producer handle.
    pub fn sender(&self) -> Sender<T> {
        self.tx.clone()
    }

    /// Clones the consumer handle.
    pub fn receiver(&self) -> Receiver<T> {
        self.rx.clone()
    }

    /// Pushes a message, blocking if the queue is full. Fails only when
    /// every receiver has been dropped.
    pub fn push(&self, msg: T) -> Result<(), SendError<T>> {
        self.tx.send(msg)
    }

    /// Pushes a message without ever blocking: when the queue is full the
    /// *oldest* queued message is discarded to make room, so a slow
    /// consumer always wakes to the freshest telemetry instead of
    /// stalling the producer (the control loop must keep real-time pace
    /// with the plant). Returns how many stale messages were dropped.
    /// Fails only when every receiver has been dropped.
    pub fn push_latest(&self, msg: T) -> Result<usize, SendError<T>> {
        let mut dropped = 0;
        let mut pending = msg;
        loop {
            match self.tx.try_send(pending) {
                Ok(()) => return Ok(dropped),
                Err(TrySendError::Full(back)) => {
                    if self.rx.try_recv().is_ok() {
                        dropped += 1;
                    }
                    pending = back;
                }
                Err(TrySendError::Disconnected(back)) => return Err(SendError(back)),
            }
        }
    }

    /// Pops a message, waiting up to `timeout`.
    pub fn pop_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.rx.recv_timeout(timeout)
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.rx.len()
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.rx.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_ordering() {
        let q = TelemetryQueue::new(8);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.push(3).unwrap();
        assert_eq!(q.pop_timeout(Duration::from_millis(10)).unwrap(), 1);
        assert_eq!(q.pop_timeout(Duration::from_millis(10)).unwrap(), 2);
        assert_eq!(q.pop_timeout(Duration::from_millis(10)).unwrap(), 3);
    }

    #[test]
    fn pop_times_out_when_empty() {
        let q: TelemetryQueue<i32> = TelemetryQueue::new(2);
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        ));
    }

    #[test]
    fn producer_and_consumer_threads() {
        let q = TelemetryQueue::new(4);
        let tx = q.sender();
        let rx = q.receiver();
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let consumer = std::thread::spawn(move || {
            let mut sum = 0;
            for _ in 0..100 {
                sum += rx.recv().unwrap();
            }
            sum
        });
        producer.join().unwrap();
        assert_eq!(consumer.join().unwrap(), 4950);
    }

    #[test]
    fn push_latest_drops_oldest_when_full() {
        let q = TelemetryQueue::new(2);
        assert_eq!(q.push_latest(1).unwrap(), 0);
        assert_eq!(q.push_latest(2).unwrap(), 0);
        // Full: pushing 3 evicts 1, pushing 4 evicts 2.
        assert_eq!(q.push_latest(3).unwrap(), 1);
        assert_eq!(q.push_latest(4).unwrap(), 1);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_timeout(Duration::from_millis(10)).unwrap(), 3);
        assert_eq!(q.pop_timeout(Duration::from_millis(10)).unwrap(), 4);
    }

    #[test]
    fn push_latest_fails_when_all_receivers_gone() {
        let (q, rx) = {
            let q = TelemetryQueue::new(2);
            let rx = q.receiver();
            (q, rx)
        };
        drop(rx);
        // The queue still holds its own receiver handle, so this push
        // succeeds; a fully disconnected channel is exercised on the raw
        // sender below.
        assert!(q.push_latest(1).is_ok());
        let tx = q.sender();
        drop(q);
        assert!(tx.try_send(9).is_err());
    }

    #[test]
    fn bounded_capacity_backpressure() {
        let q = TelemetryQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.len(), 2);
        // A further push would block: verify try-path via sender.
        assert!(q.sender().try_send(3).is_err());
    }
}
