//! Min-max normalization to `[0, 1]` — the paper's preprocessing step
//! (§5.1: "All data from InfluxDB are normalized to the range of 0 and 1
//! using min-max normalization").

/// A fitted per-signal min-max normalizer.
#[derive(Debug, Clone, PartialEq)]
pub struct MinMaxNormalizer {
    min: f64,
    span: f64,
}

impl MinMaxNormalizer {
    /// Fits on training data. A constant signal gets span 1 so transform
    /// is well-defined (maps everything to 0).
    pub fn fit(data: &[f64]) -> Self {
        let min = data.iter().copied().fold(f64::INFINITY, f64::min);
        let max = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if data.is_empty() || !min.is_finite() || !max.is_finite() {
            return MinMaxNormalizer {
                min: 0.0,
                span: 1.0,
            };
        }
        let span = if (max - min).abs() < 1e-12 {
            1.0
        } else {
            max - min
        };
        MinMaxNormalizer { min, span }
    }

    /// Builds a normalizer from explicit bounds (e.g. the ACU's
    /// specification range for set-points).
    pub fn from_bounds(min: f64, max: f64) -> Self {
        let span = if (max - min).abs() < 1e-12 {
            1.0
        } else {
            max - min
        };
        MinMaxNormalizer { min, span }
    }

    /// Normalizes one value. Training-range values land in `[0, 1]`;
    /// out-of-range values extrapolate linearly (not clipped), matching
    /// scikit-learn's `MinMaxScaler`.
    pub fn transform(&self, v: f64) -> f64 {
        (v - self.min) / self.span
    }

    /// Inverse transform.
    pub fn inverse(&self, v: f64) -> f64 {
        v * self.span + self.min
    }

    /// Normalizes a slice into a new vector.
    pub fn transform_all(&self, vs: &[f64]) -> Vec<f64> {
        vs.iter().map(|&v| self.transform(v)).collect()
    }

    /// Inverse-transforms a slice into a new vector.
    pub fn inverse_all(&self, vs: &[f64]) -> Vec<f64> {
        vs.iter().map(|&v| self.inverse(v)).collect()
    }

    /// The fitted minimum.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// The fitted span (max − min, or 1 for constant signals).
    pub fn span(&self) -> f64 {
        self.span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_training_range_to_unit_interval() {
        let n = MinMaxNormalizer::fit(&[10.0, 20.0, 15.0]);
        assert_eq!(n.transform(10.0), 0.0);
        assert_eq!(n.transform(20.0), 1.0);
        assert_eq!(n.transform(15.0), 0.5);
    }

    #[test]
    fn inverse_roundtrip() {
        let n = MinMaxNormalizer::fit(&[3.0, 9.0]);
        for v in [3.0, 4.5, 9.0, 12.0, -1.0] {
            assert!((n.inverse(n.transform(v)) - v).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_signal_is_safe() {
        let n = MinMaxNormalizer::fit(&[5.0, 5.0, 5.0]);
        assert_eq!(n.transform(5.0), 0.0);
        assert_eq!(n.inverse(n.transform(5.0)), 5.0);
    }

    #[test]
    fn empty_input_is_identityish() {
        let n = MinMaxNormalizer::fit(&[]);
        assert_eq!(n.transform(2.0), 2.0);
    }

    #[test]
    fn out_of_range_extrapolates() {
        let n = MinMaxNormalizer::fit(&[0.0, 10.0]);
        assert_eq!(n.transform(20.0), 2.0);
        assert_eq!(n.transform(-10.0), -1.0);
    }

    #[test]
    fn from_bounds_matches_fit_on_extremes() {
        let a = MinMaxNormalizer::from_bounds(20.0, 35.0);
        let b = MinMaxNormalizer::fit(&[20.0, 35.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn batch_helpers() {
        let n = MinMaxNormalizer::fit(&[0.0, 4.0]);
        let t = n.transform_all(&[0.0, 2.0, 4.0]);
        assert_eq!(t, vec![0.0, 0.5, 1.0]);
        assert_eq!(n.inverse_all(&t), vec![0.0, 2.0, 4.0]);
    }
}
