//! Thread-safe metric store (the InfluxDB stand-in).

use crate::series::TimeSeries;
use parking_lot::RwLock;
use std::collections::HashMap;
use tesla_historian::MetricStore;

/// A concurrent metric-name → [`TimeSeries`] map.
///
/// Writers (the collector thread) and readers (the controller) can share
/// it through an `Arc`. Queries copy data out so no lock is held while
/// the controller computes.
#[derive(Debug, Default)]
pub struct TsdbStore {
    inner: RwLock<HashMap<String, TimeSeries>>,
}

impl TsdbStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample to `metric` (creating the series on first use).
    pub fn insert(&self, metric: &str, time_s: f64, value: f64) {
        let mut map = self.inner.write();
        map.entry(metric.to_owned())
            .or_default()
            .push(time_s, value);
    }

    /// The most recent `n` values of `metric`, oldest first. Empty when
    /// the metric does not exist.
    pub fn last_n(&self, metric: &str, n: usize) -> Vec<f64> {
        let map = self.inner.read();
        map.get(metric)
            .map(|s| s.last_n(n).to_vec())
            .unwrap_or_default()
    }

    /// The most recent value of `metric`.
    pub fn last(&self, metric: &str) -> Option<f64> {
        let map = self.inner.read();
        map.get(metric).and_then(|s| s.last())
    }

    /// Values of `metric` with `t0 <= time < t1`.
    pub fn range(&self, metric: &str, t0: f64, t1: f64) -> Vec<f64> {
        let map = self.inner.read();
        map.get(metric)
            .map(|s| s.range(t0, t1).to_vec())
            .unwrap_or_default()
    }

    /// Full copy of a metric's series (values only).
    pub fn values(&self, metric: &str) -> Vec<f64> {
        let map = self.inner.read();
        map.get(metric)
            .map(|s| s.values().to_vec())
            .unwrap_or_default()
    }

    /// Number of samples stored for `metric` (0 when absent).
    pub fn len(&self, metric: &str) -> usize {
        let map = self.inner.read();
        map.get(metric).map(|s| s.len()).unwrap_or(0)
    }

    /// True when the store holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Mean of the most recent `n` values of `metric` (None when absent
    /// or empty) — the aggregation the controllers use for "current"
    /// readings of noisy sensors.
    pub fn mean_last_n(&self, metric: &str, n: usize) -> Option<f64> {
        let map = self.inner.read();
        let series = map.get(metric)?;
        let vals = series.last_n(n);
        if vals.is_empty() {
            return None;
        }
        Some(vals.iter().sum::<f64>() / vals.len() as f64)
    }

    /// Time-window aggregate: (mean, min, max) of `metric` over
    /// `t0 <= time < t1`. None when no samples fall in the window.
    pub fn aggregate_range(&self, metric: &str, t0: f64, t1: f64) -> Option<(f64, f64, f64)> {
        let map = self.inner.read();
        let series = map.get(metric)?;
        let vals = series.range(t0, t1);
        if vals.is_empty() {
            return None;
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Some((mean, min, max))
    }

    /// Exports the whole store in InfluxDB line protocol
    /// (`measurement,field=value timestamp_ns`) — the wire format the
    /// paper's actual observability stack ingests, so a simulated run can
    /// be replayed into a real InfluxDB instance.
    pub fn export_line_protocol(&self) -> String {
        let map = self.inner.read();
        let mut names: Vec<&String> = map.keys().collect();
        names.sort();
        let mut out = String::new();
        for name in names {
            let series = &map[name];
            // metric names are "measurement.field[...]": split on the
            // first dot; the remainder becomes the field key.
            let (measurement, field) = match name.split_once('.') {
                Some((m, f)) => (m, f),
                None => (name.as_str(), "value"),
            };
            let field = field.replace([' ', ','], "_");
            for (t, v) in series.times().iter().zip(series.values()) {
                let ns = (t * 1e9) as i64;
                out.push_str(&format!(
                    "{measurement} {field}={v} {ns}
"
                ));
            }
        }
        out
    }

    /// Sorted list of all metric names.
    pub fn metric_names(&self) -> Vec<String> {
        let map = self.inner.read();
        let mut names: Vec<String> = map.keys().cloned().collect();
        names.sort();
        names
    }
}

/// [`MetricStore`] is the interface the collector, runtime, and forecast
/// window builders consume, so `Arc<TsdbStore>` and
/// `Arc<tesla_historian::Historian>` are drop-in replacements for each
/// other. Delegates to the inherent methods; `insert_batch` is
/// specialized to amortize the write lock.
impl MetricStore for TsdbStore {
    fn insert(&self, metric: &str, time_s: f64, value: f64) {
        TsdbStore::insert(self, metric, time_s, value);
    }

    fn insert_batch(&self, metric: &str, samples: &[(f64, f64)]) {
        let mut map = self.inner.write();
        let series = map.entry(metric.to_owned()).or_default();
        for &(t, v) in samples {
            series.push(t, v);
        }
    }

    fn last_n(&self, metric: &str, n: usize) -> Vec<f64> {
        TsdbStore::last_n(self, metric, n)
    }

    fn last(&self, metric: &str) -> Option<f64> {
        TsdbStore::last(self, metric)
    }

    fn range(&self, metric: &str, t0: f64, t1: f64) -> Vec<f64> {
        TsdbStore::range(self, metric, t0, t1)
    }

    fn values(&self, metric: &str) -> Vec<f64> {
        TsdbStore::values(self, metric)
    }

    fn len(&self, metric: &str) -> usize {
        TsdbStore::len(self, metric)
    }

    fn metric_names(&self) -> Vec<String> {
        TsdbStore::metric_names(self)
    }

    fn is_empty(&self) -> bool {
        TsdbStore::is_empty(self)
    }

    fn mean_last_n(&self, metric: &str, n: usize) -> Option<f64> {
        TsdbStore::mean_last_n(self, metric, n)
    }

    fn aggregate_range(&self, metric: &str, t0: f64, t1: f64) -> Option<(f64, f64, f64)> {
        TsdbStore::aggregate_range(self, metric, t0, t1)
    }

    fn last_n_many(&self, metrics: &[&str], n: usize) -> Vec<Vec<f64>> {
        // One read-lock acquisition for the whole aligned fetch.
        let map = self.inner.read();
        metrics
            .iter()
            .map(|m| {
                map.get(*m)
                    .map(|s| s.last_n(n).to_vec())
                    .unwrap_or_default()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn insert_and_query() {
        let store = TsdbStore::new();
        store.insert("acu.power", 0.0, 2.0);
        store.insert("acu.power", 60.0, 2.5);
        assert_eq!(store.last("acu.power"), Some(2.5));
        assert_eq!(store.last_n("acu.power", 2), vec![2.0, 2.5]);
        assert_eq!(store.len("acu.power"), 2);
    }

    #[test]
    fn missing_metric_is_empty_not_error() {
        let store = TsdbStore::new();
        assert_eq!(store.last("nope"), None);
        assert!(store.last_n("nope", 5).is_empty());
        assert!(store.range("nope", 0.0, 100.0).is_empty());
        assert_eq!(store.len("nope"), 0);
    }

    #[test]
    fn metric_names_sorted() {
        let store = TsdbStore::new();
        store.insert("b", 0.0, 1.0);
        store.insert("a", 0.0, 1.0);
        assert_eq!(store.metric_names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn concurrent_writers_and_readers() {
        let store = Arc::new(TsdbStore::new());
        let mut handles = Vec::new();
        for w in 0..4 {
            let s = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    s.insert(&format!("m{w}"), i as f64, i as f64);
                }
            }));
        }
        for r in 0..4 {
            let s = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    let _ = s.last_n(&format!("m{r}"), 10);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for w in 0..4 {
            assert_eq!(store.len(&format!("m{w}")), 500);
        }
    }

    #[test]
    fn mean_last_n_aggregates() {
        let store = TsdbStore::new();
        for i in 0..6 {
            store.insert("m", i as f64, i as f64);
        }
        assert_eq!(store.mean_last_n("m", 3), Some(4.0)); // (3+4+5)/3
        assert_eq!(store.mean_last_n("m", 100), Some(2.5));
        assert_eq!(store.mean_last_n("missing", 3), None);
    }

    #[test]
    fn aggregate_range_reports_mean_min_max() {
        let store = TsdbStore::new();
        for (t, v) in [(0.0, 5.0), (60.0, 1.0), (120.0, 9.0), (180.0, 2.0)] {
            store.insert("m", t, v);
        }
        let (mean, min, max) = store.aggregate_range("m", 60.0, 180.0).unwrap();
        assert_eq!((mean, min, max), (5.0, 1.0, 9.0));
        assert!(store.aggregate_range("m", 500.0, 600.0).is_none());
    }

    #[test]
    fn line_protocol_export_format() {
        let store = TsdbStore::new();
        store.insert("acu.power_kw", 60.0, 2.5);
        store.insert("acu.power_kw", 120.0, 2.75);
        store.insert("plain", 60.0, 1.0);
        let lp = store.export_line_protocol();
        let lines: Vec<&str> = lp.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.contains(&"acu power_kw=2.5 60000000000"));
        assert!(lines.contains(&"acu power_kw=2.75 120000000000"));
        assert!(lines.contains(&"plain value=1 60000000000"));
    }

    #[test]
    fn range_query_copies_window() {
        let store = TsdbStore::new();
        for i in 0..10 {
            store.insert("x", i as f64 * 60.0, i as f64);
        }
        assert_eq!(store.range("x", 120.0, 300.0), vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn range_nan_bounds_are_empty_not_panic() {
        let store = TsdbStore::new();
        for i in 0..10 {
            store.insert("x", i as f64 * 60.0, i as f64);
        }
        assert!(store.range("x", f64::NAN, 300.0).is_empty());
        assert!(store.range("x", 120.0, f64::NAN).is_empty());
        assert!(store.range("x", 300.0, 120.0).is_empty());
    }

    #[test]
    fn range_semantics_match_historian_backend() {
        use tesla_historian::{Historian, HistorianConfig};
        let tsdb = TsdbStore::new();
        let hist = Historian::in_memory(HistorianConfig {
            block_len: 4, // force sealed-block boundaries into the window
            ..HistorianConfig::default()
        });
        for i in 0..10 {
            let (t, v) = (i as f64 * 60.0, i as f64);
            tsdb.insert("x", t, v);
            MetricStore::insert(&hist, "x", t, v);
        }
        for (t0, t1) in [
            (120.0, 300.0),
            (0.0, 60.0),       // exact boundaries
            (540.0, 541.0),    // last sample only
            (60.0, 60.0),      // degenerate
            (300.0, 120.0),    // reversed
            (f64::NAN, 300.0), // NaN start
            (120.0, f64::NAN), // NaN end
            (-1e9, 1e9),       // everything
        ] {
            assert_eq!(
                MetricStore::range(&tsdb, "x", t0, t1),
                MetricStore::range(&hist, "x", t0, t1),
                "backends disagree on range({t0}, {t1})"
            );
        }
    }

    #[test]
    fn trait_insert_batch_matches_repeated_insert() {
        let a = TsdbStore::new();
        let b = TsdbStore::new();
        let samples: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, i as f64 * 0.5)).collect();
        MetricStore::insert_batch(&a, "m", &samples);
        for &(t, v) in &samples {
            b.insert("m", t, v);
        }
        assert_eq!(a.values("m"), b.values("m"));
        assert_eq!(a.last_n_many(&["m"], 5), vec![b.last_n("m", 5)]);
    }
}
