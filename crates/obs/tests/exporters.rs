//! Exporter contract tests: golden Prometheus output, JSONL span
//! round-trips, and a multi-thread registry smoke test.

use std::sync::Arc;
use tesla_obs::{export, global_trace, MetricsRegistry, Span, SpanRecord, TraceBuffer};

const GOLDEN_PATH: &str = "tests/golden/prometheus.txt";

/// A registry with one of each instrument kind and deterministic values.
fn golden_registry() -> MetricsRegistry {
    tesla_obs::set_enabled(true);
    let r = MetricsRegistry::new();
    r.counter("supervisor_rung_transitions_total", &[("to", "SafeMode")])
        .add(2);
    r.counter("supervisor_rung_transitions_total", &[("to", "Normal")])
        .inc();
    r.gauge("sim_pid_error_celsius", &[]).set(-0.125);
    let h = r.histogram("tesla_decide_seconds", &[]);
    h.observe(0.003);
    h.observe(0.003);
    h.observe(0.04);
    h.observe(2000.0); // near the top decade of the shared bounds
    r
}

#[test]
fn prometheus_output_matches_golden_file() {
    let rendered = export::render_prometheus(&golden_registry());
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(GOLDEN_PATH, &rendered).expect("write golden");
        return;
    }
    let golden = include_str!("golden/prometheus.txt");
    assert_eq!(
        rendered, golden,
        "Prometheus rendering drifted from {GOLDEN_PATH}; \
         run with UPDATE_GOLDEN=1 if the change is intentional"
    );
}

#[test]
fn jsonl_spans_round_trip_through_buffer() {
    tesla_obs::set_enabled(true);
    let buf = TraceBuffer::with_capacity(64);
    for i in 0..10 {
        buf.push(SpanRecord {
            name: format!("control_step_{i}"),
            start_us: i * 1000,
            dur_us: 250 + i,
            fields: vec![
                ("step".to_string(), i as f64),
                ("setpoint_celsius".to_string(), 22.0 + i as f64 * 0.25),
            ],
        });
    }
    let mut jsonl = Vec::new();
    buf.export_jsonl(&mut jsonl).expect("export");
    let text = String::from_utf8(jsonl).expect("utf8");
    let parsed: Vec<SpanRecord> = text
        .lines()
        .map(|l| SpanRecord::from_jsonl(l).expect("parse line"))
        .collect();
    assert_eq!(parsed, buf.snapshot());
}

#[test]
fn live_spans_export_and_parse() {
    tesla_obs::set_enabled(true);
    {
        let mut span = Span::enter("roundtrip_live", &[("k", 1.5)]);
        span.record_field("extra", 2.5);
    }
    let mut jsonl = Vec::new();
    global_trace().export_jsonl(&mut jsonl).expect("export");
    let text = String::from_utf8(jsonl).expect("utf8");
    let rec = text
        .lines()
        .filter_map(SpanRecord::from_jsonl)
        .find(|r| r.name == "roundtrip_live")
        .expect("span present");
    assert!(rec.fields.contains(&("k".to_string(), 1.5)));
    assert!(rec.fields.contains(&("extra".to_string(), 2.5)));
}

#[test]
fn registry_survives_8_thread_hammer() {
    tesla_obs::set_enabled(true);
    const THREADS: usize = 8;
    const OPS: u64 = 10_000;
    let registry = Arc::new(MetricsRegistry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let registry = registry.clone();
            std::thread::spawn(move || {
                let shard_label = ["a", "b", "c", "d"][t % 4];
                for i in 0..OPS {
                    registry.counter("hammer_ops_total", &[]).inc();
                    registry
                        .counter("hammer_labeled_total", &[("shard", shard_label)])
                        .inc();
                    registry.gauge("hammer_last_ratio", &[]).set(i as f64);
                    registry
                        .histogram("hammer_lat_seconds", &[])
                        .observe(1e-6 * (1 + i % 1000) as f64);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("thread panicked");
    }
    let total = THREADS as u64 * OPS;
    assert_eq!(registry.counter("hammer_ops_total", &[]).get(), total);
    let labeled: u64 = ["a", "b", "c", "d"]
        .iter()
        .map(|s| {
            registry
                .counter("hammer_labeled_total", &[("shard", s)])
                .get()
        })
        .sum();
    assert_eq!(labeled, total);
    let h = registry.histogram("hammer_lat_seconds", &[]);
    assert_eq!(h.count(), total);
    assert_eq!(h.bucket_counts().iter().sum::<u64>(), total);
    assert_eq!(registry.kind_conflicts(), 0);
    // 1 + 4 labeled + 1 gauge + 1 histogram
    assert_eq!(registry.series_count(), 7);
}
