//! The disabled path must be a no-op — this lives in its own test binary
//! so the process-wide enabled flag (off by default) never races the
//! enabled-path tests.

use tesla_obs::{global, global_trace, span, Timer};

#[test]
fn everything_is_noop_while_disabled() {
    assert!(!tesla_obs::enabled(), "collection must default to off");

    let c = global().counter("disabled_probe_total", &[]);
    c.inc();
    c.add(10);
    assert_eq!(c.get(), 0);

    let g = global().gauge("disabled_probe_ratio", &[]);
    g.set(1.0);
    assert_eq!(g.get(), 0.0);

    let h = global().histogram("disabled_probe_seconds", &[]);
    h.observe(0.5);
    assert_eq!(h.count(), 0);
    {
        let _t = Timer::start(h.clone());
    }
    assert_eq!(h.count(), 0);

    {
        let _s = span!("disabled_probe_span", step = 1);
    }
    tesla_obs::event("disabled_probe_event", &[]);
    assert!(global_trace().is_empty());

    // Flipping the switch on makes the same handles live.
    tesla_obs::set_enabled(true);
    c.inc();
    assert_eq!(c.get(), 1);
}
