//! Exporters: Prometheus text format and JSON, from a registry snapshot.

use crate::registry::{bucket_bounds, MetricSample, MetricsRegistry, SampleValue};
use std::io::{self, Write};

/// Renders the registry in the Prometheus text exposition format
/// (version 0.0.4): `# TYPE` comments, one cumulative `_bucket` series
/// per histogram bound plus `_sum`/`_count`, stable ordering.
pub fn render_prometheus(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    let mut last_name = "";
    for sample in registry.snapshot() {
        if sample.name != last_name {
            let kind = match sample.value {
                SampleValue::Counter(_) => "counter",
                SampleValue::Gauge(_) => "gauge",
                SampleValue::Histogram { .. } => "histogram",
            };
            out.push_str(&format!("# TYPE {} {kind}\n", sample.name));
            last_name = sample.name;
        }
        render_sample(&mut out, &sample);
    }
    out
}

fn render_sample(out: &mut String, sample: &MetricSample) {
    match &sample.value {
        SampleValue::Counter(v) => {
            out.push_str(&format!(
                "{}{} {v}\n",
                sample.name,
                label_block(&sample.labels, &[])
            ));
        }
        SampleValue::Gauge(v) => {
            out.push_str(&format!(
                "{}{} {}\n",
                sample.name,
                label_block(&sample.labels, &[]),
                format_value(*v)
            ));
        }
        SampleValue::Histogram {
            buckets,
            count,
            sum,
        } => {
            let bounds = bucket_bounds();
            let mut cumulative = 0u64;
            for (i, &c) in buckets.iter().enumerate() {
                cumulative += c;
                // Empty buckets are elided (91 mostly-zero lines per
                // histogram would dwarf the real signal); cumulative
                // counts stay correct because `le` is cumulative anyway.
                if c == 0 && i < buckets.len() - 1 {
                    continue;
                }
                let le = if i < bounds.len() {
                    format_value(bounds[i])
                } else {
                    "+Inf".to_string()
                };
                out.push_str(&format!(
                    "{}_bucket{} {cumulative}\n",
                    sample.name,
                    label_block(&sample.labels, &[("le", &le)])
                ));
            }
            out.push_str(&format!(
                "{}_sum{} {}\n",
                sample.name,
                label_block(&sample.labels, &[]),
                format_value(*sum)
            ));
            out.push_str(&format!(
                "{}_count{} {count}\n",
                sample.name,
                label_block(&sample.labels, &[])
            ));
        }
    }
}

/// `{k="v",…}` or the empty string; `extra` pairs are appended last
/// (used for the histogram `le` label).
fn label_block(labels: &[(&'static str, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    parts.extend(
        extra
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))),
    );
    // lint:allow(no-blocking-in-deadline-path): string separator join, not a thread join
    format!("{{{}}}", parts.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Prometheus float rendering: shortest decimal repr, `+Inf`/`-Inf`/`NaN`
/// spelled the Prometheus way.
fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

/// Writes the Prometheus rendering to `w`.
pub fn write_prometheus(registry: &MetricsRegistry, w: &mut dyn Write) -> io::Result<()> {
    w.write_all(render_prometheus(registry).as_bytes())
}

/// Renders the registry as one JSON object: `{"metrics": [...]}` with
/// per-series objects. Histograms carry `count`, `sum`, and a compact
/// `quantiles` summary instead of raw buckets.
pub fn render_json(registry: &MetricsRegistry) -> String {
    let mut out = String::from("{\"metrics\":[");
    let samples = registry.snapshot();
    for (i, sample) in samples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"name\":\"{}\"", sample.name));
        if !sample.labels.is_empty() {
            out.push_str(",\"labels\":{");
            for (j, (k, v)) in sample.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{k}\":\"{}\"", escape_label(v)));
            }
            out.push('}');
        }
        match &sample.value {
            SampleValue::Counter(v) => {
                out.push_str(&format!(",\"type\":\"counter\",\"value\":{v}"))
            }
            SampleValue::Gauge(v) => {
                out.push_str(&format!(",\"type\":\"gauge\",\"value\":{}", json_f64(*v)))
            }
            SampleValue::Histogram {
                buckets,
                count,
                sum,
            } => {
                out.push_str(&format!(
                    ",\"type\":\"histogram\",\"count\":{count},\"sum\":{}",
                    json_f64(*sum)
                ));
                out.push_str(&format!(
                    ",\"quantiles\":{{\"p50\":{},\"p90\":{},\"p99\":{}}}",
                    json_f64(quantile_from_buckets(buckets, 0.50)),
                    json_f64(quantile_from_buckets(buckets, 0.90)),
                    json_f64(quantile_from_buckets(buckets, 0.99)),
                ));
            }
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Bucket-midpoint quantile over non-cumulative bucket counts.
fn quantile_from_buckets(buckets: &[u64], q: f64) -> f64 {
    let bounds = bucket_bounds();
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return bounds.get(i).copied().unwrap_or(bounds[bounds.len() - 1]);
        }
    }
    bounds[bounds.len() - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> MetricsRegistry {
        crate::set_enabled(true);
        MetricsRegistry::new()
    }

    #[test]
    fn prometheus_counter_and_gauge_lines() {
        let r = registry();
        r.counter("steps_total", &[("ctrl", "tesla")]).add(7);
        r.gauge("room_celsius", &[]).set(21.5);
        let text = render_prometheus(&r);
        assert!(text.contains("# TYPE steps_total counter"));
        assert!(text.contains("steps_total{ctrl=\"tesla\"} 7"));
        assert!(text.contains("# TYPE room_celsius gauge"));
        assert!(text.contains("room_celsius 21.5"));
    }

    #[test]
    fn prometheus_histogram_is_cumulative_with_inf() {
        let r = registry();
        let h = r.histogram("lat_seconds", &[]);
        h.observe(0.005);
        h.observe(0.005);
        h.observe(5000.0); // overflow bucket
        let text = render_prometheus(&r);
        assert!(text.contains("lat_seconds_bucket{le=\"0.005\"} 2"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_seconds_count 3"));
        assert!(text.contains("lat_seconds_sum 5000.01"));
    }

    #[test]
    fn type_comment_emitted_once_per_name() {
        let r = registry();
        r.counter("multi_total", &[("k", "a")]).inc();
        r.counter("multi_total", &[("k", "b")]).inc();
        let text = render_prometheus(&r);
        assert_eq!(text.matches("# TYPE multi_total counter").count(), 1);
    }

    #[test]
    fn json_contains_quantiles() {
        let r = registry();
        let h = r.histogram("x_seconds", &[]);
        for _ in 0..100 {
            h.observe(0.01);
        }
        let json = render_json(&r);
        assert!(json.contains("\"type\":\"histogram\""));
        assert!(json.contains("\"p50\":0.01"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = registry();
        r.counter("esc_total", &[("v", "a\"b")]).inc();
        let text = render_prometheus(&r);
        assert!(text.contains("esc_total{v=\"a\\\"b\"} 1"));
    }
}
