//! Lightweight span/event tracing with ring-buffer retention.
//!
//! A [`Span`] is a named interval with monotonic timestamps (microseconds
//! since the process's trace epoch) and a small set of numeric fields; an
//! *event* is a zero-duration span. Finished records land in a bounded
//! ring buffer (drop-oldest), so tracing never grows without bound and a
//! post-mortem can always dump the most recent window as JSONL.

// analysis:allow-file(no-alloc-in-decide-steady-state): span fields
// are formatted into a bounded ring buffer; tracing cost is part of
// the observability budget, not the decision path proper.
use std::collections::VecDeque;
use std::io::{self, Write};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default ring capacity of the global buffer: a 12-hour supervised
/// episode emits ~4 records a minute, so this holds several episodes.
pub const DEFAULT_TRACE_CAPACITY: usize = 16 * 1024;

/// Microseconds since the process's trace epoch (first use).
pub fn now_micros() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// One finished span or event.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name (static at the call site, owned here so records survive
    /// JSONL round-trips).
    pub name: String,
    /// Start time, µs since the trace epoch.
    pub start_us: u64,
    /// Duration, µs (0 for events).
    pub dur_us: u64,
    /// Numeric fields attached at the call site.
    pub fields: Vec<(String, f64)>,
}

impl SpanRecord {
    /// Renders the record as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut s = format!(
            "{{\"name\":\"{}\",\"start_us\":{},\"dur_us\":{}",
            escape(&self.name),
            self.start_us,
            self.dur_us
        );
        if !self.fields.is_empty() {
            s.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!("\"{}\":{}", escape(k), format_f64(*v)));
            }
            s.push('}');
        }
        s.push('}');
        s
    }

    /// Parses a line produced by [`SpanRecord::to_jsonl`]. Not a general
    /// JSON parser — it accepts exactly the exporter's shape, which is
    /// what the round-trip contract requires.
    pub fn from_jsonl(line: &str) -> Option<SpanRecord> {
        let line = line.trim();
        let inner = line.strip_prefix('{')?.strip_suffix('}')?;
        let name = extract_string(inner, "name")?;
        let start_us = extract_number(inner, "start_us")?.round() as u64;
        let dur_us = extract_number(inner, "dur_us")?.round() as u64;
        let mut fields = Vec::new();
        if let Some(ix) = inner.find("\"fields\":{") {
            let rest = &inner[ix + "\"fields\":{".len()..];
            let body = &rest[..rest.find('}')?];
            for pair in body.split(',').filter(|p| !p.is_empty()) {
                let (k, v) = pair.split_once(':')?;
                let k = k.trim().strip_prefix('"')?.strip_suffix('"')?;
                fields.push((unescape(k), v.trim().parse().ok()?));
            }
        }
        Some(SpanRecord {
            name: unescape(&name),
            start_us,
            dur_us,
            fields,
        })
    }
}

/// `f64` to JSON: finite shortest-repr, non-finite as null (JSON has no
/// NaN/Inf literals).
fn format_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => out.push(other),
                None => break,
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Value of `"key":"…"` inside `inner` (quote-aware enough for the
/// exporter's own escaping).
fn extract_string(inner: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let start = inner.find(&marker)? + marker.len();
    let rest = &inner[start..];
    let mut end = 0;
    let bytes = rest.as_bytes();
    while end < bytes.len() {
        if bytes[end] == b'"' && (end == 0 || bytes[end - 1] != b'\\') {
            break;
        }
        end += 1;
    }
    Some(rest[..end].to_string())
}

fn extract_number(inner: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\":");
    let start = inner.find(&marker)? + marker.len();
    let rest = &inner[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Bounded drop-oldest ring of finished [`SpanRecord`]s.
#[derive(Debug)]
pub struct TraceBuffer {
    ring: Mutex<VecDeque<SpanRecord>>,
    capacity: usize,
}

impl TraceBuffer {
    /// A buffer retaining at most `capacity` records.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceBuffer {
            ring: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 1 << 20))),
            capacity: capacity.max(1),
        }
    }

    /// Appends one record, evicting the oldest at capacity.
    pub fn push(&self, record: SpanRecord) {
        let Ok(mut ring) = self.ring.lock() else {
            return;
        };
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.ring.lock().map(|r| r.len()).unwrap_or(0)
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies out every retained record, oldest first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.ring
            .lock()
            .map(|r| r.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Removes and returns every retained record, oldest first.
    pub fn drain(&self) -> Vec<SpanRecord> {
        self.ring
            .lock()
            .map(|mut r| r.drain(..).collect())
            .unwrap_or_default()
    }

    /// Discards every retained record.
    pub fn clear(&self) {
        if let Ok(mut r) = self.ring.lock() {
            r.clear();
        }
    }

    /// Writes every retained record as JSONL, oldest first.
    pub fn export_jsonl(&self, w: &mut dyn Write) -> io::Result<()> {
        for rec in self.snapshot() {
            writeln!(w, "{}", rec.to_jsonl())?;
        }
        Ok(())
    }
}

/// The process-wide trace buffer the [`crate::span!`]/[`crate::event`]
/// helpers record into.
pub fn global_trace() -> &'static TraceBuffer {
    static TRACE: OnceLock<TraceBuffer> = OnceLock::new();
    TRACE.get_or_init(|| TraceBuffer::with_capacity(DEFAULT_TRACE_CAPACITY))
}

/// An open span; records itself into [`global_trace`] on drop. Construct
/// through [`crate::span!`] (or [`Span::enter`] directly).
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
    start_us: u64,
    fields: Vec<(&'static str, f64)>,
}

impl Span {
    /// Opens a span. When observability is disabled this is a no-op shell
    /// that records nothing on drop.
    pub fn enter(name: &'static str, fields: &[(&'static str, f64)]) -> Span {
        if !crate::enabled() {
            return Span {
                name,
                start: None,
                start_us: 0,
                fields: Vec::new(),
            };
        }
        Span {
            name,
            start: Some(Instant::now()),
            start_us: now_micros(),
            fields: fields.to_vec(),
        }
    }

    /// Attaches one more numeric field to the open span.
    pub fn record_field(&mut self, key: &'static str, value: f64) {
        if self.start.is_some() {
            self.fields.push((key, value));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        global_trace().push(SpanRecord {
            name: self.name.to_string(),
            start_us: self.start_us,
            dur_us: start.elapsed().as_micros() as u64,
            fields: self
                .fields
                .iter()
                .map(|&(k, v)| (k.to_string(), v))
                .collect(),
        });
    }
}

/// Records a zero-duration event into the global trace buffer.
pub fn event(name: &'static str, fields: &[(&'static str, f64)]) {
    if !crate::enabled() {
        return;
    }
    global_trace().push(SpanRecord {
        name: name.to_string(),
        start_us: now_micros(),
        dur_us: 0,
        fields: fields.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_at_capacity() {
        let buf = TraceBuffer::with_capacity(3);
        for i in 0..5 {
            buf.push(SpanRecord {
                name: format!("s{i}"),
                start_us: i,
                dur_us: 1,
                fields: vec![],
            });
        }
        let names: Vec<String> = buf.snapshot().into_iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["s2", "s3", "s4"]);
    }

    #[test]
    fn jsonl_round_trip_preserves_record() {
        let rec = SpanRecord {
            name: "control_step".to_string(),
            start_us: 12345,
            dur_us: 678,
            fields: vec![("step".to_string(), 42.0), ("setpoint".to_string(), 23.5)],
        };
        let line = rec.to_jsonl();
        let back = SpanRecord::from_jsonl(&line).expect("parse");
        assert_eq!(back, rec);
    }

    #[test]
    fn jsonl_round_trip_no_fields() {
        let rec = SpanRecord {
            name: "tick".to_string(),
            start_us: 0,
            dur_us: 0,
            fields: vec![],
        };
        assert_eq!(SpanRecord::from_jsonl(&rec.to_jsonl()), Some(rec));
    }

    #[test]
    fn jsonl_escapes_name() {
        let rec = SpanRecord {
            name: "we\"ird\nname".to_string(),
            start_us: 1,
            dur_us: 2,
            fields: vec![],
        };
        let line = rec.to_jsonl();
        assert!(!line.contains('\n'));
        assert_eq!(SpanRecord::from_jsonl(&line), Some(rec));
    }

    #[test]
    fn drain_empties_buffer() {
        let buf = TraceBuffer::with_capacity(8);
        buf.push(SpanRecord {
            name: "a".into(),
            start_us: 0,
            dur_us: 0,
            fields: vec![],
        });
        assert_eq!(buf.drain().len(), 1);
        assert!(buf.is_empty());
    }

    #[test]
    fn monotonic_clock_advances() {
        let a = now_micros();
        let b = now_micros();
        assert!(b >= a);
    }
}
