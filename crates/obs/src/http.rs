//! HTTP scrape endpoint serving the global registry and trace, hosted
//! on the shared `tesla-reactor` event loop.
//!
//! Feature-gated (`http`) because it spawns reactor threads; the rest
//! of the crate stays passive. Earlier revisions ran a blocking accept
//! loop that served one connection at a time — a slow (or stalled)
//! scraper blocked every other scraper head-of-line. Serving from the
//! non-blocking reactor removes that failure mode: connections are
//! swept concurrently, a stalled peer only parks its own connection,
//! and transient accept errors retry on the same
//! [`tesla_backoff::BackoffPolicy`] schedule as before
//! (`obs_accept_retries_total` still counts them).
//!
//! Routes (GET-only; anything else is 404):
//! - `GET /metrics` — Prometheus text rendering of [`crate::global`]
//! - `GET /trace`   — JSONL dump of [`crate::global_trace`]
//!
//! Responses always carry `Connection: close` — scrapers open a fresh
//! connection per scrape, which keeps the handler stateless.

use std::net::SocketAddr;
use std::sync::Arc;

use tesla_reactor::{Action, Handler, Hooks, Reactor, ReactorConfig};

/// Handle to a running metrics endpoint.
#[derive(Debug)]
pub struct MetricsServer {
    reactor: Option<Reactor>,
}

/// Reactor taps: keep the historical accept-retry counter alive.
struct ObsHooks;

impl Hooks for ObsHooks {
    fn on_accept_retry(&self) {
        crate::counter!("obs_accept_retries_total").inc();
    }
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// serves until [`stop`](MetricsServer::stop).
    pub fn bind(addr: &str) -> std::io::Result<MetricsServer> {
        let cfg = ReactorConfig {
            shards: 1,
            // A scrape endpoint, not an ingest plane: a small cap
            // protects the process FD budget.
            max_connections: 256,
            accept_backoff: tesla_backoff::BackoffPolicy {
                base_ms: 50,
                factor: 2,
                max_delay_ms: 2_000,
                max_attempts: 5,
                jitter: 0.25,
                seed: 0x0B5,
            },
            ..ReactorConfig::default()
        };
        let reactor = Reactor::bind(
            addr,
            cfg,
            Arc::new(|| Box::new(HttpHandler::default()) as Box<dyn Handler>),
            Arc::new(ObsHooks),
        )?;
        Ok(MetricsServer {
            reactor: Some(reactor),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.reactor
            .as_ref()
            .expect("reactor runs until stop()")
            .local_addr()
    }

    /// Stops the reactor threads and joins them.
    pub fn stop(mut self) {
        if let Some(reactor) = self.reactor.take() {
            reactor.stop();
        }
    }
}

/// Minimal incremental HTTP/1.1 request handler: buffer until the
/// header terminator, route on the request line, answer, close.
#[derive(Default)]
struct HttpHandler {
    responded: bool,
}

impl Handler for HttpHandler {
    fn on_bytes(&mut self, input: &mut Vec<u8>, output: &mut Vec<u8>) -> Action {
        if self.responded {
            // Request already answered; ignore trailing bytes while
            // the close-after-flush drains.
            input.clear();
            return Action::Close;
        }
        // Wait for the end of the header block (torn frames keep
        // accumulating; the reactor's buffer cap bounds abuse).
        let Some(end) = find_header_end(input) else {
            return Action::Continue;
        };
        let head = String::from_utf8_lossy(&input[..end]).into_owned();
        input.drain(..);
        let request_line = head.lines().next().unwrap_or_default();
        let path = request_line.split_whitespace().nth(1).unwrap_or("/");
        let (status, content_type, body) = route(path);
        output.extend_from_slice(
            format!(
                "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n",
                body.len()
            )
            .as_bytes(),
        );
        output.extend_from_slice(body.as_bytes());
        self.responded = true;
        Action::Close
    }
}

/// Position just past the `\r\n\r\n` (or bare `\n\n`) header
/// terminator, if present.
fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|p| p + 2))
}

/// Maps a path to `(status, content-type, body)`.
fn route(path: &str) -> (&'static str, &'static str, String) {
    match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            crate::export::render_prometheus(crate::global()),
        ),
        "/trace" => {
            let mut buf = Vec::new();
            let _ = crate::global_trace().export_jsonl(&mut buf);
            (
                "200 OK",
                "application/x-ndjson",
                String::from_utf8_lossy(&buf).into_owned(),
            )
        }
        _ => (
            "404 Not Found",
            "text/plain",
            "not found: try /metrics or /trace\n".to_string(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").expect("write");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        out
    }

    #[test]
    fn serves_metrics_and_trace() {
        crate::set_enabled(true);
        crate::global().counter("http_test_total", &[]).inc();
        crate::event("http_test_event", &[]);
        let server = MetricsServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"));
        assert!(metrics.contains("http_test_total 1"));

        let trace = get(addr, "/trace");
        assert!(trace.contains("http_test_event"));

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"));

        server.stop();
    }

    #[test]
    fn stalled_scraper_no_longer_blocks_others() {
        crate::set_enabled(true);
        crate::global().counter("http_holb_total", &[]).inc();
        let server = MetricsServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        // A connection that never sends a request — under the old
        // one-at-a-time accept loop this held the listener hostage for
        // its whole read timeout.
        let stalled = TcpStream::connect(addr).expect("connect stalled");
        let metrics = get(addr, "/metrics");
        assert!(metrics.contains("http_holb_total"), "{metrics}");
        drop(stalled);
        server.stop();
    }

    #[test]
    fn torn_request_headers_are_reassembled() {
        crate::set_enabled(true);
        let server = MetricsServer::bind("127.0.0.1:0").expect("bind");
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"GET /metrics HT").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        stream.write_all(b"TP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 200 OK"), "{out}");
        server.stop();
    }
}
