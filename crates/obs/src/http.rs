//! Tiny blocking HTTP endpoint serving the global registry and trace.
//!
//! Feature-gated (`http`) because it spawns a listener thread; the rest
//! of the crate stays passive. One thread, one connection at a time,
//! GET-only — this is a debug/scrape endpoint, not a web server.
//!
//! Routes:
//! - `GET /metrics` — Prometheus text rendering of [`crate::global`]
//! - `GET /trace`   — JSONL dump of [`crate::global_trace`]

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Handle to a running metrics endpoint; dropping it leaves the thread
/// running (call [`MetricsServer::stop`] for an orderly shutdown).
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// serves until [`stop`](MetricsServer::stop).
    pub fn bind(addr: &str) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // Poll the stop flag between accepts instead of blocking forever.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_thread = stop.clone();
        let handle = std::thread::Builder::new()
            .name("tesla-obs-http".to_string())
            .spawn(move || {
                // Hard accept errors (EMFILE, ECONNABORTED bursts, …) are
                // retried on the unified jittered-backoff policy instead
                // of silently killing the scrape endpoint; only a full
                // run of consecutive failures stops the thread.
                let policy = tesla_backoff::BackoffPolicy {
                    base_ms: 50,
                    factor: 2,
                    max_delay_ms: 2_000,
                    max_attempts: 5,
                    jitter: 0.25,
                    seed: 0x0B5,
                };
                let mut consecutive_errors: u32 = 0;
                while !stop_thread.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            consecutive_errors = 0;
                            let _ = serve_one(stream);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(20));
                        }
                        Err(_) => {
                            consecutive_errors += 1;
                            if consecutive_errors >= policy.max_attempts {
                                break;
                            }
                            crate::counter!("obs_accept_retries_total").inc();
                            std::thread::sleep(Duration::from_millis(
                                policy.delay_ms(consecutive_errors),
                            ));
                        }
                    }
                }
            })?;
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the listener thread to exit and joins it.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn serve_one(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers; we only route on the request line.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line.trim().is_empty() {
            break;
        }
    }
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            crate::export::render_prometheus(crate::global()),
        ),
        "/trace" => {
            let mut buf = Vec::new();
            let _ = crate::global_trace().export_jsonl(&mut buf);
            (
                "200 OK",
                "application/x-ndjson",
                String::from_utf8_lossy(&buf).into_owned(),
            )
        }
        _ => (
            "404 Not Found",
            "text/plain",
            "not found: try /metrics or /trace\n".to_string(),
        ),
    };
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").expect("write");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        out
    }

    #[test]
    fn serves_metrics_and_trace() {
        crate::set_enabled(true);
        crate::global().counter("http_test_total", &[]).inc();
        crate::event("http_test_event", &[]);
        let server = MetricsServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"));
        assert!(metrics.contains("http_test_total 1"));

        let trace = get(addr, "/trace");
        assert!(trace.contains("http_test_event"));

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"));

        server.stop();
    }
}
