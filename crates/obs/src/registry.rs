//! The sharded metrics registry and its three instrument kinds.
//!
//! Layout: a fixed array of shards, each holding a `RwLock<HashMap>`
//! from `(name, labels)` to a registered instrument. A metric *handle*
//! (`Counter`, `Gauge`, `Histogram`) is an `Arc` around the instrument's
//! atomic state, so registration — the only path that touches a lock —
//! happens once per call site, and every subsequent update is a handful
//! of relaxed atomic operations with no shared-lock traffic. The shard
//! count bounds contention for call sites that *do* re-look-up by name
//! every time (dynamic label values like a degradation-ladder rung).

// analysis:allow-file(panic-free-control-path): registry falls back
// to detached instruments instead of panicking; the remaining sites
// are shard-index arithmetic masked to the shard count.
// analysis:allow-file(no-alloc-in-decide-steady-state): metric-key
// interning allocates on first registration only; steady-state
// lookups hit the existing shard map entry.
use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Number of independent lock domains. A small power of two: lookups
/// hash to a shard, so 16 uncorrelated hot names can register or resolve
/// concurrently without queueing on one lock.
const N_SHARDS: usize = 16;

/// Histogram bucket upper bounds, shared by every histogram: log-linear,
/// nine linear steps per decade across `1e-6 ..= 1e3` (91 buckets with
/// the overflow). Fixed buckets keep `observe` allocation-free and make
/// every exported histogram directly comparable.
pub fn bucket_bounds() -> &'static [f64] {
    static BOUNDS: OnceLock<Vec<f64>> = OnceLock::new();
    BOUNDS.get_or_init(|| {
        let mut v = Vec::with_capacity(90);
        for exp in -6i32..=3 {
            for mantissa in 1..=9 {
                v.push(mantissa as f64 * 10f64.powi(exp));
            }
        }
        v
    })
}

/// Index of the bucket a value falls into (`value <= bound`); values
/// beyond the last bound land in the overflow bucket.
fn bucket_index(value: f64) -> usize {
    let bounds = bucket_bounds();
    if value.is_nan() || value <= 0.0 {
        return 0; // zero, negative, or NaN: first bucket
    }
    bounds.partition_point(|&b| b < value)
}

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    fn new() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding the latest observation of a float quantity.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    fn new() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }

    /// Stores `v` (last writer wins).
    pub fn set(&self, v: f64) {
        if crate::enabled() {
            self.0.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramState {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observations, stored as f64 bits and updated by CAS — the
    /// only non-single-instruction path, and still lock-free.
    sum_bits: AtomicU64,
}

/// A histogram over the shared log-linear buckets.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramState>);

impl Histogram {
    fn new() -> Self {
        let n = bucket_bounds().len() + 1;
        Histogram(Arc::new(HistogramState {
            buckets: (0..n).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }))
    }

    /// Records one observation.
    pub fn observe(&self, value: f64) {
        if !crate::enabled() || value.is_nan() {
            return;
        }
        let s = &self.0;
        s.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        s.count.fetch_add(1, Ordering::Relaxed);
        let _ = s
            .sum_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + value).to_bits())
            });
    }

    /// Records a `std::time::Duration` in seconds.
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// Per-bucket counts (non-cumulative), one per bound plus overflow.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Approximate quantile (`0.0 ..= 1.0`) from the bucket midpoint of
    /// the bucket containing the target rank. Good to one bucket width.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let bounds = bucket_bounds();
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i < bounds.len() {
                    bounds[i]
                } else {
                    bounds[bounds.len() - 1]
                };
            }
        }
        bounds[bounds.len() - 1]
    }
}

/// Which instrument a registry entry holds.
#[derive(Debug, Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A fully resolved series identity: static name + sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SeriesKey {
    name: &'static str,
    labels: Vec<(&'static str, String)>,
}

/// One exported sample, as returned by [`MetricsRegistry::snapshot`].
#[derive(Debug, Clone)]
pub struct MetricSample {
    /// Metric name.
    pub name: &'static str,
    /// Sorted label pairs.
    pub labels: Vec<(&'static str, String)>,
    /// The value, by instrument kind.
    pub value: SampleValue,
}

/// Snapshot value of one series.
#[derive(Debug, Clone)]
pub enum SampleValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(f64),
    /// Histogram reading: non-cumulative bucket counts (aligned with
    /// [`bucket_bounds`] plus one overflow slot), total count, and sum.
    Histogram {
        /// Per-bucket counts.
        buckets: Vec<u64>,
        /// Total observation count.
        count: u64,
        /// Sum of observations.
        sum: f64,
    },
}

#[derive(Default)]
struct Shard {
    metrics: RwLock<HashMap<SeriesKey, Instrument>>,
}

/// The sharded registry. Most users go through [`crate::global`]; tests
/// and embedders can hold private instances.
pub struct MetricsRegistry {
    shards: Vec<Shard>,
    /// Same-name-different-kind registrations observed (a bug signal;
    /// the conflicting call site gets a detached instrument).
    kind_conflicts: AtomicU64,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            shards: (0..N_SHARDS).map(|_| Shard::default()).collect(),
            kind_conflicts: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, key: &SeriesKey) -> &Shard {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % N_SHARDS]
    }

    fn key(name: &'static str, labels: &[(&'static str, &str)]) -> SeriesKey {
        let mut labels: Vec<(&'static str, String)> =
            labels.iter().map(|&(k, v)| (k, v.to_string())).collect();
        labels.sort();
        SeriesKey { name, labels }
    }

    fn resolve<T, FNew, FGet>(&self, key: SeriesKey, new: FNew, get: FGet) -> T
    where
        FNew: Fn() -> (T, Instrument),
        FGet: Fn(&Instrument) -> Option<T>,
    {
        let shard = self.shard_for(&key);
        if let Ok(map) = shard.metrics.read() {
            if let Some(existing) = map.get(&key) {
                if let Some(t) = get(existing) {
                    return t;
                }
                // Same series registered as a different kind: hand the
                // caller a detached instrument instead of panicking in a
                // control path, and count the conflict.
                self.kind_conflicts.fetch_add(1, Ordering::Relaxed);
                return new().0;
            }
        }
        let mut map = match shard.metrics.write() {
            Ok(m) => m,
            // A poisoned registry lock must never take down the control
            // loop; fall back to a detached instrument.
            Err(_) => return new().0,
        };
        if let Some(existing) = map.get(&key) {
            if let Some(t) = get(existing) {
                return t;
            }
            self.kind_conflicts.fetch_add(1, Ordering::Relaxed);
            return new().0;
        }
        let (t, instrument) = new();
        map.insert(key, instrument);
        t
    }

    /// Registers (or resolves) a counter for `name` + `labels`.
    pub fn counter(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Counter {
        self.resolve(
            Self::key(name, labels),
            || {
                let c = Counter::new();
                (c.clone(), Instrument::Counter(c))
            },
            |i| match i {
                Instrument::Counter(c) => Some(c.clone()),
                Instrument::Gauge(_) | Instrument::Histogram(_) => None,
            },
        )
    }

    /// Registers (or resolves) a gauge for `name` + `labels`.
    pub fn gauge(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Gauge {
        self.resolve(
            Self::key(name, labels),
            || {
                let g = Gauge::new();
                (g.clone(), Instrument::Gauge(g))
            },
            |i| match i {
                Instrument::Gauge(g) => Some(g.clone()),
                Instrument::Counter(_) | Instrument::Histogram(_) => None,
            },
        )
    }

    /// Registers (or resolves) a histogram for `name` + `labels`.
    pub fn histogram(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Histogram {
        self.resolve(
            Self::key(name, labels),
            || {
                let h = Histogram::new();
                (h.clone(), Instrument::Histogram(h))
            },
            |i| match i {
                Instrument::Histogram(h) => Some(h.clone()),
                Instrument::Counter(_) | Instrument::Gauge(_) => None,
            },
        )
    }

    /// Number of distinct registered series.
    pub fn series_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.metrics.read().map(|m| m.len()).unwrap_or(0))
            .sum()
    }

    /// Kind-conflict registrations observed so far.
    pub fn kind_conflicts(&self) -> u64 {
        self.kind_conflicts.load(Ordering::Relaxed)
    }

    /// A stable-ordered snapshot of every series (sorted by name, then
    /// labels) — the input to both exporters.
    pub fn snapshot(&self) -> Vec<MetricSample> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let Ok(map) = shard.metrics.read() else {
                continue;
            };
            for (key, instrument) in map.iter() {
                let value = match instrument {
                    Instrument::Counter(c) => SampleValue::Counter(c.get()),
                    Instrument::Gauge(g) => SampleValue::Gauge(g.get()),
                    Instrument::Histogram(h) => SampleValue::Histogram {
                        buckets: h.bucket_counts(),
                        count: h.count(),
                        sum: h.sum(),
                    },
                };
                out.push(MetricSample {
                    name: key.name,
                    labels: key.labels.clone(),
                    value,
                });
            }
        }
        out.sort_by(|a, b| (a.name, &a.labels).cmp(&(b.name, &b.labels)));
        out
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("series", &self.series_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Instrument updates are gated on the process-wide enabled flag;
    // every test turns it on (the disabled path has its own
    // integration-test binary so the flag never races).
    fn registry() -> MetricsRegistry {
        crate::set_enabled(true);
        MetricsRegistry::new()
    }

    #[test]
    fn counter_accumulates() {
        let r = registry();
        let c = r.counter("test_events_total", &[]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Second resolution reaches the same series.
        assert_eq!(r.counter("test_events_total", &[]).get(), 5);
        assert_eq!(r.series_count(), 1);
    }

    #[test]
    fn labels_distinguish_series_and_order_does_not() {
        let r = registry();
        r.counter("x_total", &[("a", "1"), ("b", "2")]).inc();
        r.counter("x_total", &[("b", "2"), ("a", "1")]).inc();
        r.counter("x_total", &[("a", "2"), ("b", "2")]).inc();
        assert_eq!(r.series_count(), 2);
        assert_eq!(r.counter("x_total", &[("a", "1"), ("b", "2")]).get(), 2);
    }

    #[test]
    fn gauge_last_write_wins() {
        let r = registry();
        let g = r.gauge("temp_celsius", &[]);
        g.set(21.5);
        g.set(-3.25);
        assert_eq!(g.get(), -3.25);
    }

    #[test]
    fn histogram_count_sum_and_buckets() {
        let r = registry();
        let h = r.histogram("latency_seconds", &[]);
        h.observe(0.0015);
        h.observe(0.0015);
        h.observe(2.0);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 2.003).abs() < 1e-12);
        let buckets = h.bucket_counts();
        assert_eq!(buckets.iter().sum::<u64>(), 3);
        // 0.0015 lands at the 0.002 bound; 2.0 at the 2.0 bound.
        let bounds = bucket_bounds();
        let i_0002 = bounds.iter().position(|&b| b >= 0.0015).unwrap();
        assert_eq!(buckets[i_0002], 2);
    }

    #[test]
    fn bucket_edges_are_inclusive_upper() {
        let bounds = bucket_bounds();
        assert_eq!(bounds.len(), 90);
        // An exact bound value falls into its own bucket.
        let i = bucket_index(1.0);
        assert_eq!(bounds[i], 1.0);
        // Overflow beyond the last bound.
        assert_eq!(bucket_index(1e9), bounds.len());
        // Non-positive and NaN land in the first bucket.
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
    }

    #[test]
    fn quantile_is_bucket_accurate() {
        let r = registry();
        let h = r.histogram("q_seconds", &[]);
        for _ in 0..90 {
            h.observe(0.01);
        }
        for _ in 0..10 {
            h.observe(1.0);
        }
        assert_eq!(h.quantile(0.5), 0.01);
        assert_eq!(h.quantile(0.99), 1.0);
    }

    #[test]
    fn kind_conflict_returns_detached_instrument() {
        let r = registry();
        r.counter("same_total", &[]).inc();
        let g = r.gauge("same_total", &[]);
        g.set(7.0); // must not crash; detached
        assert_eq!(r.kind_conflicts(), 1);
        assert_eq!(r.counter("same_total", &[]).get(), 1);
        assert_eq!(r.series_count(), 1);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = registry();
        r.counter("b_total", &[]).inc();
        r.gauge("a_celsius", &[]).set(1.0);
        r.histogram("c_seconds", &[]).observe(0.5);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["a_celsius", "b_total", "c_seconds"]);
    }
}
