//! # tesla-obs — dependency-free observability for the TESLA stack
//!
//! Architecture, in five lines:
//! 1. A global sharded [`MetricsRegistry`] resolves `(&'static str name,
//!    labels)` to counters, gauges, and log-linear-bucket histograms whose
//!    update paths are plain atomics — no locks after first resolution.
//! 2. [`span!`]/[`event`] record named intervals with monotonic µs
//!    timestamps into a bounded drop-oldest [`TraceBuffer`].
//! 3. [`export`] renders Prometheus text or JSON from a registry snapshot;
//!    traces export as JSONL. An optional `http` feature serves both from
//!    a tiny blocking endpoint. Everything is `std`-only.
//!
//! Collection is off by default; flip it on with [`set_enabled`]. All
//! update paths check the flag first, so a disabled build pays one
//! relaxed atomic load per call site.
//!
//! ```
//! tesla_obs::set_enabled(true);
//! let steps = tesla_obs::global().counter("control_steps_total", &[]);
//! {
//!     let mut span = tesla_obs::span!("control_step", step = 1);
//!     span.record_field("setpoint_celsius", 23.5);
//!     steps.inc();
//! } // span records itself on drop
//! assert_eq!(steps.get(), 1);
//! let text = tesla_obs::export::render_prometheus(tesla_obs::global());
//! assert!(text.contains("control_steps_total 1"));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
#[cfg(feature = "http")]
pub mod http;
pub mod registry;
pub mod trace;

pub use registry::{
    bucket_bounds, Counter, Gauge, Histogram, MetricSample, MetricsRegistry, SampleValue,
};
pub use trace::{event, global_trace, now_micros, Span, SpanRecord, TraceBuffer};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// True when metric/trace collection is on. Every update path checks this
/// first, so the disabled cost is one relaxed load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns collection on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The process-wide registry used by the [`counter!`]/[`gauge!`]/
/// [`histogram!`] macros and the instrumented TESLA crates.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// A guard that observes elapsed seconds into a [`Histogram`] on drop.
/// Started while collection is disabled, it observes nothing.
#[derive(Debug)]
pub struct Timer {
    histogram: Histogram,
    start: Option<Instant>,
}

impl Timer {
    /// Starts timing against `histogram`.
    pub fn start(histogram: Histogram) -> Timer {
        let start = enabled().then(Instant::now);
        Timer { histogram, start }
    }

    /// Seconds elapsed so far (0 when started disabled).
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.map(|s| s.elapsed().as_secs_f64()).unwrap_or(0.0)
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.histogram.observe(start.elapsed().as_secs_f64());
        }
    }
}

/// Resolves (once) and returns a label-free [`Counter`] on the global
/// registry; the handle is cached in a `static OnceLock` at the call site,
/// so repeat hits cost one atomic clone.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Counter> = ::std::sync::OnceLock::new();
        HANDLE
            .get_or_init(|| $crate::global().counter($name, &[]))
            .clone()
    }};
}

/// Resolves (once) and returns a label-free [`Gauge`] on the global
/// registry, cached at the call site like [`counter!`].
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Gauge> = ::std::sync::OnceLock::new();
        HANDLE
            .get_or_init(|| $crate::global().gauge($name, &[]))
            .clone()
    }};
}

/// Resolves (once) and returns a label-free [`Histogram`] on the global
/// registry, cached at the call site like [`counter!`].
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Histogram> = ::std::sync::OnceLock::new();
        HANDLE
            .get_or_init(|| $crate::global().histogram($name, &[]))
            .clone()
    }};
}

/// Opens a [`Span`] recording into the global trace buffer on drop.
///
/// ```
/// tesla_obs::set_enabled(true);
/// let _span = tesla_obs::span!("bo_iteration", iteration = 3, best = 0.25);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::enter($name, &[])
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::Span::enter($name, &[$((stringify!($key), ($value) as f64)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macros_cache_and_update() {
        set_enabled(true);
        counter!("lib_macro_total").inc();
        counter!("lib_macro_total").inc();
        assert_eq!(global().counter("lib_macro_total", &[]).get(), 2);
        gauge!("lib_macro_ratio").set(0.5);
        assert_eq!(global().gauge("lib_macro_ratio", &[]).get(), 0.5);
        histogram!("lib_macro_seconds").observe(0.01);
        assert_eq!(global().histogram("lib_macro_seconds", &[]).count(), 1);
    }

    #[test]
    fn timer_observes_on_drop() {
        set_enabled(true);
        let h = global().histogram("lib_timer_seconds", &[]);
        {
            let _t = Timer::start(h.clone());
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn span_macro_records_fields() {
        set_enabled(true);
        {
            let _s = span!("lib_span_test", step = 7);
        }
        let recs = global_trace().snapshot();
        assert!(recs
            .iter()
            .any(|r| r.name == "lib_span_test" && r.fields.contains(&("step".to_string(), 7.0))));
    }
}
