//! Exact Gaussian-process regression with per-observation (fixed) noise.
//!
//! Mirrors BoTorch's `FixedNoiseGP` (§3.3): the observation noise is not a
//! learned hyper-parameter but *supplied per point* — TESLA feeds it the
//! bootstrap variance from its prediction-error monitor, which is how the
//! optimizer becomes "modeling-error-aware".
//!
//! Because the optimizer refits the same training set across an entire
//! lengthscale x outputscale hyper grid at every BO iteration, this module
//! is built around two reuse mechanisms:
//!
//! * a **pairwise-distance cache** ([`pairwise_distances`]): stationary
//!   kernels only need `r / lengthscale`, so the Euclidean distances are
//!   computed once per training set and shared by every hyper candidate;
//! * an **incremental rank-1 update** ([`FixedNoiseGp::append_observation`]
//!   and [`MaternHyperSearch::append`]): appending one BO observation
//!   extends the Cholesky factorization in `O(n^2)` instead of
//!   refactorizing in `O(n^3)`.

// analysis:allow-file(panic-free-control-path): dense numeric kernel;
// every index is loop-bounded by lengths validated at the call
// boundary, and debug_asserts guard the shape contracts.
// analysis:allow-file(no-alloc-in-decide-steady-state): work buffers
// are sized by model dimensions fixed at fit time; a fresh surrogate
// per decision is the paper's design, and zero-alloc steady-state
// scoring is tracked as ROADMAP work.
use crate::kernel::{euclidean_distance, Kernel};
use crate::GpError;
use tesla_linalg::{Cholesky, Matrix};

/// Posterior at a batch of query points.
#[derive(Debug, Clone)]
pub struct Posterior {
    /// Posterior means.
    pub mean: Vec<f64>,
    /// Posterior (latent) variances, floored at zero.
    pub var: Vec<f64>,
}

/// Euclidean distances between all pairs of points (symmetric, zero
/// diagonal). Computed once per training set and reused across every
/// hyper-parameter candidate of a stationary-kernel fit.
pub fn pairwise_distances(x: &[Vec<f64>]) -> Matrix {
    let n = x.len();
    let mut d = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i + 1..n {
            let r = euclidean_distance(&x[i], &x[j]);
            d[(i, j)] = r;
            d[(j, i)] = r;
        }
    }
    d
}

/// A fitted fixed-noise GP.
#[derive(Debug)]
pub struct FixedNoiseGp<K: Kernel> {
    kernel: K,
    x: Vec<Vec<f64>>,
    /// Training targets (kept for incremental appends).
    y: Vec<f64>,
    /// Per-point noise variances (kept for incremental appends).
    noise_var: Vec<f64>,
    /// `K + diag(noise)` factorization.
    chol: Cholesky,
    /// `(K + Σ)⁻¹ (y − μ)`.
    alpha: Vec<f64>,
    /// Constant prior mean (the training-target mean).
    mean: f64,
    /// Residuals for the marginal-likelihood computation.
    log_marginal: f64,
}

impl<K: Kernel> FixedNoiseGp<K> {
    /// Fits on training points `x`, targets `y`, and per-point noise
    /// *variances*.
    pub fn fit(kernel: K, x: Vec<Vec<f64>>, y: &[f64], noise_var: &[f64]) -> Result<Self, GpError> {
        let dists = pairwise_distances(&x);
        Self::fit_from_distances(kernel, x, y, noise_var, &dists)
    }

    /// Like [`FixedNoiseGp::fit`], but reuses a precomputed
    /// pairwise-distance matrix (see [`pairwise_distances`]) so a hyper
    /// grid over the same training set pays for the distances once.
    pub fn fit_from_distances(
        kernel: K,
        x: Vec<Vec<f64>>,
        y: &[f64],
        noise_var: &[f64],
        dists: &Matrix,
    ) -> Result<Self, GpError> {
        let n = x.len();
        if n == 0 {
            return Err(GpError::Empty);
        }
        if y.len() != n || noise_var.len() != n {
            return Err(GpError::Shape(format!(
                "{} points, {} targets, {} noise entries",
                n,
                y.len(),
                noise_var.len()
            )));
        }
        let d = x[0].len();
        if x.iter().any(|p| p.len() != d) {
            return Err(GpError::Shape("ragged input points".into()));
        }
        if dists.shape() != (n, n) {
            return Err(GpError::Shape(format!(
                "distance matrix is {:?}, need ({n}, {n})",
                dists.shape()
            )));
        }

        let chol = Cholesky::decompose_jittered(&gram_matrix(&kernel, dists, noise_var), 1e-8, 12)
            .map_err(|e| GpError::Numerical(e.to_string()))?;
        let mut gp = FixedNoiseGp {
            kernel,
            x,
            y: y.to_vec(),
            noise_var: noise_var.to_vec(),
            chol,
            alpha: Vec::new(),
            mean: 0.0,
            log_marginal: 0.0,
        };
        gp.refresh_alpha()?;
        Ok(gp)
    }

    /// Recomputes mean, alpha, and the log marginal likelihood from the
    /// current factorization and targets (`O(n^2)`).
    fn refresh_alpha(&mut self) -> Result<(), GpError> {
        let n = self.y.len();
        self.mean = self.y.iter().sum::<f64>() / n as f64;
        let resid: Vec<f64> = self.y.iter().map(|v| v - self.mean).collect();
        self.alpha = self
            .chol
            .solve(&resid)
            .map_err(|e| GpError::Numerical(e.to_string()))?;
        // log p(y) = −½ rᵀα − ½ log|K+Σ| − n/2 log 2π
        let quad: f64 = resid.iter().zip(&self.alpha).map(|(r, a)| r * a).sum();
        self.log_marginal = -0.5 * quad
            - 0.5 * self.chol.log_det()
            - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();
        Ok(())
    }

    /// Appends one observation, extending the Cholesky factorization with
    /// a rank-1 row update (`O(n^2)`) instead of refitting (`O(n^3)`).
    ///
    /// Falls back to a full jittered refactorization when the incremental
    /// update is numerically indefinite (e.g. a near-duplicate point).
    pub fn append_observation(
        &mut self,
        x_new: Vec<f64>,
        y_new: f64,
        noise_var: f64,
    ) -> Result<(), GpError> {
        if let Some(first) = self.x.first() {
            if x_new.len() != first.len() {
                return Err(GpError::Shape(format!(
                    "new point has {} dims, training set has {}",
                    x_new.len(),
                    first.len()
                )));
            }
        }
        let col: Vec<f64> = self.x.iter().map(|p| self.kernel.eval(p, &x_new)).collect();
        let diag = self.kernel.diag() + noise_var.max(0.0) + 1e-10;
        let appended = self.chol.append_row(&col, diag).is_ok();
        self.x.push(x_new);
        self.y.push(y_new);
        self.noise_var.push(noise_var);
        if !appended {
            // Full refit with jitter escalation.
            let dists = pairwise_distances(&self.x);
            self.chol = Cholesky::decompose_jittered(
                &gram_matrix(&self.kernel, &dists, &self.noise_var),
                1e-8,
                12,
            )
            .map_err(|e| GpError::Numerical(e.to_string()))?;
        }
        self.refresh_alpha()
    }

    /// Number of training points.
    pub fn n_train(&self) -> usize {
        self.x.len()
    }

    /// The log marginal likelihood of the training data.
    pub fn log_marginal_likelihood(&self) -> f64 {
        self.log_marginal
    }

    /// The constant prior mean.
    pub fn prior_mean(&self) -> f64 {
        self.mean
    }

    /// Cross-covariance vectors between every query and the training set,
    /// flattened query-major (`queries.len() * n_train` entries).
    fn kstar_flat(&self, queries: &[Vec<f64>]) -> Vec<f64> {
        let n = self.x.len();
        let mut flat = Vec::with_capacity(queries.len() * n);
        for q in queries {
            for p in &self.x {
                flat.push(self.kernel.eval(p, q));
            }
        }
        flat
    }

    /// Posterior mean and variance at each query point (marginals).
    ///
    /// All queries are solved through **one** batched whitened solve
    /// ([`Cholesky::forward_substitute_batch`]) rather than a vector
    /// solve per query, so scoring a candidate grid is a single pass.
    pub fn posterior(&self, queries: &[Vec<f64>]) -> Posterior {
        let n = self.x.len();
        let kstar = self.kstar_flat(queries);
        let whitened = self
            .chol
            .forward_substitute_batch(&kstar)
            .unwrap_or_else(|_| kstar.clone());
        let mut mean = Vec::with_capacity(queries.len());
        let mut var = Vec::with_capacity(queries.len());
        for (ks, w) in kstar.chunks(n).zip(whitened.chunks(n)) {
            let m = self.mean + tesla_linalg::vector::dot(ks, &self.alpha);
            let v = self.kernel.diag() - tesla_linalg::vector::dot(w, w);
            mean.push(m);
            var.push(v.max(0.0));
        }
        Posterior { mean, var }
    }

    /// Joint posterior covariance over the query points.
    pub fn posterior_cov(&self, queries: &[Vec<f64>]) -> (Vec<f64>, Matrix) {
        let n = self.x.len();
        let m = queries.len();
        let kstar = self.kstar_flat(queries);
        let whitened = self
            .chol
            .forward_substitute_batch(&kstar)
            .unwrap_or_else(|_| kstar.clone());
        let mut mean = Vec::with_capacity(m);
        for ks in kstar.chunks(n) {
            mean.push(self.mean + tesla_linalg::vector::dot(ks, &self.alpha));
        }
        let mut cov = Matrix::zeros(m, m);
        for i in 0..m {
            let wi = &whitened[i * n..(i + 1) * n];
            for j in i..m {
                let wj = &whitened[j * n..(j + 1) * n];
                let prior = self.kernel.eval(&queries[i], &queries[j]);
                let v = prior - tesla_linalg::vector::dot(wi, wj);
                cov[(i, j)] = v;
                cov[(j, i)] = v;
            }
        }
        (mean, cov)
    }

    /// Draws joint posterior samples at the query points using the
    /// provided standard-normal vectors (e.g. QMC draws from
    /// [`crate::sobol::qmc_normal`], each of length `queries.len()`).
    /// Returns one sampled function evaluation per normal vector.
    pub fn sample_posterior(
        &self,
        queries: &[Vec<f64>],
        normals: &[Vec<f64>],
    ) -> Result<Vec<Vec<f64>>, GpError> {
        let m = queries.len();
        let (mean, mut cov) = self.posterior_cov(queries);
        cov.add_diagonal(1e-9);
        let chol = Cholesky::decompose_jittered(&cov, 1e-9, 12)
            .map_err(|e| GpError::Numerical(e.to_string()))?;
        let mut out = Vec::with_capacity(normals.len());
        for z in normals {
            if z.len() != m {
                return Err(GpError::Shape(format!(
                    "normal vector has {} entries, need {m}",
                    z.len()
                )));
            }
            let lz = chol
                .lower_matvec(z)
                .map_err(|e| GpError::Numerical(e.to_string()))?;
            out.push(mean.iter().zip(&lz).map(|(mu, e)| mu + e).collect());
        }
        Ok(out)
    }
}

/// Builds `K + diag(noise) + 1e-10 I` from a cached distance matrix.
fn gram_matrix<K: Kernel>(kernel: &K, dists: &Matrix, noise_var: &[f64]) -> Matrix {
    let n = noise_var.len();
    let mut k = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            let v = kernel.eval_dist(dists[(i, j)]);
            k[(i, j)] = v;
            k[(j, i)] = v;
        }
        k[(i, i)] += noise_var[i].max(0.0) + 1e-10;
    }
    k
}

/// Stage-2 hyper refinement: multiplicative coordinate descent with a
/// shrinking step, starting from `(ls, os)`. Shared by
/// [`fit_matern_hypers`] and [`MaternHyperSearch::select`].
fn refine_matern(
    mut ls: f64,
    mut os: f64,
    mut gp: FixedNoiseGp<crate::kernel::Matern52>,
    x: &[Vec<f64>],
    y: &[f64],
    noise_var: &[f64],
    dists: &Matrix,
) -> FixedNoiseGp<crate::kernel::Matern52> {
    let try_fit = |ls: f64, os: f64| -> Option<FixedNoiseGp<crate::kernel::Matern52>> {
        let k = crate::kernel::Matern52::new(ls, os);
        FixedNoiseGp::fit_from_distances(k, x.to_vec(), y, noise_var, dists).ok()
    };
    let mut step = 1.6;
    for _round in 0..6 {
        let mut improved = false;
        for (dl, do_) in [
            (step, 1.0),
            (1.0 / step, 1.0),
            (1.0, step),
            (1.0, 1.0 / step),
        ] {
            let (cl, co) = (ls * dl, os * do_);
            if let Some(cand) = try_fit(cl, co) {
                if cand.log_marginal_likelihood() > gp.log_marginal_likelihood() {
                    ls = cl;
                    os = co;
                    gp = cand;
                    improved = true;
                }
            }
        }
        if !improved {
            step = step.sqrt();
            if step < 1.05 {
                break;
            }
        }
    }
    gp
}

/// Fits Matérn 5/2 hyper-parameters by maximizing the log marginal
/// likelihood: a small log-spaced grid locates the basin, then a few
/// rounds of multiplicative coordinate descent refine within it — the
/// pragmatic counterpart of GPyTorch's gradient-based fit for 1-D search
/// spaces. The pairwise-distance matrix is computed once and shared by
/// every candidate.
pub fn fit_matern_hypers(
    x: &[Vec<f64>],
    y: &[f64],
    noise_var: &[f64],
    lengthscales: &[f64],
    outputscales: &[f64],
) -> Result<FixedNoiseGp<crate::kernel::Matern52>, GpError> {
    let dists = pairwise_distances(x);
    let try_fit = |ls: f64, os: f64| -> Option<FixedNoiseGp<crate::kernel::Matern52>> {
        let k = crate::kernel::Matern52::new(ls, os);
        FixedNoiseGp::fit_from_distances(k, x.to_vec(), y, noise_var, &dists).ok()
    };

    // Stage 1: grid.
    let mut best: Option<(f64, f64, FixedNoiseGp<crate::kernel::Matern52>)> = None;
    for &ls in lengthscales {
        for &os in outputscales {
            if let Some(gp) = try_fit(ls, os) {
                if best.as_ref().is_none_or(|(_, _, b)| {
                    gp.log_marginal_likelihood() > b.log_marginal_likelihood()
                }) {
                    best = Some((ls, os, gp));
                }
            }
        }
    }
    let (ls, os, gp) = best.ok_or(GpError::Numerical(
        "no hyper-parameter candidate factored".into(),
    ))?;

    Ok(refine_matern(ls, os, gp, x, y, noise_var, &dists))
}

/// One hyper-grid candidate tracked incrementally.
#[derive(Debug)]
struct GridCandidate {
    lengthscale: f64,
    outputscale: f64,
    /// Cached factorization of `K(ls, os) + diag(noise)` over the current
    /// training set (`None` when the candidate never factored).
    chol: Option<Cholesky>,
}

/// Incremental Matérn 5/2 hyper-grid search over a growing training set.
///
/// The Bayesian optimizer refits its two GPs after every observation; a
/// naive refit refactorizes `lengthscales x outputscales` kernel matrices
/// from scratch each time. This structure keeps one Cholesky factor *per
/// grid candidate* and extends each with a rank-1
/// [`Cholesky::append_row`] when an observation arrives, so the per-
/// iteration cost of the whole grid drops from `O(g·n^3)` to `O(g·n^2)`.
/// [`MaternHyperSearch::select`] then scores candidates by log marginal
/// likelihood (an `O(n^2)` solve per candidate) and runs the same
/// coordinate-descent refinement as [`fit_matern_hypers`] over the cached
/// distance matrix.
#[derive(Debug)]
pub struct MaternHyperSearch {
    x: Vec<Vec<f64>>,
    y: Vec<f64>,
    noise_var: Vec<f64>,
    dists: Matrix,
    candidates: Vec<GridCandidate>,
}

impl MaternHyperSearch {
    /// Builds the search over the initial training set, factoring every
    /// grid candidate once. Errors if no candidate factors.
    pub fn new(
        x: Vec<Vec<f64>>,
        y: Vec<f64>,
        noise_var: Vec<f64>,
        lengthscales: &[f64],
        outputscales: &[f64],
    ) -> Result<Self, GpError> {
        if x.is_empty() {
            return Err(GpError::Empty);
        }
        if y.len() != x.len() || noise_var.len() != x.len() {
            return Err(GpError::Shape(format!(
                "{} points, {} targets, {} noise entries",
                x.len(),
                y.len(),
                noise_var.len()
            )));
        }
        let dists = pairwise_distances(&x);
        let mut candidates = Vec::with_capacity(lengthscales.len() * outputscales.len());
        for &ls in lengthscales {
            for &os in outputscales {
                let kernel = crate::kernel::Matern52::new(ls, os);
                let chol = Cholesky::decompose_jittered(
                    &gram_matrix(&kernel, &dists, &noise_var),
                    1e-8,
                    12,
                )
                .ok();
                candidates.push(GridCandidate {
                    lengthscale: ls,
                    outputscale: os,
                    chol,
                });
            }
        }
        if candidates.iter().all(|c| c.chol.is_none()) {
            return Err(GpError::Numerical(
                "no hyper-parameter candidate factored".into(),
            ));
        }
        Ok(MaternHyperSearch {
            x,
            y,
            noise_var,
            dists,
            candidates,
        })
    }

    /// Number of training points currently tracked.
    pub fn n_train(&self) -> usize {
        self.x.len()
    }

    /// Appends one observation: the distance matrix grows by one
    /// row/column and every factored candidate takes a rank-1 row update.
    /// Candidates whose incremental update goes indefinite are refit from
    /// scratch (and dropped if even that fails).
    pub fn append(&mut self, x_new: Vec<f64>, y_new: f64, noise_var: f64) -> Result<(), GpError> {
        if x_new.len() != self.x[0].len() {
            return Err(GpError::Shape(format!(
                "new point has {} dims, training set has {}",
                x_new.len(),
                self.x[0].len()
            )));
        }
        let n = self.x.len();
        let new_dists: Vec<f64> = self
            .x
            .iter()
            .map(|p| euclidean_distance(p, &x_new))
            .collect();
        let mut grown = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            grown.row_mut(i)[..n].copy_from_slice(self.dists.row(i));
            grown[(i, n)] = new_dists[i];
            grown[(n, i)] = new_dists[i];
        }
        self.dists = grown;
        self.x.push(x_new);
        self.y.push(y_new);
        self.noise_var.push(noise_var);

        let diag_noise = noise_var.max(0.0) + 1e-10;
        // One kernel-column buffer shared by every candidate: refilled in
        // place per candidate instead of collected fresh each time.
        let mut col = vec![0.0; new_dists.len()];
        for cand in &mut self.candidates {
            let kernel = crate::kernel::Matern52::new(cand.lengthscale, cand.outputscale);
            let appended = match cand.chol.as_mut() {
                Some(chol) => {
                    for (c, &r) in col.iter_mut().zip(&new_dists) {
                        *c = kernel.eval_dist(r);
                    }
                    chol.append_row(&col, kernel.diag() + diag_noise).is_ok()
                }
                None => false,
            };
            if !appended {
                cand.chol = Cholesky::decompose_jittered(
                    &gram_matrix(&kernel, &self.dists, &self.noise_var),
                    1e-8,
                    12,
                )
                .ok();
            }
        }
        Ok(())
    }

    /// Selects the best grid candidate by log marginal likelihood and
    /// refines it with coordinate descent, exactly like
    /// [`fit_matern_hypers`] but reusing the cached factorizations and
    /// distance matrix.
    pub fn select(&self) -> Result<FixedNoiseGp<crate::kernel::Matern52>, GpError> {
        // Score every candidate against borrowed state; the training-set
        // clones and the O(n^2) factor clone are paid once, for the
        // winner only, instead of once per grid cell per BO iteration.
        // The score below is exactly `refresh_alpha`'s log-marginal
        // (same residuals, same solve, same accumulation order), so the
        // selected candidate — and therefore the decision — is
        // bit-identical to building each GP eagerly.
        let n = self.y.len();
        let mean = self.y.iter().sum::<f64>() / n as f64;
        let resid: Vec<f64> = self.y.iter().map(|v| v - mean).collect();
        let mut best: Option<(usize, f64)> = None;
        for (ci, cand) in self.candidates.iter().enumerate() {
            let Some(chol) = cand.chol.as_ref() else {
                continue;
            };
            let Ok(alpha) = chol.solve(&resid) else {
                continue;
            };
            let quad: f64 = resid.iter().zip(&alpha).map(|(r, a)| r * a).sum();
            let lm = -0.5 * quad
                - 0.5 * chol.log_det()
                - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();
            if best.is_none_or(|(_, b)| lm > b) {
                best = Some((ci, lm));
            }
        }
        let (ci, _) = best.ok_or(GpError::Numerical(
            "no hyper-parameter candidate factored".into(),
        ))?;
        let cand = &self.candidates[ci];
        let kernel = crate::kernel::Matern52::new(cand.lengthscale, cand.outputscale);
        let mut gp = FixedNoiseGp {
            kernel,
            x: self.x.clone(),
            y: self.y.clone(),
            noise_var: self.noise_var.clone(),
            chol: cand.chol.clone().expect("winner was scored via its factor"),
            alpha: Vec::new(),
            mean: 0.0,
            log_marginal: 0.0,
        };
        gp.refresh_alpha()
            .map_err(|_| GpError::Numerical("winning candidate failed to solve".into()))?;
        Ok(refine_matern(
            cand.lengthscale,
            cand.outputscale,
            gp,
            &self.x,
            &self.y,
            &self.noise_var,
            &self.dists,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Matern52;

    fn train_1d(f: impl Fn(f64) -> f64, xs: &[f64]) -> (Vec<Vec<f64>>, Vec<f64>) {
        (
            xs.iter().map(|&v| vec![v]).collect(),
            xs.iter().map(|&v| f(v)).collect(),
        )
    }

    #[test]
    fn interpolates_noise_free_observations() {
        let (x, y) = train_1d(|v| v.sin(), &[0.0, 1.0, 2.0, 3.0, 4.0]);
        let gp = FixedNoiseGp::fit(Matern52::new(1.0, 1.0), x.clone(), &y, &[1e-8; 5]).unwrap();
        let post = gp.posterior(&x);
        for (m, t) in post.mean.iter().zip(&y) {
            assert!((m - t).abs() < 1e-3, "{m} vs {t}");
        }
        for v in post.var {
            assert!(
                v < 1e-3,
                "variance at observed point should collapse, got {v}"
            );
        }
    }

    #[test]
    fn variance_grows_away_from_data() {
        let (x, y) = train_1d(|v| v, &[0.0, 1.0]);
        let gp = FixedNoiseGp::fit(Matern52::new(1.0, 1.0), x, &y, &[1e-6; 2]).unwrap();
        let post = gp.posterior(&[vec![0.5], vec![5.0]]);
        assert!(post.var[1] > post.var[0] * 2.0, "{:?}", post.var);
        // Far away, the posterior reverts to the prior.
        assert!((post.var[1] - 1.0).abs() < 0.05);
        assert!((post.mean[1] - gp.prior_mean()).abs() < 0.05);
    }

    #[test]
    fn high_noise_points_are_partially_ignored() {
        // Two contradictory observations at the same x: the posterior mean
        // should sit near the low-noise one.
        let x = vec![vec![1.0], vec![1.0]];
        let y = [0.0, 10.0];
        let noise = [1e-6, 25.0];
        let gp = FixedNoiseGp::fit(Matern52::new(1.0, 4.0), x, &y, &noise).unwrap();
        let post = gp.posterior(&[vec![1.0]]);
        assert!(
            post.mean[0] < 1.0,
            "mean {} should hug the precise observation",
            post.mean[0]
        );
    }

    #[test]
    fn log_marginal_prefers_correct_lengthscale() {
        // Data from a slow function: a comparable-scale lengthscale must
        // beat an absurdly short one.
        let xs: Vec<f64> = (0..12).map(|i| i as f64 * 0.5).collect();
        let (x, y) = train_1d(|v| (v / 3.0).sin(), &xs);
        let good = FixedNoiseGp::fit(Matern52::new(2.0, 1.0), x.clone(), &y, &[1e-4; 12]).unwrap();
        let bad = FixedNoiseGp::fit(Matern52::new(0.01, 1.0), x, &y, &[1e-4; 12]).unwrap();
        assert!(good.log_marginal_likelihood() > bad.log_marginal_likelihood());
    }

    #[test]
    fn grid_hyper_fit_picks_reasonable_lengthscale() {
        let xs: Vec<f64> = (0..15).map(|i| i as f64 * 0.4).collect();
        let (x, y) = train_1d(|v| (v / 2.0).sin() * 2.0, &xs);
        let gp = fit_matern_hypers(
            &x,
            &y,
            &[1e-4; 15],
            &[0.01, 0.1, 1.0, 3.0, 10.0],
            &[0.1, 1.0, 5.0],
        )
        .unwrap();
        // Prediction should be sane between training points.
        let post = gp.posterior(&[vec![1.0]]);
        assert!((post.mean[0] - (0.5f64).sin() * 2.0).abs() < 0.3);
    }

    #[test]
    fn refinement_never_loses_to_the_grid() {
        let xs: Vec<f64> = (0..14).map(|i| i as f64 * 0.5).collect();
        let (x, y) = train_1d(|v| (v / 2.5).sin() * 1.7, &xs);
        let noise = vec![1e-4; xs.len()];
        let grid_ls = [0.1, 1.0, 10.0];
        let grid_os = [0.5, 2.0];
        // Best pure-grid marginal likelihood.
        let mut grid_best = f64::NEG_INFINITY;
        for &ls in &grid_ls {
            for &os in &grid_os {
                if let Ok(gp) = FixedNoiseGp::fit(Matern52::new(ls, os), x.clone(), &y, &noise) {
                    grid_best = grid_best.max(gp.log_marginal_likelihood());
                }
            }
        }
        let refined = fit_matern_hypers(&x, &y, &noise, &grid_ls, &grid_os).unwrap();
        assert!(
            refined.log_marginal_likelihood() >= grid_best - 1e-9,
            "refined {} vs grid {}",
            refined.log_marginal_likelihood(),
            grid_best
        );
    }

    #[test]
    fn joint_samples_match_posterior_moments() {
        let (x, y) = train_1d(|v| v.cos(), &[0.0, 1.5, 3.0]);
        let gp = FixedNoiseGp::fit(Matern52::new(1.0, 1.0), x, &y, &[1e-4; 3]).unwrap();
        let queries = vec![vec![0.75], vec![2.25]];
        let normals = crate::sobol::qmc_normal(512, 2);
        let samples = gp.sample_posterior(&queries, &normals).unwrap();
        let post = gp.posterior(&queries);
        for q in 0..2 {
            let mean: f64 = samples.iter().map(|s| s[q]).sum::<f64>() / samples.len() as f64;
            let var: f64 =
                samples.iter().map(|s| (s[q] - mean).powi(2)).sum::<f64>() / samples.len() as f64;
            assert!(
                (mean - post.mean[q]).abs() < 0.02,
                "q{q} mean {mean} vs {}",
                post.mean[q]
            );
            assert!(
                (var - post.var[q]).abs() < 0.05,
                "q{q} var {var} vs {}",
                post.var[q]
            );
        }
    }

    #[test]
    fn shape_errors_are_reported() {
        let x = vec![vec![0.0], vec![1.0]];
        assert!(FixedNoiseGp::fit(Matern52::new(1.0, 1.0), x.clone(), &[1.0], &[0.1; 2]).is_err());
        assert!(FixedNoiseGp::fit(Matern52::new(1.0, 1.0), x.clone(), &[1.0; 2], &[0.1]).is_err());
        assert!(FixedNoiseGp::fit(Matern52::new(1.0, 1.0), vec![], &[], &[]).is_err());
        let gp = FixedNoiseGp::fit(Matern52::new(1.0, 1.0), x, &[1.0; 2], &[0.1; 2]).unwrap();
        // Wrong normal length.
        assert!(gp
            .sample_posterior(&[vec![0.5]], &[vec![0.0, 0.0]])
            .is_err());
    }

    #[test]
    fn append_observation_matches_full_fit() {
        let (x, y) = train_1d(|v| (v / 2.0).sin(), &[0.0, 1.0, 2.0, 3.0]);
        let noise = [1e-4; 5];
        let mut inc =
            FixedNoiseGp::fit(Matern52::new(1.5, 1.2), x.clone(), &y, &noise[..4]).unwrap();
        inc.append_observation(vec![4.0], (2.0f64).sin(), 1e-4)
            .unwrap();

        let mut x_full = x;
        x_full.push(vec![4.0]);
        let mut y_full = y;
        y_full.push((2.0f64).sin());
        let full = FixedNoiseGp::fit(Matern52::new(1.5, 1.2), x_full, &y_full, &noise).unwrap();

        let queries: Vec<Vec<f64>> = (0..9).map(|i| vec![i as f64 * 0.5]).collect();
        let pi = inc.posterior(&queries);
        let pf = full.posterior(&queries);
        for q in 0..queries.len() {
            assert!(
                (pi.mean[q] - pf.mean[q]).abs() < 1e-9,
                "mean q{q}: {} vs {}",
                pi.mean[q],
                pf.mean[q]
            );
            assert!(
                (pi.var[q] - pf.var[q]).abs() < 1e-9,
                "var q{q}: {} vs {}",
                pi.var[q],
                pf.var[q]
            );
        }
        assert!(
            (inc.log_marginal_likelihood() - full.log_marginal_likelihood()).abs() < 1e-9,
            "lml {} vs {}",
            inc.log_marginal_likelihood(),
            full.log_marginal_likelihood()
        );
        assert_eq!(inc.n_train(), 5);
    }

    #[test]
    fn append_observation_rejects_ragged_point() {
        let (x, y) = train_1d(|v| v, &[0.0, 1.0]);
        let mut gp = FixedNoiseGp::fit(Matern52::new(1.0, 1.0), x, &y, &[1e-4; 2]).unwrap();
        assert!(gp.append_observation(vec![1.0, 2.0], 0.0, 1e-4).is_err());
    }

    #[test]
    fn hyper_search_select_matches_batch_fit() {
        let xs: Vec<f64> = (0..12).map(|i| i as f64 * 0.6).collect();
        let (x, y) = train_1d(|v| (v / 2.0).sin() * 1.5, &xs);
        let noise = vec![1e-3; xs.len()];
        let ls_grid = [0.3, 1.0, 3.0, 8.0];
        let os_grid = [0.5, 1.5, 4.5];
        let search =
            MaternHyperSearch::new(x.clone(), y.clone(), noise.clone(), &ls_grid, &os_grid)
                .unwrap();
        let inc = search.select().unwrap();
        let full = fit_matern_hypers(&x, &y, &noise, &ls_grid, &os_grid).unwrap();
        let queries: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 * 0.9]).collect();
        let pi = inc.posterior(&queries);
        let pf = full.posterior(&queries);
        for q in 0..queries.len() {
            assert!((pi.mean[q] - pf.mean[q]).abs() < 1e-9);
            assert!((pi.var[q] - pf.var[q]).abs() < 1e-9);
        }
    }

    #[test]
    fn hyper_search_append_matches_fresh_search() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64 * 0.7).collect();
        let (x, y) = train_1d(|v| (v / 3.0).cos(), &xs);
        let noise = vec![1e-3; xs.len()];
        let ls_grid = [0.3, 1.0, 3.0];
        let os_grid = [0.4, 1.2];
        let mut search =
            MaternHyperSearch::new(x.clone(), y.clone(), noise.clone(), &ls_grid, &os_grid)
                .unwrap();
        search
            .append(vec![7.3], (7.3f64 / 3.0).cos(), 1e-3)
            .unwrap();
        search
            .append(vec![8.1], (8.1f64 / 3.0).cos(), 1e-3)
            .unwrap();
        assert_eq!(search.n_train(), 12);

        let mut x_full = x;
        x_full.push(vec![7.3]);
        x_full.push(vec![8.1]);
        let mut y_full = y;
        y_full.push((7.3f64 / 3.0).cos());
        y_full.push((8.1f64 / 3.0).cos());
        let mut noise_full = noise;
        noise_full.push(1e-3);
        noise_full.push(1e-3);
        let fresh = MaternHyperSearch::new(x_full, y_full, noise_full, &ls_grid, &os_grid).unwrap();

        let inc = search.select().unwrap();
        let batch = fresh.select().unwrap();
        let queries: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 0.8]).collect();
        let pi = inc.posterior(&queries);
        let pb = batch.posterior(&queries);
        for q in 0..queries.len() {
            assert!(
                (pi.mean[q] - pb.mean[q]).abs() < 1e-9,
                "mean q{q}: {} vs {}",
                pi.mean[q],
                pb.mean[q]
            );
            assert!((pi.var[q] - pb.var[q]).abs() < 1e-9);
        }
    }

    #[test]
    fn hyper_search_validates_shapes() {
        assert!(MaternHyperSearch::new(vec![], vec![], vec![], &[1.0], &[1.0]).is_err());
        assert!(
            MaternHyperSearch::new(vec![vec![0.0]], vec![1.0, 2.0], vec![0.1], &[1.0], &[1.0])
                .is_err()
        );
        let mut ok = MaternHyperSearch::new(
            vec![vec![0.0], vec![1.0]],
            vec![0.0, 1.0],
            vec![0.1; 2],
            &[1.0],
            &[1.0],
        )
        .unwrap();
        assert!(ok.append(vec![1.0, 2.0], 0.0, 0.1).is_err());
    }
}
