//! Exact Gaussian-process regression with per-observation (fixed) noise.
//!
//! Mirrors BoTorch's `FixedNoiseGP` (§3.3): the observation noise is not a
//! learned hyper-parameter but *supplied per point* — TESLA feeds it the
//! bootstrap variance from its prediction-error monitor, which is how the
//! optimizer becomes "modeling-error-aware".

use crate::kernel::Kernel;
use crate::GpError;
use tesla_linalg::{Cholesky, Matrix};

/// Posterior at a batch of query points.
#[derive(Debug, Clone)]
pub struct Posterior {
    /// Posterior means.
    pub mean: Vec<f64>,
    /// Posterior (latent) variances, floored at zero.
    pub var: Vec<f64>,
}

/// A fitted fixed-noise GP.
#[derive(Debug)]
pub struct FixedNoiseGp<K: Kernel> {
    kernel: K,
    x: Vec<Vec<f64>>,
    /// `K + diag(noise)` factorization.
    chol: Cholesky,
    /// `(K + Σ)⁻¹ (y − μ)`.
    alpha: Vec<f64>,
    /// Constant prior mean (the training-target mean).
    mean: f64,
    /// Residuals for the marginal-likelihood computation.
    log_marginal: f64,
}

impl<K: Kernel> FixedNoiseGp<K> {
    /// Fits on training points `x`, targets `y`, and per-point noise
    /// *variances*.
    pub fn fit(kernel: K, x: Vec<Vec<f64>>, y: &[f64], noise_var: &[f64]) -> Result<Self, GpError> {
        let n = x.len();
        if n == 0 {
            return Err(GpError::Empty);
        }
        if y.len() != n || noise_var.len() != n {
            return Err(GpError::Shape(format!(
                "{} points, {} targets, {} noise entries",
                n,
                y.len(),
                noise_var.len()
            )));
        }
        let d = x[0].len();
        if x.iter().any(|p| p.len() != d) {
            return Err(GpError::Shape("ragged input points".into()));
        }

        let mean = y.iter().sum::<f64>() / n as f64;
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = kernel.eval(&x[i], &x[j]);
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
            k[(i, i)] += noise_var[i].max(0.0) + 1e-10;
        }
        let chol = Cholesky::decompose_jittered(&k, 1e-8, 12)
            .map_err(|e| GpError::Numerical(e.to_string()))?;
        let resid: Vec<f64> = y.iter().map(|v| v - mean).collect();
        let alpha = chol
            .solve(&resid)
            .map_err(|e| GpError::Numerical(e.to_string()))?;

        // log p(y) = −½ rᵀα − ½ log|K+Σ| − n/2 log 2π
        let quad: f64 = resid.iter().zip(&alpha).map(|(r, a)| r * a).sum();
        let log_marginal =
            -0.5 * quad - 0.5 * chol.log_det() - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();

        Ok(FixedNoiseGp {
            kernel,
            x,
            chol,
            alpha,
            mean,
            log_marginal,
        })
    }

    /// Number of training points.
    pub fn n_train(&self) -> usize {
        self.x.len()
    }

    /// The log marginal likelihood of the training data.
    pub fn log_marginal_likelihood(&self) -> f64 {
        self.log_marginal
    }

    /// The constant prior mean.
    pub fn prior_mean(&self) -> f64 {
        self.mean
    }

    /// Posterior mean and variance at each query point (marginals).
    pub fn posterior(&self, queries: &[Vec<f64>]) -> Posterior {
        let mut mean = Vec::with_capacity(queries.len());
        let mut var = Vec::with_capacity(queries.len());
        for q in queries {
            let kstar: Vec<f64> = self.x.iter().map(|p| self.kernel.eval(p, q)).collect();
            let m = self.mean + tesla_linalg::vector::dot(&kstar, &self.alpha);
            // v = k** − k*ᵀ (K+Σ)⁻¹ k* via the whitened solve.
            let w = self.chol.forward_substitute(&kstar);
            let v = self.kernel.diag() - tesla_linalg::vector::dot(&w, &w);
            mean.push(m);
            var.push(v.max(0.0));
        }
        Posterior { mean, var }
    }

    /// Joint posterior covariance over the query points.
    pub fn posterior_cov(&self, queries: &[Vec<f64>]) -> (Vec<f64>, Matrix) {
        let m = queries.len();
        let post = self.posterior(queries);
        let mut cov = Matrix::zeros(m, m);
        // Whitened cross-covariances.
        let whitened: Vec<Vec<f64>> = queries
            .iter()
            .map(|q| {
                let kstar: Vec<f64> = self.x.iter().map(|p| self.kernel.eval(p, q)).collect();
                self.chol.forward_substitute(&kstar)
            })
            .collect();
        for i in 0..m {
            for j in i..m {
                let prior = self.kernel.eval(&queries[i], &queries[j]);
                let v = prior - tesla_linalg::vector::dot(&whitened[i], &whitened[j]);
                cov[(i, j)] = v;
                cov[(j, i)] = v;
            }
        }
        (post.mean, cov)
    }

    /// Draws joint posterior samples at the query points using the
    /// provided standard-normal vectors (e.g. QMC draws from
    /// [`crate::sobol::qmc_normal`], each of length `queries.len()`).
    /// Returns one sampled function evaluation per normal vector.
    pub fn sample_posterior(
        &self,
        queries: &[Vec<f64>],
        normals: &[Vec<f64>],
    ) -> Result<Vec<Vec<f64>>, GpError> {
        let m = queries.len();
        let (mean, mut cov) = self.posterior_cov(queries);
        cov.add_diagonal(1e-9);
        let chol = Cholesky::decompose_jittered(&cov, 1e-9, 12)
            .map_err(|e| GpError::Numerical(e.to_string()))?;
        let l = chol.factor();
        let mut out = Vec::with_capacity(normals.len());
        for z in normals {
            if z.len() != m {
                return Err(GpError::Shape(format!(
                    "normal vector has {} entries, need {m}",
                    z.len()
                )));
            }
            let lz = l.matvec(z).map_err(|e| GpError::Numerical(e.to_string()))?;
            out.push(mean.iter().zip(&lz).map(|(mu, e)| mu + e).collect());
        }
        Ok(out)
    }
}

/// Fits Matérn 5/2 hyper-parameters by maximizing the log marginal
/// likelihood: a small log-spaced grid locates the basin, then a few
/// rounds of multiplicative coordinate descent refine within it — the
/// pragmatic counterpart of GPyTorch's gradient-based fit for 1-D search
/// spaces.
pub fn fit_matern_hypers(
    x: &[Vec<f64>],
    y: &[f64],
    noise_var: &[f64],
    lengthscales: &[f64],
    outputscales: &[f64],
) -> Result<FixedNoiseGp<crate::kernel::Matern52>, GpError> {
    let try_fit = |ls: f64, os: f64| -> Option<FixedNoiseGp<crate::kernel::Matern52>> {
        let k = crate::kernel::Matern52::new(ls, os);
        FixedNoiseGp::fit(k, x.to_vec(), y, noise_var).ok()
    };

    // Stage 1: grid.
    let mut best: Option<(f64, f64, FixedNoiseGp<crate::kernel::Matern52>)> = None;
    for &ls in lengthscales {
        for &os in outputscales {
            if let Some(gp) = try_fit(ls, os) {
                if best.as_ref().is_none_or(|(_, _, b)| {
                    gp.log_marginal_likelihood() > b.log_marginal_likelihood()
                }) {
                    best = Some((ls, os, gp));
                }
            }
        }
    }
    let (mut ls, mut os, mut gp) = best.ok_or(GpError::Numerical(
        "no hyper-parameter candidate factored".into(),
    ))?;

    // Stage 2: multiplicative coordinate descent with a shrinking step.
    let mut step = 1.6;
    for _round in 0..6 {
        let mut improved = false;
        for (dl, do_) in [
            (step, 1.0),
            (1.0 / step, 1.0),
            (1.0, step),
            (1.0, 1.0 / step),
        ] {
            let (cl, co) = (ls * dl, os * do_);
            if let Some(cand) = try_fit(cl, co) {
                if cand.log_marginal_likelihood() > gp.log_marginal_likelihood() {
                    ls = cl;
                    os = co;
                    gp = cand;
                    improved = true;
                }
            }
        }
        if !improved {
            step = step.sqrt();
            if step < 1.05 {
                break;
            }
        }
    }
    Ok(gp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Matern52;

    fn train_1d(f: impl Fn(f64) -> f64, xs: &[f64]) -> (Vec<Vec<f64>>, Vec<f64>) {
        (
            xs.iter().map(|&v| vec![v]).collect(),
            xs.iter().map(|&v| f(v)).collect(),
        )
    }

    #[test]
    fn interpolates_noise_free_observations() {
        let (x, y) = train_1d(|v| v.sin(), &[0.0, 1.0, 2.0, 3.0, 4.0]);
        let gp = FixedNoiseGp::fit(Matern52::new(1.0, 1.0), x.clone(), &y, &[1e-8; 5]).unwrap();
        let post = gp.posterior(&x);
        for (m, t) in post.mean.iter().zip(&y) {
            assert!((m - t).abs() < 1e-3, "{m} vs {t}");
        }
        for v in post.var {
            assert!(
                v < 1e-3,
                "variance at observed point should collapse, got {v}"
            );
        }
    }

    #[test]
    fn variance_grows_away_from_data() {
        let (x, y) = train_1d(|v| v, &[0.0, 1.0]);
        let gp = FixedNoiseGp::fit(Matern52::new(1.0, 1.0), x, &y, &[1e-6; 2]).unwrap();
        let post = gp.posterior(&[vec![0.5], vec![5.0]]);
        assert!(post.var[1] > post.var[0] * 2.0, "{:?}", post.var);
        // Far away, the posterior reverts to the prior.
        assert!((post.var[1] - 1.0).abs() < 0.05);
        assert!((post.mean[1] - gp.prior_mean()).abs() < 0.05);
    }

    #[test]
    fn high_noise_points_are_partially_ignored() {
        // Two contradictory observations at the same x: the posterior mean
        // should sit near the low-noise one.
        let x = vec![vec![1.0], vec![1.0]];
        let y = [0.0, 10.0];
        let noise = [1e-6, 25.0];
        let gp = FixedNoiseGp::fit(Matern52::new(1.0, 4.0), x, &y, &noise).unwrap();
        let post = gp.posterior(&[vec![1.0]]);
        assert!(
            post.mean[0] < 1.0,
            "mean {} should hug the precise observation",
            post.mean[0]
        );
    }

    #[test]
    fn log_marginal_prefers_correct_lengthscale() {
        // Data from a slow function: a comparable-scale lengthscale must
        // beat an absurdly short one.
        let xs: Vec<f64> = (0..12).map(|i| i as f64 * 0.5).collect();
        let (x, y) = train_1d(|v| (v / 3.0).sin(), &xs);
        let good = FixedNoiseGp::fit(Matern52::new(2.0, 1.0), x.clone(), &y, &[1e-4; 12]).unwrap();
        let bad = FixedNoiseGp::fit(Matern52::new(0.01, 1.0), x, &y, &[1e-4; 12]).unwrap();
        assert!(good.log_marginal_likelihood() > bad.log_marginal_likelihood());
    }

    #[test]
    fn grid_hyper_fit_picks_reasonable_lengthscale() {
        let xs: Vec<f64> = (0..15).map(|i| i as f64 * 0.4).collect();
        let (x, y) = train_1d(|v| (v / 2.0).sin() * 2.0, &xs);
        let gp = fit_matern_hypers(
            &x,
            &y,
            &[1e-4; 15],
            &[0.01, 0.1, 1.0, 3.0, 10.0],
            &[0.1, 1.0, 5.0],
        )
        .unwrap();
        // Prediction should be sane between training points.
        let post = gp.posterior(&[vec![1.0]]);
        assert!((post.mean[0] - (0.5f64).sin() * 2.0).abs() < 0.3);
    }

    #[test]
    fn refinement_never_loses_to_the_grid() {
        let xs: Vec<f64> = (0..14).map(|i| i as f64 * 0.5).collect();
        let (x, y) = train_1d(|v| (v / 2.5).sin() * 1.7, &xs);
        let noise = vec![1e-4; xs.len()];
        let grid_ls = [0.1, 1.0, 10.0];
        let grid_os = [0.5, 2.0];
        // Best pure-grid marginal likelihood.
        let mut grid_best = f64::NEG_INFINITY;
        for &ls in &grid_ls {
            for &os in &grid_os {
                if let Ok(gp) = FixedNoiseGp::fit(Matern52::new(ls, os), x.clone(), &y, &noise) {
                    grid_best = grid_best.max(gp.log_marginal_likelihood());
                }
            }
        }
        let refined = fit_matern_hypers(&x, &y, &noise, &grid_ls, &grid_os).unwrap();
        assert!(
            refined.log_marginal_likelihood() >= grid_best - 1e-9,
            "refined {} vs grid {}",
            refined.log_marginal_likelihood(),
            grid_best
        );
    }

    #[test]
    fn joint_samples_match_posterior_moments() {
        let (x, y) = train_1d(|v| v.cos(), &[0.0, 1.5, 3.0]);
        let gp = FixedNoiseGp::fit(Matern52::new(1.0, 1.0), x, &y, &[1e-4; 3]).unwrap();
        let queries = vec![vec![0.75], vec![2.25]];
        let normals = crate::sobol::qmc_normal(512, 2);
        let samples = gp.sample_posterior(&queries, &normals).unwrap();
        let post = gp.posterior(&queries);
        for q in 0..2 {
            let mean: f64 = samples.iter().map(|s| s[q]).sum::<f64>() / samples.len() as f64;
            let var: f64 =
                samples.iter().map(|s| (s[q] - mean).powi(2)).sum::<f64>() / samples.len() as f64;
            assert!(
                (mean - post.mean[q]).abs() < 0.02,
                "q{q} mean {mean} vs {}",
                post.mean[q]
            );
            assert!(
                (var - post.var[q]).abs() < 0.05,
                "q{q} var {var} vs {}",
                post.var[q]
            );
        }
    }

    #[test]
    fn shape_errors_are_reported() {
        let x = vec![vec![0.0], vec![1.0]];
        assert!(FixedNoiseGp::fit(Matern52::new(1.0, 1.0), x.clone(), &[1.0], &[0.1; 2]).is_err());
        assert!(FixedNoiseGp::fit(Matern52::new(1.0, 1.0), x.clone(), &[1.0; 2], &[0.1]).is_err());
        assert!(FixedNoiseGp::fit(Matern52::new(1.0, 1.0), vec![], &[], &[]).is_err());
        let gp = FixedNoiseGp::fit(Matern52::new(1.0, 1.0), x, &[1.0; 2], &[0.1; 2]).unwrap();
        // Wrong normal length.
        assert!(gp
            .sample_posterior(&[vec![0.5]], &[vec![0.0, 0.0]])
            .is_err());
    }
}
