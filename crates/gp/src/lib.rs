#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Gaussian-process machinery for TESLA's Bayesian optimizer (§3.3).
//!
//! The paper's optimizer fits two *separate fixed-noise* Gaussian
//! processes — one for the objective, one for the constraint — with the
//! Matérn 5/2 covariance kernel \[37\], using BoTorch's `FixedNoiseGP`.
//! Its acquisition function (constrained Noisy Expected Improvement)
//! integrates over posterior samples with quasi-Monte Carlo.
//!
//! This crate supplies those pieces:
//!
//! * [`kernel`] — Matérn 5/2 and RBF kernels with lengthscale/outputscale.
//! * [`gp::FixedNoiseGp`] — exact GP regression with per-observation
//!   noise variances, constant mean, posterior mean/variance/covariance,
//!   joint posterior sampling, log marginal likelihood, and a small
//!   grid-search hyper-parameter fit.
//! * [`sobol`] — a Sobol low-discrepancy sequence (direction numbers for
//!   the first 8 dimensions) plus the inverse normal CDF, which together
//!   give the QMC standard-normal draws NEI integrates with.
//!
//! # Example: fixed-noise GP posterior
//!
//! ```
//! use tesla_gp::{FixedNoiseGp, Matern52};
//!
//! let x = vec![vec![0.0], vec![1.0], vec![2.0]];
//! let gp = FixedNoiseGp::fit(Matern52::new(1.0, 1.0), x, &[0.0, 1.0, 0.0], &[1e-6; 3])?;
//! let post = gp.posterior(&[vec![1.0]]);
//! // At an observed input with tiny noise, the posterior pins the data.
//! assert!((post.mean[0] - 1.0).abs() < 1e-2);
//! assert!(post.var[0] < 1e-3);
//! # Ok::<(), tesla_gp::GpError>(())
//! ```

pub mod gp;
pub mod kernel;
pub mod sobol;

pub use gp::{fit_matern_hypers, pairwise_distances, FixedNoiseGp, MaternHyperSearch, Posterior};
pub use kernel::{euclidean_distance, Kernel, Matern52, Rbf};
pub use sobol::{inverse_normal_cdf, normal_cdf, qmc_normal, qmc_normal_hybrid, SobolSequence};

/// Errors from GP fitting and prediction.
#[derive(Debug, Clone, PartialEq)]
pub enum GpError {
    /// Input shapes disagree.
    Shape(String),
    /// The kernel matrix could not be factored.
    Numerical(String),
    /// No training data.
    Empty,
}

impl std::fmt::Display for GpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpError::Shape(m) => write!(f, "shape error: {m}"),
            GpError::Numerical(m) => write!(f, "numerical failure: {m}"),
            GpError::Empty => write!(f, "no training data"),
        }
    }
}

impl std::error::Error for GpError {}
