//! Covariance kernels.

/// A stationary covariance kernel on `R^d`.
///
/// Stationary kernels depend on the inputs only through their Euclidean
/// distance, so the required method is [`Kernel::eval_dist`]; `eval`
/// derives from it. This split is what lets the GP hyper-parameter
/// search compute the pairwise-distance matrix *once* and re-evaluate
/// the kernel over it for every lengthscale/outputscale candidate.
pub trait Kernel: Send + Sync {
    /// Covariance at unscaled Euclidean distance `r` (lengthscale applied
    /// internally).
    fn eval_dist(&self, r: f64) -> f64;

    /// Covariance between two points.
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        self.eval_dist(euclidean_distance(a, b))
    }

    /// Prior variance at a point (`eval(x, x)` for stationary kernels).
    fn diag(&self) -> f64;
}

/// Unscaled Euclidean distance between two points — the quantity the
/// distance cache stores per pair.
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut s = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        s += d * d;
    }
    s.sqrt()
}

/// Matérn 5/2 kernel — the covariance the paper uses (\[37\], §3.3):
///
/// `k(r) = σ² (1 + √5 r + 5r²/3) exp(−√5 r)` with `r = ‖a−b‖ / ℓ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Matern52 {
    /// Lengthscale ℓ.
    pub lengthscale: f64,
    /// Output scale σ² (prior variance).
    pub outputscale: f64,
}

impl Matern52 {
    /// Creates the kernel; parameters are clamped to be positive.
    pub fn new(lengthscale: f64, outputscale: f64) -> Self {
        Matern52 {
            lengthscale: lengthscale.max(1e-9),
            outputscale: outputscale.max(1e-12),
        }
    }
}

impl Kernel for Matern52 {
    fn eval_dist(&self, dist: f64) -> f64 {
        let r = dist / self.lengthscale;
        let sqrt5_r = 5.0_f64.sqrt() * r;
        self.outputscale * (1.0 + sqrt5_r + 5.0 * r * r / 3.0) * (-sqrt5_r).exp()
    }

    fn diag(&self) -> f64 {
        self.outputscale
    }
}

/// Squared-exponential (RBF) kernel, kept for comparison and tests:
/// `k(r) = σ² exp(−r²/2)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rbf {
    /// Lengthscale ℓ.
    pub lengthscale: f64,
    /// Output scale σ².
    pub outputscale: f64,
}

impl Rbf {
    /// Creates the kernel; parameters are clamped to be positive.
    pub fn new(lengthscale: f64, outputscale: f64) -> Self {
        Rbf {
            lengthscale: lengthscale.max(1e-9),
            outputscale: outputscale.max(1e-12),
        }
    }
}

impl Kernel for Rbf {
    fn eval_dist(&self, dist: f64) -> f64 {
        let r = dist / self.lengthscale;
        self.outputscale * (-0.5 * r * r).exp()
    }

    fn diag(&self) -> f64 {
        self.outputscale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matern_at_zero_distance_equals_outputscale() {
        let k = Matern52::new(1.0, 2.5);
        assert!((k.eval(&[3.0], &[3.0]) - 2.5).abs() < 1e-12);
        assert_eq!(k.diag(), 2.5);
    }

    #[test]
    fn matern_decays_with_distance() {
        let k = Matern52::new(1.0, 1.0);
        let near = k.eval(&[0.0], &[0.1]);
        let mid = k.eval(&[0.0], &[1.0]);
        let far = k.eval(&[0.0], &[5.0]);
        assert!(near > mid && mid > far);
        assert!(far > 0.0, "Matérn never reaches exactly zero");
    }

    #[test]
    fn matern_is_symmetric() {
        let k = Matern52::new(0.7, 1.3);
        assert_eq!(
            k.eval(&[1.0, 2.0], &[3.0, -1.0]),
            k.eval(&[3.0, -1.0], &[1.0, 2.0])
        );
    }

    #[test]
    fn longer_lengthscale_means_slower_decay() {
        let short = Matern52::new(0.5, 1.0);
        let long = Matern52::new(5.0, 1.0);
        assert!(long.eval(&[0.0], &[1.0]) > short.eval(&[0.0], &[1.0]));
    }

    #[test]
    fn rbf_matches_known_value() {
        let k = Rbf::new(1.0, 1.0);
        // exp(-0.5) at distance 1.
        assert!((k.eval(&[0.0], &[1.0]) - (-0.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn matern_heavier_tail_than_rbf() {
        let m = Matern52::new(1.0, 1.0);
        let r = Rbf::new(1.0, 1.0);
        assert!(m.eval(&[0.0], &[3.0]) > r.eval(&[0.0], &[3.0]));
    }

    #[test]
    fn eval_dist_consistent_with_eval() {
        let k = Matern52::new(0.8, 1.7);
        let a = [1.0, -2.0];
        let b = [0.5, 3.0];
        let r = euclidean_distance(&a, &b);
        assert_eq!(k.eval(&a, &b), k.eval_dist(r));
        let rbf = Rbf::new(2.0, 0.5);
        assert_eq!(rbf.eval(&a, &b), rbf.eval_dist(r));
    }

    #[test]
    fn degenerate_params_are_clamped() {
        let k = Matern52::new(0.0, -1.0);
        assert!(k.lengthscale > 0.0);
        assert!(k.outputscale > 0.0);
    }
}
