//! Sobol low-discrepancy sequences and quasi-Monte-Carlo normal draws.
//!
//! The paper's acquisition function (constrained NEI \[21\]) integrates
//! expected improvement over posterior samples using quasi-Monte Carlo.
//! QMC standard normals are obtained the usual way: a Sobol point in
//! `[0,1)^d` pushed through the inverse normal CDF.
//!
//! Direction numbers are the first eight dimensions of the Joe–Kuo
//! "new-joe-kuo-6" table — plenty for this workload (the optimizer's
//! search space is one-dimensional; the QMC sample dimension is the
//! number of joint posterior points, capped by blocking).

// analysis:allow-file(panic-free-control-path): direction-number
// tables are indexed by construction (dimension and bit counts are
// compile-time constants).
// analysis:allow-file(no-alloc-in-decide-steady-state): each decision
// draws a fresh bounded Sobol block (n_init points).
const MAX_DIMS: usize = 8;
const BITS: usize = 31;

/// (s, a, m...) rows of the Joe–Kuo table for dimensions 2..=8; dimension
/// 1 is the van der Corput sequence.
const JOE_KUO: [(u32, u32, &[u32]); 7] = [
    (1, 0, &[1]),
    (2, 1, &[1, 3]),
    (3, 1, &[1, 3, 1]),
    (3, 2, &[1, 1, 1]),
    (4, 1, &[1, 1, 3, 3]),
    (4, 4, &[1, 3, 5, 13]),
    (5, 2, &[1, 1, 5, 5, 17]),
];

/// A Sobol sequence generator over `[0,1)^d`, Gray-code ordering.
#[derive(Debug, Clone)]
pub struct SobolSequence {
    dims: usize,
    /// Direction numbers: `v[d][k]`, already shifted to 31-bit fixed point.
    v: Vec<[u32; BITS]>,
    /// Current integer state per dimension.
    x: Vec<u32>,
    /// Index of the next point (0-based).
    index: u64,
}

impl SobolSequence {
    /// Creates a generator for `dims` dimensions (1..=8).
    ///
    /// # Panics
    /// Panics if `dims` is 0 or exceeds the supported table.
    pub fn new(dims: usize) -> Self {
        assert!(
            (1..=MAX_DIMS).contains(&dims),
            "supported dims: 1..={MAX_DIMS}"
        );
        let mut v = Vec::with_capacity(dims);
        // Dimension 1: van der Corput, v_k = 1 << (31 - k).
        let mut v0 = [0u32; BITS];
        for (k, slot) in v0.iter_mut().enumerate() {
            *slot = 1 << (BITS - 1 - k);
        }
        v.push(v0);
        for d in 1..dims {
            let (s, a, m) = JOE_KUO[d - 1];
            let s = s as usize;
            let mut mi = [0u32; BITS];
            mi[..s].copy_from_slice(&m[..s.min(m.len())]);
            // Recurrence for k >= s:
            // m_k = 2a_1 m_{k-1} ^ 4a_2 m_{k-2} ^ ... ^ 2^s m_{k-s} ^ m_{k-s}
            for k in s..BITS {
                let mut val = mi[k - s] ^ (mi[k - s] << s);
                for j in 1..s {
                    let bit = (a >> (s - 1 - j)) & 1;
                    if bit == 1 {
                        val ^= mi[k - j] << j;
                    }
                }
                mi[k] = val;
            }
            let mut vd = [0u32; BITS];
            for k in 0..BITS {
                vd[k] = mi[k] << (BITS - 1 - k);
            }
            v.push(vd);
        }
        SobolSequence {
            dims,
            v,
            x: vec![0; dims],
            index: 0,
        }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Produces the next point in `[0,1)^d`.
    pub fn next_point(&mut self) -> Vec<f64> {
        // Gray-code: flip the direction number of the lowest zero bit of
        // the running index.
        let c = (!self.index).trailing_zeros() as usize;
        let c = c.min(BITS - 1);
        let mut out = Vec::with_capacity(self.dims);
        for d in 0..self.dims {
            // The first emitted point is the origin; flip afterwards.
            out.push(self.x[d] as f64 / (1u64 << BITS) as f64);
            self.x[d] ^= self.v[d][c];
        }
        self.index += 1;
        out
    }

    /// Generates `n` points as rows.
    pub fn take(&mut self, n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|_| self.next_point()).collect()
    }
}

/// Acklam's rational approximation to the inverse standard-normal CDF
/// (relative error below 1.15e-9 — far beyond what QMC integration needs).
pub fn inverse_normal_cdf(p: f64) -> f64 {
    // Clamp away from the poles.
    let p = p.clamp(1e-300, 1.0 - 1e-16);

    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Generates `n` quasi-Monte-Carlo standard-normal vectors of dimension
/// `dims` (Sobol points through the inverse CDF). The all-zeros first
/// Sobol point is skipped (it would map to −∞).
pub fn qmc_normal(n: usize, dims: usize) -> Vec<Vec<f64>> {
    let mut seq = SobolSequence::new(dims);
    let _ = seq.next_point(); // drop the origin
    (0..n)
        .map(|_| {
            seq.next_point()
                .into_iter()
                .map(inverse_normal_cdf)
                .collect()
        })
        .collect()
}

/// Standard-normal CDF via the Abramowitz–Stegun erf approximation
/// (7.1.26, |error| < 1.5e-7) — used for probability-of-feasibility.
pub fn normal_cdf(z: f64) -> f64 {
    let x = z / std::f64::consts::SQRT_2;
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf = sign * (1.0 - poly * (-x * x).exp());
    0.5 * (1.0 + erf)
}

/// QMC-where-possible normal draws for arbitrary dimension: the first
/// `min(dims, 8)` coordinates come from the Sobol sequence, the remainder
/// from a seeded xorshift pseudo-random stream. The paper's BoTorch setup
/// uses scrambled Sobol at any dimension; this hybrid keeps the QMC
/// benefit on the leading coordinates while supporting the joint
/// posteriors NEI integrates over (observed points + candidate).
pub fn qmc_normal_hybrid(n: usize, dims: usize, seed: u64) -> Vec<Vec<f64>> {
    let qmc_dims = dims.min(MAX_DIMS);
    let mut seq = SobolSequence::new(qmc_dims.max(1));
    let _ = seq.next_point();
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut uniform = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        ((state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64)
            .clamp(1e-12, 1.0 - 1e-12)
    };
    (0..n)
        .map(|_| {
            let mut row: Vec<f64> = if dims == 0 {
                Vec::new()
            } else {
                seq.next_point()
                    .into_iter()
                    .map(inverse_normal_cdf)
                    .collect()
            };
            while row.len() < dims {
                row.push(inverse_normal_cdf(uniform()));
            }
            row
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.959964) - 0.975).abs() < 1e-5);
        assert!((normal_cdf(-1.0) - 0.158655).abs() < 1e-5);
        assert!(normal_cdf(8.0) > 0.999999);
        assert!(normal_cdf(-8.0) < 1e-6);
    }

    #[test]
    fn normal_cdf_inverts_inverse() {
        for i in 1..40 {
            let p = i as f64 / 40.0;
            let z = inverse_normal_cdf(p);
            assert!((normal_cdf(z) - p).abs() < 1e-5, "p={p}");
        }
    }

    #[test]
    fn hybrid_draws_have_unit_moments_in_high_dims() {
        let draws = qmc_normal_hybrid(2048, 20, 7);
        for d in [0, 7, 8, 19] {
            let mean: f64 = draws.iter().map(|r| r[d]).sum::<f64>() / draws.len() as f64;
            let var: f64 =
                draws.iter().map(|r| (r[d] - mean).powi(2)).sum::<f64>() / draws.len() as f64;
            assert!(mean.abs() < 0.06, "dim {d} mean {mean}");
            assert!((var - 1.0).abs() < 0.12, "dim {d} var {var}");
        }
    }

    #[test]
    fn hybrid_is_deterministic_per_seed() {
        let a = qmc_normal_hybrid(10, 12, 3);
        let b = qmc_normal_hybrid(10, 12, 3);
        let c = qmc_normal_hybrid(10, 12, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn first_points_match_reference() {
        // Known first points of the 2-D Sobol sequence:
        // (0,0), (0.5,0.5), (0.75,0.25), (0.25,0.75), ...
        let mut seq = SobolSequence::new(2);
        assert_eq!(seq.next_point(), vec![0.0, 0.0]);
        assert_eq!(seq.next_point(), vec![0.5, 0.5]);
        assert_eq!(seq.next_point(), vec![0.75, 0.25]);
        assert_eq!(seq.next_point(), vec![0.25, 0.75]);
        assert_eq!(seq.next_point(), vec![0.375, 0.375]);
    }

    #[test]
    fn points_stay_in_unit_cube() {
        let mut seq = SobolSequence::new(8);
        for _ in 0..2000 {
            for v in seq.next_point() {
                assert!((0.0..1.0).contains(&v));
            }
        }
    }

    #[test]
    fn low_discrepancy_beats_grid_expectation() {
        // Integrating f(x) = x over [0,1): error of first n Sobol points
        // should shrink ~1/n. Check absolute error at n = 512.
        let mut seq = SobolSequence::new(1);
        let n = 512;
        let mean: f64 = (0..n).map(|_| seq.next_point()[0]).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 2e-3, "Sobol mean {mean}");
    }

    #[test]
    fn distinct_dimensions_are_not_identical() {
        let mut seq = SobolSequence::new(4);
        let _ = seq.next_point();
        let p = seq.take(50);
        for d in 1..4 {
            let same = p.iter().all(|row| row[0] == row[d]);
            assert!(!same, "dimension {d} duplicates dimension 0");
        }
    }

    #[test]
    #[should_panic(expected = "supported dims")]
    fn too_many_dims_panics() {
        let _ = SobolSequence::new(9);
    }

    #[test]
    fn inverse_normal_cdf_known_values() {
        assert!(inverse_normal_cdf(0.5).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.025) + 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.8413447) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn inverse_normal_cdf_is_monotone_and_symmetric() {
        let mut prev = f64::NEG_INFINITY;
        for i in 1..100 {
            let p = i as f64 / 100.0;
            let z = inverse_normal_cdf(p);
            assert!(z > prev);
            prev = z;
            let z2 = inverse_normal_cdf(1.0 - p);
            assert!((z + z2).abs() < 1e-7, "symmetry at p={p}");
        }
    }

    #[test]
    fn qmc_normal_moments() {
        let draws = qmc_normal(1024, 2);
        for d in 0..2 {
            let mean: f64 = draws.iter().map(|r| r[d]).sum::<f64>() / draws.len() as f64;
            let var: f64 =
                draws.iter().map(|r| (r[d] - mean).powi(2)).sum::<f64>() / draws.len() as f64;
            assert!(mean.abs() < 0.02, "dim {d} mean {mean}");
            assert!((var - 1.0).abs() < 0.05, "dim {d} var {var}");
        }
    }
}
