//! Property-based tests on the GP and QMC machinery.

use proptest::prelude::*;
use tesla_gp::{inverse_normal_cdf, normal_cdf, FixedNoiseGp, Kernel, Matern52, SobolSequence};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Matérn 5/2 is a valid covariance: symmetric, bounded by the
    /// outputscale, positive.
    #[test]
    fn matern_is_symmetric_bounded_positive(
        a in -50.0f64..50.0,
        b in -50.0f64..50.0,
        ls in 0.05f64..20.0,
        os in 0.01f64..10.0,
    ) {
        let k = Matern52::new(ls, os);
        let kab = k.eval(&[a], &[b]);
        let kba = k.eval(&[b], &[a]);
        prop_assert!((kab - kba).abs() < 1e-12);
        // Strictly positive in exact arithmetic; f64 underflows to 0 at
        // extreme scaled distances, which is fine for a covariance.
        prop_assert!(kab >= 0.0);
        if (a - b).abs() / ls < 200.0 {
            prop_assert!(kab > 0.0);
        }
        prop_assert!(kab <= os + 1e-12);
        prop_assert!((k.eval(&[a], &[a]) - os).abs() < 1e-12);
    }

    /// Posterior variance never exceeds the prior variance: observing
    /// data can only reduce uncertainty.
    #[test]
    fn posterior_variance_bounded_by_prior(
        xs in proptest::collection::vec(-5.0f64..5.0, 2..10),
        q in -8.0f64..8.0,
        noise in 1e-6f64..1.0,
    ) {
        let pts: Vec<Vec<f64>> = xs.iter().map(|&v| vec![v]).collect();
        let ys: Vec<f64> = xs.iter().map(|v| v.sin()).collect();
        let k = Matern52::new(1.0, 2.0);
        let gp = FixedNoiseGp::fit(k, pts, &ys, &vec![noise; xs.len()]).unwrap();
        let post = gp.posterior(&[vec![q]]);
        prop_assert!(post.var[0] <= 2.0 + 1e-6, "var {}", post.var[0]);
        prop_assert!(post.var[0] >= 0.0);
        prop_assert!(post.mean[0].is_finite());
    }

    /// More noise on an observation moves the posterior mean toward the
    /// prior (never away from the data envelope).
    #[test]
    fn noisier_observations_shrink_toward_prior(y in -5.0f64..5.0) {
        let pts = vec![vec![0.0]];
        let k = Matern52::new(1.0, 1.0);
        let precise = FixedNoiseGp::fit(k, pts.clone(), &[y], &[1e-8]).unwrap();
        let k2 = Matern52::new(1.0, 1.0);
        let noisy = FixedNoiseGp::fit(k2, pts, &[y], &[100.0]).unwrap();
        let mp = precise.posterior(&[vec![0.0]]).mean[0];
        let mn = noisy.posterior(&[vec![0.0]]).mean[0];
        // With one observation the prior mean equals y, so both match;
        // perturb via a second query away from data instead.
        prop_assert!((mp - y).abs() <= (mn - y).abs() + 1e-9 || (mp - y).abs() < 1e-6);
    }

    /// normal_cdf is a CDF: monotone, in [0,1], symmetric about zero.
    #[test]
    fn normal_cdf_is_a_cdf(a in -6.0f64..6.0, b in -6.0f64..6.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(normal_cdf(lo) <= normal_cdf(hi) + 1e-12);
        prop_assert!((0.0..=1.0).contains(&normal_cdf(a)));
        prop_assert!((normal_cdf(a) + normal_cdf(-a) - 1.0).abs() < 1e-6);
    }

    /// inverse_normal_cdf round-trips through normal_cdf.
    #[test]
    fn inverse_cdf_roundtrip(p in 0.001f64..0.999) {
        let z = inverse_normal_cdf(p);
        prop_assert!((normal_cdf(z) - p).abs() < 1e-5);
    }

    /// Sobol points in any supported dimension stay inside the unit cube
    /// and are pairwise distinct over a short run.
    #[test]
    fn sobol_unit_cube_and_distinct(dims in 1usize..=8) {
        let mut seq = SobolSequence::new(dims);
        let pts = seq.take(64);
        for p in &pts {
            prop_assert_eq!(p.len(), dims);
            for &v in p {
                prop_assert!((0.0..1.0).contains(&v));
            }
        }
        for i in 0..pts.len() {
            for j in i + 1..pts.len() {
                prop_assert_ne!(&pts[i], &pts[j]);
            }
        }
    }

    /// The batched posterior (one multi-RHS whitened solve) agrees with
    /// querying each point on its own.
    #[test]
    fn batched_posterior_matches_per_query(
        xs in proptest::collection::vec(-5.0f64..5.0, 3..10),
        qs in proptest::collection::vec(-8.0f64..8.0, 1..12),
        noise in 1e-6f64..0.5,
    ) {
        let pts: Vec<Vec<f64>> = xs.iter().map(|&v| vec![v]).collect();
        let ys: Vec<f64> = xs.iter().map(|v| v.cos()).collect();
        let gp = FixedNoiseGp::fit(Matern52::new(0.8, 1.5), pts, &ys, &vec![noise; xs.len()])
            .unwrap();
        let queries: Vec<Vec<f64>> = qs.iter().map(|&q| vec![q]).collect();
        let batched = gp.posterior(&queries);
        for (i, q) in queries.iter().enumerate() {
            let single = gp.posterior(std::slice::from_ref(q));
            prop_assert_eq!(batched.mean[i], single.mean[0]);
            prop_assert_eq!(batched.var[i], single.var[0]);
        }
    }
}
