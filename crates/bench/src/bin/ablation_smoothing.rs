//! Ablation: the smoothing-buffer length N (§3.4, Table 2's N = 5).
//!
//! The buffer low-pass-filters the computed set-points; §2.2/Fig. 4 show
//! that raw set-point variation costs transient energy.

use tesla_bench::{arg_f64, print_table, run_standard_episode, train_test_traces};
use tesla_core::{FixedController, TeslaConfig, TeslaController};
use tesla_units::Celsius;
use tesla_workload::LoadSetting;

fn main() {
    let train_days = arg_f64("train-days", 3.0);
    let minutes = arg_f64("minutes", 360.0) as usize;
    eprintln!("training base model on a {train_days}-day sweep …");
    let (train, _) = train_test_traces(train_days, 0.1, 99);

    let mut fixed = FixedController::new(Celsius::new(23.0));
    let baseline = run_standard_episode(&mut fixed, LoadSetting::Medium, minutes, 654);

    let mut rows = Vec::new();
    for n in [1usize, 3, 5, 9] {
        eprintln!("N = {n} …");
        let cfg = TeslaConfig {
            smoothing: n,
            seed: 7,
            ..TeslaConfig::default()
        };
        let mut tesla = TeslaController::new(&train, cfg).expect("TESLA");
        let r = run_standard_episode(&mut tesla, LoadSetting::Medium, minutes, 654);
        // Set-point roughness: mean |Δs| per minute.
        let roughness: f64 = r
            .setpoints
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .sum::<f64>()
            / (r.setpoints.len() - 1).max(1) as f64;
        rows.push(vec![
            format!("{n}"),
            format!("{:.2}", r.cooling_energy_kwh),
            format!("{:.2}", r.saving_vs(&baseline)),
            format!("{:.1}", r.tsv_percent),
            format!("{roughness:.3}"),
        ]);
    }
    print_table(
        "Ablation: smoothing-buffer length N (medium load)",
        &[
            "N",
            "CE (kWh)",
            "saving (%)",
            "TSV (%)",
            "mean |dS/dt| (C/min)",
        ],
        &rows,
    );
    println!(
        "\nexpectation: larger N removes high-frequency set-point variation\n\
         (smaller |dS/dt|), at some cost in responsiveness."
    );
}
