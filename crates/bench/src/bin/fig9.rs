//! Figure 9: TESLA's computed set-point, actual inlet temperature, and
//! ACU power over a medium-load episode.
//!
//! The paper's takeaway (§6.2): TESLA keeps the set-point close to the
//! actual inlet temperature — the highest value that does not interrupt
//! cooling — so the residual error stays small and ACU power moderate.

use tesla_bench::{arg_f64, run_trace_figure, train_test_traces, trained_tesla};

fn main() {
    let train_days = arg_f64("train-days", 3.0);
    eprintln!("training TESLA on a {train_days}-day sweep …");
    let (train, _) = train_test_traces(train_days, 0.1, 99);
    let mut tesla = trained_tesla(&train, 1);
    run_trace_figure(
        "Fig9",
        &mut tesla,
        "the set-point hugs the actual inlet temperature (small residual), ACU power\n\
         stays around ~2 kW instead of the fixed policy's ~2.5 kW, and there is barely\n\
         any cooling interruption.",
    );
}
