//! Ablation: the interruption-penalty threshold κ (Eq. 7).
//!
//! §3.3: "κ is a positive number that controls how much cooling
//! interruption is penalized. Setting κ = 0 does not allow any
//! interruption." This sweep shows the CE / CI / TSV trade-off around the
//! paper's κ = 0.5 °C.

use tesla_bench::{arg_f64, print_table, run_standard_episode, train_test_traces};
use tesla_core::{FixedController, TeslaConfig, TeslaController};
use tesla_units::Celsius;
use tesla_units::DegC;
use tesla_workload::LoadSetting;

fn main() {
    let train_days = arg_f64("train-days", 3.0);
    let minutes = arg_f64("minutes", 360.0) as usize;
    eprintln!("training base model on a {train_days}-day sweep …");
    let (train, _) = train_test_traces(train_days, 0.1, 99);

    let mut fixed = FixedController::new(Celsius::new(23.0));
    let baseline = run_standard_episode(&mut fixed, LoadSetting::Medium, minutes, 321);

    let mut rows = Vec::new();
    for kappa in [0.0, 0.25, 0.5, 1.0, 2.0] {
        eprintln!("κ = {kappa} …");
        let cfg = TeslaConfig {
            kappa: DegC::new(kappa),
            seed: 7,
            ..TeslaConfig::default()
        };
        let mut tesla = TeslaController::new(&train, cfg).expect("TESLA");
        let r = run_standard_episode(&mut tesla, LoadSetting::Medium, minutes, 321);
        rows.push(vec![
            format!("{kappa:.2}"),
            format!("{:.2}", r.cooling_energy_kwh),
            format!("{:.2}", r.saving_vs(&baseline)),
            format!("{:.1}", r.tsv_percent),
            format!("{:.1}", r.ci_percent),
        ]);
    }
    print_table(
        "Ablation: interruption-penalty threshold κ (medium load)",
        &["kappa (C)", "CE (kWh)", "saving (%)", "TSV (%)", "CI (%)"],
        &rows,
    );
    println!(
        "\nexpectation: κ = 0 forbids any positive residual (most conservative);\n\
         larger κ tolerates brief interruptions, trading CI for energy."
    );
}
