//! Figure 11: Lazic et al. \[20\] riding the constraint boundary.
//!
//! §6.3: with only cooling energy in its objective, the MPC picks the
//! highest set-point whose predicted max cold-aisle temperature clears
//! the limit — driving the ACU into cooling interruptions whose rapid
//! temperature rises it cannot curb in time. When no feasible set-point
//! exists it slams to S_min = 20 °C, producing the sawtooth of Fig. 11a
//! and the repeated limit overshoots of Fig. 11b.

use tesla_bench::{arg_f64, run_trace_figure, train_test_traces, trained_lazic};

fn main() {
    let train_days = arg_f64("train-days", 3.0);
    eprintln!("training the Lazic baseline on a {train_days}-day sweep …");
    let (train, _) = train_test_traces(train_days, 0.1, 99);
    let mut lazic = trained_lazic(&train);
    run_trace_figure(
        "Fig11",
        &mut lazic,
        "set-point oscillates between high boundary-riding values and the S_min = 20 C\n\
         backup; the max cold-aisle temperature repeatedly overshoots the 22 C limit\n\
         (paper: 22.1% TSV at medium load).",
    );
}
