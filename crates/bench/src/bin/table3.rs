//! Table 3: DC-temperature prediction MAPE.
//!
//! Paper: TESLA 3.52% < Lazic et al. (recursive OLS) 5.52% < Wang et al.
//! (MLP) 10.73%. The reproduction target is the *ordering* — the direct
//! strategy with exogenous-input prediction beats the recursive linear
//! model, which beats the recursive MLP.

use tesla_bench::{
    arg_f64, print_table, temperature_mape_mlp, temperature_mape_recursive, temperature_mape_tesla,
    train_test_traces, RecursiveMlp,
};
use tesla_forecast::{DcTimeSeriesModel, ModelConfig, RecursiveAr};
use tesla_ml::MlpConfig;

fn main() {
    // Paper protocol: 30 train days + 14 test days; defaults here are
    // smaller for wall-clock reasons (pass --train-days/--test-days).
    let train_days = arg_f64("train-days", 3.0);
    let test_days = arg_f64("test-days", 1.0);
    let stride = arg_f64("stride", 7.0) as usize;
    eprintln!("generating sweep traces: {train_days} train days, {test_days} test days …");
    let (train, test) = train_test_traces(train_days, test_days, 2024);

    eprintln!("training TESLA's DC time-series model (L = 20) …");
    let tesla = DcTimeSeriesModel::fit(&train, ModelConfig::default()).expect("TESLA model");
    eprintln!("training the Lazic recursive AR model …");
    let lazic = RecursiveAr::fit(&train, 2, 0.0).expect("recursive AR");
    eprintln!("training the Wang-style recursive MLP …");
    let mlp = RecursiveMlp::fit(
        &train,
        MlpConfig {
            hidden: vec![64, 64],
            epochs: 30,
            seed: 9,
            ..MlpConfig::default()
        },
    );

    eprintln!("evaluating on the held-out trace …");
    let m_tesla = temperature_mape_tesla(&tesla, &test, stride);
    let m_lazic = temperature_mape_recursive(&lazic, &test, 20, stride);
    let m_mlp = temperature_mape_mlp(&mlp, &test, 20, stride);

    print_table(
        "Table 3: DC temperature MAPE (%)",
        &["model", "MAPE (%)", "paper (%)"],
        &[
            vec![
                "TESLA (ours)".into(),
                format!("{m_tesla:.2}"),
                "3.52".into(),
            ],
            vec![
                "Lazic et al. [20]".into(),
                format!("{m_lazic:.2}"),
                "5.52".into(),
            ],
            vec![
                "Wang et al. [42] (MLP)".into(),
                format!("{m_mlp:.2}"),
                "10.73".into(),
            ],
        ],
    );
    let ordering_holds = m_tesla < m_lazic && m_lazic < m_mlp;
    println!(
        "\nreproduction target: TESLA < Lazic < MLP — {}",
        if ordering_holds {
            "HOLDS"
        } else {
            "ordering differs (see EXPERIMENTS.md)"
        }
    );
}
