//! Table 5: end-to-end benchmark — cooling energy (CE), CE saving vs the
//! fixed 23 °C policy, thermal-safety violation time (TSV), and cooling
//! interruption (CI), for {Fix-23 °C, TESLA, Lazic, TSRL} × {idle,
//! medium, high} load settings.
//!
//! Paper shape: TESLA saves 5.24–15.3% CE (growing with load) with zero
//! TSV and ~2% CI; Lazic and TSRL save substantially more CE but incur
//! double-digit TSV and CI.
//!
//! `--repeats N` (default 1) averages over N seeds and reports mean ± std
//! of each metric — the seed-robust version of the table.

use tesla_bench::{arg_f64, print_table, run_standard_episode, train_test_traces};
use tesla_core::{Controller, EvalResult, FixedController};
use tesla_linalg::stats::{mean, std_dev};
use tesla_units::Celsius;
use tesla_workload::LoadSetting;

fn main() {
    let train_days = arg_f64("train-days", 3.0);
    let minutes = arg_f64("minutes", 720.0) as usize;
    let repeats = arg_f64("repeats", 1.0).max(1.0) as usize;
    eprintln!("generating {train_days}-day training sweep …");
    let (train, _) = train_test_traces(train_days, 0.1, 99);

    eprintln!("training TESLA …");
    let mut tesla = tesla_bench::trained_tesla(&train, 1);
    eprintln!("training Lazic …");
    let mut lazic = tesla_bench::trained_lazic(&train);
    eprintln!("training TSRL …");
    let mut tsrl = tesla_bench::trained_tsrl(&train);
    let mut fixed = FixedController::new(Celsius::new(23.0));

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (si, setting) in LoadSetting::all().into_iter().enumerate() {
        // One result list per controller, across repeats.
        let mut results: [Vec<EvalResult>; 4] = Default::default();
        for rep in 0..repeats {
            let seed = 1000 + si as u64 + 37 * rep as u64;
            eprintln!(
                "== {} load, seed {seed}: running 4 controllers x {minutes} min …",
                setting.name()
            );
            let ctrls: [&mut dyn Controller; 4] = [&mut fixed, &mut tesla, &mut lazic, &mut tsrl];
            for (slot, ctrl) in ctrls.into_iter().enumerate() {
                let r = run_standard_episode(ctrl, setting, minutes, seed);
                eprintln!("   {:<10} CE {:.1} kWh", r.controller, r.cooling_energy_kwh);
                results[slot].push(r);
            }
        }
        push_rows(&mut rows, setting, &results, repeats);
    }

    print_table(
        &format!("Table 5: end-to-end performance ({minutes}-min episodes, {repeats} seed(s))"),
        &[
            "load",
            "metric",
            "Fix 23C",
            "TESLA",
            "Lazic [20]",
            "TSRL [8]",
        ],
        &rows,
    );
    println!(
        "\npaper shape: TESLA saves ~5-15% CE (growing with load) with 0% TSV and ~2% CI;\n\
         Lazic/TSRL save more CE but with >=16.9% TSV and large CI."
    );
}

fn push_rows(
    rows: &mut Vec<Vec<String>>,
    setting: LoadSetting,
    results: &[Vec<EvalResult>; 4],
    repeats: usize,
) {
    let fmt_stat = |vals: &[f64]| -> String {
        if repeats > 1 {
            format!("{:.1}±{:.1}", mean(vals), std_dev(vals))
        } else {
            format!("{:.1}", vals[0])
        }
    };
    let metric_row = |name: &str, f: &dyn Fn(&EvalResult, &EvalResult) -> f64| -> Vec<String> {
        let mut row = vec![setting.name().to_string(), name.to_string()];
        for slot in 0..4 {
            let vals: Vec<f64> = results[slot]
                .iter()
                .zip(&results[0])
                .map(|(r, baseline)| f(r, baseline))
                .collect();
            row.push(fmt_stat(&vals));
        }
        row
    };
    rows.push(metric_row("CE (kWh)", &|r, _| r.cooling_energy_kwh));
    rows.push(metric_row("CE saving (%)", &|r, b| r.saving_vs(b)));
    rows.push(metric_row("TSV (%)", &|r, _| r.tsv_percent));
    rows.push(metric_row("CI (%)", &|r, _| r.ci_percent));
    rows.push(metric_row("cooling/IT", &|r, _| r.cooling_overhead()));
}
