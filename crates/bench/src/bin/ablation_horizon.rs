//! Ablation: the prediction horizon L (Table 2's L = 20).
//!
//! §2.2 discusses control time granularity: too coarse misses overheating
//! events; too fine creates set-point churn. The horizon bounds what the
//! constraint (Eq. 9) can see of an interruption ramp.

use tesla_bench::{arg_f64, print_table, run_standard_episode, train_test_traces};
use tesla_core::{FixedController, TeslaConfig, TeslaController};
use tesla_forecast::ModelConfig;
use tesla_units::Celsius;
use tesla_workload::LoadSetting;

fn main() {
    let train_days = arg_f64("train-days", 3.0);
    let minutes = arg_f64("minutes", 360.0) as usize;
    eprintln!("generating a {train_days}-day sweep …");
    let (train, _) = train_test_traces(train_days, 0.1, 99);

    let mut fixed = FixedController::new(Celsius::new(23.0));
    let baseline = run_standard_episode(&mut fixed, LoadSetting::Medium, minutes, 987);

    let mut rows = Vec::new();
    for l in [5usize, 10, 20, 40] {
        eprintln!("L = {l}: retraining the full model stack …");
        let cfg = TeslaConfig {
            model: ModelConfig {
                horizon: l,
                ..ModelConfig::default()
            },
            seed: 7,
            ..TeslaConfig::default()
        };
        let mut tesla = TeslaController::new(&train, cfg).expect("TESLA");
        let r = run_standard_episode(&mut tesla, LoadSetting::Medium, minutes, 987);
        rows.push(vec![
            format!("{l}"),
            format!("{:.2}", r.cooling_energy_kwh),
            format!("{:.2}", r.saving_vs(&baseline)),
            format!("{:.1}", r.tsv_percent),
            format!("{:.1}", r.ci_percent),
        ]);
    }
    print_table(
        "Ablation: prediction horizon L (medium load)",
        &["L (min)", "CE (kWh)", "saving (%)", "TSV (%)", "CI (%)"],
        &rows,
    );
    println!(
        "\nexpectation: short horizons cannot see interruption ramps building\n\
         (safety erodes); very long horizons dilute the constraint and slow the\n\
         optimizer without improving safety."
    );
}
