//! Load bench for the `tesla-net` TLP/1 service: tens of thousands of
//! concurrent clients flooding columnar `PUSHC` batches over loopback
//! into a WAL-backed historian, then a query-latency pass and a
//! connection-churn pass. Writes `bench_results/BENCH_net.json` with
//! `net_ingest_samples_per_second` as the `cargo xtask bench-diff` gate
//! and `tesla_net_query_seconds` in the latency breakdown.
//!
//! Process layout (the box caps each process at ~20k file
//! descriptors): the parent hosts the [`tesla_net::NetServer`] plus all
//! 10k server-side connections, and re-executes itself as `--client`
//! subprocesses that split the client-side connections between them.
//! Children connect everything first, report `READY`, and flood only
//! after the parent's `GO` — so the measured window is all-connections
//! concurrent load, not ramp-up. Each connection keeps exactly one
//! batch in flight (send, await the `OK` ack, send the next), which is
//! how a well-behaved telemetry agent treats an explicit-backpressure
//! ingest plane.
//!
//! Default mode enforces the acceptance floor — ≥ 1M samples/s written
//! through the queue and WAL with 10k concurrent clients — and exits
//! non-zero below it. `--smoke` runs the identical pipeline at CI scale
//! (hundreds of connections, a few seconds) without the full-scale
//! floor.
//!
//! Flags: `--connections N` (default 10000), `--client-procs N`
//! (default 4), `--batch N` samples per `PUSHC` (default 256),
//! `--per-line N` values per body line (default 16), `--seconds S`
//! flood window (default 12), `--queries N` (default 2000),
//! `--query-threads N` (default 8), `--churn N` (default 3000),
//! `--dir PATH` (default fresh temp dir, removed afterwards).

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tesla_bench::{arg_f64, arg_flag};
use tesla_core::status::{StatusBoard, StatusSnapshot};
use tesla_core::supervisor::Rung;
use tesla_historian::{FsyncPolicy, Historian, HistorianConfig, MetricStore};
use tesla_net::{NetConfig, NetServer};
use tesla_units::Celsius;

/// String-valued flag lookup (`--flag value`).
fn arg_str(name: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len().saturating_sub(1) {
        if args[i] == format!("--{name}") {
            return args[i + 1].clone();
        }
    }
    default.to_string()
}

fn main() {
    if arg_flag("client") {
        client_main();
        return;
    }
    let smoke = arg_flag("smoke");
    let (d_conns, d_procs, d_secs, d_queries, d_churn) = if smoke {
        (256.0, 1.0, 3.0, 400.0, 500.0)
    } else {
        (10_000.0, 4.0, 12.0, 2_000.0, 3_000.0)
    };
    let connections = arg_f64("connections", d_conns) as usize;
    let client_procs = (arg_f64("client-procs", d_procs) as usize).max(1);
    let batch = (arg_f64("batch", 256.0) as usize).max(1);
    let per_line = (arg_f64("per-line", 16.0) as usize).max(1);
    let seconds = arg_f64("seconds", d_secs);
    let queries = arg_f64("queries", d_queries) as usize;
    let query_threads = (arg_f64("query-threads", 8.0) as usize).max(1);
    let churn = arg_f64("churn", d_churn) as usize;
    let (dir, cleanup) = bench_dir();

    // WAL-backed store: this is the end-to-end path the floor is about.
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = HistorianConfig {
        fsync: FsyncPolicy::EveryN(4096),
        ..HistorianConfig::default()
    };
    let (store, _) = Historian::open(&dir, cfg).expect("open historian");
    let store = Arc::new(store);

    tesla_obs::set_enabled(true);
    let board = Arc::new(StatusBoard::new());
    board.publish(StatusSnapshot {
        minute: 0,
        rung: Rung::Normal,
        setpoint: Celsius::new(24.0),
        cold_aisle_max: Celsius::new(25.0),
        safe_mode_minutes: 0,
        hold_minutes: 0,
        watchdog_trips: 0,
        write_failures: 0,
        decision_timeouts: 0,
        events_dropped: 0,
    });
    let net_cfg = NetConfig {
        ingest_capacity_samples: 1 << 22,
        reactor: tesla_reactor::ReactorConfig {
            // One core serves reactor, historian writer, and the
            // client processes: poll cold telemetry agents rarely
            // (1/64 sweeps) and idle in larger steps so the writer
            // keeps the core.
            poll_backoff_cap: 6,
            idle_sleep: Duration::from_millis(2),
            ..tesla_reactor::ReactorConfig::default()
        },
        ..NetConfig::default()
    };
    let ingest_cap = net_cfg.ingest_capacity_samples;
    let server = NetServer::bind(
        "127.0.0.1:0",
        net_cfg,
        Arc::clone(&store) as Arc<dyn MetricStore>,
        board,
    )
    .expect("bind net server");
    let addr = server.local_addr().to_string();
    eprintln!(
        "net server on {addr}: {connections} connections across {client_procs} client processes"
    );

    // ---- Phase 1: concurrent ingest flood -------------------------
    let conns_per_proc = connections.div_ceil(client_procs);
    let exe = std::env::current_exe().expect("current exe");
    let mut children: Vec<(Child, BufReader<std::process::ChildStdout>)> = Vec::new();
    for p in 0..client_procs {
        let conns = conns_per_proc.min(connections - p * conns_per_proc);
        let mut child = Command::new(&exe)
            .args([
                "--client",
                "x", // arg_flag matches the flag itself; value slot unused
                "--addr",
                &addr,
                "--conns",
                &conns.to_string(),
                "--batch",
                &batch.to_string(),
                "--per-line",
                &per_line.to_string(),
                "--seconds",
                &format!("{seconds}"),
                "--proc",
                &p.to_string(),
                "--throttle-lo",
                &(ingest_cap / 4).to_string(),
                "--throttle-hi",
                &(ingest_cap / 2).to_string(),
            ])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn client process");
        let stdout = BufReader::new(child.stdout.take().expect("child stdout"));
        children.push((child, stdout));
    }
    // Wait for every child to finish connecting before starting the
    // clock: the measured window is full-concurrency flood.
    for (i, (_, stdout)) in children.iter_mut().enumerate() {
        let mut line = String::new();
        stdout.read_line(&mut line).expect("child READY");
        assert_eq!(line.trim(), "READY", "client {i} failed to connect");
    }
    eprintln!(
        "all {} client connections up (server sees {}); flooding for {seconds}s …",
        connections,
        server.connections()
    );
    let t0 = Instant::now();
    for (child, _) in children.iter_mut() {
        child
            .stdin
            .as_mut()
            .expect("child stdin")
            .write_all(b"GO\n")
            .expect("send GO");
    }
    // Low-rate progress sampling while the flood runs (stderr only).
    let sampler_stop = std::sync::atomic::AtomicBool::new(false);
    let (mut acked, mut sent, mut dead) = (0u64, 0u64, 0u64);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            while !sampler_stop.load(std::sync::atomic::Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(1000));
                eprintln!(
                    "  t={:>5.1}s queue={:>8} written={:>9} dropped={:>8}",
                    t0.elapsed().as_secs_f64(),
                    server.queue().depth_samples(),
                    server.written_samples(),
                    server.queue().dropped_samples()
                );
            }
        });
        for (mut child, mut stdout) in children {
            let mut line = String::new();
            stdout.read_line(&mut line).expect("child STATS");
            let mut fields = line.split_whitespace();
            assert_eq!(fields.next(), Some("STATS"), "bad client report: {line}");
            for f in fields {
                let (k, v) = f.split_once('=').expect("k=v");
                let v: u64 = v.parse().expect("stat value");
                match k {
                    "acked" => acked += v,
                    "sent" => sent += v,
                    "dead" => dead += v,
                    _ => {}
                }
            }
            child.wait().expect("client exit");
        }
        // Children are done; wait for the writers to drain what is queued
        // so the rate is samples *committed to the store*, end to end.
        let drain_deadline = Instant::now() + Duration::from_secs(120);
        while server.queue().depth_samples() > 0 && Instant::now() < drain_deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        sampler_stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let written = server.written_samples();
    let dropped = server.queue().dropped_samples();
    let ingest_rate = written as f64 / elapsed;
    let acked_rate = acked as f64 / elapsed;
    eprintln!(
        "ingest: {written} samples written ({dropped} dropped, {dead} dead conns) \
         in {elapsed:.2}s = {:.2}M samples/s",
        ingest_rate / 1e6
    );

    // ---- Phase 2: query latency -----------------------------------
    let mut rtts = query_phase(&addr, queries, query_threads, client_procs, conns_per_proc);
    rtts.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| -> f64 {
        if rtts.is_empty() {
            return f64::NAN;
        }
        rtts[((rtts.len() as f64 * p) as usize).min(rtts.len() - 1)]
    };
    let (q_p50, q_p99) = (pct(0.50), pct(0.99));
    eprintln!(
        "query: {} LASTN round-trips, p50 {:.1}µs p99 {:.1}µs",
        rtts.len(),
        q_p50 * 1e6,
        q_p99 * 1e6
    );

    // ---- Phase 3: connection churn --------------------------------
    let t0 = Instant::now();
    let churn_threads = 2usize;
    std::thread::scope(|scope| {
        for _ in 0..churn_threads {
            scope.spawn(|| {
                for _ in 0..churn / churn_threads {
                    let mut s = TcpStream::connect(&addr).expect("churn connect");
                    s.write_all(b"PING\n").expect("churn ping");
                    let mut buf = [0u8; 8];
                    let n = s.read(&mut buf).expect("churn pong");
                    assert_eq!(&buf[..n], b"PONG\n");
                }
            });
        }
    });
    let churn_rate = churn as f64 / t0.elapsed().as_secs_f64();
    eprintln!("churn: {churn} connect+ping+close cycles = {churn_rate:.0}/s");

    server.stop();
    let stats = store.storage_stats();
    drop(store);
    if cleanup {
        let _ = std::fs::remove_dir_all(&dir);
    }

    tesla_bench::print_table(
        &format!("tesla-net: {connections} clients x {batch}-sample PUSHC over loopback"),
        &["metric", "value"],
        &[
            vec![
                "ingest written (M samples/s)".into(),
                format!("{:.2}", ingest_rate / 1e6),
            ],
            vec![
                "ingest acked (M samples/s)".into(),
                format!("{:.2}", acked_rate / 1e6),
            ],
            vec!["samples written".into(), format!("{written}")],
            vec!["samples dropped (drop-oldest)".into(), format!("{dropped}")],
            vec!["query p50 (µs)".into(), format!("{:.1}", q_p50 * 1e6)],
            vec!["query p99 (µs)".into(), format!("{:.1}", q_p99 * 1e6)],
            vec![
                "connection churn (conns/s)".into(),
                format!("{churn_rate:.0}"),
            ],
        ],
    );

    let mut failures = Vec::new();
    if !smoke {
        if ingest_rate < 1e6 {
            failures.push(format!(
                "end-to-end ingest {:.2}M samples/s is below the 1M floor",
                ingest_rate / 1e6
            ));
        }
        if dead > 0 {
            failures.push(format!("{dead} client connections died mid-flood"));
        }
    }
    if sent < acked {
        failures.push(format!("acked {acked} exceeds sent {sent}"));
    }

    let path = tesla_bench::profile::write_bench_json(
        "net",
        &[
            ("connections", format!("{connections}")),
            ("client_procs", format!("{client_procs}")),
            ("batch_samples", format!("{batch}")),
            ("flood_seconds", format!("{seconds}")),
            ("net_ingest_samples_per_second", format!("{ingest_rate:.1}")),
            ("net_acked_samples_per_second", format!("{acked_rate:.1}")),
            ("samples_written", format!("{written}")),
            ("samples_dropped", format!("{dropped}")),
            ("wal_sealed_samples", format!("{}", stats.sealed_samples)),
            ("net_query_p50_seconds", format!("{q_p50:.7}")),
            ("net_query_p99_seconds", format!("{q_p99:.7}")),
            ("churn_connections_per_second", format!("{churn_rate:.1}")),
        ],
    );
    println!("report written to {}", path.display());

    for f in &failures {
        eprintln!("FAIL: {f}");
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
}

fn bench_dir() -> (std::path::PathBuf, bool) {
    let dir = arg_str("dir", "");
    if !dir.is_empty() {
        return (std::path::PathBuf::from(dir), false);
    }
    let dir = std::env::temp_dir().join(format!("tesla-net-bench-{}", std::process::id()));
    (dir, true)
}

/// Blocking query clients (threaded, sequential round-trips each)
/// measuring client-observed `QUERY LASTN` latency. Every RTT also
/// lands in the `tesla_net_query_seconds` histogram, which is what
/// `cargo xtask bench-diff` gates on via the latency breakdown.
fn query_phase(
    addr: &str,
    queries: usize,
    threads: usize,
    procs: usize,
    conns_per_proc: usize,
) -> Vec<f64> {
    let per_thread = queries.div_ceil(threads);
    let rtts = std::sync::Mutex::new(Vec::with_capacity(queries));
    std::thread::scope(|scope| {
        for t in 0..threads {
            let rtts = &rtts;
            scope.spawn(move || {
                let stream = TcpStream::connect(addr).expect("query connect");
                let mut writer = stream.try_clone().expect("clone");
                let mut reader = BufReader::new(stream);
                let mut local = Vec::with_capacity(per_thread);
                let mut line = String::new();
                for i in 0..per_thread {
                    let k = t * per_thread + i;
                    let metric = format!(
                        "net.bench.p{}.c{}",
                        k % procs.max(1),
                        k % conns_per_proc.max(1)
                    );
                    let started = Instant::now();
                    writer
                        .write_all(format!("QUERY LASTN {metric} 64\n").as_bytes())
                        .expect("query write");
                    line.clear();
                    reader.read_line(&mut line).expect("query header");
                    let n: usize = line
                        .trim_end()
                        .strip_prefix("OK ")
                        .expect("OK header")
                        .parse()
                        .expect("sample count");
                    for _ in 0..n {
                        line.clear();
                        reader.read_line(&mut line).expect("query value");
                    }
                    let rtt = started.elapsed();
                    tesla_obs::histogram!("tesla_net_query_seconds").observe_duration(rtt);
                    local.push(rtt.as_secs_f64());
                }
                rtts.lock().unwrap().extend(local);
            });
        }
    });
    rtts.into_inner().unwrap()
}

// ---------------------------------------------------------------------
// Client subprocess: nonblocking poll loop over its share of the
// connections, one PUSHC batch in flight per connection.
// ---------------------------------------------------------------------

struct ClientConn {
    stream: TcpStream,
    frame: Vec<u8>,
    cursor: usize,
    awaiting_ack: bool,
    ack_buf: Vec<u8>,
    metric: String,
    t_next: f64,
    acked: u64,
    sent: u64,
    dead: bool,
    /// Backpressure: earliest instant this connection may send again.
    resume_at: Instant,
}

impl ClientConn {
    /// Stages the next batch frame: header + shared pre-encoded body.
    fn arm(&mut self, batch: usize, body: &[u8]) {
        self.frame.clear();
        self.frame.extend_from_slice(
            format!("PUSHC {batch} {} {} 1\n", self.metric, self.t_next).as_bytes(),
        );
        self.frame.extend_from_slice(body);
        self.cursor = 0;
        self.t_next += batch as f64;
    }
}

/// Parses the queued-sample depth out of an `OK <n> q=<depth>` ack.
fn ack_queue_depth(line: &[u8]) -> u64 {
    let Some(pos) = line.windows(2).position(|w| w == b"q=") else {
        return 0;
    };
    line[pos + 2..]
        .iter()
        .take_while(|b| b.is_ascii_digit())
        .fold(0u64, |acc, &b| acc * 10 + (b - b'0') as u64)
}

fn client_main() {
    tesla_obs::set_enabled(false);
    let addr = arg_str("addr", "127.0.0.1:0");
    let conns = arg_f64("conns", 100.0) as usize;
    let batch = arg_f64("batch", 256.0) as usize;
    let per_line = arg_f64("per-line", 16.0) as usize;
    let seconds = arg_f64("seconds", 5.0);
    let proc_id = arg_f64("proc", 0.0) as usize;
    // Backpressure thresholds in queued samples, from the `q=` token
    // on every ack: beyond `lo` a connection pauses briefly before its
    // next batch, beyond `hi` it backs off harder. Pushing faster than
    // the writers drain would only feed the drop-oldest policy —
    // parsed work the server then throws away.
    let throttle_lo = arg_f64("throttle-lo", f64::MAX) as u64;
    let throttle_hi = arg_f64("throttle-hi", f64::MAX) as u64;

    // Shared batch body: `batch` plausible 0.1 °C-quantized readings,
    // `per_line` values per line. Encoded once; every frame reuses it.
    let mut body = Vec::new();
    for (i, chunk_start) in (0..batch).step_by(per_line).enumerate() {
        let vals: Vec<String> = (chunk_start..(chunk_start + per_line).min(batch))
            .map(|j| format!("{:.1}", 20.0 + ((i * 7 + j) % 80) as f64 * 0.1))
            .collect();
        body.extend_from_slice(vals.join(" ").as_bytes());
        body.push(b'\n');
    }

    let mut pool: Vec<ClientConn> = (0..conns)
        .map(|i| {
            // Stagger connects so the listener backlog never overflows.
            if i > 0 && i % 200 == 0 {
                std::thread::sleep(Duration::from_millis(5));
            }
            let stream = TcpStream::connect(&addr).expect("client connect");
            stream.set_nodelay(true).expect("nodelay");
            stream.set_nonblocking(true).expect("nonblocking");
            ClientConn {
                stream,
                frame: Vec::with_capacity(body.len() + 64),
                cursor: 0,
                awaiting_ack: false,
                ack_buf: Vec::with_capacity(64),
                metric: format!("net.bench.p{proc_id}.c{i}"),
                t_next: 0.0,
                acked: 0,
                sent: 0,
                dead: false,
                resume_at: Instant::now(),
            }
        })
        .collect();

    // Handshake: all connections up, wait for the coordinated start.
    println!("READY");
    use std::io::Write as _;
    std::io::stdout().flush().expect("flush READY");
    let mut go = String::new();
    std::io::stdin().read_line(&mut go).expect("await GO");

    let deadline = Instant::now() + Duration::from_secs_f64(seconds);
    let mut read_buf = [0u8; 4096];
    loop {
        let now = Instant::now();
        let flooding = now < deadline;
        let mut progress = false;
        let mut in_flight = 0usize;
        for c in pool.iter_mut() {
            if c.dead {
                continue;
            }
            if c.awaiting_ack {
                in_flight += 1;
                match c.stream.read(&mut read_buf) {
                    Ok(0) => c.dead = true,
                    Ok(n) => {
                        progress = true;
                        c.ack_buf.extend_from_slice(&read_buf[..n]);
                        if let Some(pos) = c.ack_buf.iter().position(|&b| b == b'\n') {
                            if c.ack_buf.starts_with(b"OK") {
                                c.acked += batch as u64;
                                // Honor the explicit backpressure signal:
                                // "OK <n> q=<depth>".
                                let depth = ack_queue_depth(&c.ack_buf[..pos]);
                                // Pause lengths size the offered rate:
                                // conns × batch / pause. 10k conns of
                                // 256-sample batches at one batch per
                                // second offer ~2.6M samples/s.
                                if depth > throttle_hi {
                                    c.resume_at = now + Duration::from_millis(2000);
                                } else if depth > throttle_lo {
                                    c.resume_at = now + Duration::from_millis(700);
                                }
                            } else {
                                c.dead = true; // ERR: protocol fault, stop this conn
                            }
                            c.ack_buf.drain(..=pos);
                            c.awaiting_ack = false;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                    Err(_) => c.dead = true,
                }
            }
            if !c.awaiting_ack && !c.dead {
                // Never start a frame we won't finish; always finish a
                // frame we started (a torn batch would poison framing).
                if c.cursor == c.frame.len() {
                    if !flooding || now < c.resume_at {
                        continue;
                    }
                    c.arm(batch, &body);
                }
                match c.stream.write(&c.frame[c.cursor..]) {
                    Ok(n) => {
                        progress = true;
                        c.cursor += n;
                        if c.cursor == c.frame.len() {
                            c.sent += batch as u64;
                            c.awaiting_ack = true;
                            in_flight += 1;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                    Err(_) => c.dead = true,
                }
            }
        }
        if !flooding && in_flight == 0 {
            break;
        }
        if !flooding && now > deadline + Duration::from_secs(10) {
            break; // grace expired; report what was acked
        }
        if !progress {
            // Single-core box: parking hands the core to the server
            // instead of burning it on empty sweeps. Generous because
            // throttled connections spend whole seconds paused.
            std::thread::sleep(Duration::from_millis(3));
        }
    }

    let acked: u64 = pool.iter().map(|c| c.acked).sum();
    let sent: u64 = pool.iter().map(|c| c.sent).sum();
    let dead: u64 = pool.iter().filter(|c| c.dead).count() as u64;
    println!("STATS acked={acked} sent={sent} dead={dead}");
}
