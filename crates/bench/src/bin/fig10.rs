//! Figure 10: the fixed 23 °C policy's set-point, inlet temperature, and
//! ACU power over a medium-load episode.
//!
//! §6.2: the fixed policy shows a large residual between the set-point
//! and the inlet temperature during high-load stretches — the PID works
//! constantly, wasting energy relative to TESLA's load-matched set-point.

use tesla_bench::run_trace_figure;
use tesla_core::FixedController;
use tesla_units::Celsius;

fn main() {
    let mut fixed = FixedController::new(Celsius::new(23.0));
    run_trace_figure(
        "Fig10",
        &mut fixed,
        "a persistent residual between the fixed 23 C set-point and the warmer inlet\n\
         keeps the compressor working hard (paper: ~2.5 kW through the high-load hours\n\
         vs TESLA's ~2 kW).",
    );
}
