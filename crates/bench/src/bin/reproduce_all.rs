//! Convenience runner: regenerates every table and figure in sequence
//! with shared (cached) datasets — the one-command reproduction.
//!
//! ```bash
//! cargo run -p tesla-bench --release --bin reproduce_all -- --train-days 3 --minutes 720
//! ```
//!
//! Each experiment is also available as its own binary (`table3`, `fig9`,
//! …) when you only need one.

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.to_path_buf()))
        .expect("locate binary directory");

    let binaries = [
        "fig2",
        "fig3",
        "fig4",
        "table3",
        "table4",
        "table5",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "ablation_kappa",
        "ablation_smoothing",
        "ablation_horizon",
    ];
    let mut failures = Vec::new();
    for bin in binaries {
        println!("\n================ {bin} ================");
        let path = exe_dir.join(bin);
        let status = Command::new(&path).args(&args).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                failures.push(bin);
            }
            Err(e) => {
                eprintln!("failed to launch {bin}: {e} (build with `cargo build -p tesla-bench --release` first)");
                failures.push(bin);
            }
        }
    }
    if failures.is_empty() {
        println!(
            "\nall {} experiments regenerated; CSVs in bench_results/",
            binaries.len()
        );
    } else {
        eprintln!("\nfailed: {failures:?}");
        std::process::exit(1);
    }
}
