//! Figure 3: ACU power and max cold-aisle temperature around a cooling
//! interruption.
//!
//! The paper's measurement: ~1 °C/min rise while cold air is interrupted,
//! and roughly *half* that rate during recovery — the asymmetry that
//! makes boundary-riding controllers unsafe (§2.2).

use tesla_bench::{export_csv, print_table};
use tesla_sim::{SimConfig, Testbed};
use tesla_units::Celsius;

fn main() {
    let sim = SimConfig::default();
    let mut tb = Testbed::new(sim.clone(), 11).expect("testbed");
    let utils = vec![0.35; sim.n_servers]; // steady load, ~6 kW of heat

    tb.write_setpoint(Celsius::new(23.0));
    tb.warm_up(&utils, 240).expect("warm-up");

    let mut minutes = Vec::new();
    let mut power = Vec::new();
    let mut cold_max = Vec::new();

    // Interruption: set-point far above the return temperature for 10 min,
    // then recovery at 23 °C for 20 min.
    tb.write_setpoint(Celsius::new(35.0));
    let peak_idx = 9;
    for m in 0..30 {
        if m == 10 {
            tb.write_setpoint(Celsius::new(23.0));
        }
        let obs = tb.step_sample(&utils).expect("step");
        minutes.push(m as f64);
        power.push(obs.acu_power_kw);
        cold_max.push(obs.cold_aisle_max);
    }

    let start_temp = cold_max[0];
    let peak_temp = cold_max[peak_idx];
    let rise_rate = (peak_temp - start_temp) / 10.0;
    // Recovery rate: slope over the time it takes to give back the rise.
    let mut recovered_at = None;
    for (i, &c) in cold_max.iter().enumerate().skip(peak_idx + 1) {
        if c <= start_temp + 0.2 {
            recovered_at = Some(i);
            break;
        }
    }
    let recovery_rate = recovered_at
        .map(|i| (peak_temp - cold_max[i]) / (i - peak_idx) as f64)
        .unwrap_or((peak_temp - cold_max[cold_max.len() - 1]) / 20.0);

    print_table(
        "Figure 3: cooling interruption (first 10 min) and recovery",
        &["metric", "value"],
        &[
            vec![
                "power during interruption (kW)".into(),
                format!("{:.3}", power[5]),
            ],
            vec![
                "power during recovery (kW)".into(),
                format!("{:.3}", power[15]),
            ],
            vec![
                "cold-aisle max at start (C)".into(),
                format!("{start_temp:.2}"),
            ],
            vec![
                "cold-aisle max at peak (C)".into(),
                format!("{peak_temp:.2}"),
            ],
            vec!["rise rate (C/min)".into(), format!("{rise_rate:.2}")],
            vec![
                "recovery rate (C/min)".into(),
                format!("{recovery_rate:.2}"),
            ],
            vec![
                "recovery/rise ratio".into(),
                format!("{:.2}", recovery_rate / rise_rate.max(1e-9)),
            ],
        ],
    );
    println!(
        "\npaper: ~1 C/min rise, ~0.5 C/min recovery (ratio ~0.5);\n\
         reproduction target: rise rate near 1 C/min and recovery slower than the rise."
    );
    let path = export_csv(
        "fig3_interruption",
        &["minute", "acu_power_kw", "cold_aisle_max_c"],
        &[&minutes, &power, &cold_max],
    );
    println!("series written to {}", path.display());
}
