//! Figure 12: TSRL \[8\] riding the constraint boundary.
//!
//! §6.3: the offline-RL policy also treats cooling energy as its reward
//! with no interruption awareness, so it gradually walks the cold aisle
//! up to the 22 °C limit and cannot curb the resulting rises in time.

use tesla_bench::{arg_f64, run_trace_figure, train_test_traces, trained_tsrl};

fn main() {
    let train_days = arg_f64("train-days", 3.0);
    eprintln!("training the TSRL baseline on a {train_days}-day sweep …");
    let (train, _) = train_test_traces(train_days, 0.1, 99);
    let mut tsrl = trained_tsrl(&train);
    run_trace_figure(
        "Fig12",
        &mut tsrl,
        "the max cold-aisle temperature rides at the 22 C limit and overshoots it\n\
         repeatedly (paper: 23.2% TSV at medium load).",
    );
}
