//! Benchmark and smoke harness for the tesla-historian storage engine.
//!
//! Default mode runs the chaos-workload benchmark and writes
//! `bench_results/BENCH_historian.json`:
//!
//! * **Ingest throughput** — multi-threaded batched appends of a
//!   sensor-like workload (0.1 °C-quantized random walks over many
//!   series) into a WAL-backed historian, reported as
//!   `ingest_samples_per_second` (the `cargo xtask bench-diff` gate)
//!   alongside the in-memory (WAL-less) rate.
//! * **Compression** — every block sealed, then compressed
//!   bytes/sample over the whole dataset (target ≤ 3 B/sample).
//! * **Recovery** — the engine is dropped and reopened, timing the full
//!   WAL replay (`recovery_seconds`).
//!
//! `--smoke` instead runs the CI crash-safety drill: record a supervised
//! episode into a durable historian, tear the WAL tail mid-record (the
//! "kill"), recover, and replay — exiting non-zero unless the replayed
//! set-point sequence is bit-identical and recovery truncated the tear.
//!
//! Flags: `--series N` (default 64), `--samples-per-series N`
//! (default 100000), `--threads N` (default 4), `--seed S` (default 7),
//! `--dir PATH` (default a fresh temp dir, removed afterwards).

use std::sync::Arc;
use std::time::Instant;
use tesla_bench::arg_f64;
use tesla_core::{
    record_episode, replay_supervised_episode, run_supervised_episode, EpisodeConfig,
    FixedController, Supervisor, SupervisorConfig,
};
use tesla_historian::{FsyncPolicy, Historian, HistorianConfig, MetricStore};
use tesla_units::Celsius;
use tesla_workload::LoadSetting;

/// Deterministic xorshift so the workload needs no rand dependency and
/// reproduces across runs.
struct XorShift(u64);

impl XorShift {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform in [-1, 1).
    fn next_signed(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 52) as f64 * 2.0 - 1.0
    }
}

/// One series of the chaos workload, sampled every 60 s in one of the
/// three shapes real DC telemetry takes: slow 0.1 °C-resolution
/// temperatures that hold their reading most minutes with occasional
/// regime jumps, integer-watt server power that moves most minutes, and
/// bursty integer utilization percentages that re-level now and then.
fn chaos_series(seed: u64, n: usize) -> Vec<(f64, f64)> {
    let mut rng = XorShift(seed | 1);
    let kind = seed % 3;
    let mut level = match kind {
        0 => 20.0 + (seed % 13) as f64 * 0.5,
        1 => 180.0 + (seed % 40) as f64,
        _ => 40.0,
    };
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let r = rng.next_u64();
        match kind {
            0 => {
                if r.is_multiple_of(1024) {
                    level += rng.next_signed() * 3.0; // cooling regime change
                } else if r.is_multiple_of(4) {
                    level += if r & 4 == 0 { 0.1 } else { -0.1 };
                }
                level = (level * 10.0).round() / 10.0;
            }
            1 => {
                if !r.is_multiple_of(3) {
                    level = (level + (rng.next_signed() * 25.0).round()).max(0.0);
                }
            }
            _ => {
                if r.is_multiple_of(8) {
                    level = (rng.next_signed().abs() * 100.0).round();
                }
            }
        }
        out.push((i as f64 * 60.0, level));
    }
    out
}

/// Appends the whole workload through `store` from `threads` worker
/// threads in `batch`-sample chunks, returning wall seconds.
fn ingest(store: &Historian, workload: &[(String, Vec<(f64, f64)>)], threads: usize) -> f64 {
    const BATCH: usize = 1024;
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for chunk in workload.chunks(workload.len().div_ceil(threads.max(1))) {
            scope.spawn(move || {
                for (name, samples) in chunk {
                    for batch in samples.chunks(BATCH) {
                        store.append_batch(name, batch);
                    }
                }
            });
        }
    });
    t0.elapsed().as_secs_f64()
}

fn bench_dir(flag: &str) -> (std::path::PathBuf, bool) {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len().saturating_sub(1) {
        if args[i] == format!("--{flag}") {
            return (std::path::PathBuf::from(&args[i + 1]), false);
        }
    }
    let dir = std::env::temp_dir().join(format!("tesla-historian-bench-{}", std::process::id()));
    (dir, true)
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    let n_series = arg_f64("series", 64.0) as usize;
    let per_series = arg_f64("samples-per-series", 100_000.0) as usize;
    let threads = arg_f64("threads", 4.0) as usize;
    let seed = arg_f64("seed", 7.0) as u64;
    let (dir, cleanup) = bench_dir("dir");
    let total = (n_series * per_series) as f64;

    eprintln!("generating chaos workload: {n_series} series x {per_series} samples …");
    let workload: Vec<(String, Vec<(f64, f64)>)> = (0..n_series)
        .map(|i| {
            (
                format!("chaos.sensor.{i:03}"),
                chaos_series(
                    seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9),
                    per_series,
                ),
            )
        })
        .collect();

    // In-memory ingest: the pure sharded-append ceiling, no WAL.
    tesla_obs::set_enabled(false);
    let mem = Historian::in_memory(HistorianConfig::default());
    let mem_secs = ingest(&mem, &workload, threads);
    let mem_rate = total / mem_secs;
    eprintln!("in-memory ingest: {:.2}M samples/s", mem_rate / 1e6);

    // Durable ingest: WAL-backed, batched fsync.
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = HistorianConfig {
        fsync: FsyncPolicy::EveryN(4096),
        ..HistorianConfig::default()
    };
    let (durable, _) = Historian::open(&dir, cfg.clone()).expect("open historian");
    let wal_secs = ingest(&durable, &workload, threads);
    let wal_rate = total / wal_secs;
    eprintln!("durable ingest:   {:.2}M samples/s", wal_rate / 1e6);

    durable.seal_all();
    let stats = durable.storage_stats();
    let bytes_per_sample = stats.bytes_per_sample().unwrap_or(f64::NAN);
    eprintln!(
        "compression: {} samples sealed into {} bytes = {:.3} B/sample",
        stats.sealed_samples, stats.sealed_bytes, bytes_per_sample
    );
    durable.flush().expect("flush WAL");
    drop(durable);

    // Recovery: reopen and replay the full WAL.
    let t0 = Instant::now();
    let (recovered, rstats) = Historian::open(&dir, cfg).expect("recover historian");
    let recovery_secs = t0.elapsed().as_secs_f64();
    assert_eq!(
        rstats.samples, total as u64,
        "recovery must replay every ingested sample"
    );
    let probe = recovered
        .series_samples("chaos.sensor.000")
        .expect("recovered series");
    assert_eq!(probe.0.len(), per_series);
    drop(recovered);
    if cleanup {
        let _ = std::fs::remove_dir_all(&dir);
    }
    eprintln!(
        "recovery: {} records / {} samples in {recovery_secs:.2}s",
        rstats.records, rstats.samples
    );

    tesla_bench::print_table(
        &format!("Historian: chaos workload ({n_series} series x {per_series})"),
        &["metric", "value"],
        &[
            vec![
                "in-memory ingest (M samples/s)".into(),
                format!("{:.2}", mem_rate / 1e6),
            ],
            vec![
                "durable ingest (M samples/s)".into(),
                format!("{:.2}", wal_rate / 1e6),
            ],
            vec![
                "compressed bytes/sample".into(),
                format!("{bytes_per_sample:.3}"),
            ],
            vec!["recovery (s)".into(), format!("{recovery_secs:.2}")],
            vec![
                "recovery rate (M samples/s)".into(),
                format!("{:.2}", total / recovery_secs / 1e6),
            ],
        ],
    );

    let mut failures = Vec::new();
    if wal_rate < 1e6 {
        failures.push(format!(
            "durable ingest {:.2}M samples/s is below the 1M floor",
            wal_rate / 1e6
        ));
    }
    if bytes_per_sample.is_nan() || bytes_per_sample > 3.0 {
        failures.push(format!(
            "compression {bytes_per_sample:.3} B/sample exceeds the 3-byte budget"
        ));
    }

    let path = tesla_bench::profile::write_bench_json(
        "historian",
        &[
            ("series", format!("{n_series}")),
            ("samples_per_series", format!("{per_series}")),
            ("threads", format!("{threads}")),
            ("ingest_samples_per_second", format!("{wal_rate:.1}")),
            ("ingest_mem_samples_per_second", format!("{mem_rate:.1}")),
            (
                "compressed_bytes_per_sample",
                format!("{bytes_per_sample:.4}"),
            ),
            ("recovery_seconds", format!("{recovery_secs:.4}")),
            ("recovered_records", format!("{}", rstats.records)),
            ("recovered_samples", format!("{}", rstats.samples)),
        ],
    );
    println!("report written to {}", path.display());

    for f in &failures {
        eprintln!("FAIL: {f}");
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
}

/// CI crash-safety drill: record → tear the WAL tail → recover → replay.
fn smoke() {
    tesla_obs::set_enabled(false);
    let (dir, cleanup) = bench_dir("dir");
    let _ = std::fs::remove_dir_all(&dir);

    let cfg = EpisodeConfig {
        setting: LoadSetting::Medium,
        minutes: 30,
        warmup_minutes: 15,
        seed: 42,
        ..EpisodeConfig::default()
    };
    let mut ctrl = FixedController::new(Celsius::new(23.4));
    let mut sup = Supervisor::new(SupervisorConfig::default());
    let original = run_supervised_episode(&mut ctrl, &mut sup, &cfg).expect("episode");

    // Record, then append one sacrificial unsynced record and tear it:
    // recovery must drop exactly that tail and keep the episode intact.
    {
        let (store, _) = Historian::open(&dir, HistorianConfig::default()).expect("open");
        record_episode(&store, "smoke", &original);
        store.flush().expect("flush");
        store.append_batch("smoke.sacrificial", &[(0.0, 1.0), (60.0, 2.0)]);
    }
    let torn = tear_segment_containing(&dir, b"smoke.sacrificial");
    eprintln!("tore {torn} bytes off the sacrificial record's WAL segment");

    let t0 = Instant::now();
    let (store, rstats) = Historian::open(&dir, HistorianConfig::default()).expect("recover");
    let recovery_secs = t0.elapsed().as_secs_f64();
    assert!(
        rstats.truncated_bytes > 0,
        "the torn tail must have been truncated (stats: {rstats:?})"
    );

    let store: Arc<dyn MetricStore> = Arc::new(store);
    let mut sup2 = Supervisor::new(SupervisorConfig::default());
    let replayed =
        replay_supervised_episode(store.as_ref(), "smoke", &mut sup2, &cfg).expect("replay");
    assert_eq!(
        original.setpoints, replayed.setpoints,
        "replayed set-points must be bit-identical"
    );
    assert_eq!(original.cold_aisle_max, replayed.cold_aisle_max);

    if cleanup {
        let _ = std::fs::remove_dir_all(&dir);
    }
    println!(
        "historian smoke PASS: {} records recovered in {recovery_secs:.2}s, \
         {} bytes truncated, replay bit-identical over {} minutes",
        rstats.records,
        rstats.truncated_bytes,
        original.setpoints.len()
    );
}

/// Chops the last 5 bytes off the WAL segment whose bytes contain
/// `needle` — a mid-record torn write on that record, as a crash or
/// power loss would leave it. WAL frames carry the series name in the
/// clear, so a byte scan finds the right shard and segment.
fn tear_segment_containing(dir: &std::path::Path, needle: &[u8]) -> u64 {
    for shard in std::fs::read_dir(dir).expect("historian dir") {
        let shard = shard.expect("shard entry").path();
        if !shard.is_dir() {
            continue;
        }
        for seg in std::fs::read_dir(&shard).expect("shard dir") {
            let seg = seg.expect("segment entry").path();
            let bytes = std::fs::read(&seg).expect("read segment");
            if !bytes.windows(needle.len()).any(|w| w == needle) {
                continue;
            }
            let torn = 5.min(bytes.len() as u64);
            let file = std::fs::OpenOptions::new()
                .write(true)
                .open(&seg)
                .expect("open segment");
            file.set_len(bytes.len() as u64 - torn).expect("truncate");
            return torn;
        }
    }
    panic!("no WAL segment contains the sacrificial record");
}
