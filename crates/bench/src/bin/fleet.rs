//! Fleet-scale benchmark: 8 → 256 → 1024 concurrent zones under the
//! site power-budget coordinator, written to
//! `bench_results/BENCH_fleet.json`.
//!
//! Each tier steps a row-topology fleet (neighbour bleed 0.4 kW/K, one
//! Lazic-controlled pod per zone) through a full lock-step episode on
//! the work-stealing scheduler and reports:
//!
//! * `fleet_zone_minutes_per_second` — zone-minutes simulated per
//!   wall-second at the 8-zone tier (the `cargo xtask bench-diff`
//!   gate, comparable between the full run and the CI `--smoke` run);
//! * `tesla_fleet_zone_decide_seconds` p50 in the latency breakdown —
//!   the per-zone decision-path gate;
//! * per-tier coordinator overhead (arbitration seconds vs. episode
//!   wall), site peak power, budget pressure, and violation minutes.
//!
//! The 8-zone tier runs twice: once unconstrained (the calibration for
//! every tier's power budget, and the no-new-violations reference) and
//! once under a budget at 75% of the calibrated per-zone peak — which
//! binds, so the committed artifact always shows arbitration active.
//! The run exits non-zero if arbitration fails to engage on any capped
//! tier or if the capped 8-zone tier shows violations the free run did
//! not — the safety-envelope-over-budget invariant.
//!
//! Flags: `--smoke` (8-zone tier only, CI scale), `--workers N`
//! (default: available parallelism), `--minutes N` (override the
//! largest tier's episode length).

use std::time::Instant;
use tesla_bench::{arg_f64, arg_flag, print_table, profile};
use tesla_core::{Controller, EpisodeConfig, LazicController};
use tesla_fleet::{Fleet, FleetConfig, FleetReport, FleetTopology};
use tesla_forecast::Trace;
use tesla_units::Kilowatts;

/// One Lazic controller per zone: cheap decisions, so the bench
/// measures the fleet machinery rather than BO iteration counts.
fn lazic_fleet(trace: &Trace, n: usize) -> Vec<Box<dyn Controller + Send>> {
    (0..n)
        .map(|_| {
            Box::new(LazicController::new(trace, Default::default()).expect("lazic fit"))
                as Box<dyn Controller + Send>
        })
        .collect()
}

fn fleet_config(zones: usize, minutes: usize, workers: usize) -> FleetConfig {
    FleetConfig {
        topology: FleetTopology::row(zones, Kilowatts::new(125.0), 0.4).expect("topology"),
        zone: EpisodeConfig {
            minutes,
            warmup_minutes: 3,
            seed: 9,
            ..Default::default()
        },
        workers,
        ..Default::default()
    }
}

/// Total seconds recorded by a tesla-obs histogram so far (for
/// before/after deltas around one tier).
fn hist_sum(name: &'static str) -> f64 {
    tesla_obs::global().histogram(name, &[]).sum()
}

struct Tier {
    zones: usize,
    minutes: usize,
    budget_kw: f64,
    report: FleetReport,
    wall_seconds: f64,
    coordinator_seconds: f64,
}

impl Tier {
    fn zone_minutes_per_second(&self) -> f64 {
        (self.zones * self.minutes) as f64 / self.wall_seconds
    }
}

fn run_tier(trace: &Trace, zones: usize, minutes: usize, workers: usize, budget_kw: f64) -> Tier {
    let mut config = fleet_config(zones, minutes, workers);
    config.site_budget_kw = Kilowatts::new(budget_kw);
    let fleet = Fleet::new(config, lazic_fleet(trace, zones), None).expect("fleet");
    let coord_before = hist_sum("tesla_fleet_coordinator_seconds");
    let started = Instant::now();
    let report = profile::time_episode(|| fleet.run(minutes, None)).expect("fleet run");
    let wall_seconds = started.elapsed().as_secs_f64();
    Tier {
        zones,
        minutes,
        budget_kw,
        report,
        wall_seconds,
        coordinator_seconds: hist_sum("tesla_fleet_coordinator_seconds") - coord_before,
    }
}

fn main() {
    tesla_obs::set_enabled(true);
    let smoke = arg_flag("smoke");
    let workers = arg_f64(
        "workers",
        std::thread::available_parallelism().map_or(4, |p| p.get()) as f64,
    ) as usize;

    // (zones, episode minutes) per tier; bigger fleets run shorter
    // episodes so the full sweep stays in laptop territory.
    let tiers: Vec<(usize, usize)> = if smoke {
        vec![(8, 10)]
    } else {
        let top_minutes = arg_f64("minutes", 6.0) as usize;
        vec![(8, 60), (256, 8), (1024, top_minutes)]
    };

    eprintln!("training on a 0.3-day sweep …");
    let (trace, _) = tesla_bench::train_test_traces(0.3, 0.1, 63);

    // Calibration + no-new-violations reference: the first tier,
    // unconstrained.
    let (cal_zones, cal_minutes) = tiers[0];
    eprintln!("calibrating: {cal_zones} zones x {cal_minutes} min, unconstrained budget …");
    let free = run_tier(&trace, cal_zones, cal_minutes, workers, f64::INFINITY);
    assert_eq!(
        free.report.budget_exceeded_minutes, 0,
        "an infinite budget must never bind"
    );
    let per_zone_peak_kw = free.report.site_peak_kw.value() / cal_zones as f64;
    eprintln!("calibrated per-zone peak: {per_zone_peak_kw:.2} kW");

    let mut failures = Vec::new();
    let mut capped: Vec<Tier> = Vec::new();
    for &(zones, minutes) in &tiers {
        let budget_kw = zones as f64 * per_zone_peak_kw * 0.75;
        eprintln!(
            "tier: {zones} zones x {minutes} min, budget {budget_kw:.0} kW, {workers} workers …"
        );
        let tier = run_tier(&trace, zones, minutes, workers, budget_kw);
        if tier.report.budget_exceeded_minutes == 0 || tier.report.relaxations == 0 {
            failures.push(format!(
                "tier {zones}: arbitration never engaged (exceeded={}, relaxations={})",
                tier.report.budget_exceeded_minutes, tier.report.relaxations
            ));
        }
        capped.push(tier);
    }

    // Safety envelope over budget: clamping the first tier must not
    // introduce violations its free twin didn't have.
    if capped[0].report.violation_minutes() > free.report.violation_minutes() {
        failures.push(format!(
            "capped 8-zone tier added violations: {} free vs {} capped",
            free.report.violation_minutes(),
            capped[0].report.violation_minutes()
        ));
    }

    let mut rows = Vec::new();
    for t in std::iter::once(&free).chain(&capped) {
        rows.push(vec![
            format!("{}", t.zones),
            format!("{}", t.minutes),
            if t.budget_kw.is_finite() {
                format!("{:.0}", t.budget_kw)
            } else {
                "inf".into()
            },
            format!("{:.1}", t.zone_minutes_per_second()),
            format!("{:.1}", t.report.site_peak_kw.value()),
            format!("{}", t.report.budget_exceeded_minutes),
            format!("{}", t.report.relaxations),
            format!("{}", t.report.violation_minutes()),
            format!("{:.1}", 100.0 * t.coordinator_seconds / t.wall_seconds),
        ]);
    }
    print_table(
        &format!("fleet bench ({workers} workers)"),
        &[
            "zones",
            "minutes",
            "budget kW",
            "zone-min/s",
            "peak kW",
            "over-budget min",
            "relaxations",
            "violation min",
            "coord %",
        ],
        &rows,
    );

    let mut fields: Vec<(String, String)> = vec![
        ("workers".into(), format!("{workers}")),
        ("smoke".into(), format!("{}", smoke as u8)),
        (
            "zones_max".into(),
            format!("{}", capped.last().map_or(0, |t| t.zones)),
        ),
        ("per_zone_peak_kw".into(), format!("{per_zone_peak_kw:.3}")),
        // The bench-diff gate: zone-minute throughput at the tier every
        // run (full or smoke) shares.
        (
            "fleet_zone_minutes_per_second".into(),
            format!("{:.3}", capped[0].zone_minutes_per_second()),
        ),
    ];
    for t in &capped {
        let z = t.zones;
        fields.push((format!("fleet_zones_{z}_minutes"), format!("{}", t.minutes)));
        fields.push((
            format!("fleet_zones_{z}_wall_seconds"),
            format!("{:.3}", t.wall_seconds),
        ));
        fields.push((
            format!("fleet_zones_{z}_zone_minutes_per_second"),
            format!("{:.3}", t.zone_minutes_per_second()),
        ));
        fields.push((
            format!("fleet_zones_{z}_budget_kw"),
            format!("{:.3}", t.budget_kw),
        ));
        fields.push((
            format!("fleet_zones_{z}_site_peak_kw"),
            format!("{:.3}", t.report.site_peak_kw.value()),
        ));
        fields.push((
            format!("fleet_zones_{z}_budget_exceeded_minutes"),
            format!("{}", t.report.budget_exceeded_minutes),
        ));
        fields.push((
            format!("fleet_zones_{z}_relaxations"),
            format!("{}", t.report.relaxations),
        ));
        fields.push((
            format!("fleet_zones_{z}_violation_minutes"),
            format!("{}", t.report.violation_minutes()),
        ));
        fields.push((
            format!("fleet_zones_{z}_coordinator_overhead_pct"),
            format!("{:.3}", 100.0 * t.coordinator_seconds / t.wall_seconds),
        ));
    }
    let borrowed: Vec<(&str, String)> = fields
        .iter()
        .map(|(k, v)| (k.as_str(), v.clone()))
        .collect();
    let path = profile::write_bench_json("fleet", &borrowed);
    println!("\nreport written to {}", path.display());

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
