//! Table 4: cooling-energy prediction MAPE.
//!
//! Paper: TESLA's linear energy sub-module 7.90% < XGBoost 13.41% <
//! MLP 14.33% < Random Forest 15.11%. All models see the same features
//! (future set-points + future inlet temperatures over the horizon,
//! Eq. 4) and the same horizon-energy target.

use tesla_bench::{arg_f64, energy_dataset, print_table, train_test_traces};
use tesla_linalg::stats::mape;
use tesla_ml::{Dataset, ForestConfig, GbtConfig, GradientBoosting, Mlp, MlpConfig, RandomForest};
use tesla_units::Celsius;

fn main() {
    let train_days = arg_f64("train-days", 3.0);
    let test_days = arg_f64("test-days", 1.0);
    let l = 20;
    eprintln!("generating sweep traces: {train_days} train days, {test_days} test days …");
    let (train, test) = train_test_traces(train_days, test_days, 4242);
    let (x_train, y_train) = energy_dataset(&train, l, 3);
    let (x_test, y_test) = energy_dataset(&test, l, 3);
    eprintln!(
        "{} training examples, {} test examples",
        x_train.len(),
        x_test.len()
    );

    // TESLA: the ridge energy sub-module trained through the real path.
    eprintln!("training TESLA energy sub-module (ridge, alpha = 1) …");
    let tesla_model =
        tesla_forecast::energy::EnergyModel::fit(&train, l, 1.0).expect("energy sub-module");
    let n_a = train.n_acu_sensors();
    let tesla_pred: Vec<f64> = x_test
        .iter()
        .map(|row| {
            let setpoints = &row[..l];
            let inlet: Vec<Vec<f64>> = (0..n_a)
                .map(|na| row[l + na * l..l + (na + 1) * l].to_vec())
                .collect();
            tesla_model
                .predict(&Celsius::from_raw_slice(setpoints), &inlet)
                .expect("predict")
                .value()
        })
        .collect();

    eprintln!("training MLP baseline …");
    let mlp = Mlp::fit(
        &x_train,
        &y_train,
        MlpConfig {
            hidden: vec![64, 64],
            epochs: 50,
            seed: 3,
            ..MlpConfig::default()
        },
    )
    .expect("MLP");
    let mlp_pred: Vec<f64> = x_test.iter().map(|r| mlp.predict(r)).collect();

    eprintln!("training gradient boosting (XGBoost stand-in) …");
    let data = Dataset::new(x_train.clone(), y_train.clone()).expect("dataset");
    let gbt = GradientBoosting::fit(&data, GbtConfig::default()).expect("GBT");
    let gbt_pred: Vec<f64> = x_test.iter().map(|r| gbt.predict(r)).collect();

    eprintln!("training random forest …");
    let rf = RandomForest::fit(&data, ForestConfig::default()).expect("RF");
    let rf_pred: Vec<f64> = x_test.iter().map(|r| rf.predict(r)).collect();

    // Diagnostic: the same ridge regression with the horizon's true
    // average-server-power sequence appended to Eq. 4's features. On the
    // paper's testbed the inlet temperatures carried the load information
    // linearly; on this substrate they do not, which is why the plain
    // linear model trails the nonlinear baselines (see EXPERIMENTS.md).
    eprintln!("fitting the +load oracle ridge …");
    let augment = |trace: &tesla_forecast::Trace, x: &[Vec<f64>], stride: usize| {
        let mut rows = Vec::with_capacity(x.len());
        let mut t = l - 1;
        let mut i = 0;
        while t + l < trace.len() && i < x.len() {
            let mut row = x[i].clone();
            for s in 1..=l {
                row.push(trace.avg_power[t + s]);
            }
            rows.push(row);
            t += stride;
            i += 1;
        }
        rows
    };
    let x_train_aug = augment(&train, &x_train, 3);
    let x_test_aug = augment(&test, &x_test, 3);
    let xm = tesla_linalg::Matrix::from_rows(&x_train_aug).expect("augmented design");
    let oracle = tesla_linalg::fit_ridge(&xm, &y_train, 1.0).expect("oracle ridge");
    let oracle_pred: Vec<f64> = x_test_aug.iter().map(|r| oracle.predict(r)).collect();

    let m_tesla = mape(&y_test, &tesla_pred);
    let m_mlp = mape(&y_test, &mlp_pred);
    let m_gbt = mape(&y_test, &gbt_pred);
    let m_rf = mape(&y_test, &rf_pred);
    let m_oracle = mape(&y_test, &oracle_pred);

    print_table(
        "Table 4: cooling energy MAPE (%)",
        &["model", "MAPE (%)", "paper (%)"],
        &[
            vec![
                "TESLA (ours)".into(),
                format!("{m_tesla:.2}"),
                "7.90".into(),
            ],
            vec!["MLP [38]".into(), format!("{m_mlp:.2}"), "14.33".into()],
            vec![
                "XGBoost [7] (GBT)".into(),
                format!("{m_gbt:.2}"),
                "13.41".into(),
            ],
            vec![
                "Random Forest [26]".into(),
                format!("{m_rf:.2}"),
                "15.11".into(),
            ],
            vec![
                "ridge + load futures (diagnostic)".into(),
                format!("{m_oracle:.2}"),
                "-".into(),
            ],
        ],
    );
    let best = m_tesla < m_mlp && m_tesla < m_gbt && m_tesla < m_rf;
    println!(
        "\nreproduction target: TESLA's linear sub-module beats every nonlinear baseline — {}",
        if best {
            "HOLDS"
        } else {
            "ordering differs (see EXPERIMENTS.md)"
        }
    );
    println!(
        "the diagnostic row shows a linear model with explicit load features reaches the\n\
         paper's accuracy band, locating the gap in the substrate's feature-energy map\n\
         rather than the ridge machinery."
    );
}
