//! Perf benchmark for the batched BO decision path.
//!
//! Runs one uncounted warm-up episode, then a metered fault-free
//! supervised episode with metrics enabled, and reports where the
//! wall-clock went: `tesla_decide_seconds` p50/p90/p99 (bucket
//! resolution, from the tesla-obs registry), episode throughput in
//! simulated minutes per wall-second, and the speedup of the decide
//! p50 against the PR-3 baseline captured in an earlier
//! `BENCH_*.json` artifact (default `bench_results/BENCH_chaos.json`).
//! The run writes `bench_results/BENCH_perf.json`; the `cargo xtask
//! bench-diff` gate compares two such artifacts.
//!
//! Flags: `--minutes N` (default 720), `--train-days D` (default 1.5),
//! `--seed S` (default 7), `--warmup N` (default 60),
//! `--baseline PATH` (default `bench_results/BENCH_chaos.json`).

use tesla_bench::{arg_f64, print_table, train_test_traces};
use tesla_core::{run_supervised_episode, EpisodeConfig, Supervisor, SupervisorConfig};
use tesla_sim::FaultPlan;
use tesla_workload::LoadSetting;

/// String-valued flag lookup (`--baseline path`), mirroring
/// [`tesla_bench::arg_f64`].
fn arg_str(name: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len().saturating_sub(1) {
        if args[i] == format!("--{name}") {
            return args[i + 1].clone();
        }
    }
    default.to_string()
}

fn main() {
    let minutes = arg_f64("minutes", 720.0) as usize;
    let warmup = arg_f64("warmup", 60.0) as usize;
    let train_days = arg_f64("train-days", 1.5);
    let seed = arg_f64("seed", 7.0) as u64;
    let baseline_path = arg_str("baseline", "bench_results/BENCH_chaos.json");

    eprintln!("generating {train_days}-day training sweep …");
    let (train, _) = train_test_traces(train_days, 0.1, 99);
    eprintln!("training TESLA …");
    let mut tesla = tesla_bench::trained_tesla(&train, 1);

    let cfg = EpisodeConfig {
        setting: LoadSetting::Medium,
        minutes,
        warmup_minutes: warmup,
        seed,
        ..EpisodeConfig::default()
    };
    let run = |tesla: &mut tesla_core::TeslaController| {
        let mut sup = Supervisor::new(SupervisorConfig::default());
        let episode = EpisodeConfig {
            faults: FaultPlan::none(),
            ..cfg.clone()
        };
        tesla_bench::profile::time_episode(|| {
            run_supervised_episode(tesla, &mut sup, &episode).expect("episode")
        })
    };

    eprintln!("== warm-up episode, uncounted ({minutes} min, medium load, seed {seed}) …");
    tesla_obs::set_enabled(false);
    let _ = run(&mut tesla);

    eprintln!("== metered episode, metrics enabled …");
    tesla_obs::set_enabled(true);
    let t0 = std::time::Instant::now();
    let result = run(&mut tesla);
    let wall_secs = t0.elapsed().as_secs_f64();

    let summaries = tesla_bench::profile::phase_summaries();
    let Some(decide) = summaries
        .iter()
        .find(|s| s.metric == "tesla_decide_seconds")
        .cloned()
    else {
        eprintln!("no tesla_decide_seconds observations recorded — nothing to report");
        std::process::exit(1);
    };
    let throughput = minutes as f64 / wall_secs;
    let decides_per_sec = decide.count as f64 / wall_secs;

    // PR-3 baseline: decide p50 from an earlier artifact's latency
    // breakdown (bucket-resolution quantiles on both sides, so the
    // ratio compares like with like).
    let baseline_p50 = std::fs::read_to_string(&baseline_path)
        .ok()
        .and_then(|body| tesla_bench::profile::breakdown_p50(&body, "tesla_decide_seconds"));
    let speedup = baseline_p50.map(|b| b / decide.p50);

    let mut rows = vec![
        vec!["episode wall (s)".into(), format!("{wall_secs:.2}")],
        vec![
            "throughput (sim min / wall s)".into(),
            format!("{throughput:.1}"),
        ],
        vec!["decides / s".into(), format!("{decides_per_sec:.1}")],
        vec!["decide p50 (s)".into(), format!("{:.4}", decide.p50)],
        vec!["decide p90 (s)".into(), format!("{:.4}", decide.p90)],
        vec!["decide p99 (s)".into(), format!("{:.4}", decide.p99)],
    ];
    match (baseline_p50, speedup) {
        (Some(b), Some(s)) => {
            rows.push(vec!["baseline decide p50 (s)".into(), format!("{b:.4}")]);
            rows.push(vec!["speedup vs baseline".into(), format!("{s:.1}x")]);
        }
        _ => {
            eprintln!("warning: no baseline decide p50 in {baseline_path} — speedup omitted");
        }
    }
    print_table(
        &format!("Perf: batched BO decision path ({minutes}-min episode)"),
        &["metric", "value"],
        &rows,
    );
    println!(
        "episode sanity: CE {:.1} kWh  TSV {:.2}%  CI {:.2}%",
        result.cooling_energy_kwh, result.tsv_percent, result.ci_percent
    );
    if let Some(s) = speedup {
        if s < 5.0 {
            eprintln!("warning: decide p50 speedup {s:.1}x is below the 5x target");
        }
    }

    let json_opt = |v: Option<f64>| match v {
        Some(x) if x.is_finite() => format!("{x:.4}"),
        _ => "null".into(),
    };
    let path = tesla_bench::profile::write_bench_json(
        "perf",
        &[
            ("minutes", format!("{minutes}")),
            ("seed", format!("{seed}")),
            ("train_days", format!("{train_days}")),
            ("episode_wall_seconds", format!("{wall_secs:.4}")),
            (
                "throughput_sim_minutes_per_second",
                format!("{throughput:.3}"),
            ),
            ("decide_count", format!("{}", decide.count)),
            ("decide_p50_seconds", format!("{:.6}", decide.p50)),
            ("decide_p90_seconds", format!("{:.6}", decide.p90)),
            ("decide_p99_seconds", format!("{:.6}", decide.p99)),
            ("baseline_path", format!("\"{baseline_path}\"")),
            ("baseline_decide_p50_seconds", json_opt(baseline_p50)),
            ("speedup_vs_baseline", json_opt(speedup)),
            ("ce_kwh", format!("{:.3}", result.cooling_energy_kwh)),
            ("tsv_percent", format!("{:.4}", result.tsv_percent)),
        ],
    );
    println!("report written to {}", path.display());
}
