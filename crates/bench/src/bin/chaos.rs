//! Chaos benchmark: Table-5-style supervised TESLA episodes replayed
//! under randomized fault plans, one per fault class.
//!
//! For each class (stuck sensor, drift, dropout, noise burst, Modbus
//! write timeout, rejected register, fouled coil, fan failure) the
//! harness draws a fault window at random, runs a supervised episode,
//! and reports the deltas against the fault-free run of the same seed:
//! cooling energy (CE), thermal-safety violation time (TSV, scored on
//! ground truth), cooling interruption (CI), minutes spent in safe
//! mode / hold, and the number of degradation-ladder events.
//!
//! The robustness claims this checks: every episode completes (no
//! panics), all metrics stay finite, sensor lies do not corrupt TSV,
//! and severe faults produce at least one logged degradation event.
//!
//! The fault-free baseline interleaves three metrics-disabled /
//! metrics-enabled episode pairs (after one uncounted warm-up) and
//! reports the *median* per-pair observability overhead (budget: <3%
//! wall-clock) — a single pair is at the mercy of scheduler noise and
//! has produced a nonsensical negative figure. The scenario sweep then
//! runs with metrics enabled and the run writes
//! `bench_results/BENCH_chaos.json` with the per-scenario results, the
//! overhead figures, and a per-phase latency breakdown from the
//! instrumented crates.
//!
//! Flags: `--minutes N` (default 240), `--train-days D` (default 1.5),
//! `--seed S` (default 7), `--warmup N` (default 60).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tesla_bench::{arg_f64, print_table, train_test_traces};
use tesla_core::{run_supervised_episode, EpisodeConfig, EvalResult, Supervisor, SupervisorConfig};
use tesla_sim::{
    ActuatorFault, ActuatorFaultKind, FaultPlan, FaultWindow, PlantFault, PlantFaultKind,
    SensorFault, SensorFaultKind, SensorTarget,
};
use tesla_workload::LoadSetting;

struct Scenario {
    name: &'static str,
    /// Severe scenarios must log at least one degradation event.
    severe: bool,
    plan: FaultPlan,
}

/// Draws one fault window of `len` minutes inside the metered episode
/// (offset past the warm-up, which shares the testbed clock).
fn window(rng: &mut StdRng, warmup: usize, minutes: usize, len: f64) -> FaultWindow {
    let span = (minutes as f64 - len - 10.0).max(1.0);
    let start = warmup as f64 + 5.0 + rng.random::<f64>() * span;
    FaultWindow::new(start, start + len)
}

fn scenarios(rng: &mut StdRng, warmup: usize, minutes: usize, n_cold: usize) -> Vec<Scenario> {
    let cold = |rng: &mut StdRng| SensorTarget::DcSensor(rng.random_range(0..n_cold));
    vec![
        Scenario {
            name: "stuck sensor (47C)",
            severe: false,
            plan: FaultPlan {
                sensors: vec![SensorFault {
                    target: cold(rng),
                    kind: SensorFaultKind::StuckAt(47.0),
                    window: window(rng, warmup, minutes, 60.0),
                }],
                ..FaultPlan::default()
            },
        },
        Scenario {
            name: "sensor drift",
            severe: false,
            plan: FaultPlan {
                sensors: vec![SensorFault {
                    target: cold(rng),
                    kind: SensorFaultKind::Drift {
                        rate_c_per_min: 0.4,
                    },
                    window: window(rng, warmup, minutes, 90.0),
                }],
                ..FaultPlan::default()
            },
        },
        Scenario {
            name: "dropout (NaN) x2",
            severe: false,
            plan: FaultPlan {
                sensors: vec![
                    SensorFault {
                        target: cold(rng),
                        kind: SensorFaultKind::Dropout,
                        window: window(rng, warmup, minutes, 45.0),
                    },
                    SensorFault {
                        target: cold(rng),
                        kind: SensorFaultKind::Dropout,
                        window: window(rng, warmup, minutes, 45.0),
                    },
                ],
                ..FaultPlan::default()
            },
        },
        Scenario {
            name: "noise burst",
            severe: false,
            plan: FaultPlan {
                sensors: vec![SensorFault {
                    target: cold(rng),
                    kind: SensorFaultKind::NoiseBurst { std_c: 4.0 },
                    window: window(rng, warmup, minutes, 60.0),
                }],
                ..FaultPlan::default()
            },
        },
        Scenario {
            name: "write timeout",
            severe: false,
            plan: FaultPlan {
                actuators: vec![ActuatorFault {
                    kind: ActuatorFaultKind::WriteTimeout,
                    window: window(rng, warmup, minutes, 30.0),
                }],
                ..FaultPlan::default()
            },
        },
        Scenario {
            name: "rejected register",
            severe: false,
            plan: FaultPlan {
                actuators: vec![ActuatorFault {
                    kind: ActuatorFaultKind::RejectedRegister,
                    window: window(rng, warmup, minutes, 30.0),
                }],
                ..FaultPlan::default()
            },
        },
        // Plant faults remove real cooling capacity, so TSV rises for
        // physical reasons no controller can mask; the claim for them is
        // graceful degradation (ladder engages, episode completes), hence
        // `severe`.
        Scenario {
            name: "fouled coil (45%)",
            severe: true,
            plan: FaultPlan {
                plant: vec![PlantFault {
                    kind: PlantFaultKind::FouledCoil {
                        capacity_factor: 0.45,
                    },
                    window: window(rng, warmup, minutes, 90.0),
                }],
                ..FaultPlan::default()
            },
        },
        Scenario {
            name: "fan failure",
            severe: true,
            plan: FaultPlan {
                plant: vec![PlantFault {
                    kind: PlantFaultKind::FanFailure,
                    window: window(rng, warmup, minutes, 15.0),
                }],
                ..FaultPlan::default()
            },
        },
    ]
}

fn main() {
    let minutes = arg_f64("minutes", 240.0) as usize;
    let warmup = arg_f64("warmup", 60.0) as usize;
    let train_days = arg_f64("train-days", 1.5);
    let seed = arg_f64("seed", 7.0) as u64;

    eprintln!("generating {train_days}-day training sweep …");
    let (train, _) = train_test_traces(train_days, 0.1, 99);
    eprintln!("training TESLA …");
    let mut tesla = tesla_bench::trained_tesla(&train, 1);

    let base_cfg = EpisodeConfig {
        setting: LoadSetting::Medium,
        minutes,
        warmup_minutes: warmup,
        seed,
        ..EpisodeConfig::default()
    };
    let n_cold = base_cfg.sim.n_cold_aisle_sensors;

    let run =
        |tesla: &mut tesla_core::TeslaController, plan: FaultPlan| -> (EvalResult, Supervisor) {
            let mut sup = Supervisor::new(SupervisorConfig::default());
            let cfg = EpisodeConfig {
                faults: plan,
                ..base_cfg.clone()
            };
            let r = tesla_bench::profile::time_episode(|| {
                run_supervised_episode(tesla, &mut sup, &cfg).expect("episode")
            });
            (r, sup)
        };

    // Observability overhead: a single disabled/enabled pair is at the
    // mercy of scheduler noise (one seed measured a nonsensical -4%).
    // Run one uncounted warm-up episode, then interleave disabled and
    // enabled episodes so slow drift hits both sides, and report the
    // median per-pair overhead so one outlier run cannot flip the sign.
    const OVERHEAD_PAIRS: usize = 3;
    eprintln!("== warm-up episode, uncounted ({minutes} min, medium load, seed {seed}) …");
    tesla_obs::set_enabled(false);
    let _ = run(&mut tesla, FaultPlan::none());

    let mut disabled_runs = Vec::with_capacity(OVERHEAD_PAIRS);
    let mut enabled_runs = Vec::with_capacity(OVERHEAD_PAIRS);
    let mut pair_overheads = Vec::with_capacity(OVERHEAD_PAIRS);
    let mut last_base = None;
    let timed = |tesla: &mut tesla_core::TeslaController, enabled: bool| {
        tesla_obs::set_enabled(enabled);
        let t = std::time::Instant::now();
        let (r, _) = run(tesla, FaultPlan::none());
        (t.elapsed().as_secs_f64(), r)
    };
    for pair in 1..=OVERHEAD_PAIRS {
        // Alternate which side runs first so any episode-to-episode
        // drift (cache state, controller history) hits both sides.
        let disabled_first = pair % 2 == 1;
        eprintln!(
            "== fault-free baseline pair {pair}/{OVERHEAD_PAIRS} \
             ({} first) …",
            if disabled_first {
                "disabled"
            } else {
                "enabled"
            }
        );
        let (disabled, enabled, b) = if disabled_first {
            let (d, _) = timed(&mut tesla, false);
            let (e, b) = timed(&mut tesla, true);
            (d, e, b)
        } else {
            let (e, b) = timed(&mut tesla, true);
            let (d, _) = timed(&mut tesla, false);
            (d, e, b)
        };
        eprintln!(
            "   pair {pair}: enabled {enabled:.2}s vs disabled {disabled:.2}s \
             ({:+.2}%)",
            100.0 * (enabled / disabled - 1.0)
        );
        disabled_runs.push(disabled);
        enabled_runs.push(enabled);
        pair_overheads.push(100.0 * (enabled / disabled - 1.0));
        last_base = Some(b);
    }
    let median = |xs: &[f64]| {
        let mut s = xs.to_vec();
        s.sort_by(f64::total_cmp);
        s[s.len() / 2]
    };
    let base = last_base.expect("at least one baseline pair");
    let disabled_secs = median(&disabled_runs);
    let enabled_secs = median(&enabled_runs);
    let overhead_pct = median(&pair_overheads);
    eprintln!(
        "   CE {:.1} kWh  TSV {:.2}%  CI {:.2}%  metrics overhead {overhead_pct:+.2}% median \
         (median enabled {enabled_secs:.2}s vs median disabled {disabled_secs:.2}s)",
        base.cooling_energy_kwh, base.tsv_percent, base.ci_percent
    );

    // The scenario sweep always runs instrumented, whatever side of the
    // overhead pair ran last.
    tesla_obs::set_enabled(true);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A0);
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut json_rows: Vec<String> = Vec::new();
    let mut failures = 0usize;
    for sc in scenarios(&mut rng, warmup, minutes, n_cold) {
        eprintln!("== {} …", sc.name);
        let (r, sup) = run(&mut tesla, sc.plan);

        let finite = r.cooling_energy_kwh.is_finite()
            && r.tsv_percent.is_finite()
            && r.ci_percent.is_finite()
            && r.cold_aisle_max.iter().all(|v| v.is_finite());
        let tsv_delta = r.tsv_percent - base.tsv_percent;
        // Severe (plant) faults legitimately raise TSV — the ±2 pp bound
        // applies to the sensor/actuator classes, where robust control
        // can and must absorb the fault.
        let tsv_ok = sc.severe || tsv_delta.abs() <= 2.0;
        let events_ok = !sc.severe || !sup.events().is_empty();
        let ok = finite && tsv_ok && events_ok && r.setpoints.len() == minutes;
        if !ok {
            failures += 1;
            // Diagnostic dump for the failing scenario: the ladder's event
            // log plus a coarse set-point / ground-truth trajectory.
            for ev in sup.events() {
                eprintln!(
                    "   event m{:>3}  {:?} -> {:?}  ({:?})",
                    ev.minute, ev.from, ev.to, ev.reason
                );
            }
            for (m, (sp, max)) in r.setpoints.iter().zip(&r.cold_aisle_max).enumerate() {
                if m % 10 == 0 {
                    eprintln!("   m{m:>3}  sp {sp:5.1}  cold max {max:5.2}");
                }
            }
        }

        rows.push(vec![
            sc.name.to_string(),
            format!("{:.1}", r.cooling_energy_kwh),
            format!(
                "{:+.1}%",
                100.0 * (r.cooling_energy_kwh / base.cooling_energy_kwh - 1.0)
            ),
            format!("{:.2}", r.tsv_percent),
            format!("{tsv_delta:+.2}"),
            format!("{:.2}", r.ci_percent),
            format!("{}", r.safe_mode_minutes),
            format!("{}", sup.hold_minutes()),
            format!("{}", sup.events().len()),
            if ok { "ok".into() } else { "FAIL".into() },
        ]);
        json_rows.push(format!(
            "{{\"fault\":\"{}\",\"ce_kwh\":{:.3},\"tsv_percent\":{:.4},\
             \"ci_percent\":{:.4},\"safe_mode_minutes\":{},\"hold_minutes\":{},\
             \"ladder_events\":{},\"ok\":{}}}",
            sc.name,
            r.cooling_energy_kwh,
            r.tsv_percent,
            r.ci_percent,
            r.safe_mode_minutes,
            sup.hold_minutes(),
            sup.events().len(),
            ok
        ));
    }

    print_table(
        &format!("Chaos: supervised TESLA under fault injection ({minutes}-min episodes)"),
        &[
            "fault", "CE kWh", "dCE", "TSV %", "dTSV pp", "CI %", "safe min", "hold min", "events",
            "verdict",
        ],
        &rows,
    );
    println!(
        "baseline: CE {:.1} kWh  TSV {:.2}%  CI {:.2}%",
        base.cooling_energy_kwh, base.tsv_percent, base.ci_percent
    );
    println!(
        "metrics overhead: {overhead_pct:+.2}% wall-clock, median of {OVERHEAD_PAIRS} \
         interleaved pairs (budget <3%; median enabled {enabled_secs:.2}s, \
         median disabled {disabled_secs:.2}s)"
    );
    if overhead_pct >= 3.0 {
        eprintln!("warning: observability overhead exceeds the 3% budget");
    }
    let path = tesla_bench::profile::write_bench_json(
        "chaos",
        &[
            ("minutes", format!("{minutes}")),
            ("seed", format!("{seed}")),
            ("baseline_ce_kwh", format!("{:.3}", base.cooling_energy_kwh)),
            ("baseline_tsv_percent", format!("{:.4}", base.tsv_percent)),
            ("baseline_ci_percent", format!("{:.4}", base.ci_percent)),
            ("metrics_disabled_seconds", format!("{disabled_secs:.4}")),
            ("metrics_enabled_seconds", format!("{enabled_secs:.4}")),
            ("metrics_overhead_percent", format!("{overhead_pct:.3}")),
            (
                "metrics_overhead_pairs_percent",
                format!(
                    "[{}]",
                    pair_overheads
                        .iter()
                        .map(|v| format!("{v:.3}"))
                        .collect::<Vec<_>>()
                        .join(",")
                ),
            ),
            ("scenarios", format!("[{}]", json_rows.join(","))),
        ],
    );
    println!("report written to {}", path.display());
    if failures > 0 {
        eprintln!("{failures} scenario(s) violated the robustness acceptance bounds");
        std::process::exit(1);
    }
    println!("all scenarios completed with finite metrics within bounds");
}
